//! PERF benches for the substrate extensions: relational operators
//! (join / grouping), Apriori mining, and collusion merging. Like
//! `throughput.rs`, these are release-quality characterization, not
//! paper artifacts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use catmark_attacks::collusion;
use catmark_core::fingerprint::FingerprintRegistry;
use catmark_core::WatermarkSpec;
use catmark_datagen::{ItemScanConfig, SalesGenerator};
use catmark_mining::apriori::{mine, AprioriConfig};
use catmark_mining::item::Transactions;
use catmark_relation::{join, AttrType, Relation, Schema, Value};

fn sales(n: usize) -> Relation {
    SalesGenerator::new(ItemScanConfig { tuples: n, ..Default::default() }).generate()
}

fn catalog(items: i64) -> Relation {
    let schema = Schema::builder()
        .key_attr("item_nbr", AttrType::Integer)
        .categorical_attr("dept", AttrType::Integer)
        .build()
        .unwrap();
    let mut rel = Relation::new(schema);
    for i in 0..items {
        rel.push(vec![Value::Int(1_000 + i), Value::Int(i % 40)]).unwrap();
    }
    rel
}

fn bench_hash_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_join");
    for &n in &[5_000usize, 20_000] {
        let left = sales(n);
        let right = catalog(2_000);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &(left, right), |b, (l, r)| {
            b.iter(|| join::hash_join(l, r, "item_nbr", "item_nbr").unwrap());
        });
    }
    group.finish();
}

fn bench_group_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("group_count");
    for &n in &[5_000usize, 50_000] {
        let rel = sales(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &rel, |b, rel| {
            b.iter(|| join::group_count(rel, "item_nbr").unwrap());
        });
    }
    group.finish();
}

fn bench_apriori(c: &mut Criterion) {
    let mut group = c.benchmark_group("apriori");
    // Two categorical attributes with a planted association.
    let schema = Schema::builder()
        .key_attr("k", AttrType::Integer)
        .categorical_attr("dept", AttrType::Integer)
        .categorical_attr("aisle", AttrType::Integer)
        .build()
        .unwrap();
    for &n in &[5_000i64, 20_000] {
        let mut rel = Relation::with_capacity(schema.clone(), n as usize);
        for i in 0..n {
            let dept = (i * 7_919) % 16;
            rel.push(vec![Value::Int(i), Value::Int(dept), Value::Int(100 + dept)]).unwrap();
        }
        let tx = Transactions::from_relation(&rel, &["dept", "aisle"]).unwrap();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &tx, |b, tx| {
            b.iter(|| mine(tx, &AprioriConfig { min_support: 0.01, max_len: 2 }));
        });
    }
    group.finish();
}

fn bench_majority_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("majority_merge");
    let gen = SalesGenerator::new(ItemScanConfig { tuples: 6_000, ..Default::default() });
    let rel = gen.generate();
    let base = WatermarkSpec::builder(gen.item_domain())
        .master_key("bench")
        .e(10)
        .wm_len(10)
        .expected_tuples(rel.len())
        .build()
        .unwrap();
    let mut reg = FingerprintRegistry::new(base);
    let copies: Vec<Relation> = ["a", "b", "c"]
        .iter()
        .map(|b| reg.mark_copy(&rel, b, "visit_nbr", "item_nbr").unwrap().0)
        .collect();
    let refs: Vec<&Relation> = copies.iter().collect();
    group.throughput(Throughput::Elements(rel.len() as u64));
    group.bench_function("3way_6000", |b| {
        b.iter(|| collusion::majority_merge(&refs, 7).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_hash_join, bench_group_count, bench_apriori, bench_majority_merge);
criterion_main!(benches);
