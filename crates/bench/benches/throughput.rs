//! PERF benches: throughput characterization of the pipeline stages
//! (not a paper artifact — the paper reports no timing — but required
//! for a production-quality release).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use catmark_attacks::Attack;
use catmark_core::{MarkSession, Watermark, WatermarkSpec};
use catmark_crypto::{HashAlgorithm, KeyedHash};
use catmark_datagen::{ItemScanConfig, SalesGenerator};

fn bench_keyed_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("keyed_hash");
    let payload = 123_456_789u64.to_be_bytes();
    for algo in HashAlgorithm::ALL {
        let h = KeyedHash::new(algo, "bench-key");
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(algo), &h, |b, h| {
            b.iter(|| h.hash_u64(&[std::hint::black_box(&payload)]));
        });
    }
    group.finish();
}

fn bench_embed(c: &mut Criterion) {
    let mut group = c.benchmark_group("embed");
    for &n in &[1_000usize, 6_000, 20_000] {
        let gen = SalesGenerator::new(ItemScanConfig { tuples: n, ..Default::default() });
        let rel = gen.generate();
        let spec = WatermarkSpec::builder(gen.item_domain())
            .master_key("bench")
            .e(60)
            .wm_len(10)
            .expected_tuples(n)
            .build()
            .unwrap();
        let wm = Watermark::from_u64(0x2A5, 10);
        let session = MarkSession::builder(spec)
            .key_column("visit_nbr")
            .target_column("item_nbr")
            .bind(&rel)
            .unwrap();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &rel, |b, rel| {
            b.iter_batched(
                || rel.clone(),
                |mut data| session.embed(&mut data, &wm).unwrap(),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode");
    for &n in &[1_000usize, 6_000, 20_000] {
        let gen = SalesGenerator::new(ItemScanConfig { tuples: n, ..Default::default() });
        let mut rel = gen.generate();
        let spec = WatermarkSpec::builder(gen.item_domain())
            .master_key("bench")
            .e(60)
            .wm_len(10)
            .expected_tuples(n)
            .build()
            .unwrap();
        let wm = Watermark::from_u64(0x2A5, 10);
        let session = MarkSession::builder(spec)
            .key_column("visit_nbr")
            .target_column("item_nbr")
            .bind(&rel)
            .unwrap();
        session.embed(&mut rel, &wm).unwrap();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &rel, |b, rel| {
            b.iter(|| session.decode(rel).unwrap());
        });
    }
    group.finish();
}

fn bench_attacks(c: &mut Criterion) {
    let mut group = c.benchmark_group("attacks");
    let gen = SalesGenerator::new(ItemScanConfig { tuples: 6_000, ..Default::default() });
    let rel = gen.generate();
    let attacks = [
        Attack::HorizontalLoss { keep: 0.5, seed: 1 },
        Attack::RandomAlteration { attr: "item_nbr".into(), fraction: 0.3, seed: 2 },
        Attack::Shuffle { seed: 3 },
        Attack::SubsetAddition { fraction: 0.2, seed: 4 },
    ];
    for attack in attacks {
        group.throughput(Throughput::Elements(rel.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(attack.label()), &attack, |b, a| {
            b.iter(|| a.apply(&rel).unwrap());
        });
    }
    group.finish();
}

fn bench_freq_codec(c: &mut Criterion) {
    use catmark_core::freq::FreqCodec;
    let gen =
        SalesGenerator::new(ItemScanConfig { tuples: 6_000, items: 200, ..Default::default() });
    let rel = gen.generate();
    let domain = gen.item_domain();
    let codec =
        FreqCodec::new(HashAlgorithm::Sha256, catmark_crypto::SecretKey::from_u64(9), 40, 8)
            .unwrap();
    let wm = Watermark::from_u64(0b1011_0010, 8);
    let mut group = c.benchmark_group("freq_codec");
    group.throughput(Throughput::Elements(rel.len() as u64));
    group.bench_function("embed", |b| {
        b.iter_batched(
            || rel.clone(),
            |mut data| codec.embed(&mut data, "item_nbr", &domain, &wm).unwrap(),
            criterion::BatchSize::LargeInput,
        );
    });
    let mut marked = rel.clone();
    codec.embed(&mut marked, "item_nbr", &domain, &wm).unwrap();
    group.bench_function("decode", |b| {
        b.iter(|| codec.decode(&marked, "item_nbr", &domain).unwrap());
    });
    group.finish();
}

fn bench_stream_ingest(c: &mut Criterion) {
    let gen = SalesGenerator::new(ItemScanConfig { tuples: 6_000, ..Default::default() });
    let source = gen.generate();
    let spec = WatermarkSpec::builder(gen.item_domain())
        .master_key("bench-stream")
        .e(60)
        .wm_len(10)
        .expected_tuples(source.len())
        .build()
        .unwrap();
    let wm = Watermark::from_u64(0x2A5, 10);
    let marker = MarkSession::builder(spec)
        .key_column("visit_nbr")
        .target_column("item_nbr")
        .bind(&source)
        .unwrap()
        .stream(&wm)
        .unwrap();
    let mut group = c.benchmark_group("stream_ingest");
    group.throughput(Throughput::Elements(source.len() as u64));
    group.bench_function("6000_tuples", |b| {
        b.iter(|| {
            let mut rel = catmark_relation::Relation::new(source.schema().clone());
            for tuple in source.iter() {
                marker.ingest(&mut rel, tuple.values().to_vec()).unwrap();
            }
            rel.len()
        });
    });
    group.finish();
}

fn bench_remap_recovery(c: &mut Criterion) {
    use catmark_core::remap::{apply_inverse, recover_mapping_confident};
    let gen = SalesGenerator::new(ItemScanConfig {
        tuples: 20_000,
        items: 100,
        zipf_exponent: 1.2,
        ..Default::default()
    });
    let rel = gen.generate();
    let domain = gen.item_domain();
    let reference = catmark_relation::FrequencyHistogram::from_relation(&rel, 1, &domain).unwrap();
    let (suspect, _) = catmark_attacks::remap::bijective_remap(&rel, "item_nbr", 5).unwrap();
    let mut group = c.benchmark_group("remap_recovery");
    group.throughput(Throughput::Elements(rel.len() as u64));
    group.bench_function("recover_confident", |b| {
        b.iter(|| recover_mapping_confident(&reference, &suspect, "item_nbr").unwrap());
    });
    let recovery = recover_mapping_confident(&reference, &suspect, "item_nbr").unwrap();
    group.bench_function("apply_inverse", |b| {
        b.iter(|| apply_inverse(&suspect, "item_nbr", &recovery).unwrap());
    });
    group.finish();
}

fn bench_keyfile(c: &mut Criterion) {
    use catmark_core::keyfile::{from_key_file, to_key_file};
    let gen = SalesGenerator::new(ItemScanConfig { tuples: 100, ..Default::default() });
    let spec = WatermarkSpec::builder(gen.item_domain())
        .master_key("bench-keyfile")
        .e(60)
        .wm_len(10)
        .wm_data_len(100)
        .build()
        .unwrap();
    let text = to_key_file(&spec);
    let mut group = c.benchmark_group("keyfile");
    group.bench_function("serialize", |b| b.iter(|| to_key_file(&spec)));
    group.bench_function("parse", |b| b.iter(|| from_key_file(&text).unwrap()));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_keyed_hash, bench_embed, bench_decode, bench_attacks, bench_freq_codec,
        bench_stream_ingest, bench_remap_recovery, bench_keyfile
}
criterion_main!(benches);
