//! `catmark-bench` — the evaluation harness.
//!
//! Regenerates every figure and in-text numeric result of the paper's
//! Section 5 / Section 4.4 on synthetic `ItemScan` data (see the
//! substitution table in DESIGN.md):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig4` | Figure 4 — mark alteration vs. attack size, e ∈ {35, 65} |
//! | `fig5` | Figure 5 — mark alteration vs. e, attack ∈ {20%, 55%} |
//! | `fig6` | Figure 6 — surface over (attack, e), plus the analytic model |
//! | `fig7` | Figure 7 — mark alteration vs. data loss |
//! | `headline` | Abstract claim: 80% loss ⇒ ~25% alteration |
//! | `analysis_tables` | §4.4 in-text numbers (false positives, P(r,a), min-e, residual) |
//! | `ablations` | Design-choice studies: erasure policy, ECC layout, map variant |
//!
//! All experiments follow the paper's protocol: a 10-bit watermark and
//! "an averaging process with 15 passes (each seeded with a different
//! key), aimed at smoothing out data-dependent biases and
//! singularities". Output is whitespace-separated columns suitable for
//! gnuplot, with `#` comment headers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod figures;
pub mod report;

pub use experiment::{ExperimentConfig, ExperimentResult};
