//! The key-averaged experiment runner.
//!
//! One *pass* = embed with a fresh key → attack → blind decode →
//! measure the fraction of watermark bits altered. The paper averages
//! 15 such passes per data point; passes are independent, so the
//! runner fans them out over scoped threads.

use catmark_attacks::Attack;
use catmark_core::decode::ErasurePolicy;
use catmark_core::{MarkSession, Watermark, WatermarkSpec};
use catmark_datagen::{ItemScanConfig, SalesGenerator};
use catmark_relation::Relation;
use std::sync::Mutex;

/// Shared experiment parameters (the paper's setup by default).
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Relation size N (paper figures operate around N = 6000).
    pub tuples: usize,
    /// Distinct item count nA.
    pub items: usize,
    /// Zipf exponent of the item popularity.
    pub zipf: f64,
    /// Watermark length (10 in every paper experiment).
    pub wm_len: usize,
    /// Averaging passes (15 in the paper).
    pub passes: usize,
    /// Data-generation seed.
    pub data_seed: u64,
    /// Master secret; per-pass keys derive from it.
    pub master: String,
    /// Decoder erasure policy.
    pub erasure: ErasurePolicy,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            tuples: 6_000,
            items: 1_000,
            zipf: 1.0,
            wm_len: 10,
            passes: 15,
            data_seed: 0xCAFE,
            master: "catmark-experiments".to_owned(),
            erasure: ErasurePolicy::RandomFill,
        }
    }
}

impl ExperimentConfig {
    /// Generate the base (unwatermarked) relation.
    #[must_use]
    pub fn base_relation(&self) -> (Relation, catmark_relation::CategoricalDomain) {
        let gen = SalesGenerator::new(ItemScanConfig {
            tuples: self.tuples,
            items: self.items,
            zipf_exponent: self.zipf,
            with_city: false,
            seed: self.data_seed,
        });
        (gen.generate(), gen.item_domain())
    }

    /// The spec for pass `pass` at modulus `e`.
    #[must_use]
    pub fn spec_for_pass(
        &self,
        domain: catmark_relation::CategoricalDomain,
        e: u64,
        pass: usize,
    ) -> WatermarkSpec {
        WatermarkSpec::builder(domain)
            .master_key(format!("{}::pass-{pass}", self.master).as_str())
            .e(e)
            .wm_len(self.wm_len)
            .expected_tuples(self.tuples)
            .erasure(self.erasure)
            .build()
            .expect("experiment parameters are valid")
    }

    /// The watermark embedded in pass `pass` (key-derived, as an owner
    /// identity mark would be).
    #[must_use]
    pub fn watermark_for_pass(&self, pass: usize) -> Watermark {
        let key = catmark_crypto::SecretKey::from_bytes(self.master.as_bytes().to_vec());
        Watermark::from_identity(&format!("pass-{pass}"), &key, self.wm_len)
    }
}

/// Result of a key-averaged experiment at one parameter point.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// Mean mark alteration fraction over passes (the paper's y-axis).
    pub mean_alteration: f64,
    /// Per-pass alteration fractions.
    pub per_pass: Vec<f64>,
    /// Mean fraction of tuples altered by *embedding* (data
    /// distortion cost).
    pub mean_embed_rate: f64,
}

impl ExperimentResult {
    /// 95% Wilson confidence interval on the alteration fraction,
    /// treating every decoded watermark bit across all passes as one
    /// Bernoulli trial (`wm_len` bits per pass).
    #[must_use]
    pub fn ci95(&self, wm_len: usize) -> (f64, f64) {
        let trials = (self.per_pass.len() * wm_len) as u64;
        let successes: u64 = self.per_pass.iter().map(|f| (f * wm_len as f64).round() as u64).sum();
        catmark_analysis::prob::wilson_interval(successes, trials, 0.05)
    }

    /// Sample standard deviation across passes.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        let n = self.per_pass.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean_alteration;
        let var = self.per_pass.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        var.sqrt()
    }
}

/// Run the full embed → attack → decode pipeline for every pass and
/// average the watermark alteration. `attack(pass)` builds that pass's
/// attack (seeds should derive from `pass` for reproducibility); pass
/// `None`-equivalent no-op by returning a `Shuffle` with the data
/// unchanged semantics is unnecessary — use [`Attack::Shuffle`] or
/// run with `keep = 1.0`.
///
/// # Panics
///
/// Panics when embedding fails (experiment parameters are validated
/// up front, so a failure indicates a bug, not bad user input).
#[must_use]
pub fn run(
    config: &ExperimentConfig,
    e: u64,
    attack: &(dyn Fn(usize) -> Vec<Attack> + Sync),
) -> ExperimentResult {
    let (base, domain) = config.base_relation();
    let results = Mutex::new(vec![(0.0f64, 0.0f64); config.passes]);
    std::thread::scope(|scope| {
        for pass in 0..config.passes {
            let base = &base;
            let domain = &domain;
            let results = &results;
            scope.spawn(move || {
                let spec = config.spec_for_pass(domain.clone(), e, pass);
                let wm = config.watermark_for_pass(pass);
                let mut marked = base.clone();
                let session = MarkSession::builder(spec)
                    .key_column("visit_nbr")
                    .target_column("item_nbr")
                    .bind(&marked)
                    .expect("experiment schema binds");
                let report =
                    session.embed(&mut marked, &wm).expect("embedding validated parameters");
                let mut suspect = marked;
                for step in attack(pass) {
                    suspect = step.apply(&suspect).expect("attack applies to marked data");
                }
                let decoded =
                    session.decode(&suspect).expect("decoding never fails on suspect data");
                let alteration = wm.alteration_fraction(&decoded.watermark);
                results.lock().expect("no poisoned pass")[pass] =
                    (alteration, report.alteration_rate());
            });
        }
    });
    let results = results.into_inner().expect("no poisoned pass");
    let per_pass: Vec<f64> = results.iter().map(|r| r.0).collect();
    let mean_alteration = per_pass.iter().sum::<f64>() / per_pass.len().max(1) as f64;
    let mean_embed_rate = results.iter().map(|r| r.1).sum::<f64>() / results.len().max(1) as f64;
    ExperimentResult { mean_alteration, per_pass, mean_embed_rate }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ExperimentConfig {
        ExperimentConfig { tuples: 2_000, passes: 4, ..Default::default() }
    }

    #[test]
    fn no_attack_decodes_cleanly_with_modest_e() {
        let cfg = ExperimentConfig { erasure: ErasurePolicy::Abstain, ..small() };
        let result = run(&cfg, 10, &|_| vec![]);
        assert!(
            result.mean_alteration < 0.03,
            "clean decode should be near-perfect, got {}",
            result.mean_alteration
        );
        assert!((result.mean_embed_rate - 0.1).abs() < 0.05);
    }

    #[test]
    fn heavier_attacks_hurt_more() {
        let cfg = small();
        let light = run(&cfg, 30, &|pass| {
            vec![Attack::RandomAlteration {
                attr: "item_nbr".into(),
                fraction: 0.1,
                seed: pass as u64,
            }]
        });
        let heavy = run(&cfg, 30, &|pass| {
            vec![Attack::RandomAlteration {
                attr: "item_nbr".into(),
                fraction: 0.8,
                seed: pass as u64,
            }]
        });
        assert!(
            heavy.mean_alteration >= light.mean_alteration,
            "heavy {} < light {}",
            heavy.mean_alteration,
            light.mean_alteration
        );
    }

    #[test]
    fn results_are_reproducible() {
        let cfg = small();
        let attack = |pass: usize| vec![Attack::HorizontalLoss { keep: 0.5, seed: pass as u64 }];
        let a = run(&cfg, 30, &attack);
        let b = run(&cfg, 30, &attack);
        assert_eq!(a, b);
    }

    #[test]
    fn per_pass_statistics() {
        let cfg = small();
        let result = run(&cfg, 30, &|pass| {
            vec![Attack::RandomAlteration {
                attr: "item_nbr".into(),
                fraction: 0.5,
                seed: pass as u64,
            }]
        });
        assert_eq!(result.per_pass.len(), cfg.passes);
        assert!(result.std_dev() >= 0.0);
    }

    #[test]
    fn distinct_passes_use_distinct_keys_and_marks() {
        let cfg = small();
        assert_ne!(cfg.watermark_for_pass(0), cfg.watermark_for_pass(1));
        let (_, domain) = cfg.base_relation();
        let s0 = cfg.spec_for_pass(domain.clone(), 60, 0);
        let s1 = cfg.spec_for_pass(domain, 60, 1);
        assert_ne!(s0.k1, s1.k1);
    }
}
