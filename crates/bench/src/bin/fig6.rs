//! EXP-F6 — Figure 6: "The watermark alteration surface with varying e
//! and attack size a. Note the lower-left to upper-right tilt."
//!
//! Prints the empirical surface (splot-ready triplets) followed by the
//! analytical model surface from `catmark-analysis` for comparison.
//!
//! Usage: `fig6 [--quick]`

use catmark_analysis::surface::analytic_surface;
use catmark_bench::figures::fig6;
use catmark_bench::report::Table;
use catmark_bench::ExperimentConfig;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        ExperimentConfig { tuples: 6_000, passes: 3, ..Default::default() }
    } else {
        ExperimentConfig { passes: 7, ..Default::default() }
    };
    let attack_sizes: Vec<u64> = (0..=80).step_by(10).collect();
    let e_values: Vec<u64> =
        if quick { vec![20, 60, 100, 140, 180] } else { (10..=200).step_by(10).collect() };
    let rows = fig6(&config, &attack_sizes, &e_values);

    let mut table = Table::new();
    table
        .comment("Figure 6 reproduction: mark loss (%) surface over (attack %, e)")
        .comment(format!("N={} |wm|={} passes={}", config.tuples, config.wm_len, config.passes))
        .columns(&["attack_pct", "e", "mark_loss_pct"]);
    for r in &rows {
        table.row_f64(&[r.attack_pct, r.e as f64, r.mark_loss_pct], 2);
    }
    print!("{}", table.render());

    // The analytic counterpart (flip probability 1/2: a random
    // replacement value carries a random LSB).
    let attack_grid: Vec<f64> = attack_sizes.iter().map(|&a| a as f64 / 100.0).collect();
    let cells =
        analytic_surface(config.tuples as u64, config.wm_len as u64, 0.5, &attack_grid, &e_values);
    let mut model = Table::new();
    model.comment("analytic model surface (catmark-analysis::surface)").columns(&[
        "attack_pct",
        "e",
        "predicted_mark_loss_pct",
    ]);
    for c in &cells {
        model.row_f64(&[c.attack_fraction * 100.0, c.e as f64, c.mark_alteration * 100.0], 2);
    }
    println!();
    print!("{}", model.render());
}
