//! Semantic-consistency trade-off (Section 6 future work, implemented).
//!
//! Plants strong dept ⇒ aisle association rules in a sales-style
//! relation, mines them, then embeds the same watermark twice per `e`:
//! once unconstrained, once under an [`AssociationRulePreserved`] +
//! [`ClassifierAccuracyPreserved`] guard. Reports, for each, the rule
//! survival rate, the frozen classifier's accuracy, and whether the
//! mark still detects — quantifying the paper's claim that semantic
//! awareness costs little resilience while preserving downstream
//! value.
//!
//! Usage: `mining_tradeoff [--quick]`

use catmark_bench::report::Table;
use catmark_core::quality::QualityGuard;
use catmark_core::{MarkSession, Watermark, WatermarkSpec};
use catmark_datagen::{BasketConfig, BasketGenerator};
use catmark_mining::apriori::{mine, AprioriConfig};
use catmark_mining::classify::{accuracy, NaiveBayes, OneR};
use catmark_mining::constraints::{AssociationRulePreserved, ClassifierAccuracyPreserved};
use catmark_mining::item::Transactions;
use catmark_mining::rules::RuleSet;
use catmark_relation::Relation;

struct Outcome {
    altered: usize,
    vetoes: usize,
    rule_survival: f64,
    clf_accuracy: f64,
    mark_fp: f64,
}

fn embed_and_measure(
    original: &Relation,
    rules: &RuleSet,
    spec: &WatermarkSpec,
    wm: &Watermark,
    constrained: bool,
) -> Outcome {
    let mut rel = original.clone();
    let mut constraints: Vec<Box<dyn catmark_core::quality::QualityConstraint>> = Vec::new();
    if constrained {
        let clf: NaiveBayes =
            NaiveBayes::train(original, "aisle", &["dept"]).expect("training data valid");
        let baseline_acc = accuracy(&clf, original);
        constraints.push(Box::new(AssociationRulePreserved::new(original, rules, 0.08)));
        constraints.push(Box::new(ClassifierAccuracyPreserved::new(
            original,
            Box::new(clf),
            baseline_acc - 0.04,
        )));
    }
    let mut guard = QualityGuard::new(constraints);
    let session = MarkSession::builder(spec.clone())
        .key_column("sku")
        .target_column("aisle")
        .bind(original)
        .expect("basket schema binds");
    let report = session.embed_guarded(&mut rel, wm, &mut guard).expect("embedding succeeds");

    let tx = Transactions::from_relation(&rel, &["dept", "aisle"]).expect("attrs exist");
    let drift = rules.drift_against(&tx);
    // Accuracy of a *freshly trained* model on the original, evaluated
    // on the watermarked copy — the buyer's view.
    let frozen = OneR::train(original, "aisle", &["dept"]).expect("training data valid");
    let acc = accuracy(&frozen, &rel);
    let verdict = session.detect(&rel, wm).expect("decode succeeds");
    Outcome {
        altered: report.altered,
        vetoes: guard.vetoes(),
        rule_survival: drift.survival_rate(),
        clf_accuracy: acc,
        mark_fp: verdict.detection.false_positive_probability,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n: usize = if quick { 4_000 } else { 12_000 };

    let gen =
        BasketGenerator::new(BasketConfig { tuples: n, depts: 16, noise_rate: 0.05, seed: 0xB00C });
    let original = gen.generate();
    let tx = Transactions::from_relation(&original, &["dept", "aisle"]).expect("attrs exist");
    let freq = mine(&tx, &AprioriConfig { min_support: 0.01, max_len: 2 });
    let rules = RuleSet::derive(&freq, 0.85);
    println!("# mined {} rules at min_support=1% min_confidence=85%", rules.len());

    let wm = Watermark::from_u64(0b1010110010, 10);
    let mut t = Table::new();
    t.comment("semantic-consistency trade-off: unconstrained vs rule+classifier guarded")
        .comment(format!("N={n}, 95% dept=>aisle association, |wm|=10"))
        .columns(&[
            "e",
            "altered_u",
            "rules_u_pct",
            "acc_u_pct",
            "fp_u",
            "altered_g",
            "vetoes_g",
            "rules_g_pct",
            "acc_g_pct",
            "fp_g",
        ]);
    for e in [10u64, 20, 40, 80] {
        let spec = WatermarkSpec::builder(gen.aisle_domain())
            .master_key("mining-tradeoff")
            .e(e)
            .wm_len(10)
            .expected_tuples(original.len())
            .build()
            .expect("static spec is valid");
        let u = embed_and_measure(&original, &rules, &spec, &wm, false);
        let g = embed_and_measure(&original, &rules, &spec, &wm, true);
        t.row(&[
            e.to_string(),
            u.altered.to_string(),
            format!("{:.1}", u.rule_survival * 100.0),
            format!("{:.1}", u.clf_accuracy * 100.0),
            format!("{:.1e}", u.mark_fp),
            g.altered.to_string(),
            g.vetoes.to_string(),
            format!("{:.1}", g.rule_survival * 100.0),
            format!("{:.1}", g.clf_accuracy * 100.0),
            format!("{:.1e}", g.mark_fp),
        ]);
    }
    print!("{}", t.render());
    println!("#");
    println!("# reading: the guard (columns *_g) caps classifier-accuracy damage at 4");
    println!("# points and rule-confidence drops at 8 points, at the cost of vetoed");
    println!("# alterations. At large e the guard is nearly free (few alterations are");
    println!("# requested); at small e it trades detection confidence (higher fp_g) for");
    println!("# semantics — the quantified form of the paper's Section 6 conjecture that");
    println!("# semantic awareness buys bandwidth only when constraints have slack.");
}
