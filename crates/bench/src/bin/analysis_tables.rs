//! EXP-A1..A4 — the in-text numeric results of Section 4.4,
//! recomputed from the formulas in `catmark-analysis`.

use catmark_analysis::bounds::{
    alteration_fraction_for_e, false_positive_exact_match, min_e_for_vulnerability,
    residual_alteration,
};
use catmark_analysis::vulnerability::{attack_success_clt, attack_success_exact};
use catmark_bench::report::Table;

fn main() {
    let mut t = Table::new();
    t.comment("Section 4.4 in-text results, recomputed").columns(&[
        "experiment",
        "paper_value",
        "computed",
        "note",
    ]);

    // EXP-A1: false positives.
    t.row(&[
        "fp_10bit_mark".into(),
        "9.77e-4".into(),
        format!("{:.3e}", false_positive_exact_match(10)),
        "(1/2)^|wm|".into(),
    ]);
    t.row(&[
        "fp_full_bandwidth".into(),
        "7.8e-31".into(),
        format!("{:.3e}", false_positive_exact_match(100)),
        "N=6000_e=60_(1/2)^100".into(),
    ]);

    // EXP-A2: P(15, 1200), p = 0.7, e = 60.
    t.row(&[
        "P(15,1200)_clt".into(),
        "31.6%".into(),
        format!("{:.1}%", attack_success_clt(15, 1200, 60, 0.7) * 100.0),
        "eq(2)_normal_lookup".into(),
    ]);
    t.row(&[
        "P(15,1200)_exact".into(),
        "-".into(),
        format!("{:.1}%", attack_success_exact(15, 1200, 60, 0.7) * 100.0),
        "eq(1)_binomial_tail".into(),
    ]);

    // EXP-A3: minimum e for delta = 10%, a = 600.
    let e = min_e_for_vulnerability(15, 600, 0.7, 0.10).expect("bound exists");
    t.row(&[
        "min_e(delta=10%,a=600)".into(),
        "23 (~4.3% altered)".into(),
        format!("{e} (~{:.1}% altered)", alteration_fraction_for_e(e) * 100.0),
        "see_EXPERIMENTS.md_discrepancy_note".into(),
    ]);

    // EXP-A4: residual watermark alteration with t_ecc = 5%.
    t.row(&[
        "residual_alteration".into(),
        "1.0%".into(),
        format!("{:.1}%", residual_alteration(15, 100, 0.05, 10, 100) * 100.0),
        "r=15_N/e=100_tecc=5%".into(),
    ]);

    print!("{}", t.render());
}
