//! Plan-on vs plan-off throughput of the embed + blind-decode round
//! trip, proving the `MarkPlan` layer — and the `MarkSession` API on
//! top of it — end to end.
//!
//! Three paths over the same workload:
//!
//! * **baseline** re-implements the seed code path faithfully — per
//!   row it clones the key, materializes its canonical bytes per hash
//!   call, evaluates `H(·, k1)` once for the fitness test and *again*
//!   for the value base, and re-scans every row at decode time;
//! * **plan-on** drives embed and decode from one
//!   [`catmark_core::plan::MarkPlan`] through a
//!   [`catmark_core::MarkSession`]'s shared cache;
//! * **session-reuse** times the full court run (embed → blind decode
//!   → detect) twice: once constructing a fresh per-operator
//!   `Embedder`/`Decoder` for each step (the deprecated pre-session
//!   surface — every operator replans), and once on a single bound
//!   session, where all three steps share one cached plan.
//!
//! The run asserts the paths produce byte-identical marked relations
//! and decodes before timing anything, then writes
//! `BENCH_markplan.json` (machine-readable, one object per run) into
//! the working directory so the perf trajectory is tracked from PR to
//! PR.
//!
//! Usage: `cargo run --release -p catmark_bench --bin markplan
//! [tuples]` (default 120 000).

use std::time::Instant;

use catmark_core::ecc::{ErrorCorrectingCode, MajorityVotingEcc};
use catmark_core::{detect, MarkSession, Watermark, WatermarkSpec};
use catmark_datagen::{ItemScanConfig, SalesGenerator};
use catmark_relation::Relation;

const E: u64 = 60;
const WM_LEN: usize = 10;
const ITERS: usize = 5;

fn main() {
    let tuples: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("tuples must be an integer"))
        .unwrap_or(120_000);
    let gen = SalesGenerator::new(ItemScanConfig { tuples, ..Default::default() });
    let rel = gen.generate();
    let spec = WatermarkSpec::builder(gen.item_domain())
        .master_key("markplan-bench")
        .e(E)
        .wm_len(WM_LEN)
        .expected_tuples(tuples)
        .build()
        .expect("bench parameters are valid");
    let wm = Watermark::from_u64(0b10_1100_1110, WM_LEN);
    let key_idx = 0;
    let attr_idx = 1;
    let session = MarkSession::builder(spec.clone())
        .key_column("visit_nbr")
        .target_column("item_nbr")
        .bind(&rel)
        .expect("bench schema binds");

    // Correctness gate: the planned/session path must reproduce the
    // seed path byte for byte before any timing is worth reporting.
    let mut seed_marked = rel.clone();
    baseline_embed(&spec, &mut seed_marked, key_idx, attr_idx, &wm);
    let seed_decoded = baseline_decode(&spec, &seed_marked, key_idx, attr_idx);
    let mut plan_marked = rel.clone();
    session.embed(&mut plan_marked, &wm).expect("embedding succeeds");
    let plan_decoded = session.decode(&plan_marked).expect("decoding succeeds");
    let byte_identical = seed_marked.len() == plan_marked.len()
        && seed_marked.iter().zip(plan_marked.iter()).all(|(a, b)| a == b)
        && seed_decoded == plan_decoded.watermark
        && plan_decoded.watermark == wm;
    assert!(byte_identical, "planned path diverged from the seed path");

    // Timed round trips (embed a fresh copy + blind decode), best of
    // ITERS to damp scheduler noise.
    let mut baseline_best = f64::MAX;
    for _ in 0..ITERS {
        let mut marked = rel.clone();
        let start = Instant::now();
        baseline_embed(&spec, &mut marked, key_idx, attr_idx, &wm);
        let decoded = baseline_decode(&spec, &marked, key_idx, attr_idx);
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(decoded, wm);
        baseline_best = baseline_best.min(elapsed);
    }

    let mut planned_best = f64::MAX;
    let mut stage_plan = f64::MAX;
    let mut stage_embed = f64::MAX;
    let mut stage_decode = f64::MAX;
    for _ in 0..ITERS {
        // A fresh session per iteration: nothing pre-planned.
        let session = MarkSession::builder(spec.clone())
            .key_column("visit_nbr")
            .target_column("item_nbr")
            .bind(&rel)
            .expect("bench schema binds");
        let mut marked = rel.clone();
        let start = Instant::now();
        let plan = session.plan(&marked).expect("planning succeeds");
        let t_plan = start.elapsed().as_secs_f64() * 1e3;
        session.embed_planned(&mut marked, &wm, &plan).expect("embedding succeeds");
        let t_embed = start.elapsed().as_secs_f64() * 1e3;
        let decoded = session.decode(&marked).expect("decoding succeeds");
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(decoded.watermark, wm);
        planned_best = planned_best.min(elapsed);
        stage_plan = stage_plan.min(t_plan);
        stage_embed = stage_embed.min(t_embed - t_plan);
        stage_decode = stage_decode.min(elapsed - t_embed);
    }

    // Session-reuse scenario: the full court run (embed → blind decode
    // → detect), per-operator construction vs one session handle.
    let mut per_operator_best = f64::MAX;
    for _ in 0..ITERS {
        let mut marked = rel.clone();
        let start = Instant::now();
        per_operator_court_run(&spec, &mut marked, &wm);
        per_operator_best = per_operator_best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    let mut session_best = f64::MAX;
    for _ in 0..ITERS {
        let session = MarkSession::builder(spec.clone())
            .key_column("visit_nbr")
            .target_column("item_nbr")
            .bind(&rel)
            .expect("bench schema binds");
        let mut marked = rel.clone();
        let start = Instant::now();
        session.embed(&mut marked, &wm).expect("embedding succeeds");
        let verdict = session.detect(&marked, &wm).expect("detection succeeds");
        assert_eq!(verdict.detection.matched_bits, WM_LEN);
        session_best = session_best.min(start.elapsed().as_secs_f64() * 1e3);
    }

    let speedup = baseline_best / planned_best;
    let session_speedup = per_operator_best / session_best;
    let throughput = tuples as f64 / (planned_best / 1e3);
    println!("markplan round trip over {tuples} tuples (e = {E}, best of {ITERS}):");
    println!("  plan-off (seed path): {baseline_best:9.2} ms");
    println!("  plan-on  (session):   {planned_best:9.2} ms   {throughput:.0} tuples/s");
    println!(
        "    stages: plan {stage_plan:.2} ms, embed {stage_embed:.2} ms, decode {stage_decode:.2} ms"
    );
    println!("  speedup:              {speedup:9.2}x");
    println!("court run (embed + decode + detect):");
    println!("  per-operator structs: {per_operator_best:9.2} ms   (every operator replans)");
    println!("  one MarkSession:      {session_best:9.2} ms   (plan shared across operators)");
    println!("  session speedup:      {session_speedup:9.2}x");
    println!("  byte-identical:       {byte_identical}");

    let json = format!(
        "{{\n  \"bench\": \"markplan_round_trip\",\n  \"tuples\": {tuples},\n  \"e\": {E},\n  \"wm_len\": {WM_LEN},\n  \"iterations\": {ITERS},\n  \"baseline_round_trip_ms\": {baseline_best:.3},\n  \"plan_round_trip_ms\": {planned_best:.3},\n  \"plan_tuples_per_second\": {throughput:.0},\n  \"speedup\": {speedup:.3},\n  \"per_operator_court_run_ms\": {per_operator_best:.3},\n  \"session_court_run_ms\": {session_best:.3},\n  \"session_speedup\": {session_speedup:.3},\n  \"byte_identical\": {byte_identical}\n}}\n"
    );
    std::fs::write("BENCH_markplan.json", &json).expect("can write BENCH_markplan.json");
    println!("wrote BENCH_markplan.json");
}

/// The pre-session public surface: a fresh operator struct per step,
/// stringly-typed columns, no shared cache — embed and decode each
/// run their own keyed-hash pass.
#[allow(deprecated)]
fn per_operator_court_run(spec: &WatermarkSpec, rel: &mut Relation, wm: &Watermark) {
    use catmark_core::{Decoder, Embedder};
    Embedder::new(spec).embed(rel, "visit_nbr", "item_nbr", wm).expect("embedding succeeds");
    let decoded =
        Decoder::new(spec).decode(rel, "visit_nbr", "item_nbr").expect("decoding succeeds");
    let verdict = detect(&decoded.watermark, wm);
    assert_eq!(verdict.matched_bits, wm.len());
}

/// The seed embedding loop, reproduced verbatim in structure: one
/// `H(key, k1)` for the fitness test, a second for the value base, a
/// key clone per row, and a canonical-bytes allocation per hash call.
fn baseline_embed(
    spec: &WatermarkSpec,
    rel: &mut Relation,
    key_idx: usize,
    attr_idx: usize,
    wm: &Watermark,
) {
    let keyed1 = spec.keyed1();
    let keyed2 = spec.keyed2();
    let wm_data = MajorityVotingEcc.encode(wm, spec.wm_data_len);
    let n = spec.domain.len() as u64;
    for row in 0..rel.len() {
        let key = rel.tuple(row).expect("row in range").get(key_idx).clone();
        if !keyed1.hash_u64(&[&key.canonical_bytes()]).is_multiple_of(spec.e) {
            continue;
        }
        let idx = (keyed2.hash_u64(&[&key.canonical_bytes()]) % spec.wm_data_len as u64) as usize;
        let bit = wm_data[idx];
        let base = (keyed1.hash_u64(&[&key.canonical_bytes()]) >> 32) % n;
        let t = catmark_core::bits::force_lsb_in_domain(base, bit, n);
        let new_value = spec.domain.value_at(t as usize).clone();
        let old_value = rel.tuple(row).expect("row in range").get(attr_idx).clone();
        if old_value == new_value {
            continue;
        }
        rel.update_value(row, attr_idx, new_value).expect("value in domain");
    }
}

/// The seed decoding loop: full re-scan, rehashing every key.
fn baseline_decode(
    spec: &WatermarkSpec,
    rel: &Relation,
    key_idx: usize,
    attr_idx: usize,
) -> Watermark {
    let keyed1 = spec.keyed1();
    let keyed2 = spec.keyed2();
    let len = spec.wm_data_len;
    let mut ones = vec![0u32; len];
    let mut zeros = vec![0u32; len];
    for tuple in rel.iter() {
        let key = tuple.get(key_idx);
        if !keyed1.hash_u64(&[&key.canonical_bytes()]).is_multiple_of(spec.e) {
            continue;
        }
        let Ok(t) = spec.domain.index_of(tuple.get(attr_idx)) else {
            continue;
        };
        let idx = (keyed2.hash_u64(&[&key.canonical_bytes()]) % len as u64) as usize;
        if t & 1 == 1 {
            ones[idx] += 1;
        } else {
            zeros[idx] += 1;
        }
    }
    let wm_data: Vec<Option<bool>> = (0..len)
        .map(|i| match (ones[i], zeros[i]) {
            (0, 0) => None,
            (o, z) => Some(o > z),
        })
        .collect();
    let mut tie_break = |_: usize| false;
    MajorityVotingEcc.decode(&wm_data, spec.wm_len, &mut tie_break)
}
