//! Plan-on vs plan-off throughput of the embed + blind-decode round
//! trip, proving the `MarkPlan` layer, the `MarkSession` API, and the
//! columnar storage engine end to end.
//!
//! Four scenarios over the same workload:
//!
//! * **baseline** re-implements the seed code path faithfully — per
//!   row it materializes the key, builds its canonical bytes per hash
//!   call, evaluates `H(·, k1)` once for the fitness test and *again*
//!   for the value base, and re-scans every row at decode time;
//! * **plan-on** drives embed and decode from one
//!   [`catmark_core::plan::MarkPlan`] through a
//!   [`catmark_core::MarkSession`]'s shared cache, on columnar
//!   storage;
//! * **session-reuse** times the full court run (embed → blind decode
//!   → detect) twice: once with a fresh session per step (every
//!   operator replans — the pre-session surface), once on a single
//!   bound session sharing one cached plan;
//! * **columnar** isolates the storage engine: the planned round trip
//!   re-run over an emulated row store (per-row `Value`
//!   materialization + generic streaming hashing, the pre-columnar
//!   cost profile) against the columnar flat-slice scan, plus
//!   `Relation::clone` cost and resident bytes per tuple for both
//!   layouts;
//! * **select** compares the historical row-tuple `ops::select` (a
//!   materialized `Tuple` plus an interpreted `Predicate::eval` with
//!   a linear IN-list scan per row) against the compiled query
//!   engine (dictionary-code truth tables, sorted IN lookup,
//!   vectorized masks, gather output);
//! * **join** compares the historical `Value`-keyed, tuple-at-a-time
//!   hash join against the code-space build/probe with column-copy
//!   output assembly;
//! * **out_of_core** streams the embed + blind-decode round trip over
//!   a [`catmark_relation::SegmentedRelation`] — the relation split
//!   into 16 spilled segments behind a file-backed
//!   [`catmark_relation::spill::FileStore`] with a resident budget of
//!   **1/4 of the columnar footprint** — and asserts the enforced
//!   resident-bytes ceiling plus byte-identity against the in-memory
//!   path, via the explicit *sequential* drivers;
//! * **pipeline** re-runs the out-of-core round trip through the
//!   two-stage pipelined drivers (a worker thread plans segment
//!   `i + 1` from an off-pager clone while the main thread
//!   embeds/serializes segment `i`) and asserts byte-identity, the
//!   unchanged pager ceiling, the one-in-flight-clone bound, and
//!   that the overlap does not regress the sequential streaming
//!   path;
//! * **hash** measures the keyed two-block fast path's four-lane
//!   multibuffer throughput per SHA-256 backend (software golden
//!   reference vs the SHA-NI intrinsics path where the CPU has it),
//!   asserting the hardware path's ≥1.5x floor when present;
//! * **plan_threads** times `MarkPlan::build_with_threads` across
//!   thread counts on the same relation, pinning byte-identity of
//!   the threaded plans against the sequential build;
//! * **guarded_embed** compares a Section 4.1 guarded embedding
//!   (count-query preservation + allow-list + budget) driven through
//!   the historical row-tuple path — owned `Value` alterations
//!   hashed against `HashSet<Value>` query sets per proposal —
//!   against the code-bound guard, whose goodness loop runs entirely
//!   on domain-code table lookups. The run enforces the ≥2x target
//!   on this scenario;
//! * **fingerprint_batch** registers 1000 recipients on one
//!   fingerprint session and traces a leaked copy on a warm service,
//!   batched (`trace`: four recipient keys per tuple scan, the whole
//!   recipient set cached as one `MultiPlanCache` entry) against the
//!   per-recipient reference (`trace_sequential`: one `PlanCache`
//!   probe per recipient, which at 1000 recipients thrashes the
//!   64-entry cache and replans every buyer on every call). The run
//!   gates identical rankings first and enforces a ≥2x floor;
//! * **fingerprint_delta** extracts 1000 recipients' fingerprinted
//!   copies as [`catmark_relation::MarkDelta`] patch sets against the
//!   shared base (one `MultiKeyPlan` scan, zero base clones) instead
//!   of materializing full copies. The run gates
//!   `apply_delta`-rebuilt copies byte-identical to the independent
//!   embed-on-a-clone reference for sampled recipients, then records
//!   bytes-per-recipient, recipients/s, and the delta-vs-copy bytes
//!   ratio with an ≥8x reduction floor. The extraction pass itself
//!   must also stay within 1.2x of the full-copy materialization
//!   time, pinning the batch-shared domain-table fast path;
//! * **churn** seals the marked relation into the content-addressed
//!   versioned store ([`catmark_relation::ContentStore`] +
//!   [`catmark_relation::VersionLog`]), then per round applies 10%
//!   random-row updates confined to a rotating window of ~10% of the
//!   segments, commits the version, and re-marks it both ways: the
//!   full segmented re-pass over a twin reopened from the committed
//!   manifest against `embed_incremental`/`decode_incremental`, which
//!   diff manifests, re-embed only dirty segments, and fold memoized
//!   [`catmark_core::VoteCache`] tallies for clean blobs. The run
//!   gates byte-identity before timing, enforces the ≥5x incremental
//!   floor, and asserts versions share unchanged blobs
//!   (`dedup_hits > 0`, unique blobs < referenced blobs).
//!
//! The run asserts the paths produce byte-identical marked relations
//! and decodes before timing anything, then writes
//! `BENCH_markplan.json` (machine-readable, one object per run) into
//! the working directory so the perf trajectory is tracked from PR to
//! PR.
//!
//! Usage: `cargo run --release -p catmark_bench --bin markplan
//! [tuples]` (default 120 000).

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use catmark_core::ecc::{ErrorCorrectingCode, MajorityVotingEcc};
use catmark_core::fitness::FitnessSelector;
use catmark_core::quality::{
    AllowedReplacements, Alteration, AlterationBudget, QualityConstraint, QualityGuard,
};
use catmark_core::query_preserve::{CountQuery, CountQueryPreservation, Tolerance, ValueSet};
use catmark_core::{
    detect, verify_evidence, MarkPlan, MarkSession, VoteCache, Watermark, WatermarkSpec,
};
use catmark_crypto::Sha256Backend;
use catmark_datagen::{ItemScanConfig, SalesGenerator};
use catmark_relation::spill::FileStore;
use catmark_relation::{
    join, ops, CategoricalDomain, ContentStore, Predicate, Relation, SegmentedRelation, Tuple,
    Value, VersionLog,
};

const E: u64 = 60;
/// The guarded scenario uses a denser mark (more fit tuples → more
/// guard proposals) so the goodness loop dominates the measurement.
const E_GUARD: u64 = 6;
const WM_LEN: usize = 10;
const ITERS: usize = 5;

fn main() {
    let tuples: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("tuples must be an integer"))
        .unwrap_or(120_000);
    let gen = SalesGenerator::new(ItemScanConfig { tuples, ..Default::default() });
    let rel = gen.generate();
    let spec = WatermarkSpec::builder(gen.item_domain())
        .master_key("markplan-bench")
        .e(E)
        .wm_len(WM_LEN)
        .expected_tuples(tuples)
        .build()
        .expect("bench parameters are valid");
    let wm = Watermark::from_u64(0b10_1100_1110, WM_LEN);
    let key_idx = 0;
    let attr_idx = 1;
    let session = bind(&spec, &rel);

    // Correctness gate: the planned/session path must reproduce the
    // seed path byte for byte before any timing is worth reporting.
    let mut seed_marked = rel.clone();
    baseline_embed(&spec, &mut seed_marked, key_idx, attr_idx, &wm);
    let seed_decoded = baseline_decode(&spec, &seed_marked, key_idx, attr_idx);
    let mut plan_marked = rel.clone();
    session.embed(&mut plan_marked, &wm).expect("embedding succeeds");
    let plan_decoded = session.decode(&plan_marked).expect("decoding succeeds");
    let row_tuples: Vec<Tuple> = rel.iter().collect();
    let mut row_marked = row_tuples.clone();
    let row_plan = rowstore_plan(&spec, &row_marked, key_idx);
    rowstore_embed(&spec, &mut row_marked, attr_idx, &wm, &row_plan);
    let row_decoded = rowstore_decode(&spec, &row_marked, attr_idx, &row_plan);
    let byte_identical = seed_marked.len() == plan_marked.len()
        && seed_marked.iter().zip(plan_marked.iter()).all(|(a, b)| a == b)
        && seed_marked.iter().zip(row_marked.iter()).all(|(a, b)| a == *b)
        && seed_decoded == plan_decoded.watermark
        && row_decoded == plan_decoded.watermark
        && plan_decoded.watermark == wm;
    assert!(byte_identical, "planned/columnar paths diverged from the seed path");

    // Timed round trips (embed a fresh copy + blind decode), best of
    // ITERS to damp scheduler noise.
    let mut baseline_best = f64::MAX;
    for _ in 0..ITERS {
        let mut marked = rel.clone();
        let start = Instant::now();
        baseline_embed(&spec, &mut marked, key_idx, attr_idx, &wm);
        let decoded = baseline_decode(&spec, &marked, key_idx, attr_idx);
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(decoded, wm);
        baseline_best = baseline_best.min(elapsed);
    }

    let mut planned_best = f64::MAX;
    let mut stage_plan = f64::MAX;
    let mut stage_embed = f64::MAX;
    let mut stage_decode = f64::MAX;
    for _ in 0..ITERS {
        // A fresh session per iteration: nothing pre-planned.
        let session = bind(&spec, &rel);
        let mut marked = rel.clone();
        let start = Instant::now();
        let plan = session.plan(&marked).expect("planning succeeds");
        let t_plan = start.elapsed().as_secs_f64() * 1e3;
        session.embed_planned(&mut marked, &wm, &plan).expect("embedding succeeds");
        let t_embed = start.elapsed().as_secs_f64() * 1e3;
        let decoded = session.decode(&marked).expect("decoding succeeds");
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(decoded.watermark, wm);
        planned_best = planned_best.min(elapsed);
        stage_plan = stage_plan.min(t_plan);
        stage_embed = stage_embed.min(t_embed - t_plan);
        stage_decode = stage_decode.min(elapsed - t_embed);
    }

    // Session-reuse scenario: the full court run (embed → blind decode
    // → detect), fresh-session-per-operator (each step replans) vs one
    // session handle (plan shared).
    let mut per_operator_best = f64::MAX;
    for _ in 0..ITERS {
        let mut marked = rel.clone();
        let start = Instant::now();
        bind(&spec, &marked).embed(&mut marked, &wm).expect("embedding succeeds");
        let verdict = bind(&spec, &marked).detect(&marked, &wm).expect("detection succeeds");
        assert_eq!(verdict.detection.matched_bits, WM_LEN);
        per_operator_best = per_operator_best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    let mut session_best = f64::MAX;
    for _ in 0..ITERS {
        let session = bind(&spec, &rel);
        let mut marked = rel.clone();
        let start = Instant::now();
        session.embed(&mut marked, &wm).expect("embedding succeeds");
        let verdict = session.detect(&marked, &wm).expect("detection succeeds");
        assert_eq!(verdict.detection.matched_bits, WM_LEN);
        session_best = session_best.min(start.elapsed().as_secs_f64() * 1e3);
    }

    // Columnar scenario — storage engine isolated. The row-store
    // emulation reproduces the pre-columnar plan path's cost profile:
    // one keyed-hash pass, but every access through per-row Value
    // materialization and the generic streaming hashers.
    let mut rowstore_best = f64::MAX;
    for _ in 0..ITERS {
        let mut marked = row_tuples.clone();
        let start = Instant::now();
        // Faithful to the pre-columnar session round trip: one
        // fingerprint pass + one hash pass at plan time, the embed
        // write pass, then the decode's cache lookup (a second
        // fingerprint pass) and vote pass — all over genuine
        // row-tuple storage.
        std::hint::black_box(rowstore_fingerprint(&marked, key_idx));
        let plan = rowstore_plan(&spec, &marked, key_idx);
        rowstore_embed(&spec, &mut marked, attr_idx, &wm, &plan);
        std::hint::black_box(rowstore_fingerprint(&marked, key_idx));
        let decoded = rowstore_decode(&spec, &marked, attr_idx, &plan);
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(decoded, wm);
        rowstore_best = rowstore_best.min(elapsed);
    }
    let columnar_best = planned_best;

    // Clone cost: columnar `Relation::clone` vs the row store
    // (Vec<Tuple> + key index), which is what the seed layout cloned.
    let row_index: HashMap<Value, usize> =
        (0..rel.len()).map(|r| (rel.value(r, key_idx).expect("row in range"), r)).collect();
    let mut clone_row_best = f64::MAX;
    let mut clone_col_best = f64::MAX;
    for _ in 0..ITERS {
        let start = Instant::now();
        let cloned = (row_tuples.clone(), row_index.clone());
        clone_row_best = clone_row_best.min(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(cloned.0.len(), rel.len());
        let start = Instant::now();
        let cloned = rel.clone();
        clone_col_best = clone_col_best.min(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(cloned.len(), rel.len());
    }

    let columnar_bytes_per_tuple = rel.resident_bytes() as f64 / rel.len() as f64;
    let rowstore_bytes_per_tuple =
        rowstore_resident_bytes(&row_tuples, &row_index) as f64 / rel.len() as f64;

    // Select scenario — interpreted row-tuple filter vs the compiled
    // query engine, over a predicate with a deliberately unsorted
    // 150-value IN-list (the historical linear-scan worst case) plus
    // a range clause.
    let in_list: Vec<Value> =
        (0..150).rev().map(|i| Value::Int(10_000 + (i * 7) % 1_000)).collect();
    let select_pred = Predicate::In("item_nbr".into(), in_list).or(Predicate::Ge(
        "item_nbr".into(),
        Value::Int(10_900),
    )
    .and(Predicate::Le("item_nbr".into(), Value::Int(10_950))));
    let select_reference = rowstore_select(&rel, &select_pred);
    let select_columnar_out = ops::select(&rel, &select_pred).expect("bench predicate compiles");
    assert!(
        select_reference.len() == select_columnar_out.len()
            && select_reference.iter().zip(select_columnar_out.iter()).all(|(a, b)| a == b),
        "compiled select diverged from the interpreted row-tuple select"
    );
    let mut select_row_best = f64::MAX;
    let mut select_col_best = f64::MAX;
    for _ in 0..ITERS {
        let start = Instant::now();
        let out = rowstore_select(&rel, &select_pred);
        select_row_best = select_row_best.min(start.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(out.len());
        let start = Instant::now();
        let out = ops::select(&rel, &select_pred).expect("bench predicate compiles");
        select_col_best = select_col_best.min(start.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(out.len());
    }

    // Join scenario — Value-keyed tuple-at-a-time probe vs the
    // code-space build/probe with column-copy output assembly.
    let catalog = catalog_for(&spec.domain);
    let join_reference = rowstore_join(&rel, &catalog, 1, 0);
    let join_columnar_out =
        join::hash_join(&rel, &catalog, "item_nbr", "item_nbr").expect("bench join is valid");
    assert!(
        join_reference.len() == join_columnar_out.len()
            && join_reference.iter().zip(join_columnar_out.iter()).all(|(a, b)| a == b),
        "code-space join diverged from the row-tuple join"
    );
    let mut join_row_best = f64::MAX;
    let mut join_col_best = f64::MAX;
    for _ in 0..ITERS {
        let start = Instant::now();
        let out = rowstore_join(&rel, &catalog, 1, 0);
        join_row_best = join_row_best.min(start.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(out.len());
        let start = Instant::now();
        let out = join::hash_join(&rel, &catalog, "item_nbr", "item_nbr").expect("valid join");
        join_col_best = join_col_best.min(start.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(out.len());
    }

    // Guarded-embed scenario — the query_preserve goodness loop. Text
    // target (store_city) so the historical path pays its true cost:
    // one owned `Value::Text` pair per proposal, hashed against
    // `HashSet<Value>` query sets; the code-bound guard answers every
    // proposal with domain-code table loads.
    let city_gen =
        SalesGenerator::new(ItemScanConfig { tuples, with_city: true, ..Default::default() });
    let city_rel = city_gen.generate();
    let city_domain = city_gen.city_domain();
    let city_spec = WatermarkSpec::builder(city_domain.clone())
        .master_key("markplan-bench-guarded")
        .e(E_GUARD)
        .wm_len(WM_LEN)
        .expected_tuples(tuples)
        .build()
        .expect("bench parameters are valid");
    let city_attr = 2;
    let city_session = MarkSession::builder(city_spec.clone())
        .key_column("visit_nbr")
        .target_column("store_city")
        .bind(&city_rel)
        .expect("bench schema binds");
    let city_tuples: Vec<Tuple> = city_rel.iter().collect();
    let city_plan = rowstore_plan(&city_spec, &city_tuples, key_idx);
    city_session.plan(&city_rel).expect("planning succeeds"); // warm the cache

    // Correctness gate: both guarded paths admit/veto identically and
    // produce byte-identical marked relations.
    let (guarded_byte_identical, guarded_altered, guarded_vetoed) = {
        let mut row_marked = city_tuples.clone();
        let mut row_guard = city_guard(&city_rel, &city_domain, city_attr);
        let (row_altered, row_vetoed) = rowstore_guarded_embed(
            &city_spec,
            &mut row_marked,
            city_attr,
            &wm,
            &city_plan,
            &mut row_guard,
        );
        let mut col_marked = city_rel.clone();
        let mut col_guard = city_guard(&city_rel, &city_domain, city_attr);
        let report = city_session
            .embed_guarded(&mut col_marked, &wm, &mut col_guard)
            .expect("guarded embedding succeeds");
        let identical = row_altered == report.altered
            && row_vetoed == report.vetoed
            && col_marked.len() == row_marked.len()
            && col_marked.iter().zip(row_marked.iter()).all(|(a, b)| a == *b);
        (identical, report.altered, report.vetoed)
    };
    assert!(guarded_byte_identical, "guarded paths diverged (admit/veto or content drift)");

    let mut guarded_row_best = f64::MAX;
    for _ in 0..ITERS {
        let mut marked = city_tuples.clone();
        let mut guard = city_guard(&city_rel, &city_domain, city_attr);
        let start = Instant::now();
        std::hint::black_box(rowstore_fingerprint(&marked, key_idx));
        let counts =
            rowstore_guarded_embed(&city_spec, &mut marked, city_attr, &wm, &city_plan, &mut guard);
        guarded_row_best = guarded_row_best.min(start.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(counts);
    }
    let mut guarded_col_best = f64::MAX;
    for _ in 0..ITERS {
        let mut marked = city_rel.clone();
        let mut guard = city_guard(&city_rel, &city_domain, city_attr);
        let start = Instant::now();
        let report = city_session
            .embed_guarded(&mut marked, &wm, &mut guard)
            .expect("guarded embedding succeeds");
        guarded_col_best = guarded_col_best.min(start.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(report.altered);
    }

    // Out-of-core scenario — segment streaming under a quarter
    // resident budget, cold segments spilled to a file store. The
    // segmentation is rebuilt per iteration (fresh spill file), but
    // only the embed + decode round trip is timed, mirroring the
    // in-memory scenarios which exclude `rel.clone()`.
    let ooc_total_bytes = rel.resident_bytes();
    let ooc_budget = ooc_total_bytes / 4;
    let ooc_segment_rows = tuples.div_ceil(16).max(1);
    std::fs::create_dir_all("target").expect("can create target dir for the spill file");
    let spill_path = "target/markplan_out_of_core.spill";
    let ooc_segmented = || -> SegmentedRelation {
        SegmentedRelation::builder(rel.schema().clone())
            .segment_rows(ooc_segment_rows)
            .budget_bytes(ooc_budget)
            .store(Box::new(FileStore::create(spill_path).expect("spill file is creatable")))
            .from_relation(&rel)
            .expect("segmentation succeeds")
    };

    // Correctness gate: the streamed path must reproduce the
    // in-memory marked relation and decode byte for byte, under the
    // enforced ceiling.
    let (ooc_peak, ooc_overhead, ooc_spilled, ooc_segments, ooc_identical) = {
        let mut seg = ooc_segmented();
        let report = session.embed_segmented(&mut seg, &wm).expect("segmented embedding succeeds");
        let decode = session.decode_segmented(&mut seg).expect("segmented decoding succeeds");
        let materialized = seg.to_relation().expect("segments materialize");
        let identical = decode.watermark == wm
            && report.altered > 0
            && materialized.len() == plan_marked.len()
            && materialized.iter().zip(plan_marked.iter()).all(|(a, b)| a == b);
        (
            seg.peak_pageable_bytes(),
            seg.resident_overhead_bytes(),
            seg.spilled_bytes(),
            seg.segment_count(),
            identical,
        )
    };
    assert!(ooc_identical, "out-of-core round trip diverged from the in-memory path");
    assert!(
        ooc_peak <= ooc_budget,
        "out-of-core resident ceiling violated: peak {ooc_peak} > budget {ooc_budget}"
    );

    let mut ooc_best = f64::MAX;
    for _ in 0..ITERS {
        // Fresh session per iteration, like the plan-on scenario:
        // nothing pre-planned across iterations. Within the round
        // trip the session cache still lets decode reuse the plans
        // embed built — the same reuse the in-memory path gets. The
        // explicit sequential drivers keep this scenario the fixed
        // reference point the pipeline is measured against.
        let ooc_session = bind(&spec, &rel);
        let mut seg = ooc_segmented();
        let start = Instant::now();
        ooc_session
            .embed_segmented_sequential(&mut seg, &wm)
            .expect("segmented embedding succeeds");
        let decoded =
            ooc_session.decode_segmented_sequential(&mut seg).expect("segmented decoding succeeds");
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(decoded.watermark, wm);
        ooc_best = ooc_best.min(elapsed);
    }

    // Pipeline scenario — the same streamed round trip through the
    // two-stage pipelined drivers. Correctness gate first: identical
    // bytes, the pager ceiling unchanged, and at most one segment
    // clone in flight.
    let (pipe_peak, pipe_inflight, pipe_prefetched, pipe_identical) = {
        let mut seg = ooc_segmented();
        let (report, embed_stats) = session
            .embed_segmented_pipelined_with_stats(&mut seg, &wm)
            .expect("pipelined segmented embedding succeeds");
        let (decode, decode_stats) = session
            .decode_segmented_pipelined_with_stats(&mut seg)
            .expect("pipelined segmented decoding succeeds");
        let materialized = seg.to_relation().expect("segments materialize");
        let identical = decode.watermark == wm
            && report.altered > 0
            && materialized.len() == plan_marked.len()
            && materialized.iter().zip(plan_marked.iter()).all(|(a, b)| a == b);
        let inflight = embed_stats.peak_inflight_bytes.max(decode_stats.peak_inflight_bytes);
        assert!(
            inflight <= seg.peak_segment_bytes(),
            "pipeline in-flight clone {inflight} exceeds the largest segment {}",
            seg.peak_segment_bytes()
        );
        (seg.peak_pageable_bytes(), inflight, embed_stats.prefetched, identical)
    };
    assert!(pipe_identical, "pipelined out-of-core round trip diverged from the in-memory path");
    assert!(
        pipe_peak <= ooc_budget,
        "pipelined resident ceiling violated: peak {pipe_peak} > budget {ooc_budget}"
    );

    let mut pipeline_best = f64::MAX;
    for _ in 0..ITERS {
        let ooc_session = bind(&spec, &rel);
        let mut seg = ooc_segmented();
        let start = Instant::now();
        ooc_session
            .embed_segmented_pipelined(&mut seg, &wm)
            .expect("pipelined segmented embedding succeeds");
        let decoded = ooc_session
            .decode_segmented_pipelined(&mut seg)
            .expect("pipelined segmented decoding succeeds");
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(decoded.watermark, wm);
        pipeline_best = pipeline_best.min(elapsed);
    }
    let _ = std::fs::remove_file(spill_path);

    // Certified-evidence scenario — the segmented court-time detect
    // with a `CMKEVD1` bundle emitted, against the sequential detect
    // it mirrors (decode + compare, no serialization). Like the
    // out-of-core loops, each iteration starts from a cold session —
    // a court-time detection has no embed-warmed plans — so the gate
    // pins the evidence emission as a fraction of a real detection,
    // not of a cache hit.
    let ev_store = ContentStore::in_memory();
    let mut ev_log = VersionLog::new();
    let mut ev_seg = SegmentedRelation::builder(plan_marked.schema().clone())
        .segment_rows(ooc_segment_rows)
        .store(Box::new(ev_store.clone()))
        .from_relation(&plan_marked)
        .expect("segmentation succeeds");
    let ev_version = ev_log.commit(&mut ev_seg, &ev_store).expect("version commit succeeds");
    let ev_manifest = ev_log.get(ev_version).expect("committed manifest exists").clone();
    let ev_session = bind(&spec, &plan_marked);

    // Correctness gate first: the certified verdict is the plain
    // verdict, and the emitted bundle convinces the keyless verifier.
    let plain_decode =
        ev_session.decode_segmented_sequential(&mut ev_seg).expect("segmented decode succeeds");
    let plain_verdict = catmark_core::session::Verdict {
        detection: detect(&plain_decode.watermark, &wm),
        decode: plain_decode,
    };
    let ev_certified = ev_session
        .detect_certified_segmented(&mut ev_seg, &wm, &ev_manifest)
        .expect("certified segmented detect succeeds");
    assert_eq!(
        ev_certified.outcome, plain_verdict,
        "certified verdict diverged from the plain segmented detect"
    );
    let ev_summary = verify_evidence(&ev_certified.bundle).expect("fresh evidence verifies");
    assert_eq!(ev_summary.segments, ev_seg.segment_count());
    let evidence_bundle_bytes = ev_certified.bundle.len();

    let mut detect_plain_best = f64::MAX;
    let mut detect_certified_best = f64::MAX;
    for _ in 0..ITERS {
        let cold = bind(&spec, &plan_marked);
        let start = Instant::now();
        let report =
            cold.decode_segmented_sequential(&mut ev_seg).expect("segmented decode succeeds");
        let verdict = detect(&report.watermark, &wm);
        detect_plain_best = detect_plain_best.min(start.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(verdict.matched_bits);

        let cold = bind(&spec, &plan_marked);
        let start = Instant::now();
        let certified = cold
            .detect_certified_segmented(&mut ev_seg, &wm, &ev_manifest)
            .expect("certified segmented detect succeeds");
        detect_certified_best = detect_certified_best.min(start.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(certified.bundle.len());
    }
    let evidence_overhead = detect_certified_best / detect_plain_best;

    // Hash scenario — the keyed two-block fast path's four-lane
    // multibuffer, per backend. 8-byte values splice into the derived
    // 32-byte keys' fixed layout (two SHA-256 blocks = 128 message
    // bytes per lane-hash). The software figure is always measured;
    // the SHA-NI figure only where the CPU has the extensions, and
    // there the ≥1.5x floor is enforced.
    let fast = spec
        .keyed1()
        .fixed_len_hasher(8)
        .expect("derived keys qualify for the two-block fast path");
    let hash_batches = (tuples * 2).max(100_000);
    let hash_mb_per_s = |backend: Sha256Backend| -> f64 {
        // Cross-backend agreement is pinned by the crypto proptests;
        // the cheap spot check here guards the bench's own wiring.
        let probe = [&b"lane-one"[..], b"lane-two", b"lane-3__", b"lane-4__"];
        assert_eq!(
            fast.hash4_u64_with(backend, probe),
            fast.hash4_u64_with(Sha256Backend::Soft, probe),
            "hash backends disagree"
        );
        let mut best = f64::MAX;
        for _ in 0..ITERS {
            let mut acc = 0u64;
            let start = Instant::now();
            for i in 0..hash_batches as u64 {
                let vs = [
                    (i * 4).to_le_bytes(),
                    (i * 4 + 1).to_le_bytes(),
                    (i * 4 + 2).to_le_bytes(),
                    (i * 4 + 3).to_le_bytes(),
                ];
                let out = fast.hash4_u64_with(backend, [&vs[0][..], &vs[1], &vs[2], &vs[3]]);
                acc ^= out[0] ^ out[1] ^ out[2] ^ out[3];
            }
            best = best.min(start.elapsed().as_secs_f64());
            std::hint::black_box(acc);
        }
        (hash_batches * 4 * 128) as f64 / best / 1e6
    };
    let hash_soft_mb_per_s = hash_mb_per_s(Sha256Backend::Soft);
    let shani_available = Sha256Backend::ShaNi.is_available();
    let hash_shani_mb_per_s =
        if shani_available { hash_mb_per_s(Sha256Backend::ShaNi) } else { 0.0 };
    let sha_backend = Sha256Backend::active().name();
    if shani_available {
        let ratio = hash_shani_mb_per_s / hash_soft_mb_per_s;
        assert!(
            ratio >= 1.5,
            "SHA-NI keyed-hash throughput fell below the 1.5x floor: {ratio:.2}x"
        );
    }

    // Plan-threads scenario — the threaded plan build across thread
    // counts on the one relation, pinned byte-identical to the
    // sequential build first.
    let seq_plan = MarkPlan::build_sequential(&spec, &rel, key_idx);
    let plan_thread_counts = [1usize, 2, 4];
    let mut plan_threads_ms = [0f64; 3];
    for (slot, &threads) in plan_threads_ms.iter_mut().zip(&plan_thread_counts) {
        let built = MarkPlan::build_with_threads(&spec, &rel, key_idx, threads);
        assert_eq!(
            built.fit(),
            seq_plan.fit(),
            "threaded plan (threads={threads}) diverged from the sequential build"
        );
        let mut best = f64::MAX;
        for _ in 0..ITERS {
            let start = Instant::now();
            let built = MarkPlan::build_with_threads(&spec, &rel, key_idx, threads);
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
            std::hint::black_box(built.fit().len());
        }
        *slot = best;
    }

    // Fingerprint-batch scenario — 1000-recipient tracing on a warm
    // service. The batched trace plans all recipients through
    // `MultiKeyPlan` (four recipient keys per tuple scan) and caches
    // the whole recipient set as ONE `MultiPlanCache` entry, so a warm
    // repeat re-plans nothing; the per-recipient reference walks the
    // ordinary `PlanCache`, whose 64-entry capacity cannot hold 1000
    // buyer plans — every call replans every recipient. That cache
    // shape, not the hash lanes alone, is what the ≥2x floor pins.
    const FP_BUYERS: usize = 1_000;
    // 24 mark bits: with 1000 recipients a 10-bit fingerprint would
    // let an honest buyer match every bit by chance (p ≈ 1/1024 per
    // buyer), so the ranking gate below needs a wider mark.
    const FP_WM_LEN: usize = 24;
    let fp_tuples = (tuples / 30).clamp(1_000, 4_000);
    let fp_gen = SalesGenerator::new(ItemScanConfig { tuples: fp_tuples, ..Default::default() });
    let fp_rel = fp_gen.generate();
    let fp_spec = WatermarkSpec::builder(fp_gen.item_domain())
        .master_key("markplan-bench-fingerprint")
        .e(8)
        .wm_len(FP_WM_LEN)
        .expected_tuples(fp_tuples)
        .build()
        .expect("bench parameters are valid");
    let fp_session = bind(&fp_spec, &fp_rel);
    let buyer_names: Vec<String> = (0..FP_BUYERS).map(|i| format!("recipient-{i:04}")).collect();
    let buyer_refs: Vec<&str> = buyer_names.iter().map(String::as_str).collect();
    let leaker = buyer_refs[667];
    let mut fingerprints = fp_session.fingerprint();
    for buyer in &buyer_refs {
        fingerprints.register(buyer);
    }
    let (leaked, _) = fingerprints.mark_copy(&fp_rel, leaker).expect("fingerprinted copy embeds");

    // Correctness gate: the batched trace must reproduce the
    // per-recipient reference exactly — same ranking, same bit
    // counts, same court-time odds — and finger the right recipient.
    let batched_results = fingerprints.trace(&leaked).expect("batched trace succeeds");
    let sequential_results =
        fingerprints.trace_sequential(&leaked).expect("sequential trace succeeds");
    assert_eq!(batched_results.len(), FP_BUYERS);
    let fp_identical = batched_results.len() == sequential_results.len()
        && batched_results.iter().zip(&sequential_results).all(|(a, b)| {
            a.buyer == b.buyer
                && a.detection.matched_bits == b.detection.matched_bits
                && a.detection.false_positive_probability == b.detection.false_positive_probability
        });
    assert!(fp_identical, "batched trace diverged from the per-recipient reference");
    assert_eq!(batched_results[0].buyer, leaker, "trace must rank the leaking recipient first");

    let mut fp_batch_best = f64::MAX;
    for _ in 0..ITERS {
        let start = Instant::now();
        let results = fingerprints.trace(&leaked).expect("batched trace succeeds");
        fp_batch_best = fp_batch_best.min(start.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(results.len());
    }
    let mut fp_sequential_best = f64::MAX;
    for _ in 0..ITERS {
        let start = Instant::now();
        let results = fingerprints.trace_sequential(&leaked).expect("sequential trace succeeds");
        fp_sequential_best = fp_sequential_best.min(start.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(results.len());
    }
    let fp_speedup = fp_sequential_best / fp_batch_best;
    let fp_recipients_per_s = FP_BUYERS as f64 / (fp_batch_best / 1e3);

    // Fingerprint-delta scenario — delta-encoded distribution at 1000
    // recipients over the same 4k-tuple base. One `MultiKeyPlan` scan
    // emits per-recipient `MarkDelta` patch sets against the shared
    // base instead of materializing 1000 full clones; shipping a
    // recipient costs the patch bytes, not the relation. The headline
    // metrics are bytes-per-recipient and recipients/s, with an ≥8x
    // bytes-reduction floor against full copies. e = 16 keeps the fit
    // set (≈ tuples/16 patch records) well under 1/8 of the base's
    // columnar footprint.
    let d_spec = WatermarkSpec::builder(fp_gen.item_domain())
        .master_key("markplan-bench-delta")
        .e(16)
        .wm_len(FP_WM_LEN)
        .expected_tuples(fp_tuples)
        .build()
        .expect("bench parameters are valid");
    let mut delta_registry = catmark_core::fingerprint::FingerprintRegistry::new(d_spec);
    let deltas = delta_registry
        .mark_deltas(&fp_rel, &buyer_refs, "visit_nbr", "item_nbr")
        .expect("delta extraction succeeds");
    assert_eq!(deltas.len(), FP_BUYERS);
    // Byte-identity gate for sampled recipients: `apply_delta` against
    // the independent embed-on-a-clone reference (the pre-delta
    // `mark_copy` semantics), same alteration reports included.
    for &b in &[0usize, 500, 999] {
        let (delta, report) = &deltas[b];
        let reference_session = bind(&delta_registry.spec_for(buyer_refs[b]), &fp_rel);
        let mut reference = fp_rel.clone();
        let reference_report = reference_session
            .embed(&mut reference, &delta_registry.mark_for(buyer_refs[b]))
            .expect("reference embed succeeds");
        assert_eq!(report, &reference_report, "delta report diverged for recipient {b}");
        let rebuilt = fp_rel.apply_delta(delta).expect("delta applies to its base");
        assert!(
            rebuilt.iter().zip(reference.iter()).all(|(x, y)| x == y),
            "delta rebuild diverged from the embed reference for recipient {b}"
        );
        assert_eq!(delta.encode().len(), delta.serialized_len());
    }
    let delta_bytes_total: usize = deltas.iter().map(|(d, _)| d.serialized_len()).sum();
    let delta_bytes_per_recipient = delta_bytes_total as f64 / FP_BUYERS as f64;
    let copy_bytes_per_recipient = fp_rel.resident_bytes() as f64;
    let delta_vs_copy_bytes_ratio = copy_bytes_per_recipient / delta_bytes_per_recipient;
    let mut delta_best = f64::MAX;
    for _ in 0..ITERS {
        let start = Instant::now();
        let batch = delta_registry
            .mark_deltas(&fp_rel, &buyer_refs, "visit_nbr", "item_nbr")
            .expect("delta extraction succeeds");
        delta_best = delta_best.min(start.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(batch.len());
    }
    let delta_recipients_per_s = FP_BUYERS as f64 / (delta_best / 1e3);
    // Reference cost: materializing the same 1000 recipients as full
    // copies (clone + patch per recipient).
    let mut delta_copies_best = f64::MAX;
    for _ in 0..ITERS {
        let start = Instant::now();
        let copies = delta_registry
            .mark_copies(&fp_rel, &buyer_refs, "visit_nbr", "item_nbr")
            .expect("copy materialization succeeds");
        delta_copies_best = delta_copies_best.min(start.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(copies.len());
    }

    // Churn scenario — the content-addressed versioned store under
    // localized updates. The marked relation lives as sealed segment
    // blobs in a `ContentStore` with a `VersionLog` of manifests; each
    // round applies 10% random-row updates confined to a rotating
    // window of ~10% of the segments (churn is local in real update
    // workloads), commits the new version, and re-marks it two ways:
    // the full segmented re-pass over a twin opened from the same
    // committed version, and `embed_incremental`, which diffs the
    // manifests and re-embeds only the dirty segments. Detection runs
    // `decode_incremental` over a warm `VoteCache` that folds memoized
    // tallies for every clean blob. Byte-identity of the two re-marked
    // relations is gated before timing; the run then enforces the ≥5x
    // incremental floor and that versions share unchanged blobs.
    let churn_segment_rows = tuples.div_ceil(64).max(1);
    let churn_store = ContentStore::in_memory();
    let mut churn_log = VersionLog::new();
    let mut churn_seg = SegmentedRelation::builder(rel.schema().clone())
        .segment_rows(churn_segment_rows)
        .store(Box::new(churn_store.clone()))
        .from_relation(&rel)
        .expect("segmentation succeeds");
    session.embed_segmented_sequential(&mut churn_seg, &wm).expect("base embed succeeds");
    let mut marked_id = churn_log.commit(&mut churn_seg, &churn_store).expect("commit succeeds");

    let churn_seg_count = churn_seg.segment_count();
    let churn_updates = tuples / 10;
    let window_segs = churn_seg_count.div_ceil(10).max(1);
    let domain_values = spec.domain.values();
    let mut churn_rng: u64 = 0xDEAD_BEEF | 1;
    let churn_round = |seg: &mut SegmentedRelation, round: usize, state: &mut u64| {
        let base = (round * window_segs) % churn_seg_count;
        for k in 0..churn_updates {
            *state ^= *state << 13;
            *state ^= *state >> 7;
            *state ^= *state << 17;
            let s = (base + (*state as usize) % window_segs) % churn_seg_count;
            let rows = seg.segment_len(s);
            let local = ((*state >> 21) as usize) % rows;
            let value = domain_values[(k + local) % domain_values.len()].clone();
            seg.with_segment_mut(s, |r| r.update_value(local, attr_idx, value))
                .expect("segment pages in")
                .expect("churn value is domain-typed");
        }
    };

    // Correctness gate: one un-timed round, full byte-identity between
    // the incremental re-mark and the full re-pass, plus blob sharing
    // between the re-marked commit and its marked ancestor.
    let mut vote_cache = VoteCache::new();
    let (churn_dirty, churn_clean, churn_identical) = {
        churn_round(&mut churn_seg, 0, &mut churn_rng);
        let current_id = churn_log.commit(&mut churn_seg, &churn_store).expect("commit succeeds");
        let marked_m = churn_log.get(marked_id).expect("logged").clone();
        let current_m = churn_log.get(current_id).expect("logged").clone();
        let mut twin = churn_log
            .open_version(current_id, rel.schema(), &churn_store, None)
            .expect("version reopens");
        session.embed_segmented_sequential(&mut twin, &wm).expect("full re-pass succeeds");
        let inc = session
            .embed_incremental(&mut churn_seg, &wm, &marked_m, &current_m)
            .expect("incremental re-mark succeeds");
        assert!(!inc.full_fallback, "same-geometry manifests must not fall back");
        assert!(inc.dirty_segments > 0 && inc.clean_segments > 0, "churn must be partial");
        let ours = churn_seg.to_relation().expect("segments materialize");
        let theirs = twin.to_relation().expect("segments materialize");
        let identical =
            ours.len() == theirs.len() && ours.iter().zip(theirs.iter()).all(|(a, b)| a == b);
        marked_id = churn_log.commit(&mut churn_seg, &churn_store).expect("commit succeeds");
        let remarked_m = churn_log.get(marked_id).expect("logged").clone();
        let still_dirty = remarked_m.dirty_against(&marked_m).expect("same geometry diffs");
        assert!(
            still_dirty.len() <= inc.dirty_segments,
            "re-marked commit must share every clean blob with its marked ancestor"
        );
        // The twin's full re-pass produced byte-identical marked
        // segments, so committing it into the same pile must dedup
        // every blob against the incremental commit.
        churn_log.commit(&mut twin, &churn_store).expect("commit succeeds");
        // Warm the vote cache and gate the incremental decode against
        // the full streaming decode.
        let full_decode =
            session.decode_segmented_sequential(&mut churn_seg).expect("full decode succeeds");
        let inc_decode = session
            .decode_incremental(&mut churn_seg, &remarked_m, &mut vote_cache)
            .expect("incremental decode succeeds");
        assert_eq!(inc_decode.report, full_decode, "incremental decode diverged");
        (inc.dirty_segments, inc.clean_segments, identical)
    };
    assert!(churn_identical, "incremental re-mark diverged from the full re-pass");

    const CHURN_ROUNDS: usize = 4;
    let mut churn_full_best = f64::MAX;
    let mut churn_inc_best = f64::MAX;
    for round in 1..=CHURN_ROUNDS {
        churn_round(&mut churn_seg, round, &mut churn_rng);
        let current_id = churn_log.commit(&mut churn_seg, &churn_store).expect("commit succeeds");
        let marked_m = churn_log.get(marked_id).expect("logged").clone();
        let current_m = churn_log.get(current_id).expect("logged").clone();
        let mut twin = churn_log
            .open_version(current_id, rel.schema(), &churn_store, None)
            .expect("version reopens");

        // Full re-pass + full streaming decode over the twin.
        let start = Instant::now();
        let full_report =
            session.embed_segmented_sequential(&mut twin, &wm).expect("full re-pass succeeds");
        let full_decode =
            session.decode_segmented_sequential(&mut twin).expect("full decode succeeds");
        churn_full_best = churn_full_best.min(start.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(full_report.altered);

        // Incremental re-mark + commit + cached decode — the commit
        // (hashing the dirty blobs) is part of the incremental
        // pipeline's honest cost.
        let start = Instant::now();
        let inc = session
            .embed_incremental(&mut churn_seg, &wm, &marked_m, &current_m)
            .expect("incremental re-mark succeeds");
        let remarked_id = churn_log.commit(&mut churn_seg, &churn_store).expect("commit succeeds");
        let remarked_m = churn_log.get(remarked_id).expect("logged").clone();
        let inc_decode = session
            .decode_incremental(&mut churn_seg, &remarked_m, &mut vote_cache)
            .expect("incremental decode succeeds");
        churn_inc_best = churn_inc_best.min(start.elapsed().as_secs_f64() * 1e3);

        assert!(!inc.full_fallback, "churn round {round} fell back to the full pass");
        assert_eq!(inc_decode.report, full_decode, "decode diverged on round {round}");
        assert_eq!(inc_decode.report.watermark, wm);
        marked_id = remarked_id;
    }
    let churn_speedup = churn_full_best / churn_inc_best;
    let churn_unique_blobs = churn_store.unique_blobs();
    let churn_dedup_hits = churn_store.dedup_hits();
    let churn_manifest_refs: usize = churn_log.manifests().iter().map(|m| m.segments.len()).sum();
    assert!(
        churn_unique_blobs < churn_manifest_refs as u64,
        "versions must share unchanged blobs: {churn_unique_blobs} unique >= {churn_manifest_refs} referenced"
    );
    assert!(churn_dedup_hits > 0, "content addressing must dedup identical blobs");

    // Cache observability, as the service reports it: the session's
    // plan cache, the churn run's vote cache, and the segment pager.
    let plan_cache_stats = session.cache().stats();
    let vote_cache_stats = vote_cache.stats();
    let pager_stats = churn_seg.cache_stats();

    let speedup = baseline_best / planned_best;
    let session_speedup = per_operator_best / session_best;
    let columnar_speedup = rowstore_best / columnar_best;
    let clone_speedup = clone_row_best / clone_col_best;
    let select_speedup = select_row_best / select_col_best;
    let join_speedup = join_row_best / join_col_best;
    let guarded_speedup = guarded_row_best / guarded_col_best;
    let throughput = tuples as f64 / (planned_best / 1e3);
    println!("markplan round trip over {tuples} tuples (e = {E}, best of {ITERS}):");
    println!("  plan-off (seed path): {baseline_best:9.2} ms");
    println!("  plan-on  (session):   {planned_best:9.2} ms   {throughput:.0} tuples/s");
    println!(
        "    stages: plan {stage_plan:.2} ms, embed {stage_embed:.2} ms, decode {stage_decode:.2} ms"
    );
    println!("  speedup:              {speedup:9.2}x");
    println!("court run (embed + decode + detect):");
    println!("  session per operator: {per_operator_best:9.2} ms   (every operator replans)");
    println!("  one MarkSession:      {session_best:9.2} ms   (plan shared across operators)");
    println!("  session speedup:      {session_speedup:9.2}x");
    println!("columnar storage engine:");
    println!("  row-store emulation:  {rowstore_best:9.2} ms   (per-row Value materialization)");
    println!("  columnar scan:        {columnar_best:9.2} ms   (flat slices + fixed-len hashing)");
    println!("  columnar speedup:     {columnar_speedup:9.2}x");
    println!(
        "  clone: row-store {clone_row_best:.2} ms, columnar {clone_col_best:.2} ms ({clone_speedup:.1}x)"
    );
    println!(
        "  resident bytes/tuple: row-store {rowstore_bytes_per_tuple:.0}, columnar {columnar_bytes_per_tuple:.0}"
    );
    println!("  byte-identical:       {byte_identical}");
    println!("query engine (select / join / guarded embed):");
    println!(
        "  select: row-tuple {select_row_best:8.2} ms, compiled {select_col_best:8.2} ms ({select_speedup:.2}x, {} rows)",
        select_columnar_out.len()
    );
    println!(
        "  join:   row-tuple {join_row_best:8.2} ms, code-space {join_col_best:8.2} ms ({join_speedup:.2}x, {} rows)",
        join_columnar_out.len()
    );
    println!(
        "  guarded embed (query_preserve, e = {E_GUARD}): row-tuple {guarded_row_best:8.2} ms, coded {guarded_col_best:8.2} ms ({guarded_speedup:.2}x)"
    );
    println!(
        "    altered {guarded_altered}, vetoed {guarded_vetoed}, byte-identical {guarded_byte_identical}"
    );
    let ooc_slowdown = ooc_best / planned_best;
    let pipeline_vs_sequential = pipeline_best / ooc_best;
    let pipeline_vs_inmemory = pipeline_best / planned_best;
    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    println!("out-of-core (segment streaming, file-backed spill):");
    println!(
        "  {ooc_segments} segments x {ooc_segment_rows} rows, budget {ooc_budget} of {ooc_total_bytes} columnar bytes (1/4)"
    );
    println!("  sequential:           {ooc_best:9.2} ms   ({ooc_slowdown:.2}x the in-memory path)");
    println!(
        "  pipelined:            {pipeline_best:9.2} ms   ({pipeline_vs_sequential:.2}x sequential, {pipeline_vs_inmemory:.2}x in-memory)"
    );
    println!(
        "    prefetched {pipe_prefetched} plans, peak in-flight clone {pipe_inflight} bytes, peak pageable {pipe_peak} <= budget {ooc_budget}"
    );
    println!(
        "  resident ceiling:     peak pageable {ooc_peak} <= budget {ooc_budget} (always-resident overhead {ooc_overhead})"
    );
    println!("  spilled:              {ooc_spilled} bytes   byte-identical: {ooc_identical}");
    println!("certified evidence (segmented court-time detect, {ooc_segments} segments):");
    println!("  plain detect:         {detect_plain_best:9.2} ms");
    println!(
        "  certified detect:     {detect_certified_best:9.2} ms   ({evidence_overhead:.2}x plain, {evidence_bundle_bytes}-byte bundle)"
    );
    println!("hash backends (keyed two-block fast path, 4-lane multibuffer):");
    println!("  active backend:       {sha_backend}   (SHA-NI available: {shani_available})");
    println!("  software:             {hash_soft_mb_per_s:9.1} MB/s");
    if shani_available {
        println!(
            "  sha-ni:               {hash_shani_mb_per_s:9.1} MB/s   ({:.2}x software)",
            hash_shani_mb_per_s / hash_soft_mb_per_s
        );
    }
    println!("plan build across thread counts ({host_threads} host threads):");
    for (&threads, &ms) in plan_thread_counts.iter().zip(&plan_threads_ms) {
        println!("  threads={threads}:            {ms:9.2} ms");
    }
    println!("fingerprint batch ({FP_BUYERS} recipients over {fp_tuples} tuples, warm service):");
    println!(
        "  per-recipient trace:  {fp_sequential_best:9.2} ms   (PlanCache thrashes, replans all)"
    );
    println!(
        "  batched trace:        {fp_batch_best:9.2} ms   {fp_recipients_per_s:.0} recipients/s"
    );
    println!("  batch speedup:        {fp_speedup:9.2}x");
    println!("fingerprint delta ({FP_BUYERS} recipients over {fp_tuples} tuples, e = 16):");
    println!(
        "  full copies:          {delta_copies_best:9.2} ms   {:.1} KB/recipient",
        copy_bytes_per_recipient / 1024.0
    );
    println!(
        "  delta patches:        {delta_best:9.2} ms   {delta_bytes_per_recipient:.0} bytes/recipient, {delta_recipients_per_s:.0} recipients/s"
    );
    println!("  bytes reduction:      {delta_vs_copy_bytes_ratio:9.2}x  (floor 8x)");
    let delta_extract_vs_copies = delta_best / delta_copies_best;
    println!(
        "  extract vs copies:    {delta_extract_vs_copies:9.2}x  (ceiling 1.2x of full copies)"
    );
    println!(
        "versioned churn ({churn_seg_count} segments x {churn_segment_rows} rows, {churn_updates} updates/round, {CHURN_ROUNDS} rounds):"
    );
    println!(
        "  full re-pass:         {churn_full_best:9.2} ms   (re-embed + re-decode every segment)"
    );
    println!(
        "  incremental:          {churn_inc_best:9.2} ms   ({churn_dirty} dirty, {churn_clean} clean segments)"
    );
    println!("  churn speedup:        {churn_speedup:9.2}x  (floor 5x)   byte-identical: {churn_identical}");
    println!(
        "  store:                {churn_unique_blobs} unique blobs / {churn_manifest_refs} referenced, {churn_dedup_hits} dedup hits"
    );
    println!(
        "  caches:               plan {}/{} hit/miss, votes {}/{} hit/miss ({} evicted), pager {}/{} hit/miss",
        plan_cache_stats.hits,
        plan_cache_stats.misses,
        vote_cache_stats.hits,
        vote_cache_stats.misses,
        vote_cache_stats.evictions,
        pager_stats.hits,
        pager_stats.misses
    );
    assert!(
        delta_vs_copy_bytes_ratio >= 8.0,
        "delta distribution fell below the 8x bytes-per-recipient floor: {delta_vs_copy_bytes_ratio:.2}x"
    );
    assert!(
        delta_extract_vs_copies <= 1.2,
        "delta extraction regressed past 1.2x the full-copy pass: {delta_extract_vs_copies:.2}x"
    );
    assert!(
        churn_speedup >= 5.0,
        "incremental re-mark fell below the 5x floor over the full re-pass: {churn_speedup:.2}x"
    );
    assert!(
        guarded_speedup >= 2.0,
        "guarded-embed scenario regressed below the 2x target: {guarded_speedup:.2}x"
    );
    assert!(
        fp_speedup >= 2.0,
        "batched fingerprint trace regressed below the 2x target: {fp_speedup:.2}x"
    );
    // On a multi-core host the overlap must pay for the clone; on a
    // single core there is nothing to overlap with, so only gross
    // regressions (the clone dominating the round trip) are an error.
    let pipeline_slack = if host_threads > 1 { 1.05 } else { 1.30 };
    assert!(
        pipeline_vs_sequential <= pipeline_slack,
        "pipelined out-of-core regressed the sequential path: {pipeline_vs_sequential:.2}x (limit {pipeline_slack:.2}x on {host_threads} threads)"
    );
    assert!(
        evidence_overhead <= 1.15,
        "certified evidence emission exceeded the 1.15x gate over the plain segmented detect: {evidence_overhead:.2}x"
    );

    let json = format!(
        "{{\n  \"bench\": \"markplan_round_trip\",\n  \"tuples\": {tuples},\n  \"e\": {E},\n  \"wm_len\": {WM_LEN},\n  \"iterations\": {ITERS},\n  \"baseline_round_trip_ms\": {baseline_best:.3},\n  \"plan_round_trip_ms\": {planned_best:.3},\n  \"plan_tuples_per_second\": {throughput:.0},\n  \"speedup\": {speedup:.3},\n  \"per_operator_court_run_ms\": {per_operator_best:.3},\n  \"session_court_run_ms\": {session_best:.3},\n  \"session_speedup\": {session_speedup:.3},\n  \"rowstore_round_trip_ms\": {rowstore_best:.3},\n  \"columnar_round_trip_ms\": {columnar_best:.3},\n  \"columnar_speedup\": {columnar_speedup:.3},\n  \"clone_rowstore_ms\": {clone_row_best:.3},\n  \"clone_columnar_ms\": {clone_col_best:.3},\n  \"clone_speedup\": {clone_speedup:.3},\n  \"rowstore_bytes_per_tuple\": {rowstore_bytes_per_tuple:.0},\n  \"columnar_bytes_per_tuple\": {columnar_bytes_per_tuple:.0},\n  \"select_rowtuple_ms\": {select_row_best:.3},\n  \"select_compiled_ms\": {select_col_best:.3},\n  \"select_speedup\": {select_speedup:.3},\n  \"join_rowtuple_ms\": {join_row_best:.3},\n  \"join_codespace_ms\": {join_col_best:.3},\n  \"join_speedup\": {join_speedup:.3},\n  \"guarded_e\": {E_GUARD},\n  \"guarded_rowtuple_ms\": {guarded_row_best:.3},\n  \"guarded_coded_ms\": {guarded_col_best:.3},\n  \"guarded_speedup\": {guarded_speedup:.3},\n  \"guarded_altered\": {guarded_altered},\n  \"guarded_vetoed\": {guarded_vetoed},\n  \"guarded_byte_identical\": {guarded_byte_identical},\n  \"out_of_core_segments\": {ooc_segments},\n  \"out_of_core_segment_rows\": {ooc_segment_rows},\n  \"out_of_core_total_columnar_bytes\": {ooc_total_bytes},\n  \"out_of_core_budget_bytes\": {ooc_budget},\n  \"out_of_core_peak_pageable_bytes\": {ooc_peak},\n  \"out_of_core_resident_overhead_bytes\": {ooc_overhead},\n  \"out_of_core_spilled_bytes\": {ooc_spilled},\n  \"out_of_core_round_trip_ms\": {ooc_best:.3},\n  \"out_of_core_vs_inmemory\": {ooc_slowdown:.3},\n  \"out_of_core_identical\": {ooc_identical},\n  \"pipeline_round_trip_ms\": {pipeline_best:.3},\n  \"pipeline_vs_sequential\": {pipeline_vs_sequential:.3},\n  \"pipeline_vs_inmemory\": {pipeline_vs_inmemory:.3},\n  \"pipeline_prefetched\": {pipe_prefetched},\n  \"pipeline_peak_inflight_bytes\": {pipe_inflight},\n  \"pipeline_identical\": {pipe_identical},\n  \"fingerprint_batch_buyers\": {FP_BUYERS},\n  \"fingerprint_batch_tuples\": {fp_tuples},\n  \"fingerprint_batch_trace_ms\": {fp_batch_best:.3},\n  \"fingerprint_batch_sequential_ms\": {fp_sequential_best:.3},\n  \"fingerprint_batch_recipients_per_s\": {fp_recipients_per_s:.0},\n  \"fingerprint_batch_speedup\": {fp_speedup:.3},\n  \"delta_bytes_per_recipient\": {delta_bytes_per_recipient:.1},\n  \"delta_recipients_per_s\": {delta_recipients_per_s:.0},\n  \"delta_vs_copy_bytes_ratio\": {delta_vs_copy_bytes_ratio:.3},\n  \"delta_extract_ms\": {delta_best:.3},\n  \"delta_full_copies_ms\": {delta_copies_best:.3},\n  \"delta_extract_vs_copies\": {delta_extract_vs_copies:.3},\n  \"churn_segments\": {churn_seg_count},\n  \"churn_segment_rows\": {churn_segment_rows},\n  \"churn_updates_per_round\": {churn_updates},\n  \"churn_rounds\": {CHURN_ROUNDS},\n  \"churn_dirty_segments\": {churn_dirty},\n  \"churn_clean_segments\": {churn_clean},\n  \"churn_full_repass_ms\": {churn_full_best:.3},\n  \"churn_incremental_ms\": {churn_inc_best:.3},\n  \"churn_speedup\": {churn_speedup:.3},\n  \"churn_identical\": {churn_identical},\n  \"churn_unique_blobs\": {churn_unique_blobs},\n  \"churn_referenced_blobs\": {churn_manifest_refs},\n  \"churn_dedup_hits\": {churn_dedup_hits},\n  \"plan_cache_hits\": {plan_hits},\n  \"plan_cache_misses\": {plan_misses},\n  \"plan_cache_evictions\": {plan_evictions},\n  \"vote_cache_hits\": {vote_hits},\n  \"vote_cache_misses\": {vote_misses},\n  \"vote_cache_evictions\": {vote_evictions},\n  \"pager_hits\": {pager_hits},\n  \"pager_misses\": {pager_misses},\n  \"pager_evictions\": {pager_evictions},\n  \"evidence_detect_plain_ms\": {detect_plain_best:.3},\n  \"evidence_detect_certified_ms\": {detect_certified_best:.3},\n  \"evidence_overhead\": {evidence_overhead:.3},\n  \"evidence_bundle_bytes\": {evidence_bundle_bytes},\n  \"sha_backend\": \"{sha_backend}\",\n  \"sha_ni_available\": {shani_available},\n  \"hash_soft_mb_per_s\": {hash_soft_mb_per_s:.1},\n  \"hash_shani_mb_per_s\": {hash_shani_mb_per_s:.1},\n  \"plan_threads_scaling\": {{ \"t1_ms\": {t1:.3}, \"t2_ms\": {t2:.3}, \"t4_ms\": {t4:.3} }},\n  \"host_threads\": {host_threads},\n  \"byte_identical\": {byte_identical}\n}}\n",
        t1 = plan_threads_ms[0],
        t2 = plan_threads_ms[1],
        t4 = plan_threads_ms[2],
        plan_hits = plan_cache_stats.hits,
        plan_misses = plan_cache_stats.misses,
        plan_evictions = plan_cache_stats.evictions,
        vote_hits = vote_cache_stats.hits,
        vote_misses = vote_cache_stats.misses,
        vote_evictions = vote_cache_stats.evictions,
        pager_hits = pager_stats.hits,
        pager_misses = pager_stats.misses,
        pager_evictions = pager_stats.evictions,
    );
    std::fs::write("BENCH_markplan.json", &json).expect("can write BENCH_markplan.json");
    println!("wrote BENCH_markplan.json");
}

fn bind(spec: &WatermarkSpec, rel: &Relation) -> MarkSession {
    MarkSession::builder(spec.clone())
        .key_column("visit_nbr")
        .target_column("item_nbr")
        .bind(rel)
        .expect("bench schema binds")
}

/// The seed embedding loop, reproduced verbatim in structure: one
/// `H(key, k1)` for the fitness test, a second for the value base, a
/// key materialization per row, and a canonical-bytes allocation per
/// hash call.
fn baseline_embed(
    spec: &WatermarkSpec,
    rel: &mut Relation,
    key_idx: usize,
    attr_idx: usize,
    wm: &Watermark,
) {
    let keyed1 = spec.keyed1();
    let keyed2 = spec.keyed2();
    let wm_data = MajorityVotingEcc.encode(wm, spec.wm_data_len);
    let n = spec.domain.len() as u64;
    for row in 0..rel.len() {
        let key = rel.value(row, key_idx).expect("row in range");
        if !keyed1.hash_u64(&[&key.canonical_bytes()]).is_multiple_of(spec.e) {
            continue;
        }
        let idx = (keyed2.hash_u64(&[&key.canonical_bytes()]) % spec.wm_data_len as u64) as usize;
        let bit = wm_data[idx];
        let base = (keyed1.hash_u64(&[&key.canonical_bytes()]) >> 32) % n;
        let t = catmark_core::bits::force_lsb_in_domain(base, bit, n);
        let new_value = spec.domain.value_at(t as usize).clone();
        let old_value = rel.value(row, attr_idx).expect("row in range");
        if old_value == new_value {
            continue;
        }
        rel.update_value(row, attr_idx, new_value).expect("value in domain");
    }
}

/// The seed decoding loop: full re-scan, rehashing every key.
fn baseline_decode(
    spec: &WatermarkSpec,
    rel: &Relation,
    key_idx: usize,
    attr_idx: usize,
) -> Watermark {
    let keyed1 = spec.keyed1();
    let keyed2 = spec.keyed2();
    let len = spec.wm_data_len;
    let mut ones = vec![0u32; len];
    let mut zeros = vec![0u32; len];
    for row in 0..rel.len() {
        let key = rel.value(row, key_idx).expect("row in range");
        if !keyed1.hash_u64(&[&key.canonical_bytes()]).is_multiple_of(spec.e) {
            continue;
        }
        let Ok(t) = spec.domain.index_of(&rel.value(row, attr_idx).expect("row in range")) else {
            continue;
        };
        let idx = (keyed2.hash_u64(&[&key.canonical_bytes()]) % len as u64) as usize;
        if t & 1 == 1 {
            ones[idx] += 1;
        } else {
            zeros[idx] += 1;
        }
    }
    let wm_data: Vec<Option<bool>> = (0..len)
        .map(|i| match (ones[i], zeros[i]) {
            (0, 0) => None,
            (o, z) => Some(o > z),
        })
        .collect();
    let mut tie_break = |_: usize| false;
    MajorityVotingEcc.decode(&wm_data, spec.wm_len, &mut tie_break)
}

/// The pre-columnar *plan* path, emulated: one keyed-hash pass (no
/// double `H(·, k1)`) but every access through per-row `Value`
/// materialization and the generic streaming hashers — the cost
/// profile of `MarkPlan` over the old `Vec<Tuple>` storage.
fn rowstore_plan(
    spec: &WatermarkSpec,
    tuples: &[Tuple],
    key_idx: usize,
) -> Vec<(usize, usize, u64)> {
    let sel = FitnessSelector::new(spec);
    let n = spec.domain.len() as u64;
    let mut fit = Vec::with_capacity(tuples.len() / spec.e as usize + 64);
    for (row, tuple) in tuples.iter().enumerate() {
        if let Some(facts) = sel.facts(tuple.get(key_idx)) {
            fit.push((row, facts.position, facts.value_base(n)));
        }
    }
    fit
}

/// The old plan cache's key-column content fingerprint, through
/// per-row Value materialization (FNV-1a per value, SplitMix fold).
fn rowstore_fingerprint(tuples: &[Tuple], key_idx: usize) -> u64 {
    fn mix(h: u64, v: u64) -> u64 {
        (h ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(23)
    }
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for tuple in tuples {
        let f = match tuple.get(key_idx) {
            Value::Int(i) => *i as u64 ^ 0x0100_0000_0000_0000,
            Value::Text(s) => {
                let mut f = 0xCBF2_9CE4_8422_2325u64;
                for &b in s.as_bytes() {
                    f = (f ^ u64::from(b)).wrapping_mul(0x1000_0000_01B3);
                }
                f
            }
        };
        h = mix(h, f);
    }
    h
}

fn rowstore_embed(
    spec: &WatermarkSpec,
    tuples: &mut [Tuple],
    attr_idx: usize,
    wm: &Watermark,
    plan: &[(usize, usize, u64)],
) {
    let wm_data = MajorityVotingEcc.encode(wm, spec.wm_data_len);
    let n = spec.domain.len() as u64;
    for &(row, position, value_base) in plan {
        let bit = wm_data[position];
        let t = catmark_core::bits::force_lsb_in_domain(value_base, bit, n);
        let new_value = spec.domain.value_at(t as usize);
        if tuples[row].get(attr_idx) == new_value {
            continue;
        }
        tuples[row].set(attr_idx, new_value.clone());
    }
}

fn rowstore_decode(
    spec: &WatermarkSpec,
    tuples: &[Tuple],
    attr_idx: usize,
    plan: &[(usize, usize, u64)],
) -> Watermark {
    let len = spec.wm_data_len;
    let mut ones = vec![0u32; len];
    let mut zeros = vec![0u32; len];
    for &(row, position, _) in plan {
        let Some(t) = spec.domain.code_of(tuples[row].get(attr_idx)) else {
            continue;
        };
        if t & 1 == 1 {
            ones[position] += 1;
        } else {
            zeros[position] += 1;
        }
    }
    let wm_data: Vec<Option<bool>> = (0..len)
        .map(|i| match (ones[i], zeros[i]) {
            (0, 0) => None,
            (o, z) => Some(o > z),
        })
        .collect();
    let mut tie_break = |_: usize| false;
    MajorityVotingEcc.decode(&wm_data, spec.wm_len, &mut tie_break)
}

/// The historical `ops::select`: materialize a row [`Tuple`] per row
/// and run the interpreted predicate over it.
fn rowstore_select(rel: &Relation, pred: &Predicate) -> Relation {
    let mut rows = Vec::new();
    for row in 0..rel.len() {
        let tuple = rel.tuple(row).expect("row in range");
        if pred.eval(rel.schema(), &tuple).expect("bench predicate is valid") {
            rows.push(row);
        }
    }
    rel.gather(&rows)
}

/// A catalog relation keyed by product code with a text department,
/// for the join scenario (~17 departments over the item domain).
fn catalog_for(domain: &CategoricalDomain) -> Relation {
    let schema = catmark_relation::Schema::builder()
        .key_attr("item_nbr", catmark_relation::AttrType::Integer)
        .categorical_attr("dept", catmark_relation::AttrType::Text)
        .build()
        .expect("static schema is valid");
    let mut rel = Relation::with_capacity(schema, domain.len());
    for (i, v) in domain.values().iter().enumerate() {
        rel.push(vec![v.clone(), Value::Text(format!("dept-{}", i % 17))])
            .expect("catalog rows are valid");
    }
    rel
}

/// The historical hash join: `Value`-keyed build map, tuple-at-a-time
/// probe, per-row output assembly through `push_unchecked_key`.
fn rowstore_join(left: &Relation, right: &Relation, l_idx: usize, r_idx: usize) -> Relation {
    let mut build: HashMap<Value, Vec<usize>> = HashMap::new();
    for (row, v) in right.column_iter(r_idx).enumerate() {
        build.entry(v).or_default().push(row);
    }
    let schema = join::hash_join(
        &Relation::new(left.schema().clone()),
        &Relation::new(right.schema().clone()),
        left.schema().attr(l_idx).name.as_str(),
        right.schema().attr(r_idx).name.as_str(),
    )
    .expect("bench schemas join")
    .schema()
    .clone();
    let mut out = Relation::with_capacity(schema, left.len());
    for l_tuple in left.iter() {
        let Some(matches) = build.get(l_tuple.get(l_idx)) else {
            continue;
        };
        for &r_row in matches {
            let r_tuple = right.tuple(r_row).expect("build rows in range");
            let mut values = Vec::with_capacity(l_tuple.values().len() + r_tuple.values().len());
            values.extend_from_slice(l_tuple.values());
            values.extend_from_slice(r_tuple.values());
            out.push_unchecked_key(values).expect("joined tuple matches joined schema");
        }
    }
    out
}

/// The guarded scenario's constraint stack: an effectively unlimited
/// budget, a 4/5 allow-list, and three `preserve count` queries
/// (in-set, range, equality) over the city attribute — the
/// Section 4.1 + Gross-Amblard query-preservation contract.
fn city_guard(rel: &Relation, domain: &CategoricalDomain, attr: usize) -> QualityGuard {
    let pick = |i: usize| domain.value_at(i % domain.len()).clone();
    let in_set: HashSet<Value> = (0..8).map(|i| pick(i * 5)).collect();
    let allowed: Vec<Value> =
        (0..domain.len()).filter(|i| i % 5 != 0).map(|i| domain.value_at(i).clone()).collect();
    let constraints: Vec<Box<dyn QualityConstraint>> = vec![
        Box::new(AlterationBudget::new(usize::MAX / 2)),
        Box::new(AllowedReplacements::new(allowed)),
        Box::new(CountQueryPreservation::from_relation(
            rel,
            vec![
                CountQuery::new("set", attr, ValueSet::In(in_set), Tolerance::Relative(0.02)),
                CountQuery::new(
                    "range",
                    attr,
                    ValueSet::Range(pick(3), pick(30)),
                    Tolerance::Relative(0.05),
                ),
                CountQuery::new("eq", attr, ValueSet::Eq(pick(12)), Tolerance::Absolute(50)),
            ],
        )),
    ];
    QualityGuard::new(constraints)
}

/// The historical guarded embedding loop: owned `Value` alterations
/// proposed through the value-space guard, over genuine row-tuple
/// storage. Returns (altered, vetoed).
fn rowstore_guarded_embed(
    spec: &WatermarkSpec,
    tuples: &mut [Tuple],
    attr_idx: usize,
    wm: &Watermark,
    plan: &[(usize, usize, u64)],
    guard: &mut QualityGuard,
) -> (usize, usize) {
    let wm_data = MajorityVotingEcc.encode(wm, spec.wm_data_len);
    let n = spec.domain.len() as u64;
    let mut altered = 0usize;
    let mut vetoed = 0usize;
    for &(row, position, value_base) in plan {
        let bit = wm_data[position];
        let t = catmark_core::bits::force_lsb_in_domain(value_base, bit, n);
        let new_value = spec.domain.value_at(t as usize);
        let old = tuples[row].get(attr_idx);
        if old == new_value {
            continue;
        }
        let change = Alteration { row, attr: attr_idx, old: old.clone(), new: new_value.clone() };
        if guard.propose(change) {
            tuples[row].set(attr_idx, new_value.clone());
            altered += 1;
        } else {
            vetoed += 1;
        }
    }
    (altered, vetoed)
}

/// Heap footprint of the emulated row store (what the seed layout held
/// resident): one `Vec<Value>` allocation per tuple plus the key index
/// re-owning every key.
fn rowstore_resident_bytes(tuples: &[Tuple], index: &HashMap<Value, usize>) -> usize {
    let per_tuple: usize = tuples
        .iter()
        .map(|t| {
            std::mem::size_of::<Tuple>()
                + std::mem::size_of_val(t.values())
                + t.values()
                    .iter()
                    .map(|v| match v {
                        Value::Int(_) => 0,
                        Value::Text(s) => s.capacity(),
                    })
                    .sum::<usize>()
        })
        .sum();
    per_tuple + index.capacity() * (std::mem::size_of::<Value>() + 16)
}
