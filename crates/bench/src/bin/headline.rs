//! EXP-H — the abstract's headline claim: "tolerating up to 80% data
//! loss with a watermark alteration of only 25%".
//!
//! Runs the Figure 7 pipeline at exactly 80% loss and prints the
//! claim, the measurement, and the verdict.
//!
//! Usage: `headline [--quick]`

use catmark_bench::figures::fig7;
use catmark_bench::ExperimentConfig;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        ExperimentConfig { tuples: 6_000, passes: 5, ..Default::default() }
    } else {
        ExperimentConfig { passes: 15, ..Default::default() }
    };
    let rows = fig7(&config, &[80], 65);
    let measured = rows[0].alteration_pct;
    println!("# Headline claim (abstract / §5): 80% data loss => ~25% mark alteration");
    println!("# setup: N={} |wm|={} e=65 passes={}", config.tuples, config.wm_len, config.passes);
    println!("paper_claim_pct    25.0");
    println!("measured_pct       {measured:.2}");
    let verdict = if measured <= 30.0 { "HOLDS (within tolerance)" } else { "DEGRADED" };
    println!("verdict            {verdict}");
}
