//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Erasure policy** — Abstain vs RandomFill vs ZeroFill on the
//!    Figure 7 data-loss sweep (deviation 3).
//! 2. **ECC layout** — interleaved majority voting vs contiguous
//!    blocks under contiguous-position erasure.
//! 3. **Position selection** — `k2`-hash variant vs the embedding-map
//!    variant (Fig. 1(b)/2(b)) under data loss.
//!
//! Usage: `ablations [--quick]`

use catmark_attacks::Attack;
use catmark_bench::experiment::{run, ExperimentConfig};
use catmark_bench::report::Table;
use catmark_core::decode::ErasurePolicy;
use catmark_core::ecc::{BlockRepetitionEcc, ErrorCorrectingCode, MajorityVotingEcc};
use catmark_core::map_variant::{decode_with_map, embed_with_map};
use catmark_relation::ops;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (tuples, passes) = if quick { (6_000, 5) } else { (6_000, 15) };

    erasure_policy_ablation(tuples, passes);
    println!();
    ecc_layout_ablation();
    println!();
    ecc_family_ablation();
    println!();
    map_variant_ablation(tuples, passes);
    println!();
    wide_channel_ablation(tuples, passes);
}

/// Ablation 1: the decoder's erasure policy across the Fig. 7 sweep.
fn erasure_policy_ablation(tuples: usize, passes: usize) {
    let mut t = Table::new();
    t.comment("ablation 1: erasure policy on the Figure 7 data-loss sweep (e=65)")
        .comment("RandomFill reproduces the paper's magnitudes; Abstain is statistically cleanest")
        .columns(&["loss_pct", "abstain_pct", "randomfill_pct", "zerofill_pct"]);
    for loss in [10u64, 30, 50, 70, 80] {
        let mut cells = vec![loss as f64];
        for policy in [ErasurePolicy::Abstain, ErasurePolicy::RandomFill, ErasurePolicy::ZeroFill] {
            let config = ExperimentConfig { tuples, passes, erasure: policy, ..Default::default() };
            let attack = move |pass: usize| {
                vec![Attack::HorizontalLoss {
                    keep: 1.0 - loss as f64 / 100.0,
                    seed: 31_000 + 100 * loss + pass as u64,
                }]
            };
            cells.push(run(&config, 65, &attack).mean_alteration * 100.0);
        }
        t.row_f64(&cells, 2);
    }
    print!("{}", t.render());
}

/// Ablation 2: interleaved vs block repetition under prefix erasure
/// (pure ECC property, no relation needed).
fn ecc_layout_ablation() {
    use catmark_core::Watermark;
    let wm = Watermark::from_u64(0b11_0101_1001, 10);
    let out_len = 100;
    let mut t = Table::new();
    t.comment("ablation 2: ECC layout under contiguous erasure of wm_data positions")
        .comment("interleaving spreads each bit's copies; block coding loses whole bits")
        .columns(&["erased_prefix_pct", "interleaved_bits_lost", "block_bits_lost"]);
    for erased_pct in [10usize, 30, 50, 70] {
        let erased = out_len * erased_pct / 100;
        let survivors = |data: Vec<bool>| -> Vec<Option<bool>> {
            data.into_iter()
                .enumerate()
                .map(|(i, b)| if i < erased { None } else { Some(b) })
                .collect()
        };
        let inter = MajorityVotingEcc;
        let block = BlockRepetitionEcc;
        let mut coin = |_: usize| false;
        let inter_lost = wm.hamming_distance(&inter.decode(
            &survivors(inter.encode(&wm, out_len)),
            10,
            &mut coin,
        ));
        let mut coin = |_: usize| false;
        let block_lost = wm.hamming_distance(&block.decode(
            &survivors(block.encode(&wm, out_len)),
            10,
            &mut coin,
        ));
        t.row_f64(&[erased_pct as f64, inter_lost as f64, block_lost as f64], 0);
    }
    print!("{}", t.render());
}

/// Ablation 2b: ECC *family* — repetition-majority vs Hamming(7,4)
/// repetition under adversarial position wipe-out (all copies of `w`
/// positions destroyed) and under random copy corruption. Pure ECC
/// property, averaged over watermarks.
fn ecc_family_ablation() {
    use catmark_core::ecc::HammingMajorityEcc;
    use catmark_core::Watermark;
    let out_len = 210; // 21 copies of a 10-bit repetition, 10 of a 21-bit codeword
    let wm_len = 10usize;
    let mut t = Table::new();
    t.comment(
        "ablation 2b: ECC family under total wipe-out of w positions (|wm|=10, |wm_data|=210)",
    )
    .comment(
        "repetition has no parity: each wiped position is a lost bit; Hamming corrects 1/block",
    )
    .columns(&["wiped_positions", "majority_bits_lost", "hamming_bits_lost"]);
    // Wipe all copies of the position classes in `classes` (class =
    // index mod the code's layout stride).
    let wipe = |data: Vec<bool>, stride: usize, classes: &[usize]| -> Vec<Option<bool>> {
        data.into_iter()
            .enumerate()
            .map(|(i, b)| if classes.contains(&(i % stride)) { Some(!b) } else { Some(b) })
            .collect()
    };
    for wiped in [0usize, 1, 2, 3, 4] {
        let (mut maj_lost, mut ham_lost) = (0u32, 0u32);
        let trials = 20u32;
        // The adversary spreads damage maximally: for repetition every
        // position class is its own watermark bit, so any w classes
        // cost w bits; for Hamming the spread puts one wipe per 7-bit
        // block until blocks run out (3 blocks for |wm| = 10).
        let maj_classes: Vec<usize> = (0..wiped).collect();
        let ham_classes: Vec<usize> =
            (0..wiped).map(|c| if c < 3 { c * 7 + 3 } else { (c - 3) * 7 + 4 }).collect();
        for trial in 0..trials {
            let wm = Watermark::from_u64((0x155 ^ (u64::from(trial) * 0x9E37)) & 0x3FF, wm_len);
            let maj = MajorityVotingEcc;
            let ham = HammingMajorityEcc;
            let mut coin = |_: usize| false;
            let maj_decoded = maj.decode(
                &wipe(maj.encode(&wm, out_len), wm_len, &maj_classes),
                wm_len,
                &mut coin,
            );
            maj_lost += wm.hamming_distance(&maj_decoded) as u32;
            let mut coin = |_: usize| false;
            let ham_decoded =
                ham.decode(&wipe(ham.encode(&wm, out_len), 21, &ham_classes), wm_len, &mut coin);
            ham_lost += wm.hamming_distance(&ham_decoded) as u32;
        }
        t.row_f64(
            &[
                wiped as f64,
                f64::from(maj_lost) / f64::from(trials),
                f64::from(ham_lost) / f64::from(trials),
            ],
            2,
        );
    }
    print!("{}", t.render());
}

/// Ablation 4: the §3.1 direct-domain augmentation — bits per tuple
/// vs resilience under random alteration (same wm_data length, so
/// wider channels trade per-position redundancy for coverage).
fn wide_channel_ablation(tuples: usize, passes: usize) {
    use catmark_core::wide::WideCodec;
    let config =
        ExperimentConfig { tuples, passes, erasure: ErasurePolicy::Abstain, ..Default::default() };
    let (base, domain) = config.base_relation();
    let mut t = Table::new();
    t.comment("ablation 4: direct-domain width (bits per fit tuple), e=60, |wm_data|=400")
        .comment("wider channels cover more positions per tuple but concentrate attack damage")
        .columns(&["attack_pct", "width1_pct", "width2_pct", "width4_pct"]);
    for attack_pct in [0u64, 20, 40, 60] {
        let mut cells = vec![attack_pct as f64];
        for width in [1u32, 2, 4] {
            let mut total = 0.0;
            for pass in 0..config.passes {
                let mut spec = config.spec_for_pass(domain.clone(), 60, pass);
                spec.wm_data_len = 400;
                let wm = config.watermark_for_pass(pass);
                let codec = WideCodec::new(&spec, width).expect("valid width");
                let mut marked = base.clone();
                codec.embed(&mut marked, "visit_nbr", "item_nbr", &wm).expect("embed");
                let suspect = Attack::RandomAlteration {
                    attr: "item_nbr".into(),
                    fraction: attack_pct as f64 / 100.0,
                    seed: 91_000 + 100 * attack_pct + pass as u64,
                }
                .apply(&marked)
                .expect("attack");
                let decoded = codec.decode(&suspect, "visit_nbr", "item_nbr").expect("decode");
                total += wm.alteration_fraction(&decoded);
            }
            cells.push(total / config.passes as f64 * 100.0);
        }
        t.row_f64(&cells, 2);
    }
    print!("{}", t.render());
}

/// Ablation 3: k2-hash position selection vs the embedding map.
fn map_variant_ablation(tuples: usize, passes: usize) {
    let config = ExperimentConfig { tuples, passes, ..Default::default() };
    let (base, domain) = config.base_relation();
    let mut t = Table::new();
    t.comment("ablation 3: k2-hash positions vs embedding-map (Fig 1b/2b) under data loss, e=65")
        .comment("the map gives every position exactly one carrier: better low-loss accuracy,")
        .comment("at the cost of O(N/e) detector-side state")
        .columns(&["loss_pct", "k2_variant_pct", "map_variant_pct"]);
    for loss in [0u64, 20, 40, 60, 80] {
        let keep = 1.0 - loss as f64 / 100.0;
        // k2 variant through the standard runner.
        let attack = move |pass: usize| {
            vec![Attack::HorizontalLoss { keep, seed: 77_700 + 100 * loss + pass as u64 }]
        };
        let k2_result = run(&config, 65, &attack);
        // Map variant, averaged over the same passes.
        let mut map_total = 0.0;
        for pass in 0..config.passes {
            let spec = config.spec_for_pass(domain.clone(), 65, pass);
            let wm = config.watermark_for_pass(pass);
            let mut marked = base.clone();
            let map = embed_with_map(&spec, &mut marked, "visit_nbr", "item_nbr", &wm)
                .expect("embedding succeeds");
            let suspect = ops::sample_bernoulli(&marked, keep, 77_700 + 100 * loss + pass as u64);
            let decoded = decode_with_map(&spec, &suspect, "visit_nbr", "item_nbr", &map)
                .expect("map decode succeeds");
            map_total += wm.alteration_fraction(&decoded);
        }
        let map_pct = map_total / config.passes as f64 * 100.0;
        t.row_f64(&[loss as f64, k2_result.mean_alteration * 100.0, map_pct], 2);
    }
    print!("{}", t.render());
}
