//! Collusion-resistance curve (extension of the paper's §6
//! "additive watermark attacks" open problem).
//!
//! Sweeps the coalition size `c` for the three collusion strategies of
//! `catmark_attacks::collusion` and reports, per strategy:
//!
//! * the fraction of colluders still individually traceable at
//!   α = 10⁻², next to the `catmark_analysis::collusion` closed-form
//!   prediction for the majority and mix-and-match strategies, and
//! * the false-positive probability of the *best-ranked innocent*
//!   buyer (which must stay at chance level — an attack that frames
//!   innocents would be worse news than one that hides colluders).
//!
//! Usage: `collusion_curve [--quick]`

use catmark_analysis::collusion::{traced_in_coalition, Strategy};
use catmark_attacks::collusion;
use catmark_bench::report::Table;
use catmark_core::decode::ErasurePolicy;
use catmark_core::fingerprint::FingerprintRegistry;
use catmark_core::WatermarkSpec;
use catmark_datagen::{ItemScanConfig, SalesGenerator};
use catmark_relation::Relation;

const ALPHA: f64 = 1e-2;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let tuples = if quick { 4_000 } else { 9_000 };
    let max_coalition = if quick { 3 } else { 5 };

    let gen = SalesGenerator::new(ItemScanConfig { tuples, ..Default::default() });
    let rel = gen.generate();
    let base = WatermarkSpec::builder(gen.item_domain())
        .master_key("collusion-curve")
        .e(10)
        .wm_len(10)
        .expected_tuples(rel.len())
        .erasure(ErasurePolicy::Abstain)
        .build()
        .expect("static spec is valid");

    let mut reg = FingerprintRegistry::new(base);
    let buyer_names: Vec<String> = (0..max_coalition).map(|i| format!("buyer{i}")).collect();
    let copies: Vec<Relation> = buyer_names
        .iter()
        .map(|b| {
            reg.mark_copy(&rel, b, "visit_nbr", "item_nbr")
                .expect("embedding on generated data succeeds")
                .0
        })
        .collect();
    reg.register("innocent-1");
    reg.register("innocent-2");

    let mut t = Table::new();
    t.comment("collusion resistance: traced colluder fraction at alpha=1e-2, per strategy")
        .comment(format!("N={tuples}, e=10, |wm|=10; innocent column = best innocent's fp"))
        .columns(&[
            "coalition",
            "majority_traced",
            "majority_model",
            "mixmatch_traced",
            "mixmatch_model",
            "rowshare_traced",
            "innocent_fp",
        ]);

    for c in 1..=max_coalition {
        let coalition: Vec<&Relation> = copies[..c].iter().collect();
        let colluders = &buyer_names[..c];

        let majority =
            collusion::majority_merge(&coalition, 42 + c as u64).expect("aligned copies merge");
        let mixed =
            collusion::mix_and_match(&coalition, 97 + c as u64).expect("aligned copies merge");
        let shared = collusion::row_share(&coalition).expect("aligned copies merge");

        let mut innocent_fp: f64 = 1.0;
        let mut traced = Vec::with_capacity(3);
        for suspect in [&majority, &mixed, &shared] {
            let results = reg
                .trace(suspect, "visit_nbr", "item_nbr")
                .expect("trace on intact schema succeeds");
            let hit = results
                .iter()
                .filter(|r| colluders.contains(&r.buyer) && r.detection.is_significant(ALPHA))
                .count();
            traced.push(hit as f64 / c as f64);
            let best_innocent = results
                .iter()
                .filter(|r| r.buyer.starts_with("innocent"))
                .map(|r| r.detection.false_positive_probability)
                .fold(1.0, f64::min);
            innocent_fp = innocent_fp.min(best_innocent);
        }
        let majority_model =
            traced_in_coalition(Strategy::MajorityMerge, c as u64, 10, tuples as u64, 10, ALPHA);
        let mix_model =
            traced_in_coalition(Strategy::MixAndMatch, c as u64, 10, tuples as u64, 10, ALPHA);
        t.row_f64(
            &[c as f64, traced[0], majority_model, traced[1], mix_model, traced[2], innocent_fp],
            4,
        );
    }
    print!("{}", t.render());
    println!("#");
    println!("# reading: majority merging erodes tracing fastest (ties only keep ~1/c of");
    println!("# each colluder's marks); mix-and-match and row-sharing keep every colluder");
    println!("# traceable far longer. The *_model columns are the closed-form predictions");
    println!("# of catmark_analysis::collusion — same cliff locations as measured.");
    println!("# Innocent buyers stay at chance level throughout.");
}
