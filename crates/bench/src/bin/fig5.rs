//! EXP-F5 — Figure 5: "More available bandwidth (decreasing e) results
//! in a higher attack resilience" (mark alteration % vs. e, for attack
//! sizes 55% and 20%).
//!
//! Usage: `fig5 [--quick]`

use catmark_bench::figures::fig5;
use catmark_bench::report::Table;
use catmark_bench::ExperimentConfig;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        ExperimentConfig { tuples: 6_000, passes: 5, ..Default::default() }
    } else {
        ExperimentConfig::default()
    };
    let e_values: Vec<u64> = (10..=200).step_by(10).collect();
    let rows = fig5(&config, &e_values);

    let mut table = Table::new();
    table
        .comment("Figure 5 reproduction: mark alteration (%) vs e")
        .comment(format!(
            "N={} |wm|={} passes={}; attack sizes 55% and 20%",
            config.tuples, config.wm_len, config.passes
        ))
        .comment("expected shape: alteration grows with e; 55% series above 20%")
        .columns(&["e", "mark_alteration_attack55_pct", "mark_alteration_attack20_pct"]);
    for r in &rows {
        table.row_f64(&[r.x, r.y1, r.y2], 2);
    }
    print!("{}", table.render());
}
