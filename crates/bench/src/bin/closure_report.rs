//! Pair-closure quality report (Section 3.3's closure construction).
//!
//! Builds the closure over a 4-categorical-attribute schema, prints
//! the oriented pairs with their bandwidth/interference diagnostics,
//! then drives every "keep two attributes" vertical partition (A5) and
//! reports how many witnesses survive each — the property the closure
//! exists to guarantee.
//!
//! Usage: `closure_report [--quick]`

use std::collections::HashMap;

use catmark_bench::report::Table;
use catmark_core::closure::{build_closure, plan_from_closure};
use catmark_core::decode::ErasurePolicy;
use catmark_core::multiattr::{aggregate_verdict, decode_multiattr, embed_multiattr};
use catmark_core::{Watermark, WatermarkSpec};
use catmark_datagen::domains::product_codes;
use catmark_relation::{ops, AttrType, CategoricalDomain, Relation, Schema, Value};

fn wide_relation(n: i64) -> Relation {
    let schema = Schema::builder()
        .key_attr("visit", AttrType::Integer)
        .categorical_attr("item", AttrType::Integer)
        .categorical_attr("supplier", AttrType::Integer)
        .categorical_attr("store", AttrType::Integer)
        .categorical_attr("channel", AttrType::Integer)
        .build()
        .expect("static schema is valid");
    let mut rel = Relation::with_capacity(schema, n as usize);
    for i in 0..n {
        rel.push(vec![
            Value::Int(i),
            Value::Int(10_000 + (i * 7_919) % 500),
            Value::Int(500 + (i * 104_729) % 200),
            Value::Int((i * 31) % 40),
            Value::Int((i * 13) % 4),
        ])
        .expect("generated tuples satisfy the schema");
    }
    rel
}

fn domains() -> HashMap<String, CategoricalDomain> {
    HashMap::from([
        ("item".to_owned(), product_codes(500, 10_000)),
        ("supplier".to_owned(), product_codes(200, 500)),
        ("store".to_owned(), product_codes(40, 0)),
        ("channel".to_owned(), product_codes(4, 0)),
    ])
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n: i64 = if quick { 4_000 } else { 12_000 };

    let mut rel = wide_relation(n);
    let closure = build_closure(&rel).expect("schema has categorical attributes");

    let mut t = Table::new();
    t.comment("pair closure over (visit, item, supplier, store, channel)")
        .comment(format!(
            "pairs={} dropped={} max_target_load={} categorical_pseudo_keys={}",
            closure.len(),
            closure.dropped.len(),
            closure.max_load(),
            closure.categorical_pseudo_keys
        ))
        .columns(&["pseudo_key", "target", "target_load"]);
    for p in &closure.pairs {
        t.row(&[p.pseudo_key.clone(), p.target.clone(), closure.load[&p.target].to_string()]);
    }
    print!("{}", t.render());
    println!();

    let base = WatermarkSpec::builder(product_codes(500, 10_000))
        .master_key("closure-report")
        .e(5)
        .wm_len(10)
        .expected_tuples(rel.len())
        .erasure(ErasurePolicy::Abstain)
        .build()
        .expect("static spec is valid");
    let plan =
        plan_from_closure(&rel, &base, &domains(), &closure).expect("domains cover all targets");
    let wm = Watermark::from_u64(0b1001101011, 10);
    let outcomes = embed_multiattr(&plan, &mut rel, &wm).expect("embedding succeeds");
    let altered: usize = outcomes.iter().map(|o| o.report.altered).sum();

    let mut t = Table::new();
    t.comment(format!(
        "A5 sweep: every 2-attribute vertical partition; total alterations spent = {altered}"
    ))
    .columns(&["partition", "witnesses", "significant", "best_fp"]);
    let attrs = ["item", "supplier", "store", "channel"];
    for (i, a) in attrs.iter().enumerate() {
        for b in &attrs[i + 1..] {
            let ia = rel.schema().index_of(a).expect("known attr");
            let ib = rel.schema().index_of(b).expect("known attr");
            let partitioned = ops::project(&rel, &[ia, ib], 0, false).expect("projection is valid");
            let witnesses =
                decode_multiattr(&plan, &partitioned, &wm).expect("decode is infallible here");
            let v = aggregate_verdict(&witnesses, 1e-2);
            t.row(&[
                format!("{a}+{b}"),
                v.witnesses.to_string(),
                v.significant_witnesses.to_string(),
                format!("{:.2e}", v.best_false_positive),
            ]);
        }
    }
    // The no-partition baseline.
    let witnesses = decode_multiattr(&plan, &rel, &wm).expect("decode succeeds");
    let v = aggregate_verdict(&witnesses, 1e-2);
    t.row(&[
        "(intact)".to_owned(),
        v.witnesses.to_string(),
        v.significant_witnesses.to_string(),
        format!("{:.2e}", v.best_false_positive),
    ]);
    print!("{}", t.render());
    println!("#");
    println!("# reading: every 2-attribute partition retains exactly one oriented pair,");
    println!("# so a witness always survives an A5 projection. Witness *strength* tracks");
    println!("# the pseudo-key's cardinality: item/supplier-keyed pairs testify at");
    println!("# fp<1e-3, while store/channel-keyed pairs (40/4 distinct values) lack the");
    println!("# bandwidth — the quantified form of the paper's open question about");
    println!("# categorical attributes as primary-key place-holders.");
}
