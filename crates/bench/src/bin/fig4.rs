//! EXP-F4 — Figure 4: "The watermark degrades gracefully with
//! increasing attack size" (mark alteration % vs. attack size %, for
//! e = 65 and e = 35).
//!
//! Usage: `fig4 [--quick]`

use catmark_bench::figures::fig4;
use catmark_bench::report::Table;
use catmark_bench::ExperimentConfig;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        ExperimentConfig { tuples: 6_000, passes: 5, ..Default::default() }
    } else {
        ExperimentConfig::default()
    };
    let attack_sizes: Vec<u64> = (20..=80).step_by(5).collect();
    let rows = fig4(&config, &attack_sizes);

    let mut table = Table::new();
    table
        .comment("Figure 4 reproduction: mark alteration (%) vs attack size (%)")
        .comment(format!(
            "N={} |wm|={} passes={} (paper: Wal-Mart ItemScan subset, 15 passes)",
            config.tuples, config.wm_len, config.passes
        ))
        .comment("expected shape: monotone increase; e=35 (more bandwidth) below e=65")
        .columns(&["attack_pct", "mark_alteration_e65_pct", "mark_alteration_e35_pct"]);
    for r in &rows {
        table.row_f64(&[r.x, r.y1, r.y2], 2);
    }
    print!("{}", table.render());
}
