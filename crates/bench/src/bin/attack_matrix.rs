//! The full adversary matrix: every attack of Section 2.3 (A1–A6, plus
//! composites) against both workloads (retail `ItemScan` and the
//! intro's airline reservations), scored with the POWER-style metric
//! suite (distortion / resilience / convince-ability).
//!
//! The paper reports this qualitatively ("our solution survives
//! important attacks, such as subset selection and data re-sorting");
//! this binary makes the claim quantitative and auditable.
//!
//! Usage: `attack_matrix [--quick]`

use catmark_attacks::{composite, Attack};
use catmark_bench::report::Table;
use catmark_core::decode::ErasurePolicy;
use catmark_core::power::score_run;
use catmark_core::remap::{apply_inverse, recover_mapping_confident};
use catmark_core::{MarkSession, Watermark, WatermarkSpec};
use catmark_datagen::{ItemScanConfig, ReservationsConfig, ReservationsGenerator, SalesGenerator};
use catmark_relation::{CategoricalDomain, FrequencyHistogram, Relation};

struct Workload {
    name: &'static str,
    original: Relation,
    domain: CategoricalDomain,
    key_attr: &'static str,
    target_attr: &'static str,
}

fn workloads(tuples: usize) -> Vec<Workload> {
    let sales = SalesGenerator::new(ItemScanConfig { tuples, ..Default::default() });
    let reservations =
        ReservationsGenerator::new(ReservationsConfig { tuples, ..Default::default() });
    vec![
        Workload {
            name: "item_scan",
            original: sales.generate(),
            domain: sales.item_domain(),
            key_attr: "visit_nbr",
            target_attr: "item_nbr",
        },
        Workload {
            name: "reservations",
            original: reservations.generate(),
            domain: reservations.city_domain(),
            key_attr: "booking_id",
            target_attr: "departure_city",
        },
    ]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let tuples = if quick { 4_000 } else { 12_000 };

    let mut table = Table::new();
    table
        .comment("A1-A6 resilience matrix with POWER-style scores")
        .comment(format!("N={tuples} |wm|=10 e=15 erasure=Abstain"))
        .comment("resilience = recovered bit fraction; fp = chance-match odds; survival = voting fit tuples")
        .columns(&["workload", "attack", "resilience", "fp_odds", "carrier_survival", "distortion"]);

    for w in workloads(tuples) {
        let spec = WatermarkSpec::builder(w.domain.clone())
            .master_key(format!("matrix-{}", w.name).as_str())
            .e(15)
            .wm_len(10)
            .expected_tuples(w.original.len())
            .erasure(ErasurePolicy::Abstain)
            .build()
            .expect("valid parameters");
        let wm = Watermark::from_u64(0b11_0010_1101 & 0x3FF, 10);
        let mut marked = w.original.clone();
        MarkSession::builder(spec.clone())
            .key_column(w.key_attr)
            .target_column(w.target_attr)
            .bind(&marked)
            .expect("workload schema binds")
            .embed(&mut marked, &wm)
            .expect("embedding succeeds");
        let reference = FrequencyHistogram::from_relation(
            &marked,
            marked.schema().index_of(w.target_attr).expect("attr"),
            &w.domain,
        )
        .expect("histogram");

        let attacks: Vec<(String, Relation)> = attack_suite(&marked, w.target_attr)
            .into_iter()
            .map(|(label, suspect)| {
                // A6 suspects get the §4.5 recovery (confident
                // variant: tie-ambiguous values abstain) before
                // decoding. On high-cardinality long-tail domains the
                // uniform carrier placement caps what any frequency
                // recovery can restore — see EXPERIMENTS.md.
                if label.starts_with("A6") {
                    let recovery = recover_mapping_confident(&reference, &suspect, w.target_attr)
                        .expect("recovery runs");
                    (label, apply_inverse(&suspect, w.target_attr, &recovery).expect("inverse"))
                } else {
                    (label, suspect)
                }
            })
            .collect();

        for (label, suspect) in attacks {
            let score =
                score_run(&w.original, &marked, &suspect, &spec, &wm, w.key_attr, w.target_attr)
                    .expect("scoring runs");
            table.row(&[
                w.name.to_owned(),
                label,
                format!("{:.2}", score.resilience),
                format!("{:.1e}", score.false_positive_probability),
                format!("{:.2}", score.carrier_survival),
                format!("{:.3}", score.distortion_rate),
            ]);
        }
    }
    print!("{}", table.render());
}

fn attack_suite(marked: &Relation, attr: &str) -> Vec<(String, Relation)> {
    let single = vec![
        Attack::HorizontalLoss { keep: 0.5, seed: 101 },
        Attack::SubsetAddition { fraction: 0.3, seed: 102 },
        Attack::RandomAlteration { attr: attr.to_owned(), fraction: 0.2, seed: 103 },
        Attack::Shuffle { seed: 104 },
        Attack::SortBy { attr: attr.to_owned(), ascending: true },
        Attack::BijectiveRemap { attr: attr.to_owned(), seed: 106 },
    ];
    let mut out: Vec<(String, Relation)> =
        single.into_iter().map(|a| (a.label(), a.apply(marked).expect("attack applies"))).collect();
    let steps = composite::determined_adversary(attr, 107);
    out.push((
        "composite".to_owned(),
        composite::pipeline(marked, &steps).expect("pipeline applies"),
    ));
    out
}
