//! EXP-F7 — Figure 7: "The watermark degrades almost linearly with
//! increasing data loss" (mark alteration % vs. data loss %, e = 65).
//!
//! Usage: `fig7 [--quick]`

use catmark_bench::figures::fig7;
use catmark_bench::report::Table;
use catmark_bench::ExperimentConfig;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        ExperimentConfig { tuples: 6_000, passes: 5, ..Default::default() }
    } else {
        ExperimentConfig::default()
    };
    let losses: Vec<u64> = (10..=80).step_by(5).collect();
    let rows = fig7(&config, &losses, 65);

    let mut table = Table::new();
    table
        .comment("Figure 7 reproduction: mark alteration (%) vs data loss (%), e=65")
        .comment(format!(
            "N={} |wm|={} passes={} erasure={:?}",
            config.tuples, config.wm_len, config.passes, config.erasure
        ))
        .comment("expected shape: monotone growth; <= ~25-30% alteration at 80% loss")
        .columns(&["data_loss_pct", "mark_alteration_pct", "ci95_low_pct", "ci95_high_pct"]);
    for r in &rows {
        table.row_f64(&[r.loss_pct, r.alteration_pct, r.ci95_pct.0, r.ci95_pct.1], 2);
    }
    print!("{}", table.render());
}
