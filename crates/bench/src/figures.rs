//! Series builders for each figure of the paper's evaluation.

use catmark_attacks::Attack;

use crate::experiment::{run, ExperimentConfig};

/// One row of a two-series plot.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoSeriesRow {
    /// The x-axis value.
    pub x: f64,
    /// First series y-value (percent).
    pub y1: f64,
    /// Second series y-value (percent).
    pub y2: f64,
}

/// Figure 4: mark alteration (%) vs. random-alteration attack size
/// (%), for e = 65 and e = 35. "The watermark degrades gracefully with
/// increasing attack size"; the smaller e (more bandwidth) dominates.
#[must_use]
pub fn fig4(config: &ExperimentConfig, attack_sizes_pct: &[u64]) -> Vec<TwoSeriesRow> {
    attack_sizes_pct
        .iter()
        .map(|&pct| {
            let attack = move |pass: usize| {
                vec![Attack::RandomAlteration {
                    attr: "item_nbr".into(),
                    fraction: pct as f64 / 100.0,
                    seed: 1_000 * pct + pass as u64,
                }]
            };
            let e65 = run(config, 65, &attack);
            let e35 = run(config, 35, &attack);
            TwoSeriesRow {
                x: pct as f64,
                y1: e65.mean_alteration * 100.0,
                y2: e35.mean_alteration * 100.0,
            }
        })
        .collect()
}

/// Figure 5: mark alteration (%) vs. e, for attack sizes 55% and 20%.
/// "More available bandwidth (decreasing e) results in a higher attack
/// resilience."
#[must_use]
pub fn fig5(config: &ExperimentConfig, e_values: &[u64]) -> Vec<TwoSeriesRow> {
    e_values
        .iter()
        .map(|&e| {
            let mk = |fraction: f64| {
                move |pass: usize| {
                    vec![Attack::RandomAlteration {
                        attr: "item_nbr".into(),
                        fraction,
                        seed: 77_000 + 100 * e + pass as u64,
                    }]
                }
            };
            let heavy = run(config, e, &mk(0.55));
            let light = run(config, e, &mk(0.20));
            TwoSeriesRow {
                x: e as f64,
                y1: heavy.mean_alteration * 100.0,
                y2: light.mean_alteration * 100.0,
            }
        })
        .collect()
}

/// One cell of the empirical Figure 6 surface.
#[derive(Debug, Clone, PartialEq)]
pub struct SurfaceRow {
    /// Attack size (%).
    pub attack_pct: f64,
    /// Fitness modulus.
    pub e: u64,
    /// Mark loss (%).
    pub mark_loss_pct: f64,
}

/// Figure 6: the composite surface — mark loss (%) over
/// (attack size, e). "Note the lower-left to upper-right tilt."
#[must_use]
pub fn fig6(
    config: &ExperimentConfig,
    attack_sizes_pct: &[u64],
    e_values: &[u64],
) -> Vec<SurfaceRow> {
    let mut rows = Vec::with_capacity(attack_sizes_pct.len() * e_values.len());
    for &pct in attack_sizes_pct {
        for &e in e_values {
            let attack = move |pass: usize| {
                vec![Attack::RandomAlteration {
                    attr: "item_nbr".into(),
                    fraction: pct as f64 / 100.0,
                    seed: 5_000_000 + 1_000 * pct + 10 * e + pass as u64,
                }]
            };
            let result = run(config, e, &attack);
            rows.push(SurfaceRow {
                attack_pct: pct as f64,
                e,
                mark_loss_pct: result.mean_alteration * 100.0,
            });
        }
    }
    rows
}

/// One row of the Figure 7 data-loss sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LossRow {
    /// Data loss (%).
    pub loss_pct: f64,
    /// Mark alteration (%).
    pub alteration_pct: f64,
    /// 95% Wilson confidence interval on the alteration (%), over all
    /// decoded bits across passes.
    pub ci95_pct: (f64, f64),
}

/// Figure 7: mark alteration (%) vs. data loss (%) at e = 65. "The
/// watermark degrades almost linearly with increasing data loss",
/// tolerating 80% loss at ~25% alteration (the headline claim).
#[must_use]
pub fn fig7(config: &ExperimentConfig, loss_pcts: &[u64], e: u64) -> Vec<LossRow> {
    loss_pcts
        .iter()
        .map(|&pct| {
            let attack = move |pass: usize| {
                vec![Attack::HorizontalLoss {
                    keep: 1.0 - pct as f64 / 100.0,
                    seed: 9_000_000 + 1_000 * pct + pass as u64,
                }]
            };
            let result = run(config, e, &attack);
            let (lo, hi) = result.ci95(config.wm_len);
            LossRow {
                loss_pct: pct as f64,
                alteration_pct: result.mean_alteration * 100.0,
                ci95_pct: (lo * 100.0, hi * 100.0),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fast config for shape smoke-tests (full-size sweeps run in
    /// the release binaries). N stays at the paper's 6000 — shrinking
    /// it shrinks `wm_data` (= N/e) and with it the redundancy the
    /// shapes depend on; only the pass count is reduced.
    fn quick() -> ExperimentConfig {
        ExperimentConfig { tuples: 6_000, passes: 4, ..Default::default() }
    }

    #[test]
    fn fig4_shape_monotone_and_e35_dominates() {
        let rows = fig4(&quick(), &[20, 50, 80]);
        assert_eq!(rows.len(), 3);
        // Degradation grows with attack size for both series.
        assert!(rows[2].y1 > rows[0].y1, "80% attack must hurt more than 20%: {rows:?}");
        assert!(rows[2].y2 > rows[0].y2, "80% attack must hurt more than 20%: {rows:?}");
        // Higher bandwidth (e = 35) resists better where the signal is
        // statistically separable (low/mid attack sizes; at 80% both
        // sit near the majority-vote noise ceiling — see the erasure
        // ablation for the decomposition).
        assert!(rows[0].y2 <= rows[0].y1, "e=35 must win at 20%: {rows:?}");
        assert!(rows[1].y2 <= rows[1].y1, "e=35 must win at 50%: {rows:?}");
    }

    #[test]
    fn fig7_shape_grows_with_loss() {
        let rows = fig7(&quick(), &[10, 50, 80], 65);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].alteration_pct <= rows[2].alteration_pct, "{rows:?}");
        // Headline sanity: 80% loss keeps alteration ≤ ~35%.
        assert!(rows[2].alteration_pct < 36.0, "{rows:?}");
    }

    #[test]
    fn fig5_more_bandwidth_more_resilience() {
        let rows = fig5(&quick(), &[20, 150]);
        // Heavy attack at e = 150 must be worse than at e = 20.
        assert!(rows[1].y1 >= rows[0].y1, "{rows:?}");
    }

    #[test]
    fn fig6_tilt() {
        let rows = fig6(&quick(), &[10, 70], &[20, 150]);
        let get = |a: f64, e: u64| {
            rows.iter().find(|r| (r.attack_pct - a).abs() < 1e-9 && r.e == e).unwrap().mark_loss_pct
        };
        // Lower-left (small attack, small e) below upper-right (big
        // attack, big e).
        assert!(get(10.0, 20) <= get(70.0, 150), "{rows:?}");
    }
}
