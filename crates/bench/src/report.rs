//! Plain-text report formatting: gnuplot-consumable columns with `#`
//! headers, matching how the paper's plots would be regenerated.

use std::fmt::Write as _;

/// A column-aligned data table with comment headers.
#[derive(Debug, Clone, Default)]
pub struct Table {
    comments: Vec<String>,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Empty table.
    #[must_use]
    pub fn new() -> Self {
        Table::default()
    }

    /// Add a `#`-prefixed comment line above the data.
    pub fn comment(&mut self, text: impl Into<String>) -> &mut Self {
        self.comments.push(text.into());
        self
    }

    /// Set the column names (rendered as a `#` comment row).
    pub fn columns(&mut self, names: &[&str]) -> &mut Self {
        self.header = names.iter().map(|s| (*s).to_owned()).collect();
        self
    }

    /// Append a data row of already-formatted cells.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of f64 cells rendered with `decimals` places.
    pub fn row_f64(&mut self, values: &[f64], decimals: usize) -> &mut Self {
        self.rows.push(values.iter().map(|v| format!("{v:.decimals$}")).collect());
        self
    }

    /// Render with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.comments {
            let _ = writeln!(out, "# {c}");
        }
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(0);
                }
                widths[i] = widths[i].max(cell.len());
            }
        }
        if !self.header.is_empty() {
            let _ = write!(out, "#");
            for (i, name) in self.header.iter().enumerate() {
                let _ = write!(out, " {name:>width$}", width = widths[i]);
            }
            let _ = writeln!(out);
        }
        for row in &self.rows {
            let _ = write!(out, " ");
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(out, " {cell:>width$}", width = widths[i]);
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_comments_header_and_rows() {
        let mut t = Table::new();
        t.comment("Figure 4 reproduction")
            .columns(&["attack", "e65", "e35"])
            .row_f64(&[20.0, 1.5, 0.5], 1)
            .row_f64(&[80.0, 30.0, 22.5], 1);
        let s = t.render();
        assert!(s.starts_with("# Figure 4 reproduction\n"));
        assert!(s.contains("attack"));
        assert!(s.contains("30.0"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn columns_align() {
        let mut t = Table::new();
        t.columns(&["x", "value"]).row_f64(&[1.0, 100.123], 2).row_f64(&[22.0, 3.5], 2);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        // All rows have equal rendered width.
        assert_eq!(lines[1].len(), lines[2].len());
    }

    #[test]
    fn empty_table_renders_empty() {
        assert_eq!(Table::new().render(), "");
    }
}
