//! Synthetic workload generators for `catmark`.
//!
//! The paper's experiments watermark categorical attributes of the
//! Wal-Mart Sales Database — specifically subsets (up to 141 000
//! tuples) of the `ItemScan` relation with schema
//!
//! ```sql
//! Visit_Nbr INTEGER PRIMARY KEY,
//! Item_Nbr  INTEGER NOT NULL
//! ```
//!
//! That data set is proprietary, so this crate generates the closest
//! synthetic equivalent: sales relations with sequential-but-shuffled
//! visit numbers and Zipf-distributed item numbers (retail sales are
//! heavily skewed — a handful of items dominate scan volume, a long
//! tail barely sells). The skew matters to two of the paper's
//! mechanisms: the frequency-transform channel of Section 4.2 and the
//! frequency-matching remap recovery of Section 4.5, both of which are
//! explicitly powerless on uniform value distributions.
//!
//! The watermark embedding itself only consumes `(primary key,
//! categorical value)` pairs through a keyed hash, so it is oblivious
//! to the semantic content of either attribute — a synthetic relation
//! exercises exactly the same code paths as the Wal-Mart original.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baskets;
pub mod domains;
pub mod reservations;
pub mod sales;
pub mod zipf;

pub use baskets::{BasketConfig, BasketGenerator};
pub use reservations::{ReservationsConfig, ReservationsGenerator};
pub use sales::{ItemScanConfig, SalesGenerator};
pub use zipf::Zipf;
