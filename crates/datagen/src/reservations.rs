//! Airline-reservation workloads — the paper's second motivating
//! scenario ("online B2B interactions (e.g. airline reservation and
//! scheduling portals) in which data is made available for direct,
//! interactive use") and the source of its running examples
//! (departure cities, airline names).
//!
//! Schema: `booking_id INTEGER PRIMARY KEY, departure_city TEXT
//! CATEGORICAL, airline TEXT CATEGORICAL` — two *text* categorical
//! attributes, exercising the code paths the integer-only `ItemScan`
//! workload does not.

use catmark_relation::{AttrType, CategoricalDomain, Column, Dictionary, Relation, Schema};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::domains;
use crate::zipf::Zipf;

/// Configuration for [`ReservationsGenerator`].
#[derive(Debug, Clone)]
pub struct ReservationsConfig {
    /// Number of bookings.
    pub tuples: usize,
    /// Zipf exponent of city popularity (hubs dominate).
    pub city_skew: f64,
    /// Zipf exponent of airline market share.
    pub airline_skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ReservationsConfig {
    fn default() -> Self {
        ReservationsConfig { tuples: 6_000, city_skew: 0.9, airline_skew: 0.7, seed: 0xA1B2 }
    }
}

/// Generator of synthetic reservation relations.
#[derive(Debug, Clone)]
pub struct ReservationsGenerator {
    config: ReservationsConfig,
}

impl ReservationsGenerator {
    /// Generator for `config`.
    #[must_use]
    pub fn new(config: ReservationsConfig) -> Self {
        ReservationsGenerator { config }
    }

    /// The departure-city domain.
    #[must_use]
    pub fn city_domain(&self) -> CategoricalDomain {
        domains::cities()
    }

    /// The airline domain.
    #[must_use]
    pub fn airline_domain(&self) -> CategoricalDomain {
        domains::airlines()
    }

    /// The generated schema.
    #[must_use]
    pub fn schema(&self) -> Schema {
        Schema::builder()
            .key_attr("booking_id", AttrType::Integer)
            .categorical_attr("departure_city", AttrType::Text)
            .categorical_attr("airline", AttrType::Text)
            .build()
            .expect("static schema is valid")
    }

    /// Generate the relation, building columns directly: a flat `i64`
    /// key column and two text columns whose dictionaries are seeded
    /// from the domains so each Zipf draw *is* the stored code.
    #[must_use]
    pub fn generate(&self) -> Relation {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let cities = self.city_domain();
        let airlines = self.airline_domain();
        let city_zipf = Zipf::new(cities.len(), self.config.city_skew);
        let airline_zipf = Zipf::new(airlines.len(), self.config.airline_skew);
        let domain_dict = |domain: &CategoricalDomain| {
            let mut dict = Dictionary::new();
            for v in domain.values() {
                dict.intern(v.as_text().expect("reservation domains are text"));
            }
            dict
        };
        let n = self.config.tuples;
        let mut bookings = Vec::with_capacity(n);
        let mut city_codes = Vec::with_capacity(n);
        let mut airline_codes = Vec::with_capacity(n);
        let mut booking: i64 = 7_000_000;
        for _ in 0..n {
            booking += 1 + rng.gen_range(0..13);
            bookings.push(booking);
            city_codes.push(city_zipf.sample(&mut rng) as u32);
            airline_codes.push(airline_zipf.sample(&mut rng) as u32);
        }
        Relation::from_columns(
            self.schema(),
            vec![
                Column::Int(bookings),
                Column::Text { codes: city_codes, dict: domain_dict(&cities) },
                Column::Text { codes: airline_codes, dict: domain_dict(&airlines) },
            ],
        )
        .expect("generated columns match the static schema")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catmark_relation::FrequencyHistogram;

    #[test]
    fn generates_requested_shape() {
        let gen =
            ReservationsGenerator::new(ReservationsConfig { tuples: 1_000, ..Default::default() });
        let rel = gen.generate();
        assert_eq!(rel.len(), 1_000);
        assert_eq!(rel.schema().arity(), 3);
        assert_eq!(rel.distinct_keys(), 1_000);
        assert_eq!(rel.schema().categorical_indices(), vec![1, 2]);
    }

    #[test]
    fn values_stay_in_domains() {
        let gen = ReservationsGenerator::new(ReservationsConfig::default());
        let rel = gen.generate();
        let cities = gen.city_domain();
        let airlines = gen.airline_domain();
        for t in rel.iter().take(200) {
            assert!(cities.index_of(t.get(1)).is_ok());
            assert!(airlines.index_of(t.get(2)).is_ok());
        }
    }

    #[test]
    fn hub_cities_dominate() {
        let gen =
            ReservationsGenerator::new(ReservationsConfig { tuples: 20_000, ..Default::default() });
        let rel = gen.generate();
        let hist = FrequencyHistogram::from_relation(&rel, 1, &gen.city_domain()).unwrap();
        let ranked = hist.rank_by_frequency();
        assert!(hist.frequency(ranked[0]) > 3.0 * hist.frequency(ranked[20]));
    }

    #[test]
    fn is_seed_deterministic() {
        let cfg = ReservationsConfig { tuples: 300, seed: 5, ..Default::default() };
        let a = ReservationsGenerator::new(cfg.clone()).generate();
        let b = ReservationsGenerator::new(cfg).generate();
        assert!(a.iter().zip(b.iter()).all(|(x, y)| x == y));
    }
}
