//! Retail relations with *planted semantics* for the mining substrate.
//!
//! The semantic-consistency experiments (`catmark-mining`, the
//! `mining_tradeoff` bench, the `semantic_rules` example) need data
//! whose value is not just the tuple multiset but a *learnable
//! structure*: association rules a buyer would mine and a decision
//! boundary a classifier would fit. [`BasketGenerator`] plants a
//! controllable `dept ⇒ aisle` functional dependency: every department
//! maps to one home aisle, except a configurable fraction of rows
//! shelved elsewhere (end-caps, promotions — the realistic noise that
//! keeps rule confidence below 1).

use catmark_relation::{AttrType, CategoricalDomain, Column, Relation, Schema, Value};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Configuration for [`BasketGenerator`].
#[derive(Debug, Clone)]
pub struct BasketConfig {
    /// Number of tuples.
    pub tuples: usize,
    /// Number of departments (and of home aisles).
    pub depts: usize,
    /// Fraction of rows shelved off their home aisle, in `[0, 1)`.
    pub noise_rate: f64,
    /// RNG seed for exact reproducibility.
    pub seed: u64,
}

impl Default for BasketConfig {
    fn default() -> Self {
        BasketConfig { tuples: 12_000, depts: 16, noise_rate: 0.05, seed: 0xB00C }
    }
}

/// Generator of `(sku, dept, aisle)` relations with a planted
/// `dept ⇒ aisle` rule of confidence ≈ `1 − noise_rate`.
#[derive(Debug, Clone)]
pub struct BasketGenerator {
    config: BasketConfig,
}

impl BasketGenerator {
    /// Generator for `config`.
    ///
    /// # Panics
    ///
    /// Panics when `depts == 0` or `noise_rate` is outside `[0, 1)`.
    #[must_use]
    pub fn new(config: BasketConfig) -> Self {
        assert!(config.depts > 0, "need at least one department");
        assert!((0.0..1.0).contains(&config.noise_rate), "noise_rate is a fraction below 1");
        BasketGenerator { config }
    }

    /// The aisle domain (aisle codes `100 .. 100 + depts`).
    #[must_use]
    pub fn aisle_domain(&self) -> CategoricalDomain {
        CategoricalDomain::new(
            (0..self.config.depts as i64).map(|d| Value::Int(100 + d)).collect::<Vec<_>>(),
        )
        .expect("aisle codes are distinct")
    }

    /// The dept domain (`0 .. depts`).
    #[must_use]
    pub fn dept_domain(&self) -> CategoricalDomain {
        CategoricalDomain::new((0..self.config.depts as i64).map(Value::Int).collect::<Vec<_>>())
            .expect("departments are distinct")
    }

    /// Home aisle of `dept` (the planted rule's consequent).
    #[must_use]
    pub fn home_aisle(&self, dept: i64) -> i64 {
        100 + dept
    }

    /// Generate the relation: schema
    /// `(sku INTEGER KEY, dept CATEGORICAL, aisle CATEGORICAL)`, built
    /// as three flat integer columns with no intermediate row vectors.
    #[must_use]
    pub fn generate(&self) -> Relation {
        let schema = Schema::builder()
            .key_attr("sku", AttrType::Integer)
            .categorical_attr("dept", AttrType::Integer)
            .categorical_attr("aisle", AttrType::Integer)
            .build()
            .expect("static schema is valid");
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let depts = self.config.depts as i64;
        let n = self.config.tuples;
        let mut skus = Vec::with_capacity(n);
        let mut dept_col = Vec::with_capacity(n);
        let mut aisle_col = Vec::with_capacity(n);
        for i in 0..n as i64 {
            let dept = rng.gen_range(0..depts);
            let aisle = if rng.gen_bool(self.config.noise_rate) {
                // Off-aisle placement: any aisle but the home one.
                let offset = rng.gen_range(1..depts.max(2));
                100 + (dept + offset) % depts
            } else {
                self.home_aisle(dept)
            };
            skus.push(i);
            dept_col.push(dept);
            aisle_col.push(aisle);
        }
        Relation::from_columns(
            schema,
            vec![Column::Int(skus), Column::Int(dept_col), Column::Int(aisle_col)],
        )
        .expect("generated columns match the static schema")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_rule_has_expected_confidence() {
        let gen = BasketGenerator::new(BasketConfig {
            tuples: 20_000,
            depts: 8,
            noise_rate: 0.1,
            seed: 7,
        });
        let rel = gen.generate();
        assert_eq!(rel.len(), 20_000);
        // Measure dept=0 ⇒ aisle=100 confidence directly.
        let (mut ant, mut full) = (0u64, 0u64);
        for t in rel.iter() {
            if t.get(1) == &Value::Int(0) {
                ant += 1;
                if t.get(2) == &Value::Int(100) {
                    full += 1;
                }
            }
        }
        let conf = full as f64 / ant as f64;
        assert!((conf - 0.9).abs() < 0.03, "confidence {conf}");
    }

    #[test]
    fn zero_noise_is_a_functional_dependency() {
        let gen = BasketGenerator::new(BasketConfig {
            tuples: 1_000,
            depts: 4,
            noise_rate: 0.0,
            seed: 1,
        });
        let rel = gen.generate();
        for t in rel.iter() {
            let dept = t.get(1).as_int().unwrap();
            assert_eq!(t.get(2), &Value::Int(gen.home_aisle(dept)));
        }
    }

    #[test]
    fn noise_never_lands_on_the_home_aisle() {
        let gen = BasketGenerator::new(BasketConfig {
            tuples: 5_000,
            depts: 6,
            noise_rate: 0.5,
            seed: 3,
        });
        let rel = gen.generate();
        // Off-aisle rows exist and every aisle is in the domain.
        let domain = gen.aisle_domain();
        let mut off = 0;
        for t in rel.iter() {
            let dept = t.get(1).as_int().unwrap();
            assert!(domain.index_of(t.get(2)).is_ok());
            if t.get(2) != &Value::Int(gen.home_aisle(dept)) {
                off += 1;
            }
        }
        let frac = off as f64 / rel.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "off-aisle fraction {frac}");
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let config = BasketConfig { tuples: 500, ..Default::default() };
        let a = BasketGenerator::new(config.clone()).generate();
        let b = BasketGenerator::new(config).generate();
        assert!(a.iter().zip(b.iter()).all(|(x, y)| x == y));
    }

    #[test]
    fn domains_match_generated_values() {
        let gen = BasketGenerator::new(BasketConfig::default());
        let rel = gen.generate();
        let aisles = gen.aisle_domain();
        let depts = gen.dept_domain();
        for t in rel.iter() {
            assert!(depts.index_of(t.get(1)).is_ok());
            assert!(aisles.index_of(t.get(2)).is_ok());
        }
    }

    #[test]
    #[should_panic(expected = "fraction below 1")]
    fn rejects_full_noise() {
        let _ = BasketGenerator::new(BasketConfig { noise_rate: 1.0, ..Default::default() });
    }
}
