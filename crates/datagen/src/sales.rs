//! Synthetic `ItemScan`-style sales relations.
//!
//! [`SalesGenerator`] reproduces the shape of the paper's experimental
//! relation: a `Visit_Nbr` integer primary key and an `Item_Nbr`
//! categorical attribute drawn from a finite product-code set with a
//! Zipf-skewed popularity profile. An optional `Store_City` attribute
//! provides a second categorical column for the multi-attribute
//! embedding demos of Section 3.3.

use catmark_relation::{AttrType, CategoricalDomain, Column, Dictionary, Relation, Schema};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::domains;
use crate::zipf::Zipf;

/// Configuration for [`SalesGenerator`].
#[derive(Debug, Clone)]
pub struct ItemScanConfig {
    /// Number of tuples `N`. The paper's figures used subsets around
    /// 6 000 tuples (its analysis examples use N = 6000 explicitly);
    /// up to 141 000 were drawn from the original database.
    pub tuples: usize,
    /// Number of distinct products `nA`.
    pub items: usize,
    /// Zipf exponent of item popularity (0 = uniform, ~1 = typical
    /// retail skew).
    pub zipf_exponent: f64,
    /// Include a `store_city` categorical attribute.
    pub with_city: bool,
    /// RNG seed for exact reproducibility.
    pub seed: u64,
}

impl Default for ItemScanConfig {
    fn default() -> Self {
        ItemScanConfig {
            tuples: 6_000,
            items: 1_000,
            zipf_exponent: 1.0,
            with_city: false,
            seed: 0xCAFE,
        }
    }
}

/// Generator of synthetic sales relations.
#[derive(Debug, Clone)]
pub struct SalesGenerator {
    config: ItemScanConfig,
}

impl SalesGenerator {
    /// Generator for `config`.
    #[must_use]
    pub fn new(config: ItemScanConfig) -> Self {
        SalesGenerator { config }
    }

    /// The `item_nbr` domain this generator draws from (product codes
    /// starting at 10 000, matching typical retail numbering).
    #[must_use]
    pub fn item_domain(&self) -> CategoricalDomain {
        domains::product_codes(self.config.items, 10_000)
    }

    /// The `store_city` domain used when `with_city` is set.
    #[must_use]
    pub fn city_domain(&self) -> CategoricalDomain {
        domains::cities()
    }

    /// The generated schema: `visit_nbr` key, `item_nbr` categorical,
    /// optionally `store_city` categorical.
    #[must_use]
    pub fn schema(&self) -> Schema {
        let b = Schema::builder()
            .key_attr("visit_nbr", AttrType::Integer)
            .categorical_attr("item_nbr", AttrType::Integer);
        let b = if self.config.with_city {
            b.categorical_attr("store_city", AttrType::Text)
        } else {
            b
        };
        b.build().expect("static schema is valid")
    }

    /// Generate the relation, building columns directly (no
    /// intermediate row vectors): flat `i64` key/item columns and,
    /// when enabled, a city column whose dictionary is seeded from the
    /// domain so each Zipf draw *is* the stored code.
    ///
    /// Visit numbers are unique but non-sequential (drawn from a wide
    /// integer space), mimicking production surrogate keys; item
    /// numbers follow the configured Zipf profile; cities, when
    /// present, follow a milder skew.
    #[must_use]
    pub fn generate(&self) -> Relation {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let item_zipf = Zipf::new(self.config.items, self.config.zipf_exponent);
        let city_domain = self.city_domain();
        let city_zipf = Zipf::new(city_domain.len(), 0.5);
        let item_domain = self.item_domain();
        let item_values: Vec<i64> = item_domain
            .values()
            .iter()
            .map(|v| v.as_int().expect("product codes are integers"))
            .collect();
        let n = self.config.tuples;
        let mut visits = Vec::with_capacity(n);
        let mut items = Vec::with_capacity(n);
        let mut city_dict = Dictionary::new();
        for city in city_domain.values() {
            city_dict.intern(city.as_text().expect("cities are text"));
        }
        let mut city_codes = Vec::with_capacity(if self.config.with_city { n } else { 0 });
        let mut next_visit: i64 = 1_000_000;
        for _ in 0..n {
            // Strictly increasing with random gaps: unique by
            // construction, non-trivially distributed for hashing.
            next_visit += 1 + rng.gen_range(0..97);
            visits.push(next_visit);
            items.push(item_values[item_zipf.sample(&mut rng)]);
            if self.config.with_city {
                // The dictionary was seeded in domain order, so the
                // sampled domain index is the stored code.
                city_codes.push(city_zipf.sample(&mut rng) as u32);
            }
        }
        let mut columns = vec![Column::Int(visits), Column::Int(items)];
        if self.config.with_city {
            columns.push(Column::Text { codes: city_codes, dict: city_dict });
        }
        Relation::from_columns(self.schema(), columns)
            .expect("generated columns match the static schema")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catmark_relation::FrequencyHistogram;

    #[test]
    fn generates_requested_size_with_unique_keys() {
        let gen = SalesGenerator::new(ItemScanConfig { tuples: 500, ..Default::default() });
        let rel = gen.generate();
        assert_eq!(rel.len(), 500);
        assert_eq!(rel.distinct_keys(), 500);
    }

    #[test]
    fn is_seed_deterministic() {
        let cfg = ItemScanConfig { tuples: 200, seed: 7, ..Default::default() };
        let a = SalesGenerator::new(cfg.clone()).generate();
        let b = SalesGenerator::new(cfg).generate();
        assert!(a.iter().zip(b.iter()).all(|(x, y)| x == y));
    }

    #[test]
    fn different_seeds_differ() {
        let a = SalesGenerator::new(ItemScanConfig { tuples: 200, seed: 1, ..Default::default() })
            .generate();
        let b = SalesGenerator::new(ItemScanConfig { tuples: 200, seed: 2, ..Default::default() })
            .generate();
        assert!(a.iter().zip(b.iter()).any(|(x, y)| x != y));
    }

    #[test]
    fn items_stay_in_domain() {
        let gen =
            SalesGenerator::new(ItemScanConfig { tuples: 300, items: 50, ..Default::default() });
        let rel = gen.generate();
        let domain = gen.item_domain();
        for v in rel.column_iter(1) {
            assert!(domain.index_of(&v).is_ok());
        }
    }

    #[test]
    fn zipf_skew_shows_in_frequencies() {
        let gen = SalesGenerator::new(ItemScanConfig {
            tuples: 20_000,
            items: 100,
            zipf_exponent: 1.0,
            ..Default::default()
        });
        let rel = gen.generate();
        let hist = FrequencyHistogram::from_relation(&rel, 1, &gen.item_domain()).unwrap();
        // Rank-1 item should clearly dominate the median item.
        let ranked = hist.rank_by_frequency();
        let top = hist.frequency(ranked[0]);
        let median = hist.frequency(ranked[50]);
        assert!(top > 5.0 * median, "top={top}, median={median}");
    }

    #[test]
    fn city_column_is_optional() {
        let without = SalesGenerator::new(ItemScanConfig { tuples: 10, ..Default::default() });
        assert_eq!(without.schema().arity(), 2);
        let with = SalesGenerator::new(ItemScanConfig {
            tuples: 10,
            with_city: true,
            ..Default::default()
        });
        assert_eq!(with.schema().arity(), 3);
        let rel = with.generate();
        assert_eq!(rel.tuple(0).unwrap().arity(), 3);
    }
}
