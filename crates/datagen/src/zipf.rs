//! Zipf-distributed sampling over `{0, …, n-1}`.
//!
//! `P(rank i) ∝ 1 / (i+1)^s`. The sampler precomputes the cumulative
//! distribution and draws by binary search, so sampling is O(log n)
//! with O(n) setup — plenty for the ≤10⁶-element domains used here.

use rand::Rng;

/// Zipf distribution over ranks `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Distribution over `n` ranks with exponent `s`.
    ///
    /// `s = 0` degenerates to the uniform distribution; retail sales
    /// data is commonly fit with `s ≈ 1`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or `s` is negative/non-finite.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be finite and non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating point round-off at the top end.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is over zero ranks (never true after
    /// construction; present for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of rank `i`.
    #[must_use]
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }

    /// Draw one rank.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the count of ranks with cdf < u,
        // i.e. the first rank whose cdf reaches u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.0);
        let total: f64 = (0..100).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_when_exponent_zero() {
        let z = Zipf::new(10, 0.0);
        for i in 0..10 {
            assert!((z.pmf(i) - 0.1).abs() < 1e-12, "pmf({i})={}", z.pmf(i));
        }
    }

    #[test]
    fn skew_orders_ranks() {
        let z = Zipf::new(50, 1.2);
        for i in 1..50 {
            assert!(z.pmf(i) < z.pmf(i - 1), "pmf must decrease with rank");
        }
    }

    #[test]
    fn empirical_frequencies_match_pmf() {
        let z = Zipf::new(20, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0u32; 20];
        let draws = 200_000;
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            let observed = f64::from(count) / f64::from(draws);
            let expected = z.pmf(i);
            assert!(
                (observed - expected).abs() < 0.01,
                "rank {i}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn single_rank_always_samples_zero() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_exponent_panics() {
        let _ = Zipf::new(10, -1.0);
    }
}
