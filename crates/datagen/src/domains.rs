//! Ready-made categorical domains mirroring the paper's examples.
//!
//! The paper motivates categorical attributes with departure cities,
//! airline names and product codes ("a value of nA = 16000 is going to
//! yield only 14 bits"). These constructors build such domains for
//! examples and tests.

use catmark_relation::{CategoricalDomain, Value};

/// US cities, in the spirit of the paper's "change departure city from
/// Chicago to San Jose" example.
pub const CITIES: [&str; 40] = [
    "Albuquerque",
    "Atlanta",
    "Austin",
    "Baltimore",
    "Boston",
    "Charlotte",
    "Chicago",
    "Cleveland",
    "Columbus",
    "Dallas",
    "Denver",
    "Detroit",
    "El Paso",
    "Fort Worth",
    "Fresno",
    "Houston",
    "Indianapolis",
    "Jacksonville",
    "Kansas City",
    "Las Vegas",
    "Long Beach",
    "Los Angeles",
    "Louisville",
    "Memphis",
    "Mesa",
    "Miami",
    "Milwaukee",
    "Minneapolis",
    "Nashville",
    "New Orleans",
    "New York",
    "Oakland",
    "Oklahoma City",
    "Omaha",
    "Philadelphia",
    "Phoenix",
    "Portland",
    "Sacramento",
    "San Antonio",
    "San Jose",
];

/// Two-letter airline codes for reservation-portal style schemas.
pub const AIRLINES: [&str; 16] = [
    "AA", "AC", "AF", "AM", "AS", "B6", "BA", "DL", "EK", "F9", "JL", "LH", "NK", "QF", "UA", "WN",
];

/// Domain of city names.
///
/// # Panics
///
/// Never panics: the constant list has ≥ 2 distinct values.
#[must_use]
pub fn cities() -> CategoricalDomain {
    CategoricalDomain::new(CITIES.iter().map(|&c| Value::Text(c.into())).collect())
        .expect("static city list is a valid domain")
}

/// Domain of airline codes.
#[must_use]
pub fn airlines() -> CategoricalDomain {
    CategoricalDomain::new(AIRLINES.iter().map(|&c| Value::Text(c.into())).collect())
        .expect("static airline list is a valid domain")
}

/// Domain of `n` integer product codes `{base, …, base + n - 1}` — the
/// shape of the Wal-Mart `Item_Nbr` attribute ("a categorical
/// attribute, uniquely identifying a finite set of products").
///
/// # Panics
///
/// Panics when `n < 2` (a valid categorical domain needs two values).
#[must_use]
pub fn product_codes(n: usize, base: i64) -> CategoricalDomain {
    assert!(n >= 2, "need at least two product codes");
    CategoricalDomain::new((0..n).map(|i| Value::Int(base + i as i64)).collect())
        .expect("n >= 2 distinct integers form a valid domain")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cities_domain_is_complete_and_sorted() {
        let d = cities();
        assert_eq!(d.len(), CITIES.len());
        for c in CITIES {
            assert!(d.index_of(&Value::Text(c.into())).is_ok(), "{c} missing");
        }
    }

    #[test]
    fn airlines_domain_is_complete() {
        assert_eq!(airlines().len(), AIRLINES.len());
    }

    #[test]
    fn product_codes_run_from_base() {
        let d = product_codes(5, 100);
        assert_eq!(
            d.values(),
            &[Value::Int(100), Value::Int(101), Value::Int(102), Value::Int(103), Value::Int(104),]
        );
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_product_domain_panics() {
        let _ = product_codes(1, 0);
    }
}
