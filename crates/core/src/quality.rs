//! On-the-fly data quality assessment (Section 4.1, Figure 3).
//!
//! "Each property of the database that needs to be preserved is
//! written as a constraint on the allowable change to the dataset. The
//! watermarking algorithm is then applied with these constraints as
//! input and re-evaluates them continuously for each alteration. A
//! rollback log is kept to allow undo operations in case certain
//! constraints are violated by the current watermarking step."
//!
//! [`QualityGuard`] is that mechanism: a stack of pluggable
//! [`QualityConstraint`]s consulted before every candidate alteration,
//! plus a [`RollbackLog`] that can undo any prefix of the embedding.
//! Constraints are stateful (they track the cumulative effect of
//! committed changes), mirroring the paper's "usability metric
//! plugins".

use std::collections::HashSet;

use catmark_relation::{CategoricalDomain, FrequencyHistogram, Relation, Value};

use crate::error::CoreError;

/// One candidate (or committed) attribute alteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Alteration {
    /// Row index in the relation being watermarked.
    pub row: usize,
    /// Attribute index being altered.
    pub attr: usize,
    /// Value before the alteration.
    pub old: Value,
    /// Value after the alteration.
    pub new: Value,
}

/// A pluggable usability metric (Figure 3's "usability metric plugin").
pub trait QualityConstraint {
    /// Human-readable name for veto reporting.
    fn name(&self) -> &str;

    /// Whether the constraint admits `change` given everything
    /// committed so far.
    fn admits(&self, change: &Alteration) -> bool;

    /// Record that `change` was applied.
    fn commit(&mut self, change: &Alteration);

    /// Record that a previously committed `change` was undone.
    fn rollback(&mut self, change: &Alteration);
}

/// Caps the *number* of altered tuples — the paper's "practical
/// approach would be to begin by specifying an upper bound on the
/// percentage of allowable data alterations".
#[derive(Debug)]
pub struct AlterationBudget {
    budget: usize,
    used: usize,
}

impl AlterationBudget {
    /// Budget of `budget` alterations.
    #[must_use]
    pub fn new(budget: usize) -> Self {
        AlterationBudget { budget, used: 0 }
    }

    /// Budget as a fraction of a relation of `n` tuples.
    #[must_use]
    pub fn fraction_of(n: usize, fraction: f64) -> Self {
        Self::new((n as f64 * fraction).floor() as usize)
    }

    /// Alterations consumed so far.
    #[must_use]
    pub fn used(&self) -> usize {
        self.used
    }
}

impl QualityConstraint for AlterationBudget {
    fn name(&self) -> &str {
        "alteration-budget"
    }

    fn admits(&self, _change: &Alteration) -> bool {
        self.used < self.budget
    }

    fn commit(&mut self, _change: &Alteration) {
        self.used += 1;
    }

    fn rollback(&mut self, _change: &Alteration) {
        self.used = self.used.saturating_sub(1);
    }
}

/// Bounds the L1 drift of the attribute's occurrence-frequency
/// histogram, protecting the Section 4.2 channel and any consumer that
/// mines the value distribution.
#[derive(Debug)]
pub struct FrequencyDriftLimit {
    domain: CategoricalDomain,
    baseline: Vec<u64>,
    current: Vec<u64>,
    total: u64,
    max_l1: f64,
}

impl FrequencyDriftLimit {
    /// Limit the drift of attribute `attr_idx` of `rel` (measured
    /// against its *current* histogram) to `max_l1`.
    ///
    /// # Errors
    ///
    /// Propagates histogram errors (foreign values in the column).
    pub fn new(
        rel: &Relation,
        attr_idx: usize,
        domain: &CategoricalDomain,
        max_l1: f64,
    ) -> Result<Self, CoreError> {
        let hist = FrequencyHistogram::from_relation(rel, attr_idx, domain)?;
        Ok(FrequencyDriftLimit {
            domain: domain.clone(),
            baseline: hist.counts().to_vec(),
            current: hist.counts().to_vec(),
            total: hist.total(),
            max_l1,
        })
    }

    fn l1_after(&self, change: &Alteration) -> Option<f64> {
        let old_idx = self.domain.index_of(&change.old).ok()?;
        let new_idx = self.domain.index_of(&change.new).ok()?;
        let total = self.total as f64;
        if total == 0.0 {
            return Some(0.0);
        }
        let mut l1 = 0.0;
        for i in 0..self.baseline.len() {
            let mut c = self.current[i];
            if i == old_idx {
                c = c.saturating_sub(1);
            }
            if i == new_idx {
                c += 1;
            }
            l1 += (c as f64 / total - self.baseline[i] as f64 / total).abs();
        }
        Some(l1)
    }
}

impl QualityConstraint for FrequencyDriftLimit {
    fn name(&self) -> &str {
        "frequency-drift"
    }

    fn admits(&self, change: &Alteration) -> bool {
        // Values outside the domain are not this constraint's concern.
        self.l1_after(change).is_none_or(|l1| l1 <= self.max_l1)
    }

    fn commit(&mut self, change: &Alteration) {
        if let (Ok(old_idx), Ok(new_idx)) =
            (self.domain.index_of(&change.old), self.domain.index_of(&change.new))
        {
            self.current[old_idx] = self.current[old_idx].saturating_sub(1);
            self.current[new_idx] += 1;
        }
    }

    fn rollback(&mut self, change: &Alteration) {
        if let (Ok(old_idx), Ok(new_idx)) =
            (self.domain.index_of(&change.old), self.domain.index_of(&change.new))
        {
            self.current[new_idx] = self.current[new_idx].saturating_sub(1);
            self.current[old_idx] += 1;
        }
    }
}

/// Declares a set of rows untouchable (semantic consistency: e.g.
/// tuples referenced by external systems).
#[derive(Debug)]
pub struct ImmutableRows {
    rows: HashSet<usize>,
}

impl ImmutableRows {
    /// Protect exactly `rows`.
    #[must_use]
    pub fn new(rows: impl IntoIterator<Item = usize>) -> Self {
        ImmutableRows { rows: rows.into_iter().collect() }
    }
}

impl QualityConstraint for ImmutableRows {
    fn name(&self) -> &str {
        "immutable-rows"
    }

    fn admits(&self, change: &Alteration) -> bool {
        !self.rows.contains(&change.row)
    }

    fn commit(&mut self, _change: &Alteration) {}

    fn rollback(&mut self, _change: &Alteration) {}
}

/// Restricts replacement values to an allowed subset of the domain
/// (e.g. semantic groups: a beverage item may only become another
/// beverage).
#[derive(Debug)]
pub struct AllowedReplacements {
    allowed: HashSet<Value>,
}

impl AllowedReplacements {
    /// Admit only alterations whose *new* value is in `allowed`.
    #[must_use]
    pub fn new(allowed: impl IntoIterator<Item = Value>) -> Self {
        AllowedReplacements { allowed: allowed.into_iter().collect() }
    }
}

impl QualityConstraint for AllowedReplacements {
    fn name(&self) -> &str {
        "allowed-replacements"
    }

    fn admits(&self, change: &Alteration) -> bool {
        self.allowed.contains(&change.new)
    }

    fn commit(&mut self, _change: &Alteration) {}

    fn rollback(&mut self, _change: &Alteration) {}
}

/// The alteration rollback log of Figure 3.
#[derive(Debug, Default)]
pub struct RollbackLog {
    entries: Vec<Alteration>,
}

impl RollbackLog {
    /// Empty log.
    #[must_use]
    pub fn new() -> Self {
        RollbackLog::default()
    }

    /// Committed alterations, oldest first.
    #[must_use]
    pub fn entries(&self) -> &[Alteration] {
        &self.entries
    }

    /// Number of committed alterations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been committed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn record(&mut self, change: Alteration) {
        self.entries.push(change);
    }
}

/// Orchestrates constraints and the rollback log around an embedding
/// pass.
pub struct QualityGuard {
    constraints: Vec<Box<dyn QualityConstraint>>,
    log: RollbackLog,
    vetoes: usize,
}

impl std::fmt::Debug for QualityGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QualityGuard")
            .field("constraints", &self.constraints.iter().map(|c| c.name()).collect::<Vec<_>>())
            .field("committed", &self.log.len())
            .field("vetoes", &self.vetoes)
            .finish()
    }
}

impl QualityGuard {
    /// Guard over the given constraint stack (may be empty: then every
    /// change is admitted but still logged for undo).
    #[must_use]
    pub fn new(constraints: Vec<Box<dyn QualityConstraint>>) -> Self {
        QualityGuard { constraints, log: RollbackLog::new(), vetoes: 0 }
    }

    /// Propose `change`: if every constraint admits it, commit it to
    /// the constraint states and the rollback log and return `true`;
    /// otherwise count a veto and return `false`.
    ///
    /// The caller applies the change to the relation only on `true`.
    pub fn propose(&mut self, change: Alteration) -> bool {
        if self.constraints.iter().all(|c| c.admits(&change)) {
            for c in &mut self.constraints {
                c.commit(&change);
            }
            self.log.record(change);
            true
        } else {
            self.vetoes += 1;
            false
        }
    }

    /// Number of vetoed proposals.
    #[must_use]
    pub fn vetoes(&self) -> usize {
        self.vetoes
    }

    /// The rollback log.
    #[must_use]
    pub fn log(&self) -> &RollbackLog {
        &self.log
    }

    /// Undo every committed alteration (newest first), restoring the
    /// relation and the constraint states. Returns the number of
    /// undone alterations.
    ///
    /// # Errors
    ///
    /// Propagates relation errors (which would indicate the relation
    /// was modified outside this guard since embedding).
    pub fn undo_all(&mut self, rel: &mut Relation) -> Result<usize, CoreError> {
        let mut undone = 0;
        while let Some(change) = self.log.entries.pop() {
            rel.update_value(change.row, change.attr, change.old.clone())?;
            for c in &mut self.constraints {
                c.rollback(&change);
            }
            undone += 1;
        }
        Ok(undone)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catmark_relation::{AttrType, Schema};

    fn fixture() -> (Relation, CategoricalDomain) {
        let schema = Schema::builder()
            .key_attr("k", AttrType::Integer)
            .categorical_attr("a", AttrType::Integer)
            .build()
            .unwrap();
        let mut rel = Relation::new(schema);
        for i in 0..10 {
            rel.push(vec![Value::Int(i), Value::Int(i % 3)]).unwrap();
        }
        let domain =
            CategoricalDomain::new(vec![Value::Int(0), Value::Int(1), Value::Int(2)]).unwrap();
        (rel, domain)
    }

    fn change(row: usize, old: i64, new: i64) -> Alteration {
        Alteration { row, attr: 1, old: Value::Int(old), new: Value::Int(new) }
    }

    #[test]
    fn budget_vetoes_after_exhaustion() {
        let mut guard = QualityGuard::new(vec![Box::new(AlterationBudget::new(2))]);
        assert!(guard.propose(change(0, 0, 1)));
        assert!(guard.propose(change(1, 1, 2)));
        assert!(!guard.propose(change(2, 2, 0)));
        assert_eq!(guard.vetoes(), 1);
        assert_eq!(guard.log().len(), 2);
    }

    #[test]
    fn budget_fraction_constructor() {
        let b = AlterationBudget::fraction_of(1000, 0.05);
        assert_eq!(b.budget, 50);
    }

    #[test]
    fn immutable_rows_veto_their_rows_only() {
        let mut guard = QualityGuard::new(vec![Box::new(ImmutableRows::new([3, 5]))]);
        assert!(guard.propose(change(0, 0, 1)));
        assert!(!guard.propose(change(3, 0, 1)));
        assert!(!guard.propose(change(5, 0, 1)));
        assert!(guard.propose(change(4, 0, 1)));
    }

    #[test]
    fn allowed_replacements_gate_new_values() {
        let mut guard =
            QualityGuard::new(vec![Box::new(AllowedReplacements::new([Value::Int(1)]))]);
        assert!(guard.propose(change(0, 0, 1)));
        assert!(!guard.propose(change(1, 0, 2)));
    }

    #[test]
    fn frequency_drift_vetoes_large_shifts() {
        let (rel, domain) = fixture();
        // Baseline counts: value 0 ×4, 1 ×3, 2 ×3 (rows 0..10, i%3).
        let limit = FrequencyDriftLimit::new(&rel, 1, &domain, 0.25).unwrap();
        let mut guard = QualityGuard::new(vec![Box::new(limit)]);
        // Each move of one tuple shifts L1 by 2/10 = 0.2 ≤ 0.25: fine.
        assert!(guard.propose(change(0, 0, 1)));
        // A second move in the same direction would reach 0.4: veto.
        assert!(!guard.propose(change(3, 0, 1)));
        // A move that partially reverts drift is admitted.
        assert!(guard.propose(change(1, 1, 0)));
    }

    #[test]
    fn guard_commits_changes_and_undoes_them() {
        let (mut rel, _) = fixture();
        let mut guard = QualityGuard::new(vec![Box::new(AlterationBudget::new(10))]);
        let c = change(0, 0, 2);
        assert!(guard.propose(c.clone()));
        rel.update_value(c.row, c.attr, c.new.clone()).unwrap();
        assert_eq!(rel.tuple(0).unwrap().get(1), &Value::Int(2));
        let undone = guard.undo_all(&mut rel).unwrap();
        assert_eq!(undone, 1);
        assert_eq!(rel.tuple(0).unwrap().get(1), &Value::Int(0));
        assert!(guard.log().is_empty());
    }

    #[test]
    fn undo_restores_constraint_state() {
        let (mut rel, _) = fixture();
        let mut guard = QualityGuard::new(vec![Box::new(AlterationBudget::new(1))]);
        let c = change(0, 0, 1);
        assert!(guard.propose(c.clone()));
        rel.update_value(c.row, c.attr, c.new.clone()).unwrap();
        assert!(!guard.propose(change(1, 1, 2)), "budget exhausted");
        guard.undo_all(&mut rel).unwrap();
        // Budget freed again after rollback.
        assert!(guard.propose(change(1, 1, 2)));
    }

    #[test]
    fn empty_guard_admits_everything_but_logs() {
        let mut guard = QualityGuard::new(vec![]);
        assert!(guard.propose(change(0, 0, 1)));
        assert_eq!(guard.log().len(), 1);
        assert_eq!(guard.vetoes(), 0);
    }
}
