//! On-the-fly data quality assessment (Section 4.1, Figure 3).
//!
//! "Each property of the database that needs to be preserved is
//! written as a constraint on the allowable change to the dataset. The
//! watermarking algorithm is then applied with these constraints as
//! input and re-evaluates them continuously for each alteration. A
//! rollback log is kept to allow undo operations in case certain
//! constraints are violated by the current watermarking step."
//!
//! [`QualityGuard`] is that mechanism: a stack of pluggable
//! [`QualityConstraint`]s consulted before every candidate alteration,
//! plus a [`RollbackLog`] that can undo any prefix of the embedding.
//! Constraints are stateful (they track the cumulative effect of
//! committed changes), mirroring the paper's "usability metric
//! plugins".

use std::collections::HashSet;

use catmark_relation::{CategoricalDomain, FrequencyHistogram, Relation, Value};

use crate::error::CoreError;

/// One candidate (or committed) attribute alteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Alteration {
    /// Row index in the relation being watermarked.
    pub row: usize,
    /// Attribute index being altered.
    pub attr: usize,
    /// Value before the alteration.
    pub old: Value,
    /// Value after the alteration.
    pub new: Value,
}

/// A candidate alteration in *code space*: old and new values as
/// indices into the embedding domain instead of owned [`Value`]s.
///
/// The guarded embedding loop proposes one of these per fit tuple; a
/// constraint stack that accepted a [`QualityConstraint::bind_codes`]
/// call evaluates it with indexed loads only — no `Value`
/// materialization, no string hashing, no heap traffic on the
/// goodness loop. Both codes are guaranteed to be valid indices of
/// the bound domain (the embedder falls back to the value path for
/// rows whose current value is foreign to the domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodedAlteration {
    /// Row index in the relation being watermarked.
    pub row: usize,
    /// Attribute index being altered (always the bound attribute).
    pub attr: usize,
    /// Domain code of the value before the alteration.
    pub old: u32,
    /// Domain code of the value after the alteration.
    pub new: u32,
}

/// A pluggable usability metric (Figure 3's "usability metric plugin").
///
/// Constraints always implement the value-space methods. The
/// `*_coded` family is an opt-in fast path: a constraint that returns
/// `true` from [`QualityConstraint::bind_codes`] promises that, for
/// alterations on the bound attribute whose old and new values are
/// both in the bound domain, its coded methods decide and mutate
/// state exactly like the value-space ones — the two representations
/// may then be mixed freely (e.g. a coded commit later undone by a
/// value-space rollback).
pub trait QualityConstraint {
    /// Human-readable name for veto reporting.
    fn name(&self) -> &str;

    /// Whether the constraint admits `change` given everything
    /// committed so far.
    fn admits(&self, change: &Alteration) -> bool;

    /// Record that `change` was applied.
    fn commit(&mut self, change: &Alteration);

    /// Record that a previously committed `change` was undone.
    fn rollback(&mut self, change: &Alteration);

    /// Bind the constraint to code space for a guarded pass altering
    /// `attr` over `domain`. Return `true` to enable the coded fast
    /// path (see the trait docs for the equivalence contract); the
    /// default declines, and the guard materializes value-space
    /// [`Alteration`]s for this constraint instead.
    fn bind_codes(&mut self, attr: usize, domain: &CategoricalDomain) -> bool {
        let _ = (attr, domain);
        false
    }

    /// Coded twin of [`QualityConstraint::admits`]. Only called after
    /// this constraint accepted a [`QualityConstraint::bind_codes`],
    /// so a constraint that opts in must override it (and the other
    /// coded methods, even as explicit no-ops) — the default panics
    /// rather than silently admitting everything.
    fn admits_coded(&self, change: &CodedAlteration) -> bool {
        let _ = change;
        panic!(
            "constraint {:?} accepted bind_codes but does not implement admits_coded",
            self.name()
        )
    }

    /// Coded twin of [`QualityConstraint::commit`]. See
    /// [`QualityConstraint::admits_coded`] for the override contract.
    fn commit_coded(&mut self, change: &CodedAlteration) {
        let _ = change;
        panic!(
            "constraint {:?} accepted bind_codes but does not implement commit_coded",
            self.name()
        )
    }

    /// Coded twin of [`QualityConstraint::rollback`]. See
    /// [`QualityConstraint::admits_coded`] for the override contract.
    fn rollback_coded(&mut self, change: &CodedAlteration) {
        let _ = change;
        panic!(
            "constraint {:?} accepted bind_codes but does not implement rollback_coded",
            self.name()
        )
    }
}

/// Caps the *number* of altered tuples — the paper's "practical
/// approach would be to begin by specifying an upper bound on the
/// percentage of allowable data alterations".
#[derive(Debug)]
pub struct AlterationBudget {
    budget: usize,
    used: usize,
}

impl AlterationBudget {
    /// Budget of `budget` alterations.
    #[must_use]
    pub fn new(budget: usize) -> Self {
        AlterationBudget { budget, used: 0 }
    }

    /// Budget as a fraction of a relation of `n` tuples.
    #[must_use]
    pub fn fraction_of(n: usize, fraction: f64) -> Self {
        Self::new((n as f64 * fraction).floor() as usize)
    }

    /// Alterations consumed so far.
    #[must_use]
    pub fn used(&self) -> usize {
        self.used
    }
}

impl QualityConstraint for AlterationBudget {
    fn name(&self) -> &str {
        "alteration-budget"
    }

    fn admits(&self, _change: &Alteration) -> bool {
        self.used < self.budget
    }

    fn commit(&mut self, _change: &Alteration) {
        self.used += 1;
    }

    fn rollback(&mut self, _change: &Alteration) {
        self.used = self.used.saturating_sub(1);
    }

    fn bind_codes(&mut self, _attr: usize, _domain: &CategoricalDomain) -> bool {
        true // counts alterations; never inspects values
    }

    fn admits_coded(&self, _change: &CodedAlteration) -> bool {
        self.used < self.budget
    }

    fn commit_coded(&mut self, _change: &CodedAlteration) {
        self.used += 1;
    }

    fn rollback_coded(&mut self, _change: &CodedAlteration) {
        self.used = self.used.saturating_sub(1);
    }
}

/// Bounds the L1 drift of the attribute's occurrence-frequency
/// histogram, protecting the Section 4.2 channel and any consumer that
/// mines the value distribution.
#[derive(Debug)]
pub struct FrequencyDriftLimit {
    domain: CategoricalDomain,
    baseline: Vec<u64>,
    current: Vec<u64>,
    total: u64,
    max_l1: f64,
}

impl FrequencyDriftLimit {
    /// Limit the drift of attribute `attr_idx` of `rel` (measured
    /// against its *current* histogram) to `max_l1`.
    ///
    /// # Errors
    ///
    /// Propagates histogram errors (foreign values in the column).
    pub fn new(
        rel: &Relation,
        attr_idx: usize,
        domain: &CategoricalDomain,
        max_l1: f64,
    ) -> Result<Self, CoreError> {
        let hist = FrequencyHistogram::from_relation(rel, attr_idx, domain)?;
        Ok(FrequencyDriftLimit {
            domain: domain.clone(),
            baseline: hist.counts().to_vec(),
            current: hist.counts().to_vec(),
            total: hist.total(),
            max_l1,
        })
    }

    fn l1_after(&self, change: &Alteration) -> Option<f64> {
        let old_idx = self.domain.index_of(&change.old).ok()?;
        let new_idx = self.domain.index_of(&change.new).ok()?;
        Some(self.l1_after_codes(old_idx, new_idx))
    }

    fn l1_after_codes(&self, old_idx: usize, new_idx: usize) -> f64 {
        let total = self.total as f64;
        if total == 0.0 {
            return 0.0;
        }
        let mut l1 = 0.0;
        for i in 0..self.baseline.len() {
            let mut c = self.current[i];
            if i == old_idx {
                c = c.saturating_sub(1);
            }
            if i == new_idx {
                c += 1;
            }
            l1 += (c as f64 / total - self.baseline[i] as f64 / total).abs();
        }
        l1
    }
}

impl QualityConstraint for FrequencyDriftLimit {
    fn name(&self) -> &str {
        "frequency-drift"
    }

    fn admits(&self, change: &Alteration) -> bool {
        // Values outside the domain are not this constraint's concern.
        self.l1_after(change).is_none_or(|l1| l1 <= self.max_l1)
    }

    fn commit(&mut self, change: &Alteration) {
        if let (Ok(old_idx), Ok(new_idx)) =
            (self.domain.index_of(&change.old), self.domain.index_of(&change.new))
        {
            self.current[old_idx] = self.current[old_idx].saturating_sub(1);
            self.current[new_idx] += 1;
        }
    }

    fn rollback(&mut self, change: &Alteration) {
        if let (Ok(old_idx), Ok(new_idx)) =
            (self.domain.index_of(&change.old), self.domain.index_of(&change.new))
        {
            self.current[new_idx] = self.current[new_idx].saturating_sub(1);
            self.current[old_idx] += 1;
        }
    }

    /// Code binding requires the coded indices to *be* this
    /// constraint's histogram indices — i.e. the guarded pass must
    /// run over the same domain. Otherwise fall back to values.
    fn bind_codes(&mut self, _attr: usize, domain: &CategoricalDomain) -> bool {
        *domain == self.domain
    }

    fn admits_coded(&self, change: &CodedAlteration) -> bool {
        self.l1_after_codes(change.old as usize, change.new as usize) <= self.max_l1
    }

    fn commit_coded(&mut self, change: &CodedAlteration) {
        let (old, new) = (change.old as usize, change.new as usize);
        self.current[old] = self.current[old].saturating_sub(1);
        self.current[new] += 1;
    }

    fn rollback_coded(&mut self, change: &CodedAlteration) {
        let (old, new) = (change.old as usize, change.new as usize);
        self.current[new] = self.current[new].saturating_sub(1);
        self.current[old] += 1;
    }
}

/// Declares a set of rows untouchable (semantic consistency: e.g.
/// tuples referenced by external systems).
#[derive(Debug)]
pub struct ImmutableRows {
    rows: HashSet<usize>,
}

impl ImmutableRows {
    /// Protect exactly `rows`.
    #[must_use]
    pub fn new(rows: impl IntoIterator<Item = usize>) -> Self {
        ImmutableRows { rows: rows.into_iter().collect() }
    }
}

impl QualityConstraint for ImmutableRows {
    fn name(&self) -> &str {
        "immutable-rows"
    }

    fn admits(&self, change: &Alteration) -> bool {
        !self.rows.contains(&change.row)
    }

    fn commit(&mut self, _change: &Alteration) {}

    fn rollback(&mut self, _change: &Alteration) {}

    fn bind_codes(&mut self, _attr: usize, _domain: &CategoricalDomain) -> bool {
        true // decides on the row index alone
    }

    fn admits_coded(&self, change: &CodedAlteration) -> bool {
        !self.rows.contains(&change.row)
    }

    fn commit_coded(&mut self, _change: &CodedAlteration) {}

    fn rollback_coded(&mut self, _change: &CodedAlteration) {}
}

/// Restricts replacement values to an allowed subset of the domain
/// (e.g. semantic groups: a beverage item may only become another
/// beverage).
#[derive(Debug)]
pub struct AllowedReplacements {
    allowed: HashSet<Value>,
    /// Per-domain-code membership, compiled by `bind_codes`.
    allowed_codes: Vec<bool>,
}

impl AllowedReplacements {
    /// Admit only alterations whose *new* value is in `allowed`.
    #[must_use]
    pub fn new(allowed: impl IntoIterator<Item = Value>) -> Self {
        AllowedReplacements { allowed: allowed.into_iter().collect(), allowed_codes: Vec::new() }
    }
}

impl QualityConstraint for AllowedReplacements {
    fn name(&self) -> &str {
        "allowed-replacements"
    }

    fn admits(&self, change: &Alteration) -> bool {
        self.allowed.contains(&change.new)
    }

    fn commit(&mut self, _change: &Alteration) {}

    fn rollback(&mut self, _change: &Alteration) {}

    fn bind_codes(&mut self, _attr: usize, domain: &CategoricalDomain) -> bool {
        self.allowed_codes =
            (0..domain.len()).map(|t| self.allowed.contains(domain.value_at(t))).collect();
        true
    }

    fn admits_coded(&self, change: &CodedAlteration) -> bool {
        self.allowed_codes[change.new as usize]
    }

    fn commit_coded(&mut self, _change: &CodedAlteration) {}

    fn rollback_coded(&mut self, _change: &CodedAlteration) {}
}

/// The alteration rollback log of Figure 3.
#[derive(Debug, Default)]
pub struct RollbackLog {
    entries: Vec<Alteration>,
}

impl RollbackLog {
    /// Empty log.
    #[must_use]
    pub fn new() -> Self {
        RollbackLog::default()
    }

    /// Committed alterations, oldest first.
    #[must_use]
    pub fn entries(&self) -> &[Alteration] {
        &self.entries
    }

    /// Number of committed alterations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been committed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn record(&mut self, change: Alteration) {
        self.entries.push(change);
    }
}

/// Orchestrates constraints and the rollback log around an embedding
/// pass.
pub struct QualityGuard {
    constraints: Vec<Box<dyn QualityConstraint>>,
    /// Per-constraint coded capability, parallel to `constraints`;
    /// empty until [`QualityGuard::bind_codes`].
    coded: Vec<bool>,
    /// The bound attribute and domain, for decoding coded proposals
    /// into value-space [`Alteration`]s (rollback log, fallback
    /// constraints).
    codec: Option<(usize, CategoricalDomain)>,
    log: RollbackLog,
    vetoes: usize,
}

impl std::fmt::Debug for QualityGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QualityGuard")
            .field("constraints", &self.constraints.iter().map(|c| c.name()).collect::<Vec<_>>())
            .field("committed", &self.log.len())
            .field("vetoes", &self.vetoes)
            .finish()
    }
}

impl QualityGuard {
    /// Guard over the given constraint stack (may be empty: then every
    /// change is admitted but still logged for undo).
    #[must_use]
    pub fn new(constraints: Vec<Box<dyn QualityConstraint>>) -> Self {
        QualityGuard {
            constraints,
            coded: Vec::new(),
            codec: None,
            log: RollbackLog::new(),
            vetoes: 0,
        }
    }

    /// Propose `change`: if every constraint admits it, commit it to
    /// the constraint states and the rollback log and return `true`;
    /// otherwise count a veto and return `false`.
    ///
    /// The caller applies the change to the relation only on `true`.
    pub fn propose(&mut self, change: Alteration) -> bool {
        if self.constraints.iter().all(|c| c.admits(&change)) {
            for c in &mut self.constraints {
                c.commit(&change);
            }
            self.log.record(change);
            true
        } else {
            self.vetoes += 1;
            false
        }
    }

    /// Bind the guard (and every constraint willing) to code space
    /// for a guarded pass altering `attr` over `domain`. Call once
    /// before a run of [`QualityGuard::propose_coded`] calls;
    /// re-binding with a different attribute or domain is allowed and
    /// recompiles.
    pub fn bind_codes(&mut self, attr: usize, domain: &CategoricalDomain) {
        self.coded = self.constraints.iter_mut().map(|c| c.bind_codes(attr, domain)).collect();
        self.codec = Some((attr, domain.clone()));
    }

    /// Whether every constraint accepted the code binding — i.e. the
    /// goodness loop runs without materializing a single `Value`.
    #[must_use]
    pub fn fully_coded(&self) -> bool {
        !self.coded.is_empty() && self.coded.iter().all(|&c| c)
    }

    /// Coded twin of [`QualityGuard::propose`]: both codes must be
    /// valid indices of the bound domain. Constraints that declined
    /// the code binding see a value-space [`Alteration`] decoded from
    /// the codes (materialized at most once per proposal); the
    /// rollback log always records the value-space form so
    /// [`QualityGuard::undo_all`] stays representation-independent.
    ///
    /// # Panics
    ///
    /// Panics when [`QualityGuard::bind_codes`] has not been called.
    pub fn propose_coded(&mut self, change: CodedAlteration) -> bool {
        let (attr, domain) = self.codec.as_ref().expect("bind_codes before propose_coded");
        debug_assert_eq!(change.attr, *attr, "coded proposal on an unbound attribute");
        let decode = || Alteration {
            row: change.row,
            attr: change.attr,
            old: domain.value_at(change.old as usize).clone(),
            new: domain.value_at(change.new as usize).clone(),
        };
        let mut materialized: Option<Alteration> = None;
        let admitted = self.constraints.iter().zip(&self.coded).all(|(c, &coded)| {
            if coded {
                c.admits_coded(&change)
            } else {
                c.admits(materialized.get_or_insert_with(decode))
            }
        });
        if !admitted {
            self.vetoes += 1;
            return false;
        }
        for (c, &coded) in self.constraints.iter_mut().zip(&self.coded) {
            if coded {
                c.commit_coded(&change);
            } else {
                c.commit(materialized.get_or_insert_with(decode));
            }
        }
        self.log.record(materialized.unwrap_or_else(decode));
        true
    }

    /// Number of vetoed proposals.
    #[must_use]
    pub fn vetoes(&self) -> usize {
        self.vetoes
    }

    /// The rollback log.
    #[must_use]
    pub fn log(&self) -> &RollbackLog {
        &self.log
    }

    /// Undo every committed alteration (newest first), restoring the
    /// relation and the constraint states. Returns the number of
    /// undone alterations.
    ///
    /// # Errors
    ///
    /// Propagates relation errors (which would indicate the relation
    /// was modified outside this guard since embedding).
    pub fn undo_all(&mut self, rel: &mut Relation) -> Result<usize, CoreError> {
        let mut undone = 0;
        while let Some(change) = self.log.entries.pop() {
            rel.update_value(change.row, change.attr, change.old.clone())?;
            for c in &mut self.constraints {
                c.rollback(&change);
            }
            undone += 1;
        }
        Ok(undone)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catmark_relation::{AttrType, Schema};

    fn fixture() -> (Relation, CategoricalDomain) {
        let schema = Schema::builder()
            .key_attr("k", AttrType::Integer)
            .categorical_attr("a", AttrType::Integer)
            .build()
            .unwrap();
        let mut rel = Relation::new(schema);
        for i in 0..10 {
            rel.push(vec![Value::Int(i), Value::Int(i % 3)]).unwrap();
        }
        let domain =
            CategoricalDomain::new(vec![Value::Int(0), Value::Int(1), Value::Int(2)]).unwrap();
        (rel, domain)
    }

    fn change(row: usize, old: i64, new: i64) -> Alteration {
        Alteration { row, attr: 1, old: Value::Int(old), new: Value::Int(new) }
    }

    #[test]
    fn budget_vetoes_after_exhaustion() {
        let mut guard = QualityGuard::new(vec![Box::new(AlterationBudget::new(2))]);
        assert!(guard.propose(change(0, 0, 1)));
        assert!(guard.propose(change(1, 1, 2)));
        assert!(!guard.propose(change(2, 2, 0)));
        assert_eq!(guard.vetoes(), 1);
        assert_eq!(guard.log().len(), 2);
    }

    #[test]
    fn budget_fraction_constructor() {
        let b = AlterationBudget::fraction_of(1000, 0.05);
        assert_eq!(b.budget, 50);
    }

    #[test]
    fn immutable_rows_veto_their_rows_only() {
        let mut guard = QualityGuard::new(vec![Box::new(ImmutableRows::new([3, 5]))]);
        assert!(guard.propose(change(0, 0, 1)));
        assert!(!guard.propose(change(3, 0, 1)));
        assert!(!guard.propose(change(5, 0, 1)));
        assert!(guard.propose(change(4, 0, 1)));
    }

    #[test]
    fn allowed_replacements_gate_new_values() {
        let mut guard =
            QualityGuard::new(vec![Box::new(AllowedReplacements::new([Value::Int(1)]))]);
        assert!(guard.propose(change(0, 0, 1)));
        assert!(!guard.propose(change(1, 0, 2)));
    }

    #[test]
    fn frequency_drift_vetoes_large_shifts() {
        let (rel, domain) = fixture();
        // Baseline counts: value 0 ×4, 1 ×3, 2 ×3 (rows 0..10, i%3).
        let limit = FrequencyDriftLimit::new(&rel, 1, &domain, 0.25).unwrap();
        let mut guard = QualityGuard::new(vec![Box::new(limit)]);
        // Each move of one tuple shifts L1 by 2/10 = 0.2 ≤ 0.25: fine.
        assert!(guard.propose(change(0, 0, 1)));
        // A second move in the same direction would reach 0.4: veto.
        assert!(!guard.propose(change(3, 0, 1)));
        // A move that partially reverts drift is admitted.
        assert!(guard.propose(change(1, 1, 0)));
    }

    #[test]
    fn guard_commits_changes_and_undoes_them() {
        let (mut rel, _) = fixture();
        let mut guard = QualityGuard::new(vec![Box::new(AlterationBudget::new(10))]);
        let c = change(0, 0, 2);
        assert!(guard.propose(c.clone()));
        rel.update_value(c.row, c.attr, c.new.clone()).unwrap();
        assert_eq!(rel.tuple(0).unwrap().get(1), &Value::Int(2));
        let undone = guard.undo_all(&mut rel).unwrap();
        assert_eq!(undone, 1);
        assert_eq!(rel.tuple(0).unwrap().get(1), &Value::Int(0));
        assert!(guard.log().is_empty());
    }

    #[test]
    fn undo_restores_constraint_state() {
        let (mut rel, _) = fixture();
        let mut guard = QualityGuard::new(vec![Box::new(AlterationBudget::new(1))]);
        let c = change(0, 0, 1);
        assert!(guard.propose(c.clone()));
        rel.update_value(c.row, c.attr, c.new.clone()).unwrap();
        assert!(!guard.propose(change(1, 1, 2)), "budget exhausted");
        guard.undo_all(&mut rel).unwrap();
        // Budget freed again after rollback.
        assert!(guard.propose(change(1, 1, 2)));
    }

    #[test]
    fn empty_guard_admits_everything_but_logs() {
        let mut guard = QualityGuard::new(vec![]);
        assert!(guard.propose(change(0, 0, 1)));
        assert_eq!(guard.log().len(), 1);
        assert_eq!(guard.vetoes(), 0);
    }
}
