//! The shared mark-plan layer: one (optionally parallel) pass over a
//! relation that computes every per-tuple fact the watermarking
//! operators need, computed once and consumed by all of them.
//!
//! Everything in the paper's scheme is a pure function of the keyed
//! hashes of each tuple's primary key: the fitness bit
//! (`H(key, k1) mod e == 0`), the `wm_data` position
//! (`H(key, k2) mod |wm_data|`), and the pseudorandom value base
//! (`msb32(H(key, k1)) mod nA`). Historically the embedder, the blind
//! decoder, the stream marker, the multi-attribute passes, the
//! fingerprint tracer, and the contest resolver each recomputed those
//! hashes independently — and the fitness test and value base each
//! evaluated `H(·, k1)` separately, doubling the dominant cost.
//!
//! [`MarkPlan`] performs the pass once per `(spec keys, key column)`
//! pair, storing only the fit rows (≈ N/e entries), and every operator
//! consumes the same plan. [`PlanCache`] memoizes plans across
//! operators — an embed → decode round trip over the same relation
//! hashes the key column **once** instead of twice (and instead of
//! four `H(·, k1)` passes in the historical code). Plan construction
//! can fan out over threads; chunked row ranges are merged in order,
//! so sequential and parallel builds are byte-identical (pinned by
//! test).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use catmark_relation::{CacheStats, CanonicalText, ColumnView, Dictionary, Relation};

use crate::error::CoreError;
use crate::fitness::{FitFacts, FitnessSelector, IntFitScanner};
use crate::spec::WatermarkSpec;

/// Per-recipient [`MarkPlan`]s built in one batched pass over the key
/// column.
///
/// The paper's fingerprinting story derives an independent key pair per
/// recipient, so every recipient's fit set / positions / value bases
/// differ — the hash work is irreducible. What *is* reducible is the
/// number of passes: the four-lane SHA-256 multibuffer that normally
/// batches four **tuples** under one key (see
/// [`crate::fitness::FitnessSelector::int_scanner`]) batches four
/// **recipient keys** per tuple here
/// ([`crate::fitness::FitnessSelector::int_scanner4`]), so one
/// streaming read of the key column yields whole-quad facts per tuple:
/// lanes across recipients instead of across rows, with the column hot
/// in cache for all four.
///
/// Each contained plan is **byte-identical** to
/// [`MarkPlan::build_sequential`] under that recipient's spec (pinned
/// by test and proptest): downstream embed/decode/trace consumers can't
/// tell how the plan was built.
#[derive(Debug, Clone)]
pub struct MultiKeyPlan {
    plans: Vec<Arc<MarkPlan>>,
}

impl MultiKeyPlan {
    /// Build one plan per spec in `specs` order, batching recipient
    /// quads through the multi-key hasher where the key column is an
    /// integer column (the common case: primary keys). Non-integer key
    /// columns and trailing partial quads fall back to per-recipient
    /// sequential builds — same bytes, fewer shared passes.
    #[must_use]
    pub fn build(specs: &[WatermarkSpec], rel: &Relation, key_idx: usize) -> MultiKeyPlan {
        let column_fp = column_fingerprint(rel, key_idx);
        let ColumnView::Int(keys) = rel.column(key_idx) else {
            return Self::sequential_knowing_fp(specs, rel, key_idx, column_fp);
        };
        let mut plans = Vec::with_capacity(specs.len());
        let mut quads = specs.chunks_exact(4);
        for quad in &mut quads {
            let sels: Vec<FitnessSelector> = quad.iter().map(FitnessSelector::new).collect();
            let scanner = FitnessSelector::int_scanner4([&sels[0], &sels[1], &sels[2], &sels[3]]);
            let ns: Vec<u64> = quad.iter().map(domain_size).collect();
            let mut fits: [Vec<PlannedRow>; 4] = std::array::from_fn(|lane| {
                Vec::with_capacity(fit_estimate(rel.len(), quad[lane].e))
            });
            for (row, &key) in keys.iter().enumerate() {
                let lanes = scanner.facts4(key);
                for (lane, facts) in lanes.into_iter().enumerate() {
                    if let Some(facts) = facts {
                        fits[lane].push(planned(row, &facts, ns[lane]));
                    }
                }
            }
            for (lane, fit) in fits.into_iter().enumerate() {
                plans.push(Arc::new(MarkPlan {
                    spec_id: spec_identity(&quad[lane]),
                    key_idx,
                    column_fp,
                    rows: rel.len(),
                    n: ns[lane],
                    fit,
                }));
            }
        }
        for spec in quads.remainder() {
            plans.push(Arc::new(MarkPlan::sequential_knowing_fp(spec, rel, key_idx, column_fp)));
        }
        MultiKeyPlan { plans }
    }

    /// The per-recipient reference: N independent
    /// [`MarkPlan::build_sequential`] passes. The batched
    /// [`MultiKeyPlan::build`] must reproduce this byte for byte.
    #[must_use]
    pub fn build_sequential(
        specs: &[WatermarkSpec],
        rel: &Relation,
        key_idx: usize,
    ) -> MultiKeyPlan {
        Self::sequential_knowing_fp(specs, rel, key_idx, column_fingerprint(rel, key_idx))
    }

    fn sequential_knowing_fp(
        specs: &[WatermarkSpec],
        rel: &Relation,
        key_idx: usize,
        column_fp: u64,
    ) -> MultiKeyPlan {
        MultiKeyPlan {
            plans: specs
                .iter()
                .map(|spec| {
                    Arc::new(MarkPlan::sequential_knowing_fp(spec, rel, key_idx, column_fp))
                })
                .collect(),
        }
    }

    /// The per-recipient plans, in the spec order given to the build.
    #[must_use]
    pub fn plans(&self) -> &[Arc<MarkPlan>] {
        &self.plans
    }

    /// Number of recipient plans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether the batch holds no plans.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

/// The planned facts for one fit tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedRow {
    /// Row index in the planned relation.
    pub row: u32,
    /// The `wm_data` position this tuple carries.
    pub position: u32,
    /// Value base, already reduced modulo the domain size `nA`.
    pub value_base: u32,
}

/// Per-tuple facts for one `(spec, key column)` pair: the fit rows
/// with their positions and value bases, in ascending row order.
#[derive(Debug, Clone)]
pub struct MarkPlan {
    spec_id: u64,
    key_idx: usize,
    column_fp: u64,
    rows: usize,
    n: u64,
    fit: Vec<PlannedRow>,
}

impl MarkPlan {
    /// Build the plan for `rel` keyed by attribute `key_idx`, choosing
    /// sequential or parallel construction by relation size and
    /// available parallelism.
    #[must_use]
    pub fn build(spec: &WatermarkSpec, rel: &Relation, key_idx: usize) -> MarkPlan {
        Self::build_knowing_fp(spec, rel, key_idx, column_fingerprint(rel, key_idx))
    }

    /// [`MarkPlan::build`] with the key-column fingerprint already in
    /// hand (the cache computes it for its lookup key; no need to walk
    /// the column twice).
    fn build_knowing_fp(
        spec: &WatermarkSpec,
        rel: &Relation,
        key_idx: usize,
        column_fp: u64,
    ) -> MarkPlan {
        let threads = planner_threads();
        if threads < 2 || rel.len() < 16_384 {
            Self::sequential_knowing_fp(spec, rel, key_idx, column_fp)
        } else {
            Self::threaded_knowing_fp(spec, rel, key_idx, threads, column_fp)
        }
    }

    /// Single-threaded plan construction — the reference semantics.
    #[must_use]
    pub fn build_sequential(spec: &WatermarkSpec, rel: &Relation, key_idx: usize) -> MarkPlan {
        Self::sequential_knowing_fp(spec, rel, key_idx, column_fingerprint(rel, key_idx))
    }

    fn sequential_knowing_fp(
        spec: &WatermarkSpec,
        rel: &Relation,
        key_idx: usize,
        column_fp: u64,
    ) -> MarkPlan {
        let sel = FitnessSelector::new(spec);
        let n = domain_size(spec);
        let scan = KeyScan::prepare(&sel, rel.column(key_idx), 1);
        let mut fit = Vec::with_capacity(fit_estimate(rel.len(), spec.e));
        scan.scan(0..rel.len(), n, &mut fit);
        MarkPlan { spec_id: spec_identity(spec), key_idx, column_fp, rows: rel.len(), n, fit }
    }

    /// Plan construction fanned out over `threads` scoped threads.
    ///
    /// Rows are split into contiguous chunks, each scanned
    /// independently, and the per-chunk fit lists concatenated in
    /// chunk order — the result is byte-identical to
    /// [`MarkPlan::build_sequential`].
    ///
    /// # Panics
    ///
    /// Panics when `threads == 0`.
    #[must_use]
    pub fn build_with_threads(
        spec: &WatermarkSpec,
        rel: &Relation,
        key_idx: usize,
        threads: usize,
    ) -> MarkPlan {
        Self::threaded_knowing_fp(spec, rel, key_idx, threads, column_fingerprint(rel, key_idx))
    }

    fn threaded_knowing_fp(
        spec: &WatermarkSpec,
        rel: &Relation,
        key_idx: usize,
        threads: usize,
        column_fp: u64,
    ) -> MarkPlan {
        assert!(threads > 0, "at least one thread required");
        let rows = rel.len();
        let chunk = rows.div_ceil(threads).max(1);
        let sel = FitnessSelector::new(spec);
        let n = domain_size(spec);
        // One scan context serves every chunk: the integer fast-path
        // scanner is compiled once, and a text key column's
        // distinct-entry facts table is hashed once per *plan* — not
        // once per chunk, and not skipped because an individual chunk
        // looked too small to memoize.
        let scan = KeyScan::prepare(&sel, rel.column(key_idx), threads);
        let mut chunks: Vec<Vec<PlannedRow>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..rows)
                .step_by(chunk)
                .map(|start| {
                    let scan = &scan;
                    let end = (start + chunk).min(rows);
                    scope.spawn(move || {
                        let mut fit = Vec::with_capacity(fit_estimate(end - start, spec.e));
                        scan.scan(start..end, n, &mut fit);
                        fit
                    })
                })
                .collect();
            chunks = handles
                .into_iter()
                .map(|h| h.join().expect("plan scan threads do not panic"))
                .collect();
        });
        let fit = chunks.concat();
        MarkPlan { spec_id: spec_identity(spec), key_idx, column_fp, rows, n, fit }
    }

    /// The fit tuples, ascending by row.
    #[must_use]
    pub fn fit(&self) -> &[PlannedRow] {
        &self.fit
    }

    /// Rows in the planned relation (the paper's `N`).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Whether the plan is empty (no fit tuples).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fit.is_empty()
    }

    /// The domain value index a fit tuple must carry for watermark bit
    /// `bit`: the value base with its LSB forced, kept inside the
    /// domain.
    #[must_use]
    pub fn value_index(&self, planned: &PlannedRow, bit: bool) -> usize {
        crate::bits::force_lsb_in_domain(u64::from(planned.value_base), bit, self.n) as usize
    }

    /// Whether this plan was built under `spec` for `rel`'s key
    /// column: same keyed parameters and domain size, same row count,
    /// and the same key-column **content** (verified through the
    /// column fingerprint, so a shuffled, subsetted, or re-keyed
    /// relation of equal length is rejected rather than silently
    /// decoded against stale row indices).
    ///
    /// Costs one cheap fingerprint pass over the key column — two
    /// orders of magnitude below the keyed-hash pass a stale plan
    /// would corrupt.
    #[must_use]
    pub fn matches(&self, spec: &WatermarkSpec, rel: &Relation) -> bool {
        self.spec_id == spec_identity(spec)
            && self.rows == rel.len()
            && self.key_idx < rel.schema().arity()
            && self.column_fp == column_fingerprint(rel, self.key_idx)
    }
}

/// Worker-thread count for plan construction: the `CATMARK_THREADS`
/// env override when it parses to a positive integer — the hook that
/// makes thread-scaling bench and CI scenarios reproducible across
/// machines — falling back to `available_parallelism` otherwise.
fn planner_threads() -> usize {
    fn fallback() -> usize {
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    }
    match std::env::var("CATMARK_THREADS") {
        Ok(raw) => raw.trim().parse::<usize>().ok().filter(|&t| t >= 1).unwrap_or_else(fallback),
        Err(_) => fallback(),
    }
}

/// The scan context prepared **once per plan build** and shared by
/// every row chunk, sequential or threaded — preparation cost is paid
/// per plan, never per chunk, and the prepared facts make chunked and
/// monolithic scans byte-identical by construction.
///
/// Integer columns compile the fixed-width scanner (two SHA-256 blocks
/// per key, constant second-block schedule pre-expanded, four-lane
/// multibuffer batching). Text columns precompute facts per
/// **dictionary code** when values repeat — `H(T_j(K), k)` hashes each
/// distinct string once per plan, not once per row and not once per
/// chunk — and fall back to per-row hashing for near-unique columns.
enum KeyScan<'a> {
    /// Flat integer keys through the compiled fixed-width scanner
    /// (boxed: its pre-expanded second-block schedule dwarfs the other
    /// variants, and one plan build allocates exactly one).
    Int { scanner: Box<IntFitScanner<'a>>, keys: &'a [i64] },
    /// Text keys dense enough to memoize (≥ 2 rows per distinct entry
    /// on average over the whole relation): facts per dictionary code,
    /// precomputed up front (fanned over threads for large
    /// dictionaries).
    TextMemo { codes: &'a [u32], facts: Vec<Option<FitFacts>> },
    /// Near-unique text keys — e.g. a text primary key — where a
    /// dict-sized facts table would mostly hold single-use entries:
    /// hash per row.
    TextDirect { codes: &'a [u32], dict: &'a Dictionary, sel: &'a FitnessSelector },
}

impl<'a> KeyScan<'a> {
    fn prepare(sel: &'a FitnessSelector, view: ColumnView<'a>, threads: usize) -> KeyScan<'a> {
        match view {
            ColumnView::Int(keys) => KeyScan::Int { scanner: Box::new(sel.int_scanner()), keys },
            ColumnView::Text { codes, dict } => {
                // Density is judged over the whole relation, not per
                // chunk: a low-cardinality column stays memoized no
                // matter how finely the threaded build chunks it.
                if 2 * dict.len() <= codes.len() {
                    KeyScan::TextMemo { codes, facts: text_facts(sel, dict, threads) }
                } else {
                    KeyScan::TextDirect { codes, dict, sel }
                }
            }
        }
    }

    /// Scan `range` of the key column, appending planned facts for fit
    /// rows.
    fn scan(&self, range: std::ops::Range<usize>, n: u64, out: &mut Vec<PlannedRow>) {
        match self {
            KeyScan::Int { scanner, keys } => {
                let keys = &keys[range.clone()];
                let mut row = range.start;
                let mut quads = keys.chunks_exact(4);
                for quad in &mut quads {
                    let lanes = scanner.facts4([quad[0], quad[1], quad[2], quad[3]]);
                    for (lane, facts) in lanes.into_iter().enumerate() {
                        if let Some(facts) = facts {
                            out.push(planned(row + lane, &facts, n));
                        }
                    }
                    row += 4;
                }
                for &key in quads.remainder() {
                    if let Some(facts) = scanner.facts(key) {
                        out.push(planned(row, &facts, n));
                    }
                    row += 1;
                }
            }
            KeyScan::TextMemo { codes, facts } => {
                for row in range {
                    if let Some(facts) = facts[codes[row] as usize] {
                        out.push(planned(row, &facts, n));
                    }
                }
            }
            KeyScan::TextDirect { codes, dict, sel } => {
                for row in range {
                    let entry = dict.get(codes[row]);
                    if let Some(facts) = sel.facts_canonical(&CanonicalText(entry)) {
                        out.push(planned(row, &facts, n));
                    }
                }
            }
        }
    }
}

/// Fitness facts for every distinct dictionary entry, fanned over
/// `threads` scoped threads when the dictionary is large enough to
/// amortize the spawns. Entry order is the dictionary's code order,
/// so the table is identical however it was computed.
fn text_facts(sel: &FitnessSelector, dict: &Dictionary, threads: usize) -> Vec<Option<FitFacts>> {
    let entries = dict.len();
    if threads < 2 || entries < 4_096 {
        return (0..entries)
            .map(|code| sel.facts_canonical(&CanonicalText(dict.get(code as u32))))
            .collect();
    }
    let chunk = entries.div_ceil(threads);
    let mut facts: Vec<Option<FitFacts>> = vec![None; entries];
    std::thread::scope(|scope| {
        for (index, slots) in facts.chunks_mut(chunk).enumerate() {
            let start = index * chunk;
            scope.spawn(move || {
                for (offset, slot) in slots.iter_mut().enumerate() {
                    let code = (start + offset) as u32;
                    *slot = sel.facts_canonical(&CanonicalText(dict.get(code)));
                }
            });
        }
    });
    facts
}

/// Expected fit-list capacity for `rows` rows at modulus `e`, with
/// ~4σ binomial slack to avoid a mid-scan reallocation.
fn fit_estimate(rows: usize, e: u64) -> usize {
    let e = usize::try_from(e).unwrap_or(1).max(1);
    let mean = rows / e;
    mean + 4 * (mean as f64).sqrt() as usize + 8
}

fn planned(row: usize, facts: &crate::fitness::FitFacts, n: u64) -> PlannedRow {
    PlannedRow {
        row: u32::try_from(row).expect("relations hold fewer than 2^32 rows"),
        position: u32::try_from(facts.position).expect("wm_data_len fits in u32"),
        value_base: u32::try_from(facts.value_base(n)).expect("domain size fits in u32"),
    }
}

fn domain_size(spec: &WatermarkSpec) -> u64 {
    spec.domain.len() as u64
}

/// FNV-1a identity of the spec parameters a plan depends on. The
/// domain participates through its size only: the plan stores value
/// *indices*, which depend on `nA` but not on the values themselves.
/// Crate-visible so the incremental decode driver can key its vote
/// cache by `(spec identity, blob hash)`.
pub(crate) fn spec_identity(spec: &WatermarkSpec) -> u64 {
    let mut h = Fnv::new();
    h.write(&[match spec.algo {
        catmark_crypto::HashAlgorithm::Md5 => 1,
        catmark_crypto::HashAlgorithm::Sha1 => 2,
        catmark_crypto::HashAlgorithm::Sha256 => 3,
    }]);
    // Length-prefix the variable-length keys so the concatenation is
    // injective: without it, shifting bytes between k1 and k2 around a
    // plain separator would collide two different key pairs into one
    // cache identity.
    h.write(&(spec.k1.as_bytes().len() as u64).to_be_bytes());
    h.write(spec.k1.as_bytes());
    h.write(&(spec.k2.as_bytes().len() as u64).to_be_bytes());
    h.write(spec.k2.as_bytes());
    h.write(&spec.e.to_be_bytes());
    h.write(&(spec.wm_data_len as u64).to_be_bytes());
    h.write(&domain_size(spec).to_be_bytes());
    h.finish()
}

/// Cheap (non-cryptographic) content fingerprint of the key column —
/// how [`PlanCache`] recognizes a relation it has already planned.
/// Integer keys mix word-wide (SplitMix64 finalizer per row); text
/// keys fold FNV-1a over their bytes first. Two orders of magnitude
/// cheaper than one keyed SHA-256 pass over the same column. Not
/// collision-resistant against adversarial inputs: the cache is a
/// same-process memoization, not an integrity boundary.
fn column_fingerprint(rel: &Relation, key_idx: usize) -> u64 {
    fn mix(h: u64, v: u64) -> u64 {
        (h ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(23)
    }
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    match rel.column(key_idx) {
        ColumnView::Int(xs) => {
            for &i in xs {
                h = mix(h, i as u64 ^ 0x0100_0000_0000_0000);
            }
        }
        ColumnView::Text { codes, dict } => {
            // FNV each distinct entry once, fold per row by code —
            // same digest the row store produced hashing every row.
            let entry_fp: Vec<u64> = dict
                .entries()
                .iter()
                .map(|s| {
                    let mut f = Fnv::new();
                    f.write(&[0x02]);
                    f.write(s.as_bytes());
                    f.finish()
                })
                .collect();
            for &c in codes {
                h = mix(h, entry_fp[c as usize]);
            }
        }
    }
    h
}

/// Minimal FNV-1a state.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xCBF2_9CE4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x1000_0000_01B3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// `(spec identity, key attribute index, key-column fingerprint)`.
type PlanKey = (u64, usize, u64);

/// The shared bounded store behind [`PlanCache`] and
/// [`MultiPlanCache`]: a map of entries stamped with a logical clock,
/// evicting the least-recently-used entry when full.
///
/// The historical eviction policy cleared the *whole* store on
/// overflow, so an interleaved workload (a few hot specs plus a
/// stream of one-shot ones) rebuilt its hot plans every
/// `CAPACITY`-th insert. LRU keeps the hot entries: every lookup
/// bumps the entry's stamp, and overflow evicts only the stalest one.
#[derive(Debug)]
struct LruStore<V> {
    entries: HashMap<PlanKey, (V, u64)>,
    clock: u64,
    stats: CacheStats,
}

impl<V> Default for LruStore<V> {
    fn default() -> Self {
        LruStore { entries: HashMap::new(), clock: 0, stats: CacheStats::default() }
    }
}

impl<V: Clone> LruStore<V> {
    /// Look up `key`, refreshing its recency stamp on a hit — no
    /// counter traffic. `insert_or_get` reuses this so a miss that
    /// flows get → build → insert is counted exactly once.
    fn lookup(&mut self, key: &PlanKey) -> Option<V> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(key).map(|(value, stamp)| {
            *stamp = clock;
            value.clone()
        })
    }

    /// Counted lookup: the cache-facing entry point.
    fn get(&mut self, key: &PlanKey) -> Option<V> {
        let found = self.lookup(key);
        if found.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        found
    }

    /// Insert `value` under `key` (evicting the least-recently-used
    /// entry if the store is at `capacity`), or return the entry
    /// another thread won the build race with. The preceding counted
    /// `get` already recorded this flow's miss, so the race-check
    /// lookup here stays uncounted.
    fn insert_or_get(&mut self, key: PlanKey, value: V, capacity: usize) -> V {
        if let Some(existing) = self.lookup(&key) {
            return existing;
        }
        if self.entries.len() >= capacity {
            if let Some(&stalest) =
                self.entries.iter().min_by_key(|(_, (_, stamp))| *stamp).map(|(k, _)| k)
            {
                self.entries.remove(&stalest);
                self.stats.evictions += 1;
            }
        }
        self.clock += 1;
        self.entries.insert(key, (value.clone(), self.clock));
        value
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Memoizes [`MarkPlan`]s keyed by `(spec identity, key attribute,
/// key-column content fingerprint)`.
///
/// Sharing one cache across an embed → decode round trip (or across
/// repeated traces of the same suspect copy) collapses the keyed-hash
/// work to a single pass over the key column. The cache is
/// thread-safe; clones share the same underlying store. Memoization
/// is bounded to [`PlanCache::CAPACITY`] distinct plans with
/// least-recently-used eviction, so a long-lived holder (e.g. a
/// fingerprint registry tracing an endless stream of suspect copies)
/// cannot grow without bound — and a few hot plans survive any amount
/// of one-shot traffic around them.
#[derive(Debug, Clone, Default)]
pub struct PlanCache {
    inner: Arc<Mutex<LruStore<Arc<MarkPlan>>>>,
}

impl PlanCache {
    /// Distinct plans memoized before the store resets.
    pub const CAPACITY: usize = 64;

    /// Fresh, empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The plan for `(spec, rel, key_idx)`, building and memoizing it
    /// on first request.
    ///
    /// # Errors
    ///
    /// [`CoreError::Relation`] when `key_idx` is out of schema range.
    pub fn plan_for(
        &self,
        spec: &WatermarkSpec,
        rel: &Relation,
        key_idx: usize,
    ) -> Result<Arc<MarkPlan>, CoreError> {
        if key_idx >= rel.schema().arity() {
            return Err(CoreError::Relation(catmark_relation::RelationError::InvalidSchema(
                format!("key attribute index {key_idx} out of range"),
            )));
        }
        let key = (spec_identity(spec), key_idx, column_fingerprint(rel, key_idx));
        if let Some(plan) = self.inner.lock().expect("plan cache is never poisoned").get(&key) {
            return Ok(plan);
        }
        // Build outside the lock: plans are immutable, so two threads
        // racing on the same key at worst build twice and agree; and a
        // long build never blocks other cache users (or poisons the
        // mutex if it panics).
        let plan = Arc::new(MarkPlan::build_knowing_fp(spec, rel, key_idx, key.2));
        let mut inner = self.inner.lock().expect("plan cache is never poisoned");
        Ok(inner.insert_or_get(key, plan, Self::CAPACITY))
    }

    /// Number of memoized plans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("plan cache is never poisoned").len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all memoized plans. Lifetime counters survive the clear —
    /// they describe traffic, not contents.
    pub fn clear(&self) {
        self.inner.lock().expect("plan cache is never poisoned").clear();
    }

    /// Lifetime hit/miss/eviction counters for this cache (shared by
    /// all clones, which share the store).
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().expect("plan cache is never poisoned").stats
    }
}

/// Memoizes whole [`MultiKeyPlan`]s keyed by `(recipient-set identity,
/// key attribute, key-column content fingerprint)`.
///
/// [`PlanCache`] is the wrong shape for recipient batches: at 1 000
/// registered buyers a single trace inserts 1 000 distinct plans,
/// evicting everything else in the store — every repeated trace of
/// the same suspect re-plans everything. This cache treats the
/// **entire recipient set** as one entry (evicted least-recently-used,
/// like [`PlanCache`]), so a long-lived service tracing the same few
/// suspect copies over and over pays the batched pass once per
/// suspect. Capacity is small ([`MultiPlanCache::CAPACITY`] suspect
/// relations) because each entry is large (≈ recipients × N/e planned
/// rows).
#[derive(Debug, Clone, Default)]
pub struct MultiPlanCache {
    inner: Arc<Mutex<LruStore<Arc<MultiKeyPlan>>>>,
}

impl MultiPlanCache {
    /// Distinct recipient-set plans memoized before the store resets.
    pub const CAPACITY: usize = 4;

    /// Fresh, empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The batched plan for `(specs, rel, key_idx)`, building and
    /// memoizing it on first request. The cache key folds every spec's
    /// identity in order, so adding, removing, or reordering recipients
    /// is a different entry.
    ///
    /// # Errors
    ///
    /// [`CoreError::Relation`] when `key_idx` is out of schema range.
    pub fn plan_for(
        &self,
        specs: &[WatermarkSpec],
        rel: &Relation,
        key_idx: usize,
    ) -> Result<Arc<MultiKeyPlan>, CoreError> {
        if key_idx >= rel.schema().arity() {
            return Err(CoreError::Relation(catmark_relation::RelationError::InvalidSchema(
                format!("key attribute index {key_idx} out of range"),
            )));
        }
        let mut set_id = Fnv::new();
        for spec in specs {
            set_id.write(&spec_identity(spec).to_be_bytes());
        }
        let key = (set_id.finish(), key_idx, column_fingerprint(rel, key_idx));
        if let Some(plan) = self.inner.lock().expect("plan cache is never poisoned").get(&key) {
            return Ok(plan);
        }
        // Build outside the lock — same reasoning as [`PlanCache`].
        let plan = Arc::new(MultiKeyPlan::build(specs, rel, key_idx));
        let mut inner = self.inner.lock().expect("plan cache is never poisoned");
        Ok(inner.insert_or_get(key, plan, Self::CAPACITY))
    }

    /// Number of memoized recipient-set plans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("plan cache is never poisoned").len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all memoized plans. Lifetime counters survive the clear.
    pub fn clear(&self) {
        self.inner.lock().expect("plan cache is never poisoned").clear();
    }

    /// Lifetime hit/miss/eviction counters for this cache (shared by
    /// all clones, which share the store).
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().expect("plan cache is never poisoned").stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catmark_datagen::{ItemScanConfig, SalesGenerator};
    use catmark_relation::Value;

    fn fixture(tuples: usize, e: u64) -> (Relation, WatermarkSpec) {
        let gen = SalesGenerator::new(ItemScanConfig { tuples, ..Default::default() });
        let rel = gen.generate();
        let spec = WatermarkSpec::builder(gen.item_domain())
            .master_key("plan-tests")
            .e(e)
            .wm_len(10)
            .expected_tuples(tuples)
            .build()
            .unwrap();
        (rel, spec)
    }

    #[test]
    fn plan_agrees_with_fitness_selector() {
        let (rel, spec) = fixture(4_000, 20);
        let plan = MarkPlan::build_sequential(&spec, &rel, 0);
        let sel = FitnessSelector::new(&spec);
        let expected = sel.fit_rows(&rel, 0);
        assert_eq!(plan.fit().iter().map(|p| p.row as usize).collect::<Vec<_>>(), expected);
        let n = spec.domain.len() as u64;
        for planned in plan.fit() {
            let key = rel.value(planned.row as usize, 0).unwrap();
            assert_eq!(planned.position as usize, sel.position(&key));
            assert_eq!(u64::from(planned.value_base), sel.value_base(&key, n));
        }
    }

    #[test]
    fn parallel_build_is_byte_identical_to_sequential() {
        let (rel, spec) = fixture(10_000, 15);
        let sequential = MarkPlan::build_sequential(&spec, &rel, 0);
        for threads in [1, 2, 3, 7, 16] {
            let parallel = MarkPlan::build_with_threads(&spec, &rel, 0, threads);
            assert_eq!(parallel.fit(), sequential.fit(), "threads={threads}");
            assert_eq!(parallel.rows(), sequential.rows());
        }
    }

    /// A relation whose attribute 1 is a text column drawn from
    /// `pool` (plans key on it; duplicates are the point), plus a spec
    /// over a small integer domain.
    fn text_keyed_fixture(tuples: usize, pool: &[&str]) -> (Relation, WatermarkSpec) {
        use catmark_relation::{AttrType, CategoricalDomain, Schema};
        let schema = Schema::builder()
            .key_attr("id", AttrType::Integer)
            .categorical_attr("k", AttrType::Text)
            .build()
            .unwrap();
        let mut rel = Relation::with_capacity(schema, tuples);
        for i in 0..tuples {
            let k = pool[(i * 7 + i / 11) % pool.len()];
            rel.push(vec![Value::Int(i as i64), Value::Text(k.into())]).unwrap();
        }
        let domain = CategoricalDomain::new((0..50).map(Value::Int).collect()).unwrap();
        let spec = WatermarkSpec::builder(domain)
            .master_key("low-cardinality-text-keys")
            .e(4)
            .wm_len(8)
            .expected_tuples(tuples)
            .build()
            .unwrap();
        (rel, spec)
    }

    #[test]
    fn threaded_text_memo_matches_sequential_on_low_cardinality_keys() {
        // Six distinct keys over 20k rows: every chunk of every
        // threaded build must see the same once-per-plan distinct-entry
        // facts table the sequential build uses (the historical code
        // re-decided memoization per chunk, by chunk length), and the
        // fit lists must stay byte-identical across thread counts.
        let pool = ["red", "green", "blue", "cyan", "violet", "umber"];
        let (rel, spec) = text_keyed_fixture(20_000, &pool);
        let sequential = MarkPlan::build_sequential(&spec, &rel, 1);
        assert!(!sequential.is_empty(), "fixture selects no fit tuples");
        for threads in [2, 3, 7, 16, 61] {
            let threaded = MarkPlan::build_with_threads(&spec, &rel, 1, threads);
            assert_eq!(threaded.fit(), sequential.fit(), "threads={threads}");
        }
    }

    #[test]
    fn near_unique_text_keys_also_agree_across_thread_counts() {
        // The no-memo (per-row hashing) arm of the shared scan context.
        let pool: Vec<String> = (0..4_000).map(|i| format!("user-{i:05}")).collect();
        let pool_refs: Vec<&str> = pool.iter().map(String::as_str).collect();
        let (rel, spec) = text_keyed_fixture(4_096, &pool_refs);
        let sequential = MarkPlan::build_sequential(&spec, &rel, 1);
        for threads in [2, 5] {
            let threaded = MarkPlan::build_with_threads(&spec, &rel, 1, threads);
            assert_eq!(threaded.fit(), sequential.fit(), "threads={threads}");
        }
    }

    #[test]
    fn catmark_threads_override_is_consulted() {
        // `build` must honor the override (including nonsense values
        // falling back to detection) and stay byte-identical whatever
        // the count. Thread counts only move work around, so this is
        // observationally a byte-identity check plus "doesn't crash".
        let (rel, spec) = fixture(20_000, 10);
        let reference = MarkPlan::build_sequential(&spec, &rel, 0);
        for forced in ["1", "3", " 8 ", "not-a-number", "0"] {
            std::env::set_var("CATMARK_THREADS", forced);
            let plan = MarkPlan::build(&spec, &rel, 0);
            assert_eq!(plan.fit(), reference.fit(), "CATMARK_THREADS={forced}");
        }
        std::env::remove_var("CATMARK_THREADS");
    }

    #[test]
    fn value_index_forces_lsb_within_domain() {
        let (rel, spec) = fixture(3_000, 10);
        let plan = MarkPlan::build(&spec, &rel, 0);
        let n = spec.domain.len();
        assert!(!plan.is_empty());
        for planned in plan.fit() {
            for bit in [false, true] {
                let t = plan.value_index(planned, bit);
                assert!(t < n);
                assert_eq!(t & 1 == 1, bit);
            }
        }
    }

    #[test]
    fn matches_gates_spec_shape_and_content() {
        let (rel, spec) = fixture(1_000, 10);
        let plan = MarkPlan::build(&spec, &rel, 0);
        assert!(plan.matches(&spec, &rel));
        let rekeyed = spec.derived("other");
        assert!(!plan.matches(&rekeyed, &rel));
        let (smaller, _) = fixture(900, 10);
        assert!(!plan.matches(&spec, &smaller));
        // Same row count, different key content: a stale plan must be
        // rejected, not silently decoded against wrong row indices.
        let mut edited = rel.clone();
        let old = edited.tuple(0).unwrap().get(0).as_int().unwrap();
        edited.update_value(0, 0, Value::Int(old + 1_000_000)).unwrap();
        assert!(!plan.matches(&spec, &edited));
        // Row-shuffled relation of identical content: also rejected.
        let shuffled = catmark_relation::ops::shuffle(&rel, 42);
        assert!(!plan.matches(&spec, &shuffled));
    }

    #[test]
    fn stale_plan_is_an_error_not_a_wrong_decode() {
        use crate::decode::Decoder;
        use crate::ecc::MajorityVotingEcc;
        let (rel, spec) = fixture(1_000, 10);
        let plan = MarkPlan::build(&spec, &rel, 0);
        let shuffled = catmark_relation::ops::shuffle(&rel, 7);
        let err = Decoder::engine(&spec).decode_with_plan(&shuffled, 1, &MajorityVotingEcc, &plan);
        assert!(matches!(err, Err(CoreError::InvalidSpec(_))));
    }

    #[test]
    fn cache_is_bounded() {
        let (rel, spec) = fixture(100, 10);
        let cache = PlanCache::new();
        for i in 0..(PlanCache::CAPACITY + 5) {
            cache.plan_for(&spec.derived(&format!("tenant-{i}")), &rel, 0).unwrap();
        }
        assert!(cache.len() <= PlanCache::CAPACITY);
    }

    #[test]
    fn cache_reuses_plans_and_distinguishes_content() {
        let (rel, spec) = fixture(2_000, 10);
        let cache = PlanCache::new();
        let a = cache.plan_for(&spec, &rel, 0).unwrap();
        let b = cache.plan_for(&spec, &rel, 0).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "identical requests share one plan");
        assert_eq!(cache.len(), 1);

        // Same shape, different key content → a different plan.
        let mut altered = rel.clone();
        let old = altered.tuple(0).unwrap().get(0).as_int().unwrap();
        altered.update_value(0, 0, Value::Int(old + 1_000_000)).unwrap();
        let c = cache.plan_for(&spec, &altered, 0).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);

        // Different keys under the same column → a different plan.
        let d = cache.plan_for(&spec.derived("buyer:acme"), &rel, 0).unwrap();
        assert!(!Arc::ptr_eq(&a, &d));

        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn lru_eviction_keeps_hot_plans_through_interleaved_cold_traffic() {
        // The clear-on-full baseline wipes the whole store every
        // CAPACITY-th distinct insert, so a workload interleaving a
        // few hot specs with a stream of one-shot ones re-plans the
        // hot set over and over (hit rate for the hot specs over this
        // access pattern: well under 100%). LRU must keep every hot
        // plan resident — their stamps refresh each round while the
        // cold entries evict each other.
        let (rel, spec) = fixture(300, 10);
        let cache = PlanCache::new();
        let hot: Vec<WatermarkSpec> = (0..4).map(|i| spec.derived(&format!("hot-{i}"))).collect();
        let first: Vec<Arc<MarkPlan>> =
            hot.iter().map(|s| cache.plan_for(s, &rel, 0).unwrap()).collect();
        let mut hot_hits = 0usize;
        let mut hot_accesses = 0usize;
        for i in 0..(PlanCache::CAPACITY + 16) {
            cache.plan_for(&spec.derived(&format!("cold-{i}")), &rel, 0).unwrap();
            for (s, original) in hot.iter().zip(&first) {
                let again = cache.plan_for(s, &rel, 0).unwrap();
                hot_accesses += 1;
                if Arc::ptr_eq(original, &again) {
                    hot_hits += 1;
                }
            }
            assert!(cache.len() <= PlanCache::CAPACITY);
        }
        assert_eq!(
            hot_hits, hot_accesses,
            "hot plans were evicted by cold traffic ({hot_hits}/{hot_accesses} hits)"
        );
    }

    #[test]
    fn spec_identity_separates_shifted_key_bytes() {
        // Two different key pairs whose concatenation around a plain
        // separator would be byte-identical (01 FF 02 FF 03): the
        // length-prefixed identity must keep them distinct, or the
        // cache would serve one spec's plan for the other.
        let (_, spec) = fixture(100, 10);
        let mut a = spec.clone();
        a.k1 = catmark_crypto::SecretKey::from_bytes(vec![0x01]);
        a.k2 = catmark_crypto::SecretKey::from_bytes(vec![0x02, 0xFF, 0x03]);
        let mut b = spec;
        b.k1 = catmark_crypto::SecretKey::from_bytes(vec![0x01, 0xFF, 0x02]);
        b.k2 = catmark_crypto::SecretKey::from_bytes(vec![0x03]);
        assert_ne!(spec_identity(&a), spec_identity(&b));
    }

    #[test]
    fn cache_stats_count_hits_misses_and_evictions() {
        let (rel, spec) = fixture(100, 10);
        let cache = PlanCache::new();
        assert_eq!(cache.stats(), CacheStats::default());
        cache.plan_for(&spec, &rel, 0).unwrap();
        cache.plan_for(&spec, &rel, 0).unwrap();
        let warm = cache.stats();
        assert_eq!((warm.hits, warm.misses, warm.evictions), (1, 1, 0));
        // Overflow the store: each cold insert past capacity evicts
        // exactly one entry, and counters survive `clear`.
        for i in 0..(PlanCache::CAPACITY + 3) {
            cache.plan_for(&spec.derived(&format!("cold-{i}")), &rel, 0).unwrap();
        }
        let full = cache.stats();
        assert_eq!(full.evictions, 4, "one eviction per insert past capacity");
        cache.clear();
        assert_eq!(cache.stats(), full, "clear drops plans, not traffic history");
    }

    #[test]
    fn cache_rejects_out_of_range_attribute() {
        let (rel, spec) = fixture(100, 10);
        assert!(PlanCache::new().plan_for(&spec, &rel, 9).is_err());
    }

    #[test]
    fn multi_key_build_matches_sequential_per_recipient() {
        // The batched recipient pass must reproduce each recipient's
        // independent sequential build byte for byte — across batch
        // sizes that exercise full quads, partial quads, the
        // single-recipient case, and duplicate recipients.
        let (rel, spec) = fixture(3_000, 15);
        for count in [0usize, 1, 3, 4, 5, 8, 11] {
            let mut specs: Vec<WatermarkSpec> =
                (0..count).map(|i| spec.derived(&format!("buyer:{}", i % 7))).collect();
            if count > 2 {
                // Force a duplicate pair inside one quad.
                specs[1] = specs[0].clone();
            }
            let batched = MultiKeyPlan::build(&specs, &rel, 0);
            let reference = MultiKeyPlan::build_sequential(&specs, &rel, 0);
            assert_eq!(batched.len(), count);
            assert_eq!(batched.is_empty(), count == 0);
            for (i, (b, r)) in batched.plans().iter().zip(reference.plans()).enumerate() {
                assert_eq!(b.fit(), r.fit(), "count={count} recipient={i}");
                assert_eq!(b.rows(), r.rows());
                assert!(b.matches(&specs[i], &rel), "count={count} recipient={i}");
            }
        }
    }

    #[test]
    fn multi_key_build_falls_back_on_text_key_columns() {
        let pool = ["red", "green", "blue", "cyan"];
        let (rel, spec) = text_keyed_fixture(2_000, &pool);
        let specs: Vec<WatermarkSpec> =
            (0..5).map(|i| spec.derived(&format!("buyer:{i}"))).collect();
        let batched = MultiKeyPlan::build(&specs, &rel, 1);
        for (i, plan) in batched.plans().iter().enumerate() {
            let reference = MarkPlan::build_sequential(&specs[i], &rel, 1);
            assert_eq!(plan.fit(), reference.fit(), "recipient={i}");
        }
    }

    #[test]
    fn multi_plan_cache_reuses_whole_recipient_sets() {
        let (rel, spec) = fixture(1_000, 10);
        let specs: Vec<WatermarkSpec> =
            (0..9).map(|i| spec.derived(&format!("buyer:{i}"))).collect();
        let cache = MultiPlanCache::new();
        let a = cache.plan_for(&specs, &rel, 0).unwrap();
        let b = cache.plan_for(&specs, &rel, 0).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "identical recipient sets share one batch");
        assert_eq!(cache.len(), 1);

        // Reordering recipients is a different entry (plan order is
        // part of the contract).
        let mut reordered = specs.clone();
        reordered.swap(0, 5);
        let c = cache.plan_for(&reordered, &rel, 0).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));

        // Bounded: overflowing the capacity resets rather than grows.
        for i in 0..(MultiPlanCache::CAPACITY + 2) {
            let other: Vec<WatermarkSpec> =
                (0..3).map(|j| spec.derived(&format!("set-{i}-{j}"))).collect();
            cache.plan_for(&other, &rel, 0).unwrap();
        }
        assert!(cache.len() <= MultiPlanCache::CAPACITY);
        cache.clear();
        assert!(cache.is_empty());

        assert!(cache.plan_for(&specs, &rel, 9).is_err());
    }
}
