//! The shared mark-plan layer: one (optionally parallel) pass over a
//! relation that computes every per-tuple fact the watermarking
//! operators need, computed once and consumed by all of them.
//!
//! Everything in the paper's scheme is a pure function of the keyed
//! hashes of each tuple's primary key: the fitness bit
//! (`H(key, k1) mod e == 0`), the `wm_data` position
//! (`H(key, k2) mod |wm_data|`), and the pseudorandom value base
//! (`msb32(H(key, k1)) mod nA`). Historically the embedder, the blind
//! decoder, the stream marker, the multi-attribute passes, the
//! fingerprint tracer, and the contest resolver each recomputed those
//! hashes independently — and the fitness test and value base each
//! evaluated `H(·, k1)` separately, doubling the dominant cost.
//!
//! [`MarkPlan`] performs the pass once per `(spec keys, key column)`
//! pair, storing only the fit rows (≈ N/e entries), and every operator
//! consumes the same plan. [`PlanCache`] memoizes plans across
//! operators — an embed → decode round trip over the same relation
//! hashes the key column **once** instead of twice (and instead of
//! four `H(·, k1)` passes in the historical code). Plan construction
//! can fan out over threads; chunked row ranges are merged in order,
//! so sequential and parallel builds are byte-identical (pinned by
//! test).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use catmark_relation::{CanonicalText, ColumnView, Relation};

use crate::error::CoreError;
use crate::fitness::{FitFacts, FitnessSelector};
use crate::spec::WatermarkSpec;

/// The planned facts for one fit tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedRow {
    /// Row index in the planned relation.
    pub row: u32,
    /// The `wm_data` position this tuple carries.
    pub position: u32,
    /// Value base, already reduced modulo the domain size `nA`.
    pub value_base: u32,
}

/// Per-tuple facts for one `(spec, key column)` pair: the fit rows
/// with their positions and value bases, in ascending row order.
#[derive(Debug, Clone)]
pub struct MarkPlan {
    spec_id: u64,
    key_idx: usize,
    column_fp: u64,
    rows: usize,
    n: u64,
    fit: Vec<PlannedRow>,
}

impl MarkPlan {
    /// Build the plan for `rel` keyed by attribute `key_idx`, choosing
    /// sequential or parallel construction by relation size and
    /// available parallelism.
    #[must_use]
    pub fn build(spec: &WatermarkSpec, rel: &Relation, key_idx: usize) -> MarkPlan {
        Self::build_knowing_fp(spec, rel, key_idx, column_fingerprint(rel, key_idx))
    }

    /// [`MarkPlan::build`] with the key-column fingerprint already in
    /// hand (the cache computes it for its lookup key; no need to walk
    /// the column twice).
    fn build_knowing_fp(
        spec: &WatermarkSpec,
        rel: &Relation,
        key_idx: usize,
        column_fp: u64,
    ) -> MarkPlan {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        if threads < 2 || rel.len() < 16_384 {
            Self::sequential_knowing_fp(spec, rel, key_idx, column_fp)
        } else {
            Self::threaded_knowing_fp(spec, rel, key_idx, threads, column_fp)
        }
    }

    /// Single-threaded plan construction — the reference semantics.
    #[must_use]
    pub fn build_sequential(spec: &WatermarkSpec, rel: &Relation, key_idx: usize) -> MarkPlan {
        Self::sequential_knowing_fp(spec, rel, key_idx, column_fingerprint(rel, key_idx))
    }

    fn sequential_knowing_fp(
        spec: &WatermarkSpec,
        rel: &Relation,
        key_idx: usize,
        column_fp: u64,
    ) -> MarkPlan {
        let sel = FitnessSelector::new(spec);
        let n = domain_size(spec);
        let mut fit = Vec::with_capacity(fit_estimate(rel.len(), spec.e));
        scan_rows(&sel, rel.column(key_idx), 0..rel.len(), n, &mut fit);
        MarkPlan { spec_id: spec_identity(spec), key_idx, column_fp, rows: rel.len(), n, fit }
    }

    /// Plan construction fanned out over `threads` scoped threads.
    ///
    /// Rows are split into contiguous chunks, each scanned
    /// independently, and the per-chunk fit lists concatenated in
    /// chunk order — the result is byte-identical to
    /// [`MarkPlan::build_sequential`].
    ///
    /// # Panics
    ///
    /// Panics when `threads == 0`.
    #[must_use]
    pub fn build_with_threads(
        spec: &WatermarkSpec,
        rel: &Relation,
        key_idx: usize,
        threads: usize,
    ) -> MarkPlan {
        Self::threaded_knowing_fp(spec, rel, key_idx, threads, column_fingerprint(rel, key_idx))
    }

    fn threaded_knowing_fp(
        spec: &WatermarkSpec,
        rel: &Relation,
        key_idx: usize,
        threads: usize,
        column_fp: u64,
    ) -> MarkPlan {
        assert!(threads > 0, "at least one thread required");
        let rows = rel.len();
        let chunk = rows.div_ceil(threads).max(1);
        let sel = FitnessSelector::new(spec);
        let n = domain_size(spec);
        let view = rel.column(key_idx);
        let mut chunks: Vec<Vec<PlannedRow>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..rows)
                .step_by(chunk)
                .map(|start| {
                    let sel = &sel;
                    let end = (start + chunk).min(rows);
                    scope.spawn(move || {
                        let mut fit = Vec::with_capacity(fit_estimate(end - start, spec.e));
                        scan_rows(sel, view, start..end, n, &mut fit);
                        fit
                    })
                })
                .collect();
            chunks = handles
                .into_iter()
                .map(|h| h.join().expect("plan scan threads do not panic"))
                .collect();
        });
        let fit = chunks.concat();
        MarkPlan { spec_id: spec_identity(spec), key_idx, column_fp, rows, n, fit }
    }

    /// The fit tuples, ascending by row.
    #[must_use]
    pub fn fit(&self) -> &[PlannedRow] {
        &self.fit
    }

    /// Rows in the planned relation (the paper's `N`).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Whether the plan is empty (no fit tuples).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fit.is_empty()
    }

    /// The domain value index a fit tuple must carry for watermark bit
    /// `bit`: the value base with its LSB forced, kept inside the
    /// domain.
    #[must_use]
    pub fn value_index(&self, planned: &PlannedRow, bit: bool) -> usize {
        crate::bits::force_lsb_in_domain(u64::from(planned.value_base), bit, self.n) as usize
    }

    /// Whether this plan was built under `spec` for `rel`'s key
    /// column: same keyed parameters and domain size, same row count,
    /// and the same key-column **content** (verified through the
    /// column fingerprint, so a shuffled, subsetted, or re-keyed
    /// relation of equal length is rejected rather than silently
    /// decoded against stale row indices).
    ///
    /// Costs one cheap fingerprint pass over the key column — two
    /// orders of magnitude below the keyed-hash pass a stale plan
    /// would corrupt.
    #[must_use]
    pub fn matches(&self, spec: &WatermarkSpec, rel: &Relation) -> bool {
        self.spec_id == spec_identity(spec)
            && self.rows == rel.len()
            && self.key_idx < rel.schema().arity()
            && self.column_fp == column_fingerprint(rel, self.key_idx)
    }
}

/// Scan `range` of the key column, appending planned facts for fit
/// rows.
///
/// Integer columns run the fixed-width scanner — two SHA-256 blocks
/// per key with the constant second block's schedule pre-expanded.
/// Text columns memoize facts per **dictionary code**: `H(T_j(K), k)`
/// hashes each distinct string once per plan, not once per row.
fn scan_rows(
    sel: &FitnessSelector,
    view: ColumnView<'_>,
    range: std::ops::Range<usize>,
    n: u64,
    out: &mut Vec<PlannedRow>,
) {
    match view {
        ColumnView::Int(xs) => {
            let scanner = sel.int_scanner();
            let keys = &xs[range.clone()];
            let mut row = range.start;
            let mut quads = keys.chunks_exact(4);
            for quad in &mut quads {
                let lanes = scanner.facts4([quad[0], quad[1], quad[2], quad[3]]);
                for (lane, facts) in lanes.into_iter().enumerate() {
                    if let Some(facts) = facts {
                        out.push(planned(row + lane, &facts, n));
                    }
                }
                row += 4;
            }
            for &key in quads.remainder() {
                if let Some(facts) = scanner.facts(key) {
                    out.push(planned(row, &facts, n));
                }
                row += 1;
            }
        }
        ColumnView::Text { codes, dict } => {
            // Memoize per dictionary code only when values actually
            // repeat within this range (≥ 2 rows per distinct value on
            // average); a near-unique text column — e.g. a text
            // primary key — would pay a dict-sized allocation per
            // (possibly per-thread) scan for memo entries that never
            // hit.
            if 2 * dict.len() <= range.len() {
                // `None` = not yet computed; `Some(None)` = unfit.
                let mut memo: Vec<Option<Option<FitFacts>>> = vec![None; dict.len()];
                for row in range {
                    let code = codes[row] as usize;
                    let facts = match memo[code] {
                        Some(f) => f,
                        None => {
                            let f = sel.facts_canonical(&CanonicalText(dict.get(code as u32)));
                            memo[code] = Some(f);
                            f
                        }
                    };
                    if let Some(facts) = facts {
                        out.push(planned(row, &facts, n));
                    }
                }
            } else {
                for row in range {
                    let entry = dict.get(codes[row]);
                    if let Some(facts) = sel.facts_canonical(&CanonicalText(entry)) {
                        out.push(planned(row, &facts, n));
                    }
                }
            }
        }
    }
}

/// Expected fit-list capacity for `rows` rows at modulus `e`, with
/// ~4σ binomial slack to avoid a mid-scan reallocation.
fn fit_estimate(rows: usize, e: u64) -> usize {
    let e = usize::try_from(e).unwrap_or(1).max(1);
    let mean = rows / e;
    mean + 4 * (mean as f64).sqrt() as usize + 8
}

fn planned(row: usize, facts: &crate::fitness::FitFacts, n: u64) -> PlannedRow {
    PlannedRow {
        row: u32::try_from(row).expect("relations hold fewer than 2^32 rows"),
        position: u32::try_from(facts.position).expect("wm_data_len fits in u32"),
        value_base: u32::try_from(facts.value_base(n)).expect("domain size fits in u32"),
    }
}

fn domain_size(spec: &WatermarkSpec) -> u64 {
    spec.domain.len() as u64
}

/// FNV-1a identity of the spec parameters a plan depends on. The
/// domain participates through its size only: the plan stores value
/// *indices*, which depend on `nA` but not on the values themselves.
fn spec_identity(spec: &WatermarkSpec) -> u64 {
    let mut h = Fnv::new();
    h.write(&[match spec.algo {
        catmark_crypto::HashAlgorithm::Md5 => 1,
        catmark_crypto::HashAlgorithm::Sha1 => 2,
        catmark_crypto::HashAlgorithm::Sha256 => 3,
    }]);
    // Length-prefix the variable-length keys so the concatenation is
    // injective: without it, shifting bytes between k1 and k2 around a
    // plain separator would collide two different key pairs into one
    // cache identity.
    h.write(&(spec.k1.as_bytes().len() as u64).to_be_bytes());
    h.write(spec.k1.as_bytes());
    h.write(&(spec.k2.as_bytes().len() as u64).to_be_bytes());
    h.write(spec.k2.as_bytes());
    h.write(&spec.e.to_be_bytes());
    h.write(&(spec.wm_data_len as u64).to_be_bytes());
    h.write(&domain_size(spec).to_be_bytes());
    h.finish()
}

/// Cheap (non-cryptographic) content fingerprint of the key column —
/// how [`PlanCache`] recognizes a relation it has already planned.
/// Integer keys mix word-wide (SplitMix64 finalizer per row); text
/// keys fold FNV-1a over their bytes first. Two orders of magnitude
/// cheaper than one keyed SHA-256 pass over the same column. Not
/// collision-resistant against adversarial inputs: the cache is a
/// same-process memoization, not an integrity boundary.
fn column_fingerprint(rel: &Relation, key_idx: usize) -> u64 {
    fn mix(h: u64, v: u64) -> u64 {
        (h ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(23)
    }
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    match rel.column(key_idx) {
        ColumnView::Int(xs) => {
            for &i in xs {
                h = mix(h, i as u64 ^ 0x0100_0000_0000_0000);
            }
        }
        ColumnView::Text { codes, dict } => {
            // FNV each distinct entry once, fold per row by code —
            // same digest the row store produced hashing every row.
            let entry_fp: Vec<u64> = dict
                .entries()
                .iter()
                .map(|s| {
                    let mut f = Fnv::new();
                    f.write(&[0x02]);
                    f.write(s.as_bytes());
                    f.finish()
                })
                .collect();
            for &c in codes {
                h = mix(h, entry_fp[c as usize]);
            }
        }
    }
    h
}

/// Minimal FNV-1a state.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xCBF2_9CE4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x1000_0000_01B3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Memoizes [`MarkPlan`]s keyed by `(spec identity, key attribute,
/// key-column content fingerprint)`.
///
/// Sharing one cache across an embed → decode round trip (or across
/// repeated traces of the same suspect copy) collapses the keyed-hash
/// work to a single pass over the key column. The cache is
/// thread-safe; clones share the same underlying store. Memoization
/// is bounded: when the store reaches [`PlanCache::CAPACITY`] distinct
/// plans it resets, so a long-lived holder (e.g. a fingerprint
/// registry tracing an endless stream of suspect copies) cannot grow
/// without bound.
#[derive(Debug, Clone, Default)]
pub struct PlanCache {
    inner: Arc<Mutex<HashMap<PlanKey, Arc<MarkPlan>>>>,
}

/// `(spec identity, key attribute index, key-column fingerprint)`.
type PlanKey = (u64, usize, u64);

impl PlanCache {
    /// Distinct plans memoized before the store resets.
    pub const CAPACITY: usize = 64;

    /// Fresh, empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The plan for `(spec, rel, key_idx)`, building and memoizing it
    /// on first request.
    ///
    /// # Errors
    ///
    /// [`CoreError::Relation`] when `key_idx` is out of schema range.
    pub fn plan_for(
        &self,
        spec: &WatermarkSpec,
        rel: &Relation,
        key_idx: usize,
    ) -> Result<Arc<MarkPlan>, CoreError> {
        if key_idx >= rel.schema().arity() {
            return Err(CoreError::Relation(catmark_relation::RelationError::InvalidSchema(
                format!("key attribute index {key_idx} out of range"),
            )));
        }
        let key = (spec_identity(spec), key_idx, column_fingerprint(rel, key_idx));
        if let Some(plan) = self.inner.lock().expect("plan cache is never poisoned").get(&key) {
            return Ok(Arc::clone(plan));
        }
        // Build outside the lock: plans are immutable, so two threads
        // racing on the same key at worst build twice and agree; and a
        // long build never blocks other cache users (or poisons the
        // mutex if it panics).
        let plan = Arc::new(MarkPlan::build_knowing_fp(spec, rel, key_idx, key.2));
        let mut inner = self.inner.lock().expect("plan cache is never poisoned");
        if inner.len() >= Self::CAPACITY && !inner.contains_key(&key) {
            inner.clear();
        }
        Ok(Arc::clone(inner.entry(key).or_insert(plan)))
    }

    /// Number of memoized plans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("plan cache is never poisoned").len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all memoized plans.
    pub fn clear(&self) {
        self.inner.lock().expect("plan cache is never poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catmark_datagen::{ItemScanConfig, SalesGenerator};
    use catmark_relation::Value;

    fn fixture(tuples: usize, e: u64) -> (Relation, WatermarkSpec) {
        let gen = SalesGenerator::new(ItemScanConfig { tuples, ..Default::default() });
        let rel = gen.generate();
        let spec = WatermarkSpec::builder(gen.item_domain())
            .master_key("plan-tests")
            .e(e)
            .wm_len(10)
            .expected_tuples(tuples)
            .build()
            .unwrap();
        (rel, spec)
    }

    #[test]
    fn plan_agrees_with_fitness_selector() {
        let (rel, spec) = fixture(4_000, 20);
        let plan = MarkPlan::build_sequential(&spec, &rel, 0);
        let sel = FitnessSelector::new(&spec);
        let expected = sel.fit_rows(&rel, 0);
        assert_eq!(plan.fit().iter().map(|p| p.row as usize).collect::<Vec<_>>(), expected);
        let n = spec.domain.len() as u64;
        for planned in plan.fit() {
            let key = rel.value(planned.row as usize, 0).unwrap();
            assert_eq!(planned.position as usize, sel.position(&key));
            assert_eq!(u64::from(planned.value_base), sel.value_base(&key, n));
        }
    }

    #[test]
    fn parallel_build_is_byte_identical_to_sequential() {
        let (rel, spec) = fixture(10_000, 15);
        let sequential = MarkPlan::build_sequential(&spec, &rel, 0);
        for threads in [1, 2, 3, 7, 16] {
            let parallel = MarkPlan::build_with_threads(&spec, &rel, 0, threads);
            assert_eq!(parallel.fit(), sequential.fit(), "threads={threads}");
            assert_eq!(parallel.rows(), sequential.rows());
        }
    }

    #[test]
    fn value_index_forces_lsb_within_domain() {
        let (rel, spec) = fixture(3_000, 10);
        let plan = MarkPlan::build(&spec, &rel, 0);
        let n = spec.domain.len();
        assert!(!plan.is_empty());
        for planned in plan.fit() {
            for bit in [false, true] {
                let t = plan.value_index(planned, bit);
                assert!(t < n);
                assert_eq!(t & 1 == 1, bit);
            }
        }
    }

    #[test]
    fn matches_gates_spec_shape_and_content() {
        let (rel, spec) = fixture(1_000, 10);
        let plan = MarkPlan::build(&spec, &rel, 0);
        assert!(plan.matches(&spec, &rel));
        let rekeyed = spec.derived("other");
        assert!(!plan.matches(&rekeyed, &rel));
        let (smaller, _) = fixture(900, 10);
        assert!(!plan.matches(&spec, &smaller));
        // Same row count, different key content: a stale plan must be
        // rejected, not silently decoded against wrong row indices.
        let mut edited = rel.clone();
        let old = edited.tuple(0).unwrap().get(0).as_int().unwrap();
        edited.update_value(0, 0, Value::Int(old + 1_000_000)).unwrap();
        assert!(!plan.matches(&spec, &edited));
        // Row-shuffled relation of identical content: also rejected.
        let shuffled = catmark_relation::ops::shuffle(&rel, 42);
        assert!(!plan.matches(&spec, &shuffled));
    }

    #[test]
    fn stale_plan_is_an_error_not_a_wrong_decode() {
        use crate::decode::Decoder;
        use crate::ecc::MajorityVotingEcc;
        let (rel, spec) = fixture(1_000, 10);
        let plan = MarkPlan::build(&spec, &rel, 0);
        let shuffled = catmark_relation::ops::shuffle(&rel, 7);
        let err = Decoder::engine(&spec).decode_with_plan(&shuffled, 1, &MajorityVotingEcc, &plan);
        assert!(matches!(err, Err(CoreError::InvalidSpec(_))));
    }

    #[test]
    fn cache_is_bounded() {
        let (rel, spec) = fixture(100, 10);
        let cache = PlanCache::new();
        for i in 0..(PlanCache::CAPACITY + 5) {
            cache.plan_for(&spec.derived(&format!("tenant-{i}")), &rel, 0).unwrap();
        }
        assert!(cache.len() <= PlanCache::CAPACITY);
    }

    #[test]
    fn cache_reuses_plans_and_distinguishes_content() {
        let (rel, spec) = fixture(2_000, 10);
        let cache = PlanCache::new();
        let a = cache.plan_for(&spec, &rel, 0).unwrap();
        let b = cache.plan_for(&spec, &rel, 0).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "identical requests share one plan");
        assert_eq!(cache.len(), 1);

        // Same shape, different key content → a different plan.
        let mut altered = rel.clone();
        let old = altered.tuple(0).unwrap().get(0).as_int().unwrap();
        altered.update_value(0, 0, Value::Int(old + 1_000_000)).unwrap();
        let c = cache.plan_for(&spec, &altered, 0).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);

        // Different keys under the same column → a different plan.
        let d = cache.plan_for(&spec.derived("buyer:acme"), &rel, 0).unwrap();
        assert!(!Arc::ptr_eq(&a, &d));

        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn spec_identity_separates_shifted_key_bytes() {
        // Two different key pairs whose concatenation around a plain
        // separator would be byte-identical (01 FF 02 FF 03): the
        // length-prefixed identity must keep them distinct, or the
        // cache would serve one spec's plan for the other.
        let (_, spec) = fixture(100, 10);
        let mut a = spec.clone();
        a.k1 = catmark_crypto::SecretKey::from_bytes(vec![0x01]);
        a.k2 = catmark_crypto::SecretKey::from_bytes(vec![0x02, 0xFF, 0x03]);
        let mut b = spec;
        b.k1 = catmark_crypto::SecretKey::from_bytes(vec![0x01, 0xFF, 0x02]);
        b.k2 = catmark_crypto::SecretKey::from_bytes(vec![0x03]);
        assert_ne!(spec_identity(&a), spec_identity(&b));
    }

    #[test]
    fn cache_rejects_out_of_range_attribute() {
        let (rel, spec) = fixture(100, 10);
        assert!(PlanCache::new().plan_for(&spec, &rel, 9).is_err());
    }
}
