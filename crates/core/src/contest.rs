//! Additive watermark attacks and ownership contests.
//!
//! The paper's conclusions flag this as open: "Additive watermark
//! attacks need to be analyzed and handled." In an additive attack
//! Mallory embeds *her own* watermark (with her own keys) over the
//! owner's marked data, then claims ownership. Both parties can now
//! demonstrate a mark — the court needs a tiebreaker.
//!
//! This module implements the analysis. The decisive observation is an
//! *asymmetry of damage*: embedding is last-writer-wins at the tuple
//! level, so the second mark partially overwrites the first where
//! their fit sets intersect, while the second mark is pristine.
//! Three measurable consequences, all captured by [`ClaimEvidence`]:
//!
//! 1. the later mark decodes with **zero position conflicts** and
//!    near-perfect vote unanimity; the earlier mark shows degradation
//!    exactly proportional to the fit-set overlap (≈ 1/e of its
//!    carriers);
//! 2. the later claimant **cannot produce a copy that predates** the
//!    earlier mark: re-decoding the earlier claimant's archived
//!    pre-release copy (if any) with the later keys finds nothing;
//! 3. quantitatively, `vote_unanimity` of the later mark
//!    stochastically dominates the earlier one's.
//!
//! [`resolve`] weighs (1) and (3); evidentiary workflows for (2) are
//! in the `court_day` example.

use catmark_relation::Relation;

use crate::decode::{DecodeReport, Decoder};
use crate::detect::{detect, Detection};
use crate::error::CoreError;
use crate::spec::{Watermark, WatermarkSpec};

/// One party's ownership claim: their spec (keys) and asserted mark.
#[derive(Debug, Clone)]
pub struct Claim {
    /// Claimant label for reports.
    pub claimant: String,
    /// The claimant's detection key material.
    pub spec: WatermarkSpec,
    /// The watermark the claimant asserts.
    pub watermark: Watermark,
}

/// Measured evidence for one claim against the disputed data.
#[derive(Debug, Clone)]
pub struct ClaimEvidence {
    /// Claimant label.
    pub claimant: String,
    /// Raw decode.
    pub decode: DecodeReport,
    /// Match against the asserted mark.
    pub detection: Detection,
    /// Fraction of voted positions that were unanimous — the damage
    /// fingerprint (1.0 for the most recent embedding, lower for
    /// marks that were partially overwritten afterwards).
    pub vote_unanimity: f64,
}

impl ClaimEvidence {
    /// Whether the claim shows a statistically significant mark at
    /// `alpha`.
    #[must_use]
    pub fn is_present(&self, alpha: f64) -> bool {
        self.detection.is_significant(alpha)
    }
}

impl std::fmt::Display for ClaimEvidence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "claim by {:?}: {}, vote unanimity {:.3}",
            self.claimant, self.detection, self.vote_unanimity
        )
    }
}

impl crate::session::Outcome for ClaimEvidence {
    fn fit_count(&self) -> usize {
        self.decode.fit_tuples
    }

    fn coverage(&self) -> f64 {
        self.decode.coverage()
    }

    /// Probability the observed match is *not* chance.
    fn confidence(&self) -> f64 {
        1.0 - self.detection.false_positive_probability
    }
}

/// Verdict of an ownership contest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContestOutcome {
    /// Only one claim is present at all.
    OnlyClaim(String),
    /// Both claims are present; the named claimant's mark shows the
    /// overwrite damage expected of the *earlier* embedding and is
    /// therefore presumed the original owner.
    EarlierClaim(String),
    /// Both present and statistically indistinguishable — escalate to
    /// extrinsic evidence (archived copies, registration).
    Indeterminate,
    /// Neither claim is present.
    NeitherClaim,
}

impl std::fmt::Display for ContestOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContestOutcome::OnlyClaim(who) => {
                write!(f, "only {who:?}'s mark is present")
            }
            ContestOutcome::EarlierClaim(who) => {
                write!(f, "both marks present; {who:?}'s shows the overwrite damage of the earlier embedding")
            }
            ContestOutcome::Indeterminate => {
                f.write_str("both marks present and statistically indistinguishable")
            }
            ContestOutcome::NeitherClaim => f.write_str("neither mark is present"),
        }
    }
}

/// Gather evidence for `claim` against `rel`.
///
/// # Errors
///
/// Attribute-resolution failures.
pub fn evidence(
    claim: &Claim,
    rel: &Relation,
    key_attr: &str,
    target_attr: &str,
) -> Result<ClaimEvidence, CoreError> {
    evidence_with_cache(claim, rel, key_attr, target_attr, &crate::plan::PlanCache::new())
}

/// [`evidence`] over a shared [`crate::plan::PlanCache`].
///
/// Plans are keyed per claimant spec, so the cache does **not** save
/// work *across* claims (each claimant's keys require their own hash
/// pass); it pays when the *same* claim's evidence is gathered more
/// than once against the same data — re-running a contest after new
/// filings, or auditing a verdict.
///
/// # Errors
///
/// Attribute-resolution failures.
pub fn evidence_with_cache(
    claim: &Claim,
    rel: &Relation,
    key_attr: &str,
    target_attr: &str,
    cache: &crate::plan::PlanCache,
) -> Result<ClaimEvidence, CoreError> {
    let key_idx = rel.schema().index_of(key_attr)?;
    let attr_idx = rel.schema().index_of(target_attr)?;
    let plan = cache.plan_for(&claim.spec, rel, key_idx)?;
    let decode = Decoder::engine(&claim.spec).decode_with_plan(
        rel,
        attr_idx,
        &crate::ecc::MajorityVotingEcc,
        &plan,
    )?;
    let detection = detect(&decode.watermark, &claim.watermark);
    let voted = decode.positions_observed.max(1);
    let unanimous = decode.positions_observed - decode.position_conflicts;
    Ok(ClaimEvidence {
        claimant: claim.claimant.clone(),
        decode,
        detection,
        vote_unanimity: unanimous as f64 / voted as f64,
    })
}

/// Resolve a two-party contest over `rel`.
///
/// `alpha` gates presence; when both marks are present, the claim with
/// *lower* vote unanimity (more overwrite damage) is presumed earlier
/// — additive attackers mark last and leave fingerprints on their
/// victim's carriers but none on their own. A margin of
/// `unanimity_margin` (e.g. 0.02) guards against noise-level
/// differences.
///
/// # Errors
///
/// Attribute-resolution failures.
pub fn resolve(
    a: &Claim,
    b: &Claim,
    rel: &Relation,
    key_attr: &str,
    target_attr: &str,
    alpha: f64,
    unanimity_margin: f64,
) -> Result<(ContestOutcome, ClaimEvidence, ClaimEvidence), CoreError> {
    resolve_with_cache(
        a,
        b,
        rel,
        key_attr,
        target_attr,
        alpha,
        unanimity_margin,
        &crate::plan::PlanCache::new(),
    )
}

/// [`resolve`] over a shared [`crate::plan::PlanCache`] — what a
/// [`crate::session::MarkSession`] passes so re-running the same
/// contest (new filings, audits) replans nothing.
///
/// # Errors
///
/// Attribute-resolution failures.
#[allow(clippy::too_many_arguments)]
pub fn resolve_with_cache(
    a: &Claim,
    b: &Claim,
    rel: &Relation,
    key_attr: &str,
    target_attr: &str,
    alpha: f64,
    unanimity_margin: f64,
    cache: &crate::plan::PlanCache,
) -> Result<(ContestOutcome, ClaimEvidence, ClaimEvidence), CoreError> {
    let ev_a = evidence_with_cache(a, rel, key_attr, target_attr, cache)?;
    let ev_b = evidence_with_cache(b, rel, key_attr, target_attr, cache)?;
    let outcome = match (ev_a.is_present(alpha), ev_b.is_present(alpha)) {
        (false, false) => ContestOutcome::NeitherClaim,
        (true, false) => ContestOutcome::OnlyClaim(ev_a.claimant.clone()),
        (false, true) => ContestOutcome::OnlyClaim(ev_b.claimant.clone()),
        (true, true) => {
            if ev_a.vote_unanimity + unanimity_margin < ev_b.vote_unanimity {
                ContestOutcome::EarlierClaim(ev_a.claimant.clone())
            } else if ev_b.vote_unanimity + unanimity_margin < ev_a.vote_unanimity {
                ContestOutcome::EarlierClaim(ev_b.claimant.clone())
            } else {
                ContestOutcome::Indeterminate
            }
        }
    };
    Ok((outcome, ev_a, ev_b))
}

/// The additive attack itself: embed `attacker_claim`'s mark over
/// already-marked data (a convenience wrapper making the attack
/// explicit in experiment code).
///
/// # Errors
///
/// Embedding failures.
pub fn additive_attack(
    rel: &mut Relation,
    attacker_claim: &Claim,
    key_attr: &str,
    target_attr: &str,
) -> Result<crate::embed::EmbedReport, CoreError> {
    let key_idx = rel.schema().index_of(key_attr)?;
    let attr_idx = rel.schema().index_of(target_attr)?;
    crate::embed::Embedder::engine(&attacker_claim.spec).embed_by_idx(
        rel,
        key_idx,
        attr_idx,
        &attacker_claim.watermark,
        &crate::ecc::MajorityVotingEcc,
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::ErasurePolicy;
    use catmark_datagen::{ItemScanConfig, SalesGenerator};

    fn claim(name: &str, gen: &SalesGenerator, e: u64) -> Claim {
        let spec = WatermarkSpec::builder(gen.item_domain())
            .master_key(format!("contest-{name}").as_str())
            .e(e)
            .wm_len(10)
            .expected_tuples(12_000)
            .erasure(ErasurePolicy::Abstain)
            .build()
            .unwrap();
        let wm = Watermark::from_identity(name, &spec.k1, 10);
        Claim { claimant: name.to_owned(), spec, watermark: wm }
    }

    fn fixture() -> (SalesGenerator, Relation) {
        let gen = SalesGenerator::new(ItemScanConfig { tuples: 12_000, ..Default::default() });
        let rel = gen.generate();
        (gen, rel)
    }

    #[test]
    fn additive_attacker_is_identified_as_later() {
        let (gen, mut rel) = fixture();
        let owner = claim("owner", &gen, 10);
        let mallory = claim("mallory", &gen, 10);
        // Owner marks first…
        crate::testkit::embed(&owner.spec, &mut rel, "visit_nbr", "item_nbr", &owner.watermark)
            .unwrap();
        // …Mallory additively marks second.
        additive_attack(&mut rel, &mallory, "visit_nbr", "item_nbr").unwrap();

        let (outcome, ev_owner, ev_mallory) =
            resolve(&owner, &mallory, &rel, "visit_nbr", "item_nbr", 1e-2, 0.01).unwrap();
        // Both marks are present (the attack succeeds at *presence*).
        assert!(ev_owner.is_present(1e-2), "owner evidence: {:?}", ev_owner.detection);
        assert!(ev_mallory.is_present(1e-2));
        // But the damage asymmetry exposes Mallory as the later marker.
        assert!(
            ev_owner.vote_unanimity < ev_mallory.vote_unanimity,
            "owner unanimity {} !< mallory {}",
            ev_owner.vote_unanimity,
            ev_mallory.vote_unanimity
        );
        assert_eq!(outcome, ContestOutcome::EarlierClaim("owner".into()));
    }

    #[test]
    fn unmarked_data_supports_neither() {
        let (gen, rel) = fixture();
        let a = claim("a", &gen, 10);
        let b = claim("b", &gen, 10);
        let (outcome, _, _) = resolve(&a, &b, &rel, "visit_nbr", "item_nbr", 1e-2, 0.01).unwrap();
        assert_eq!(outcome, ContestOutcome::NeitherClaim);
    }

    #[test]
    fn single_mark_yields_only_claim() {
        let (gen, mut rel) = fixture();
        let owner = claim("owner", &gen, 10);
        let pretender = claim("pretender", &gen, 10);
        crate::testkit::embed(&owner.spec, &mut rel, "visit_nbr", "item_nbr", &owner.watermark)
            .unwrap();
        let (outcome, ev_owner, ev_pretender) =
            resolve(&owner, &pretender, &rel, "visit_nbr", "item_nbr", 1e-2, 0.01).unwrap();
        assert_eq!(outcome, ContestOutcome::OnlyClaim("owner".into()));
        assert!((ev_owner.vote_unanimity - 1.0).abs() < 1e-9, "fresh mark is unanimous");
        assert!(!ev_pretender.is_present(1e-2));
    }

    #[test]
    fn independent_copy_supports_only_its_own_mark() {
        // Two marks embedded on *independent copies* then compared on
        // one of them: resolve on copy A must not spuriously name a
        // later claimant for B (B simply is not present there).
        let (gen, rel) = fixture();
        let a = claim("a", &gen, 10);
        let b = claim("b", &gen, 10);
        let mut copy_a = rel.clone();
        crate::testkit::embed(&a.spec, &mut copy_a, "visit_nbr", "item_nbr", &a.watermark).unwrap();
        let (outcome, _, _) =
            resolve(&a, &b, &copy_a, "visit_nbr", "item_nbr", 1e-2, 0.01).unwrap();
        assert_eq!(outcome, ContestOutcome::OnlyClaim("a".into()));
    }

    #[test]
    fn order_of_arguments_does_not_matter() {
        let (gen, mut rel) = fixture();
        let owner = claim("owner", &gen, 10);
        let mallory = claim("mallory", &gen, 10);
        crate::testkit::embed(&owner.spec, &mut rel, "visit_nbr", "item_nbr", &owner.watermark)
            .unwrap();
        additive_attack(&mut rel, &mallory, "visit_nbr", "item_nbr").unwrap();
        let (o1, _, _) =
            resolve(&owner, &mallory, &rel, "visit_nbr", "item_nbr", 1e-2, 0.01).unwrap();
        let (o2, _, _) =
            resolve(&mallory, &owner, &rel, "visit_nbr", "item_nbr", 1e-2, 0.01).unwrap();
        assert_eq!(o1, o2);
    }
}
