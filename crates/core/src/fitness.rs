//! Fit-tuple selection (Section 3.2.1).
//!
//! A tuple `T_i` is "fit" for encoding iff `H(T_i(K), k1) mod e == 0`.
//! The secret criterion simultaneously (i) hides *which* tuples carry
//! mark bits, (ii) modulates the encoding to the actual key–attribute
//! association, and (iii) — through the hash's one-wayness — defeats
//! court-time claims that the keys were fished for after the fact.

use catmark_crypto::KeyedHash;
use catmark_relation::{Relation, Value};

use crate::spec::WatermarkSpec;

/// Selects and hashes fit tuples for one (key attribute, spec) pair.
#[derive(Debug, Clone)]
pub struct FitnessSelector {
    keyed1: KeyedHash,
    keyed2: KeyedHash,
    e: u64,
    wm_data_len: u64,
}

impl FitnessSelector {
    /// Selector from a spec.
    #[must_use]
    pub fn new(spec: &WatermarkSpec) -> Self {
        FitnessSelector {
            keyed1: spec.keyed1(),
            keyed2: spec.keyed2(),
            e: spec.e,
            wm_data_len: spec.wm_data_len as u64,
        }
    }

    /// `H(key, k1)` — the fitness/value-selection hash.
    #[must_use]
    pub fn hash1(&self, key: &Value) -> u64 {
        self.keyed1.hash_u64(&[&key.canonical_bytes()])
    }

    /// Whether the tuple with primary key `key` is fit.
    #[must_use]
    pub fn is_fit(&self, key: &Value) -> bool {
        self.hash1(key).is_multiple_of(self.e)
    }

    /// The `wm_data` position carried by the fit tuple with key `key`:
    /// `H(key, k2) mod |wm_data|`.
    ///
    /// The paper writes `msb(H(T_j(K), k2), b(N/e))`; reducing modulo
    /// the (power-of-two-or-not) length avoids the out-of-range
    /// positions the raw `msb` form can produce while keeping the
    /// position a pure function of the tuple key — the property that
    /// makes the scheme survive subset selection and addition.
    #[must_use]
    pub fn position(&self, key: &Value) -> usize {
        (self.keyed2.hash_u64(&[&key.canonical_bytes()]) % self.wm_data_len) as usize
    }

    /// The pseudorandom base index into the value domain for a fit
    /// tuple, before LSB forcing: the most significant 32 bits of
    /// `H(key, k1)` reduced modulo `n`.
    ///
    /// Using the *top* bits matters: the fitness test already
    /// constrains `H mod e`, and for composite `gcd(e, n) > 1` a naive
    /// `H mod n` of fit tuples would be biased (e.g. `e = 60`,
    /// `n = 1000` would only ever select indices divisible by 20,
    /// pinning the embedded LSB). The top 32 bits remain uniform
    /// conditioned on the fitness residue.
    #[must_use]
    pub fn value_base(&self, key: &Value, n: u64) -> u64 {
        (self.hash1(key) >> 32) % n
    }

    /// Row indices of all fit tuples of `rel`, keyed by attribute
    /// `key_idx`.
    #[must_use]
    pub fn fit_rows(&self, rel: &Relation, key_idx: usize) -> Vec<usize> {
        rel.iter()
            .enumerate()
            .filter(|(_, t)| self.is_fit(t.get(key_idx)))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catmark_datagen::{ItemScanConfig, SalesGenerator};
    use catmark_relation::CategoricalDomain;

    fn spec(e: u64) -> WatermarkSpec {
        let domain = CategoricalDomain::new((0..100).map(Value::Int).collect()).unwrap();
        WatermarkSpec::builder(domain)
            .master_key("fitness-tests")
            .e(e)
            .expected_tuples(6000)
            .build()
            .unwrap()
    }

    #[test]
    fn fit_density_approximates_one_over_e() {
        let gen = SalesGenerator::new(ItemScanConfig { tuples: 12_000, ..Default::default() });
        let rel = gen.generate();
        for e in [10u64, 30, 60] {
            let sel = FitnessSelector::new(&spec(e));
            let fit = sel.fit_rows(&rel, 0).len() as f64;
            let expected = rel.len() as f64 / e as f64;
            assert!(
                (fit - expected).abs() < expected * 0.35,
                "e={e}: fit={fit}, expected≈{expected}"
            );
        }
    }

    #[test]
    fn fitness_is_deterministic_and_key_local() {
        let sel = FitnessSelector::new(&spec(60));
        let v = Value::Int(123_456);
        assert_eq!(sel.is_fit(&v), sel.is_fit(&v));
        assert_eq!(sel.position(&v), sel.position(&v));
    }

    #[test]
    fn different_master_keys_select_different_tuples() {
        let gen = SalesGenerator::new(ItemScanConfig { tuples: 6000, ..Default::default() });
        let rel = gen.generate();
        let domain = CategoricalDomain::new((0..100).map(Value::Int).collect()).unwrap();
        let mk = |key: &str| {
            let spec = WatermarkSpec::builder(domain.clone())
                .master_key(key)
                .e(20)
                .expected_tuples(6000)
                .build()
                .unwrap();
            FitnessSelector::new(&spec).fit_rows(&rel, 0)
        };
        let a = mk("key-a");
        let b = mk("key-b");
        assert_ne!(a, b);
    }

    #[test]
    fn positions_cover_wm_data_range() {
        let s = spec(60);
        let sel = FitnessSelector::new(&s);
        let mut seen = vec![false; s.wm_data_len];
        for i in 0..50_000i64 {
            seen[sel.position(&Value::Int(i))] = true;
        }
        let covered = seen.iter().filter(|&&x| x).count();
        assert_eq!(covered, s.wm_data_len, "all positions should be reachable");
    }

    #[test]
    fn value_base_is_unbiased_for_fit_tuples() {
        // Regression guard for the gcd(e, n) bias discussed in the
        // method docs: over fit tuples only, even and odd bases should
        // both occur in quantity for n sharing factors with e.
        let s = spec(60);
        let sel = FitnessSelector::new(&s);
        let n = 1000u64;
        let mut even = 0u32;
        let mut odd = 0u32;
        for i in 0..200_000i64 {
            let v = Value::Int(i);
            if sel.is_fit(&v) {
                if sel.value_base(&v, n).is_multiple_of(2) {
                    even += 1;
                } else {
                    odd += 1;
                }
            }
        }
        let total = even + odd;
        assert!(total > 2000, "need enough fit tuples, got {total}");
        let ratio = f64::from(even) / f64::from(total);
        assert!((0.45..0.55).contains(&ratio), "even ratio {ratio}");
    }

    #[test]
    fn value_base_stays_in_domain() {
        let sel = FitnessSelector::new(&spec(60));
        for i in 0..1000i64 {
            assert!(sel.value_base(&Value::Int(i), 7) < 7);
        }
    }
}
