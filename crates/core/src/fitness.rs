//! Fit-tuple selection (Section 3.2.1).
//!
//! A tuple `T_i` is "fit" for encoding iff `H(T_i(K), k1) mod e == 0`.
//! The secret criterion simultaneously (i) hides *which* tuples carry
//! mark bits, (ii) modulates the encoding to the actual key–attribute
//! association, and (iii) — through the hash's one-wayness — defeats
//! court-time claims that the keys were fished for after the fact.

use catmark_crypto::{CanonicalInput, FixedLenKeyedHasher, FixedLenKeyedHasher4, KeyedHash};
use catmark_relation::{CanonicalInt, Relation, Value};

use crate::spec::WatermarkSpec;

/// Selects and hashes fit tuples for one (key attribute, spec) pair.
#[derive(Debug, Clone)]
pub struct FitnessSelector {
    keyed1: KeyedHash,
    keyed2: KeyedHash,
    e: u64,
    wm_data_len: u64,
}

/// The per-tuple facts of one **fit** tuple, derived from a single
/// evaluation of `H(key, k1)` plus one of `H(key, k2)`.
///
/// Historically every consumer re-derived these piecewise — `is_fit`
/// hashed `k1`, `value_base` hashed `k1` *again*, `position` hashed
/// `k2` — paying two `H(·, k1)` evaluations per fit tuple. `facts`
/// hashes each key exactly once per keyed hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FitFacts {
    /// The `wm_data` position this tuple carries.
    pub position: usize,
    /// Top 32 bits of `H(key, k1)` — the pre-reduction value base.
    pub base_raw: u64,
}

impl FitFacts {
    /// The pseudorandom base index into a value domain of size `n`.
    #[must_use]
    pub fn value_base(&self, n: u64) -> u64 {
        self.base_raw % n
    }
}

impl FitnessSelector {
    /// Selector from a spec.
    #[must_use]
    pub fn new(spec: &WatermarkSpec) -> Self {
        FitnessSelector {
            keyed1: spec.keyed1(),
            keyed2: spec.keyed2(),
            e: spec.e,
            wm_data_len: spec.wm_data_len as u64,
        }
    }

    /// `H(key, k1)` — the fitness/value-selection hash
    /// (allocation-free: the key streams its canonical encoding into
    /// the digest).
    #[must_use]
    pub fn hash1(&self, key: &Value) -> u64 {
        self.keyed1.hash_canonical_u64(key)
    }

    /// Whether the tuple with primary key `key` is fit.
    #[must_use]
    pub fn is_fit(&self, key: &Value) -> bool {
        self.hash1(key).is_multiple_of(self.e)
    }

    /// Fitness plus the derived facts, from **one** `H(key, k1)`
    /// evaluation: `None` when the tuple is unfit, otherwise its
    /// `wm_data` position and value base.
    ///
    /// This is the single hot path shared by [`crate::plan::MarkPlan`]
    /// and the streaming marker; prefer it over separate
    /// `is_fit`/`position`/`value_base` calls, which rehash.
    #[must_use]
    pub fn facts(&self, key: &Value) -> Option<FitFacts> {
        self.facts_canonical(key)
    }

    /// [`FitnessSelector::facts`] over any borrowed canonical encoding
    /// — the columnar scan path hashes [`CanonicalInt`] /
    /// [`catmark_relation::CanonicalText`] wrappers without ever
    /// materializing a [`Value`].
    #[must_use]
    pub fn facts_canonical<V: CanonicalInput + ?Sized>(&self, key: &V) -> Option<FitFacts> {
        let h1 = self.keyed1.hash_canonical_u64(key);
        if !h1.is_multiple_of(self.e) {
            return None;
        }
        Some(FitFacts {
            position: (self.keyed2.hash_canonical_u64(key) % self.wm_data_len) as usize,
            base_raw: h1 >> 32,
        })
    }

    /// A scanner specialized for integer key columns: both keyed
    /// hashes precompiled for the fixed 9-byte canonical width, so a
    /// column scan runs two SHA-256 blocks per key (one of them with a
    /// pre-expanded schedule) and nothing else. Falls back to the
    /// generic streaming hashers when the key layout doesn't qualify.
    ///
    /// Bit-identical to [`FitnessSelector::facts`] over
    /// `Value::Int(key)` (pinned by test).
    #[must_use]
    pub fn int_scanner(&self) -> IntFitScanner<'_> {
        IntFitScanner {
            selector: self,
            fast1: self.keyed1.fixed_len_hasher(9),
            fast2: self.keyed2.fixed_len_hasher(9),
        }
    }

    /// A scanner fused across **four selectors** (four recipients'
    /// derived key pairs) over an integer key column: one tuple key in,
    /// four recipients' fitness facts out, through the multi-key
    /// four-lane hasher. This transposes [`FitnessSelector::int_scanner`]
    /// — lanes run across recipients instead of tuples — so a single
    /// pass over the key column serves a whole recipient quad.
    ///
    /// Falls back to four scalar evaluations when any selector's key
    /// layout doesn't qualify for the fused fast path. Bit-identical,
    /// lane for lane, to each selector's own
    /// [`FitnessSelector::facts`] (pinned by test).
    #[must_use]
    pub fn int_scanner4<'a>(selectors: [&'a FitnessSelector; 4]) -> IntFitScanner4<'a> {
        let singles = selectors.map(|s| s.keyed1.fixed_len_hasher(9));
        let fast1 = match &singles {
            [Some(a), Some(b), Some(c), Some(d)] => FixedLenKeyedHasher::quad([a, b, c, d]),
            _ => None,
        };
        IntFitScanner4 { selectors, fast1, fast2: selectors.map(|s| s.keyed2.fixed_len_hasher(9)) }
    }

    /// The `wm_data` position carried by the fit tuple with key `key`:
    /// `H(key, k2) mod |wm_data|`.
    ///
    /// The paper writes `msb(H(T_j(K), k2), b(N/e))`; reducing modulo
    /// the (power-of-two-or-not) length avoids the out-of-range
    /// positions the raw `msb` form can produce while keeping the
    /// position a pure function of the tuple key — the property that
    /// makes the scheme survive subset selection and addition.
    #[must_use]
    pub fn position(&self, key: &Value) -> usize {
        (self.keyed2.hash_canonical_u64(key) % self.wm_data_len) as usize
    }

    /// The pseudorandom base index into the value domain for a fit
    /// tuple, before LSB forcing: the most significant 32 bits of
    /// `H(key, k1)` reduced modulo `n`.
    ///
    /// Using the *top* bits matters: the fitness test already
    /// constrains `H mod e`, and for composite `gcd(e, n) > 1` a naive
    /// `H mod n` of fit tuples would be biased (e.g. `e = 60`,
    /// `n = 1000` would only ever select indices divisible by 20,
    /// pinning the embedded LSB). The top 32 bits remain uniform
    /// conditioned on the fitness residue.
    ///
    /// Convenience form that re-evaluates `H(key, k1)`; loops that
    /// already tested fitness should use [`FitnessSelector::facts`]
    /// and [`FitFacts::value_base`] instead, which hash once.
    #[must_use]
    pub fn value_base(&self, key: &Value, n: u64) -> u64 {
        (self.hash1(key) >> 32) % n
    }

    /// Row indices of all fit tuples of `rel`, keyed by attribute
    /// `key_idx`.
    #[must_use]
    pub fn fit_rows(&self, rel: &Relation, key_idx: usize) -> Vec<usize> {
        (0..rel.len())
            .filter(|&row| self.is_fit(&rel.value(row, key_idx).expect("row in range")))
            .collect()
    }
}

/// See [`FitnessSelector::int_scanner`].
#[derive(Debug, Clone)]
pub struct IntFitScanner<'a> {
    selector: &'a FitnessSelector,
    fast1: Option<FixedLenKeyedHasher>,
    fast2: Option<FixedLenKeyedHasher>,
}

impl IntFitScanner<'_> {
    /// Fitness facts for four keys at once, through the four-lane
    /// interleaved hasher (a lone SHA-256 stream is latency-bound;
    /// batching is where the columnar flat-slice scan earns its keep).
    /// The rare `H(·, k2)` position hash runs per fit lane. Falls back
    /// to four scalar calls when the key layout doesn't qualify.
    #[must_use]
    pub fn facts4(&self, keys: [i64; 4]) -> [Option<FitFacts>; 4] {
        let Some(fast1) = &self.fast1 else {
            return keys.map(|k| self.facts(k));
        };
        let bufs = keys.map(|k| CanonicalInt(k).encode());
        let h1s = fast1.hash4_u64([&bufs[0], &bufs[1], &bufs[2], &bufs[3]]);
        let mut out = [None; 4];
        for lane in 0..4 {
            if !h1s[lane].is_multiple_of(self.selector.e) {
                continue;
            }
            let h2 = match &self.fast2 {
                Some(fast) => fast.hash_u64(&bufs[lane]),
                None => self.selector.keyed2.hash_canonical_u64(bufs[lane].as_slice()),
            };
            out[lane] = Some(FitFacts {
                position: (h2 % self.selector.wm_data_len) as usize,
                base_raw: h1s[lane] >> 32,
            });
        }
        out
    }

    /// Fitness facts for the integer key `key` — the flat-slice twin
    /// of [`FitnessSelector::facts`].
    #[must_use]
    pub fn facts(&self, key: i64) -> Option<FitFacts> {
        let buf = CanonicalInt(key).encode();
        let h1 = match &self.fast1 {
            Some(fast) => fast.hash_u64(&buf),
            None => self.selector.keyed1.hash_canonical_u64(buf.as_slice()),
        };
        if !h1.is_multiple_of(self.selector.e) {
            return None;
        }
        let h2 = match &self.fast2 {
            Some(fast) => fast.hash_u64(&buf),
            None => self.selector.keyed2.hash_canonical_u64(buf.as_slice()),
        };
        Some(FitFacts { position: (h2 % self.selector.wm_data_len) as usize, base_raw: h1 >> 32 })
    }
}

/// See [`FitnessSelector::int_scanner4`].
#[derive(Debug, Clone)]
pub struct IntFitScanner4<'a> {
    selectors: [&'a FitnessSelector; 4],
    fast1: Option<FixedLenKeyedHasher4>,
    fast2: [Option<FixedLenKeyedHasher>; 4],
}

impl IntFitScanner4<'_> {
    /// Fitness facts of one tuple key under all four recipients'
    /// selectors: lane `i` is exactly `selectors[i].facts(Int(key))`.
    /// The fused `H(·, k1)` quad runs once; the rarer `H(·, k2)`
    /// position hash runs per fit lane under that lane's own `k2`.
    #[must_use]
    pub fn facts4(&self, key: i64) -> [Option<FitFacts>; 4] {
        let buf = CanonicalInt(key).encode();
        let Some(fast1) = &self.fast1 else {
            return self.selectors.map(|s| s.facts_canonical(buf.as_slice()));
        };
        let h1s = fast1.hash4_u64(&buf);
        let mut out = [None; 4];
        for lane in 0..4 {
            let sel = self.selectors[lane];
            if !h1s[lane].is_multiple_of(sel.e) {
                continue;
            }
            let h2 = match &self.fast2[lane] {
                Some(fast) => fast.hash_u64(&buf),
                None => sel.keyed2.hash_canonical_u64(buf.as_slice()),
            };
            out[lane] = Some(FitFacts {
                position: (h2 % sel.wm_data_len) as usize,
                base_raw: h1s[lane] >> 32,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catmark_datagen::{ItemScanConfig, SalesGenerator};
    use catmark_relation::CategoricalDomain;

    fn spec(e: u64) -> WatermarkSpec {
        let domain = CategoricalDomain::new((0..100).map(Value::Int).collect()).unwrap();
        WatermarkSpec::builder(domain)
            .master_key("fitness-tests")
            .e(e)
            .expected_tuples(6000)
            .build()
            .unwrap()
    }

    #[test]
    fn fit_density_approximates_one_over_e() {
        let gen = SalesGenerator::new(ItemScanConfig { tuples: 12_000, ..Default::default() });
        let rel = gen.generate();
        for e in [10u64, 30, 60] {
            let sel = FitnessSelector::new(&spec(e));
            let fit = sel.fit_rows(&rel, 0).len() as f64;
            let expected = rel.len() as f64 / e as f64;
            assert!(
                (fit - expected).abs() < expected * 0.35,
                "e={e}: fit={fit}, expected≈{expected}"
            );
        }
    }

    #[test]
    fn fitness_is_deterministic_and_key_local() {
        let sel = FitnessSelector::new(&spec(60));
        let v = Value::Int(123_456);
        assert_eq!(sel.is_fit(&v), sel.is_fit(&v));
        assert_eq!(sel.position(&v), sel.position(&v));
    }

    #[test]
    fn different_master_keys_select_different_tuples() {
        let gen = SalesGenerator::new(ItemScanConfig { tuples: 6000, ..Default::default() });
        let rel = gen.generate();
        let domain = CategoricalDomain::new((0..100).map(Value::Int).collect()).unwrap();
        let mk = |key: &str| {
            let spec = WatermarkSpec::builder(domain.clone())
                .master_key(key)
                .e(20)
                .expected_tuples(6000)
                .build()
                .unwrap();
            FitnessSelector::new(&spec).fit_rows(&rel, 0)
        };
        let a = mk("key-a");
        let b = mk("key-b");
        assert_ne!(a, b);
    }

    #[test]
    fn positions_cover_wm_data_range() {
        let s = spec(60);
        let sel = FitnessSelector::new(&s);
        let mut seen = vec![false; s.wm_data_len];
        for i in 0..50_000i64 {
            seen[sel.position(&Value::Int(i))] = true;
        }
        let covered = seen.iter().filter(|&&x| x).count();
        assert_eq!(covered, s.wm_data_len, "all positions should be reachable");
    }

    #[test]
    fn value_base_is_unbiased_for_fit_tuples() {
        // Regression guard for the gcd(e, n) bias discussed in the
        // method docs: over fit tuples only, even and odd bases should
        // both occur in quantity for n sharing factors with e.
        let s = spec(60);
        let sel = FitnessSelector::new(&s);
        let n = 1000u64;
        let mut even = 0u32;
        let mut odd = 0u32;
        for i in 0..200_000i64 {
            let v = Value::Int(i);
            if sel.is_fit(&v) {
                if sel.value_base(&v, n).is_multiple_of(2) {
                    even += 1;
                } else {
                    odd += 1;
                }
            }
        }
        let total = even + odd;
        assert!(total > 2000, "need enough fit tuples, got {total}");
        let ratio = f64::from(even) / f64::from(total);
        assert!((0.45..0.55).contains(&ratio), "even ratio {ratio}");
    }

    #[test]
    fn value_base_stays_in_domain() {
        let sel = FitnessSelector::new(&spec(60));
        for i in 0..1000i64 {
            assert!(sel.value_base(&Value::Int(i), 7) < 7);
        }
    }

    #[test]
    fn int_scanner_matches_value_facts() {
        // The specialized flat-slice scanner must reproduce the
        // Value-based path bit for bit, fast path or fallback.
        let sel = FitnessSelector::new(&spec(20));
        let scanner = sel.int_scanner();
        for i in (-2_000i64..2_000).chain([i64::MIN, i64::MAX, 1_000_000_007]) {
            assert_eq!(scanner.facts(i), sel.facts(&Value::Int(i)), "i={i}");
        }
    }

    #[test]
    fn int_scanner4_matches_each_selectors_facts() {
        // The recipient-fused scanner must reproduce, lane for lane,
        // what each recipient's own selector derives — including mixed
        // parameters across lanes (different e / wm_data_len) and
        // duplicate selectors sharing a lane pair.
        let base = spec(20);
        let specs =
            [base.derived("buyer:a"), base.derived("buyer:b"), spec(60), base.derived("buyer:a")];
        let sels: Vec<FitnessSelector> = specs.iter().map(FitnessSelector::new).collect();
        let scanner = FitnessSelector::int_scanner4([&sels[0], &sels[1], &sels[2], &sels[3]]);
        let mut fit_seen = 0;
        for i in (-3_000i64..3_000).chain([i64::MIN, i64::MAX, 1_000_000_007]) {
            let lanes = scanner.facts4(i);
            for (lane, sel) in lanes.iter().zip(&sels) {
                assert_eq!(*lane, sel.facts(&Value::Int(i)), "i={i}");
                fit_seen += usize::from(lane.is_some());
            }
        }
        assert!(fit_seen > 100, "fixture too small: {fit_seen}");
    }

    #[test]
    fn facts_agree_with_piecewise_accessors() {
        // The single-hash path must reproduce the historical
        // three-hash path bit for bit, for both key types.
        let sel = FitnessSelector::new(&spec(20));
        let keys =
            (0..5_000i64).map(Value::Int).chain((0..500).map(|i| Value::Text(format!("key-{i}"))));
        let mut fit_seen = 0;
        for key in keys {
            match sel.facts(&key) {
                Some(f) => {
                    fit_seen += 1;
                    assert!(sel.is_fit(&key));
                    assert_eq!(f.position, sel.position(&key));
                    for n in [7u64, 100, 1000] {
                        assert_eq!(f.value_base(n), sel.value_base(&key, n));
                    }
                }
                None => assert!(!sel.is_fit(&key)),
            }
        }
        assert!(fit_seen > 100, "fixture too small: {fit_seen}");
    }
}
