//! The embedding-map alternative (Figures 1(b) and 2(b)).
//!
//! Instead of hashing the tuple key with `k2` to choose which
//! `wm_data` bit a fit tuple carries, this variant assigns positions
//! *sequentially* at embed time and remembers the assignment in an
//! `embedding_map` from key value to bit index. The paper notes:
//! "this mapping can be used at detection time to accurately detect
//! all wm_data bits. In this case, also, we do not require an extra
//! watermark bit selection key (k2). Although we use this alternative
//! in our implementation, for simplicity … we are not going to
//! discuss it here."
//!
//! Trade-off versus the `k2` variant (exercised by the
//! `map_vs_k2_variant` ablation bench): every `wm_data` position gets
//! exactly one carrier (no Poisson gaps, no collisions), so clean and
//! low-loss decoding is strictly better — at the cost of O(N/e)
//! detector-side state that is no longer derivable from the keys
//! alone.

use std::collections::HashMap;

use catmark_relation::{Relation, Value};

use crate::ecc::{ErrorCorrectingCode, MajorityVotingEcc};
use crate::error::CoreError;
use crate::fitness::FitnessSelector;
use crate::spec::{Watermark, WatermarkSpec};

/// The key-value → `wm_data`-index assignment produced at embed time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EmbeddingMap {
    entries: HashMap<Value, usize>,
    /// Length of the `wm_data` string the map indexes into.
    wm_data_len: usize,
}

impl EmbeddingMap {
    /// Position carried by the tuple with primary key `key`, if it was
    /// embedded.
    #[must_use]
    pub fn position(&self, key: &Value) -> Option<usize> {
        self.entries.get(key).copied()
    }

    /// Number of embedded tuples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Length of the `wm_data` string this map indexes.
    #[must_use]
    pub fn wm_data_len(&self) -> usize {
        self.wm_data_len
    }
}

/// Embed `wm` using sequential position assignment (Figure 1(b)).
///
/// `wm_data` is sized to the *actual* fit-tuple count (each position
/// has exactly one carrier); the spec's `wm_data_len` is ignored. The
/// spec's `k2` is likewise unused.
///
/// # Errors
///
/// Unknown attributes, wrong watermark length, or no fit tuples.
pub fn embed_with_map(
    spec: &WatermarkSpec,
    rel: &mut Relation,
    key_attr: &str,
    target_attr: &str,
    wm: &Watermark,
) -> Result<EmbeddingMap, CoreError> {
    if wm.len() != spec.wm_len {
        return Err(CoreError::InvalidSpec(format!(
            "watermark has {} bits but the spec declares {}",
            wm.len(),
            spec.wm_len
        )));
    }
    let key_idx = rel.schema().index_of(key_attr)?;
    let attr_idx = rel.schema().index_of(target_attr)?;
    let n = spec.domain.len() as u64;

    // One planned pass finds the fit rows (so wm_data can be sized
    // exactly) *and* their value bases — the historical code rehashed
    // every fit key a second time for the base.
    let plan = crate::plan::MarkPlan::build(spec, rel, key_idx);
    if plan.is_empty() {
        return Err(CoreError::EmptyEmbedding);
    }
    let wm_data_len = plan.fit().len().max(wm.len());
    let ecc = MajorityVotingEcc;
    let wm_data = ecc.encode(wm, wm_data_len);

    let mut map = EmbeddingMap { entries: HashMap::with_capacity(plan.fit().len()), wm_data_len };
    for (idx, planned) in plan.fit().iter().enumerate() {
        let row = planned.row as usize;
        let key = rel.tuple(row).expect("row in range").get(key_idx).clone();
        let bit = wm_data[idx];
        let t = crate::bits::force_lsb_in_domain(u64::from(planned.value_base), bit, n) as usize;
        let new_value = spec.domain.value_at(t).clone();
        rel.update_value(row, attr_idx, new_value)?;
        map.entries.insert(key, idx);
    }
    Ok(map)
}

/// Decode using a stored embedding map (Figure 2(b)).
///
/// # Errors
///
/// Unknown attributes or an empty map.
pub fn decode_with_map(
    spec: &WatermarkSpec,
    rel: &Relation,
    key_attr: &str,
    target_attr: &str,
    map: &EmbeddingMap,
) -> Result<Watermark, CoreError> {
    if map.is_empty() {
        return Err(CoreError::EmptyEmbedding);
    }
    let key_idx = rel.schema().index_of(key_attr)?;
    let attr_idx = rel.schema().index_of(target_attr)?;
    let sel = FitnessSelector::new(spec);
    let mut wm_data: Vec<Option<bool>> = vec![None; map.wm_data_len()];
    for tuple in rel.iter() {
        let key = tuple.get(key_idx);
        if !sel.is_fit(key) {
            continue;
        }
        let Some(idx) = map.position(key) else {
            // A fit tuple unknown to the map: added after embedding
            // (or attacker-injected). It carries no position.
            continue;
        };
        if let Ok(t) = spec.domain.index_of(tuple.get(attr_idx)) {
            wm_data[idx] = Some(t & 1 == 1);
        }
    }
    let prf = catmark_crypto::KeyedPrf::new(spec.algo, spec.k1.derive(spec.algo, "map-coins"));
    let mut tie_break = |j: usize| prf.bit("wm-tie", j as u64);
    Ok(MajorityVotingEcc.decode(&wm_data, spec.wm_len, &mut tie_break))
}

#[cfg(test)]
mod tests {
    use super::*;
    use catmark_datagen::{ItemScanConfig, SalesGenerator};
    use catmark_relation::ops;

    fn setup(tuples: usize, e: u64) -> (Relation, WatermarkSpec, Watermark) {
        let gen = SalesGenerator::new(ItemScanConfig { tuples, ..Default::default() });
        let rel = gen.generate();
        let spec = WatermarkSpec::builder(gen.item_domain())
            .master_key("map-variant-tests")
            .e(e)
            .wm_len(10)
            .expected_tuples(tuples)
            .build()
            .unwrap();
        let wm = Watermark::from_u64(0b0110110001, 10);
        (rel, spec, wm)
    }

    #[test]
    fn round_trip_is_exact() {
        let (mut rel, spec, wm) = setup(6_000, 30);
        let map = embed_with_map(&spec, &mut rel, "visit_nbr", "item_nbr", &wm).unwrap();
        assert!(map.len() > 100);
        assert_eq!(map.wm_data_len(), map.len());
        let decoded = decode_with_map(&spec, &rel, "visit_nbr", "item_nbr", &map).unwrap();
        assert_eq!(decoded, wm);
    }

    #[test]
    fn map_positions_are_sequential_and_distinct() {
        let (mut rel, spec, wm) = setup(3_000, 30);
        let map = embed_with_map(&spec, &mut rel, "visit_nbr", "item_nbr", &wm).unwrap();
        let mut positions: Vec<usize> = map.entries.values().copied().collect();
        positions.sort_unstable();
        let expected: Vec<usize> = (0..map.len()).collect();
        assert_eq!(positions, expected);
    }

    #[test]
    fn survives_shuffle_and_moderate_loss() {
        let (mut rel, spec, wm) = setup(12_000, 30);
        let map = embed_with_map(&spec, &mut rel, "visit_nbr", "item_nbr", &wm).unwrap();
        let attacked = ops::sample_bernoulli(&ops::shuffle(&rel, 5), 0.6, 6);
        let decoded = decode_with_map(&spec, &attacked, "visit_nbr", "item_nbr", &map).unwrap();
        assert_eq!(decoded, wm);
    }

    #[test]
    fn clean_decode_has_full_coverage_unlike_k2_variant() {
        // The selling point: exactly one carrier per position.
        let (mut rel, spec, wm) = setup(6_000, 60);
        let map = embed_with_map(&spec, &mut rel, "visit_nbr", "item_nbr", &wm).unwrap();
        let key_idx = 0;
        let sel = FitnessSelector::new(&spec);
        let mut covered = vec![false; map.wm_data_len()];
        for tuple in rel.iter() {
            if sel.is_fit(tuple.get(key_idx)) {
                if let Some(i) = map.position(tuple.get(key_idx)) {
                    covered[i] = true;
                }
            }
        }
        assert!(covered.iter().all(|&c| c), "every position has its carrier");
    }

    #[test]
    fn rejects_empty_fit_set() {
        let (rel, spec, wm) = setup(100, 30);
        // An absurd modulus far above the hash range of this tiny set
        // leaves no fit tuples.
        let mut impossible = spec.clone();
        impossible.e = u64::MAX;
        let mut data = rel;
        let err = embed_with_map(&impossible, &mut data, "visit_nbr", "item_nbr", &wm);
        assert!(matches!(err, Err(CoreError::EmptyEmbedding)));
    }

    #[test]
    fn decode_rejects_empty_map() {
        let (rel, spec, _) = setup(100, 30);
        let err = decode_with_map(&spec, &rel, "visit_nbr", "item_nbr", &EmbeddingMap::default());
        assert!(matches!(err, Err(CoreError::EmptyEmbedding)));
    }

    #[test]
    fn wrong_length_watermark_rejected() {
        let (mut rel, spec, _) = setup(100, 30);
        let err =
            embed_with_map(&spec, &mut rel, "visit_nbr", "item_nbr", &Watermark::from_u64(0, 3));
        assert!(matches!(err, Err(CoreError::InvalidSpec(_))));
    }
}
