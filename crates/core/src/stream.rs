//! Incremental updates (Section 4.3).
//!
//! "Our method supports incremental updates naturally. As updates
//! occur to the data, the resulting tuples can be evaluated on the fly
//! for 'fitness' and watermarked accordingly."
//!
//! [`StreamMarker`] wraps a [`WatermarkSpec`] and watermark and
//! processes arriving tuples one at a time: fit tuples are rewritten
//! to carry their mark bit *before* insertion, so the relation is
//! always fully marked without ever re-scanning. The marker is
//! stateless beyond its configuration — two markers with the same spec
//! are interchangeable, and a batch [`crate::Embedder`] pass over the
//! same data produces byte-identical results (pinned by test).

use catmark_relation::{Relation, Value};

use crate::ecc::{ErrorCorrectingCode, MajorityVotingEcc};
use crate::error::CoreError;
use crate::fitness::FitnessSelector;
use crate::spec::{Watermark, WatermarkSpec};

/// Outcome of ingesting one tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestOutcome {
    /// Row index the tuple landed on.
    pub row: usize,
    /// Whether the tuple was fit and therefore carries a mark bit.
    pub marked: bool,
}

/// Online watermarker for insert streams.
#[derive(Debug, Clone)]
pub struct StreamMarker {
    spec: WatermarkSpec,
    wm_data: Vec<bool>,
    selector: FitnessSelector,
    key_idx: usize,
    attr_idx: usize,
}

impl StreamMarker {
    /// Marker over already-resolved attribute indices — the typed
    /// constructor [`crate::session::MarkSession::stream`] uses.
    /// (The stringly `(template, "pk", "attr")` constructor is gone;
    /// bind a `MarkSession` and call `session.stream(&wm)`.)
    ///
    /// # Errors
    ///
    /// Watermark length mismatch against the spec.
    pub fn with_indices(
        spec: WatermarkSpec,
        key_idx: usize,
        attr_idx: usize,
        wm: &Watermark,
    ) -> Result<Self, CoreError> {
        if wm.len() != spec.wm_len {
            return Err(CoreError::InvalidSpec(format!(
                "watermark has {} bits but the spec declares {}",
                wm.len(),
                spec.wm_len
            )));
        }
        let wm_data = MajorityVotingEcc.encode(wm, spec.wm_data_len);
        let selector = FitnessSelector::new(&spec);
        Ok(StreamMarker { spec, wm_data, selector, key_idx, attr_idx })
    }

    /// The marked value the tuple with primary key `key` must carry,
    /// or `None` when the tuple is not fit (its value is free).
    ///
    /// One [`FitnessSelector::facts`] evaluation per call — the
    /// streaming twin of the batch [`crate::plan::MarkPlan`] row scan,
    /// guaranteed to assign the same value a batch embed would.
    #[must_use]
    pub fn marked_value_for(&self, key: &Value) -> Option<Value> {
        let facts = self.selector.facts(key)?;
        let bit = self.wm_data[facts.position];
        let n = self.spec.domain.len() as u64;
        let t = crate::bits::force_lsb_in_domain(facts.value_base(n), bit, n) as usize;
        Some(self.spec.domain.value_at(t).clone())
    }

    /// Ingest one tuple: overwrite its categorical value when fit,
    /// then insert.
    ///
    /// # Errors
    ///
    /// Schema violations or duplicate primary keys.
    pub fn ingest(
        &self,
        rel: &mut Relation,
        mut values: Vec<Value>,
    ) -> Result<IngestOutcome, CoreError> {
        // Bound-check both configured indices up front: a marker built
        // via `with_indices` carries whatever indices the caller chose,
        // and a fit tuple must error — not panic — on a bad target.
        if self.key_idx >= values.len() || self.attr_idx >= values.len() {
            return Err(CoreError::Relation(catmark_relation::RelationError::ArityMismatch {
                expected: rel.schema().arity(),
                actual: values.len(),
            }));
        }
        let key = &values[self.key_idx];
        let marked_value = self.marked_value_for(key);
        let marked = marked_value.is_some();
        if let Some(v) = marked_value {
            values[self.attr_idx] = v;
        }
        let row = rel.push(values)?;
        Ok(IngestOutcome { row, marked })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::ErasurePolicy;
    use crate::embed::Embedder;
    use catmark_datagen::{ItemScanConfig, SalesGenerator};

    fn fixture() -> (SalesGenerator, WatermarkSpec, Watermark) {
        let gen = SalesGenerator::new(ItemScanConfig { tuples: 4_000, ..Default::default() });
        let spec = WatermarkSpec::builder(gen.item_domain())
            .master_key("stream-tests")
            .e(20)
            .wm_len(10)
            .expected_tuples(4_000)
            .erasure(ErasurePolicy::Abstain)
            .build()
            .unwrap();
        let wm = Watermark::from_u64(0b1011010010, 10);
        (gen, spec, wm)
    }

    #[test]
    fn streaming_equals_batch_embedding() {
        let (gen, spec, wm) = fixture();
        let source = gen.generate();
        // Batch path.
        let mut batch = source.clone();
        crate::testkit::embed(&spec, &mut batch, "visit_nbr", "item_nbr", &wm).unwrap();
        // Streaming path: ingest tuple by tuple into an empty relation.
        let marker = StreamMarker::with_indices(spec.clone(), 0, 1, &wm).unwrap();
        let mut streamed = Relation::new(source.schema().clone());
        for tuple in source.iter() {
            marker.ingest(&mut streamed, tuple.values().to_vec()).unwrap();
        }
        assert_eq!(streamed.len(), batch.len());
        assert!(batch.iter().zip(streamed.iter()).all(|(a, b)| a == b));

        // Plan-driven batch paths (cached, sequential, parallel) all
        // pin to the same bytes as the streamed relation.
        use crate::ecc::MajorityVotingEcc;
        use crate::plan::{MarkPlan, PlanCache};
        let cache = PlanCache::new();
        let plan = cache.plan_for(&spec, &source, 0).unwrap();
        let mut planned = source.clone();
        Embedder::engine(&spec)
            .embed_with_plan(&mut planned, 1, &wm, &MajorityVotingEcc, None, &plan)
            .unwrap();
        assert!(planned.iter().zip(streamed.iter()).all(|(a, b)| a == b));
        let par = MarkPlan::build_with_threads(&spec, &source, 0, 4);
        let mut par_marked = source.clone();
        Embedder::engine(&spec)
            .embed_with_plan(&mut par_marked, 1, &wm, &MajorityVotingEcc, None, &par)
            .unwrap();
        assert!(par_marked.iter().zip(streamed.iter()).all(|(a, b)| a == b));
    }

    #[test]
    fn marked_fraction_tracks_one_over_e() {
        let (gen, spec, wm) = fixture();
        let source = gen.generate();
        let marker = StreamMarker::with_indices(spec, 0, 1, &wm).unwrap();
        let mut rel = Relation::new(source.schema().clone());
        let mut marked = 0usize;
        for tuple in source.iter() {
            if marker.ingest(&mut rel, tuple.values().to_vec()).unwrap().marked {
                marked += 1;
            }
        }
        let expected = source.len() as f64 / 20.0;
        assert!(
            (marked as f64 - expected).abs() < expected * 0.4,
            "marked={marked}, expected≈{expected}"
        );
    }

    #[test]
    fn stream_grown_relation_decodes() {
        let (gen, spec, wm) = fixture();
        let source = gen.generate();
        let marker = StreamMarker::with_indices(spec.clone(), 0, 1, &wm).unwrap();
        let mut rel = Relation::new(source.schema().clone());
        for tuple in source.iter() {
            marker.ingest(&mut rel, tuple.values().to_vec()).unwrap();
        }
        let decoded = crate::testkit::decode(&spec, &rel, "visit_nbr", "item_nbr").unwrap();
        assert_eq!(decoded.watermark, wm);
    }

    #[test]
    fn unfit_tuples_pass_through_unmodified() {
        let (gen, spec, wm) = fixture();
        let source = gen.generate();
        let marker = StreamMarker::with_indices(spec, 0, 1, &wm).unwrap();
        let mut rel = Relation::new(source.schema().clone());
        for tuple in source.iter().take(500) {
            let outcome = marker.ingest(&mut rel, tuple.values().to_vec()).unwrap();
            if !outcome.marked {
                assert_eq!(rel.tuple(outcome.row).unwrap(), tuple);
            }
        }
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let (gen, spec, wm) = fixture();
        let source = gen.generate();
        let marker = StreamMarker::with_indices(spec, 0, 1, &wm).unwrap();
        let mut rel = Relation::new(source.schema().clone());
        let values = source.tuple(0).unwrap().values().to_vec();
        marker.ingest(&mut rel, values.clone()).unwrap();
        assert!(marker.ingest(&mut rel, values).is_err());
    }

    #[test]
    fn out_of_range_indices_error_instead_of_panicking() {
        let (gen, spec, wm) = fixture();
        let source = gen.generate();
        // attr_idx 5 on a 2-column relation: every tuple — fit or not —
        // must come back as an arity error, never a panic.
        let marker = StreamMarker::with_indices(spec, 0, 5, &wm).unwrap();
        let mut rel = Relation::new(source.schema().clone());
        for tuple in source.iter().take(200) {
            assert!(matches!(
                marker.ingest(&mut rel, tuple.values().to_vec()),
                Err(CoreError::Relation(_))
            ));
        }
        assert!(rel.is_empty());
    }

    #[test]
    fn wrong_watermark_length_rejected() {
        let (_, spec, _) = fixture();
        let err = StreamMarker::with_indices(spec, 0, 1, &Watermark::from_u64(1, 3));
        assert!(matches!(err, Err(CoreError::InvalidSpec(_))));
    }
}
