//! `MarkSession` — the one typed, plan-caching entry point for every
//! operator in the crate.
//!
//! The historical surface was a bag of per-operator structs
//! (`Embedder`, `Decoder`, `StreamMarker`, the multi-attribute and
//! fingerprint helpers, the contest free functions), each taking
//! stringly-typed `(relation, "pk", "attr")` arguments and silently
//! re-resolving and re-validating the columns on every call. A
//! [`MarkSession`] is the prepared-statement version of that API: it
//! binds the key material ([`crate::WatermarkSpec`]) and the relation's
//! primary-key and categorical columns into typed [`ColumnRef`] handles
//! **once**, owns the [`PlanCache`], and exposes every paper operation
//! as a method. An embed → attack → decode → detect court run on one
//! session performs the keyed-hash pass over the key column once.
//!
//! ```
//! use catmark_core::session::{MarkSession, Outcome};
//! use catmark_core::{detect, Watermark, WatermarkSpec};
//! use catmark_datagen::{ItemScanConfig, SalesGenerator};
//!
//! let gen = SalesGenerator::new(ItemScanConfig { tuples: 2_000, ..Default::default() });
//! let mut rel = gen.generate();
//! let spec = WatermarkSpec::builder(gen.item_domain())
//!     .master_key("my-secret")
//!     .e(10)
//!     .wm_len(10)
//!     .expected_tuples(rel.len())
//!     .build()
//!     .unwrap();
//!
//! let session = MarkSession::builder(spec)
//!     .key_column("visit_nbr")
//!     .target_column("item_nbr")
//!     .bind(&rel)
//!     .unwrap();
//!
//! let wm = Watermark::from_u64(0b10_0111_0101, 10);
//! let report = session.embed(&mut rel, &wm).unwrap();
//! assert!(report.fit_count() > 0);
//!
//! // Blind court-time detection on the same handle: the plan built
//! // for the embed is reused, no key is rehashed.
//! let verdict = session.detect(&rel, &wm).unwrap();
//! assert!(verdict.detection.is_significant(1e-2));
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use catmark_relation::{CategoricalDomain, MarkDelta, Relation, Schema, SegmentedRelation};

use crate::contest::{Claim, ClaimEvidence, ContestOutcome};
use crate::decode::{DecodeReport, Decoder};
use crate::detect::{detect, Detection};
use crate::ecc::MajorityVotingEcc;
use crate::embed::{EmbedReport, Embedder};
use crate::error::CoreError;
use crate::fingerprint::{FingerprintRegistry, TraceResult};
use crate::multiattr::{
    decode_multiattr_with_cache, embed_multiattr_with_cache, AggregateVerdict, MultiAttrPlan,
    PairEmbedOutcome, PairWitness,
};
use crate::plan::{MarkPlan, PlanCache};
use crate::quality::QualityGuard;
use crate::spec::{Watermark, WatermarkSpec};
use crate::stream::StreamMarker;

/// What every session result has in common: how many carrier tuples
/// the operation touched, how much of the available channel it
/// observed, and how sure we are of the outcome. All implementors
/// also render a one-line human summary via `Display`.
pub trait Outcome: std::fmt::Display {
    /// Number of fit (carrier) tuples — or witnesses — involved.
    fn fit_count(&self) -> usize;

    /// Fraction of the available channel used or observed, in `0..=1`.
    fn coverage(&self) -> f64;

    /// Confidence the operation achieved its goal, in `0..=1`: for
    /// detection-flavoured outcomes `1 − P[chance match]`, for
    /// embedding the fraction of carriers actually planted, for
    /// decoding the vote unanimity.
    fn confidence(&self) -> f64;
}

/// A column binding resolved and validated against a schema exactly
/// once: the attribute's name plus its position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    name: String,
    index: usize,
}

impl ColumnRef {
    /// The bound attribute's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The bound attribute's position in the schema.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Re-check this binding against `schema`, erroring with full
    /// context when the attribute moved, vanished, or was renamed.
    pub(crate) fn still_bound(&self, schema: &Schema) -> Result<(), CoreError> {
        match schema.attrs().get(self.index) {
            Some(attr) if attr.name == self.name => Ok(()),
            _ => Err(binding_error(
                &self.name,
                schema,
                format!("bound at index {} but the relation no longer has it there", self.index),
            )),
        }
    }
}

fn binding_error(column: &str, schema: &Schema, reason: String) -> CoreError {
    CoreError::ColumnBinding {
        column: column.to_owned(),
        reason,
        arity: schema.arity(),
        available: schema.attrs().iter().map(|a| a.name.clone()).collect(),
    }
}

fn resolve(schema: &Schema, name: &str) -> Result<ColumnRef, CoreError> {
    let index = schema
        .index_of(name)
        .map_err(|_| binding_error(name, schema, "no such attribute".into()))?;
    Ok(ColumnRef { name: name.to_owned(), index })
}

/// Builder for [`MarkSession`]: collects the column names, then
/// [`MarkSessionBuilder::bind`] resolves and validates them against a
/// relation in one shot.
#[derive(Debug)]
pub struct MarkSessionBuilder {
    spec: WatermarkSpec,
    key: Option<String>,
    target: Option<String>,
}

impl MarkSessionBuilder {
    /// Name the primary-key column (the hashed identity column). For
    /// pair embeddings this may be any attribute acting as the
    /// pseudo-key, per Section 3.3.
    #[must_use]
    pub fn key_column(mut self, name: &str) -> Self {
        self.key = Some(name.to_owned());
        self
    }

    /// Name the categorical column that will carry the mark bits.
    #[must_use]
    pub fn target_column(mut self, name: &str) -> Self {
        self.target = Some(name.to_owned());
        self
    }

    /// Resolve and validate the bindings against `rel`'s schema —
    /// exactly once; every session method afterwards works on typed
    /// [`ColumnRef`]s.
    ///
    /// # Errors
    ///
    /// [`CoreError::ColumnBinding`] when a column was not named, does
    /// not exist, the two bindings collide, the target is not flagged
    /// categorical, or its type cannot hold the spec's domain values.
    pub fn bind(self, rel: &Relation) -> Result<MarkSession, CoreError> {
        let schema = rel.schema();
        let key_name = self.key.as_deref().ok_or_else(|| {
            binding_error("<key>", schema, "no key column named (use .key_column)".into())
        })?;
        let target_name = self.target.as_deref().ok_or_else(|| {
            binding_error("<target>", schema, "no target column named (use .target_column)".into())
        })?;
        let key = resolve(schema, key_name)?;
        let target = resolve(schema, target_name)?;
        if key.index == target.index {
            return Err(binding_error(
                target_name,
                schema,
                "key and target bind the same column".into(),
            ));
        }
        let target_attr = schema.attr(target.index);
        if !target_attr.categorical {
            return Err(binding_error(
                target_name,
                schema,
                "target column is not categorical (no finite value domain to embed in)".into(),
            ));
        }
        if let Some(sample) = (!self.spec.domain.is_empty())
            .then(|| self.spec.domain.value_at(0))
            .filter(|v| !target_attr.ty.admits(v))
        {
            return Err(binding_error(
                target_name,
                schema,
                format!(
                    "target column has type {} but the spec's domain holds values like {sample}",
                    target_attr.ty
                ),
            ));
        }
        Ok(MarkSession { spec: self.spec, key, target, cache: PlanCache::new() })
    }
}

/// A bound watermarking session: key material + typed column handles +
/// one shared [`PlanCache`], with every paper operation as a method.
///
/// Sessions are cheap to clone (clones share the plan cache) and all
/// methods take `&self`, so one session can serve many threads.
#[derive(Debug, Clone)]
pub struct MarkSession {
    spec: WatermarkSpec,
    key: ColumnRef,
    target: ColumnRef,
    cache: PlanCache,
}

impl MarkSession {
    /// Start building a session over `spec`.
    #[must_use]
    pub fn builder(spec: WatermarkSpec) -> MarkSessionBuilder {
        MarkSessionBuilder { spec, key: None, target: None }
    }

    /// The session's key material and parameters.
    #[must_use]
    pub fn spec(&self) -> &WatermarkSpec {
        &self.spec
    }

    /// The bound primary-key column.
    #[must_use]
    pub fn key(&self) -> &ColumnRef {
        &self.key
    }

    /// The bound categorical target column.
    #[must_use]
    pub fn target(&self) -> &ColumnRef {
        &self.target
    }

    /// The session's plan cache (shared with clones and with the
    /// handles returned by [`MarkSession::multiattr`] and
    /// [`MarkSession::fingerprint`]).
    #[must_use]
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Verify the bound columns still line up with `rel`'s schema.
    fn check(&self, rel: &Relation) -> Result<(), CoreError> {
        self.key.still_bound(rel.schema())?;
        self.target.still_bound(rel.schema())
    }

    /// The (cached) mark plan for `rel` under this session's spec and
    /// key column. Exposed for pipelining: hold the `Arc` and drive
    /// [`MarkSession::embed_planned`] / [`MarkSession::decode_planned`]
    /// without even the cache's fingerprint pass per call.
    ///
    /// # Errors
    ///
    /// [`CoreError::ColumnBinding`] when `rel`'s schema no longer
    /// matches the bindings.
    pub fn plan(&self, rel: &Relation) -> Result<Arc<MarkPlan>, CoreError> {
        self.check(rel)?;
        self.cache.plan_for(&self.spec, rel, self.key.index)
    }

    /// Embed `wm` into the bound association, planning (or reusing the
    /// cached plan for) `rel`'s key column.
    ///
    /// # Errors
    ///
    /// Binding drift, watermark length mismatch, or substrate errors.
    pub fn embed(&self, rel: &mut Relation, wm: &Watermark) -> Result<EmbedReport, CoreError> {
        let plan = self.plan(rel)?;
        // Trusted: the cache lookup above already fingerprinted the
        // key column; no second staleness pass.
        Embedder::engine(&self.spec).embed_with_plan_trusted(
            rel,
            self.target.index,
            wm,
            &MajorityVotingEcc,
            None,
            &plan,
        )
    }

    /// [`MarkSession::embed`] gated by quality constraints (Section
    /// 4.1): vetoed alterations leave tuples unmodified and are
    /// counted in the report.
    ///
    /// # Errors
    ///
    /// As [`MarkSession::embed`].
    pub fn embed_guarded(
        &self,
        rel: &mut Relation,
        wm: &Watermark,
        guard: &mut QualityGuard,
    ) -> Result<EmbedReport, CoreError> {
        let plan = self.plan(rel)?;
        Embedder::engine(&self.spec).embed_with_plan_trusted(
            rel,
            self.target.index,
            wm,
            &MajorityVotingEcc,
            Some(guard),
            &plan,
        )
    }

    /// Embedding over a plan the caller pinned with
    /// [`MarkSession::plan`].
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidSpec`] when the plan is stale — built for a
    /// relation whose key column has since changed.
    pub fn embed_planned(
        &self,
        rel: &mut Relation,
        wm: &Watermark,
        plan: &MarkPlan,
    ) -> Result<EmbedReport, CoreError> {
        self.check(rel)?;
        Embedder::engine(&self.spec).embed_with_plan(
            rel,
            self.target.index,
            wm,
            &MajorityVotingEcc,
            None,
            plan,
        )
    }

    /// Blindly decode the mark carried by `rel`'s bound association.
    ///
    /// # Errors
    ///
    /// Binding drift; decoding itself never fails on suspect data.
    pub fn decode(&self, rel: &Relation) -> Result<DecodeReport, CoreError> {
        let plan = self.plan(rel)?;
        // Trusted: the cache lookup above already fingerprinted the
        // key column; no second staleness pass.
        Decoder::engine(&self.spec).decode_with_plan_trusted(
            rel,
            self.target.index,
            &MajorityVotingEcc,
            &plan,
        )
    }

    /// Decoding over a plan the caller pinned with
    /// [`MarkSession::plan`].
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidSpec`] when the plan is stale — built for a
    /// relation whose key column has since changed behind the session.
    pub fn decode_planned(
        &self,
        rel: &Relation,
        plan: &MarkPlan,
    ) -> Result<DecodeReport, CoreError> {
        self.check(rel)?;
        Decoder::engine(&self.spec).decode_with_plan(
            rel,
            self.target.index,
            &MajorityVotingEcc,
            plan,
        )
    }

    /// The court-time run: blind-decode `rel` and weigh the result
    /// against the claimed mark (Section 4.4's false-positive odds).
    ///
    /// # Errors
    ///
    /// As [`MarkSession::decode`].
    pub fn detect(&self, rel: &Relation, claimed: &Watermark) -> Result<Verdict, CoreError> {
        let decode = self.decode(rel)?;
        let detection = detect(&decode.watermark, claimed);
        Ok(Verdict { decode, detection })
    }

    /// The incremental embedder (Section 4.3) for this session's
    /// bindings: fit tuples arriving on a stream are marked before
    /// insertion, byte-identical to a batch [`MarkSession::embed`].
    ///
    /// # Errors
    ///
    /// Watermark length mismatch against the spec.
    pub fn stream(&self, wm: &Watermark) -> Result<StreamMarker, CoreError> {
        StreamMarker::with_indices(self.spec.clone(), self.key.index, self.target.index, wm)
    }

    /// A multi-attribute handle (Section 3.3) over `rel`'s schema:
    /// every `(K, A_i)` and directed `(A_i, A_j)` pair, sharing this
    /// session's plan cache.
    ///
    /// # Errors
    ///
    /// Unknown attributes or categorical attributes missing from
    /// `domains`.
    pub fn multiattr(
        &self,
        rel: &Relation,
        domains: &HashMap<String, CategoricalDomain>,
    ) -> Result<MultiAttrSession, CoreError> {
        let plan = MultiAttrPlan::build(rel, &self.spec, domains)?;
        Ok(MultiAttrSession { plan, cache: self.cache.clone() })
    }

    /// A buyer-fingerprinting handle (the intro's traitor-tracing
    /// scenario) bound to this session's columns, sharing its plan
    /// cache: repeated traces of one suspect copy plan it once.
    #[must_use]
    pub fn fingerprint(&self) -> FingerprintSession {
        FingerprintSession {
            registry: FingerprintRegistry::with_cache(self.spec.clone(), self.cache.clone()),
            key: self.key.clone(),
            target: self.target.clone(),
        }
    }

    /// Fingerprint `rel` for a whole batch of buyers in one
    /// recipient-batched pass (the paper's distribution step at
    /// scale): returns the bound [`FingerprintSession`] — with every
    /// buyer registered, ready to [`FingerprintSession::trace`] a
    /// future leak — together with the per-buyer marked copies in
    /// `buyers` order. Byte-identical to registering and
    /// [`FingerprintSession::mark_copy`]-ing each buyer sequentially
    /// (pinned by proptest); the key column is hashed four recipients
    /// per scan instead of once per buyer.
    ///
    /// # Errors
    ///
    /// Embedding failures.
    pub fn fingerprint_batch(
        &self,
        rel: &Relation,
        buyers: &[&str],
    ) -> Result<(FingerprintSession, Vec<(Relation, EmbedReport)>), CoreError> {
        let mut session = self.fingerprint();
        let copies = session.mark_copies(rel, buyers)?;
        Ok((session, copies))
    }

    /// [`MarkSession::fingerprint_batch`] without ever cloning the
    /// base: one recipient-batched [`crate::plan::MultiKeyPlan`] scan
    /// produces a [`MarkDelta`] per buyer — ordered patch records
    /// (plus text dictionary extensions) such that
    /// `rel.apply_delta(&delta)` is byte-identical to the
    /// corresponding [`FingerprintSession::mark_copy`] (pinned by
    /// proptest and golden). At 1/e alteration rates a delta is a
    /// small fraction of the copy's bytes — the distribution-at-scale
    /// representation.
    ///
    /// # Errors
    ///
    /// Embedding failures.
    pub fn fingerprint_deltas(
        &self,
        rel: &Relation,
        buyers: &[&str],
    ) -> Result<(FingerprintSession, Vec<(MarkDelta, EmbedReport)>), CoreError> {
        let mut session = self.fingerprint();
        let deltas = session.mark_deltas(rel, buyers)?;
        Ok((session, deltas))
    }

    /// An ownership [`Claim`] under this session's keys — the
    /// session holder's side of a contest.
    #[must_use]
    pub fn claim(&self, claimant: &str, wm: &Watermark) -> Claim {
        Claim { claimant: claimant.to_owned(), spec: self.spec.clone(), watermark: wm.clone() }
    }

    /// Measure one claim's evidence against `rel` through the shared
    /// cache (re-gathering the same claim's evidence replans nothing).
    ///
    /// # Errors
    ///
    /// Binding drift or attribute-resolution failures.
    pub fn evidence(&self, claim: &Claim, rel: &Relation) -> Result<ClaimEvidence, CoreError> {
        self.check(rel)?;
        crate::contest::evidence_with_cache(
            claim,
            rel,
            &self.key.name,
            &self.target.name,
            &self.cache,
        )
    }

    /// Resolve a two-party ownership contest (Section 6's additive
    /// attack) over `rel` on this session's bound columns.
    ///
    /// # Errors
    ///
    /// Binding drift or attribute-resolution failures.
    pub fn contest(
        &self,
        a: &Claim,
        b: &Claim,
        rel: &Relation,
        alpha: f64,
        unanimity_margin: f64,
    ) -> Result<(ContestOutcome, ClaimEvidence, ClaimEvidence), CoreError> {
        self.check(rel)?;
        crate::contest::resolve_with_cache(
            a,
            b,
            rel,
            &self.key.name,
            &self.target.name,
            alpha,
            unanimity_margin,
            &self.cache,
        )
    }
}

/// A court-time detection outcome: the blind decode plus its
/// comparison against the claimed mark.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// The blind decode of the suspect relation.
    pub decode: DecodeReport,
    /// The decoded mark weighed against the claimed one.
    pub detection: Detection,
}

impl Verdict {
    /// Whether the ownership claim clears significance level `alpha`.
    #[must_use]
    pub fn is_significant(&self, alpha: f64) -> bool {
        self.detection.is_significant(alpha)
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "decoded {} — {} ({} of {} fit tuples voted)",
            self.decode.watermark, self.detection, self.decode.votes_cast, self.decode.fit_tuples
        )
    }
}

impl Outcome for Verdict {
    fn fit_count(&self) -> usize {
        self.decode.fit_tuples
    }

    fn coverage(&self) -> f64 {
        self.decode.coverage()
    }

    fn confidence(&self) -> f64 {
        1.0 - self.detection.false_positive_probability
    }
}

/// Multi-attribute embedding/decoding bound to one session (Section
/// 3.3): the pair plan plus the session's shared cache.
#[derive(Debug, Clone)]
pub struct MultiAttrSession {
    plan: MultiAttrPlan,
    cache: PlanCache,
}

impl MultiAttrSession {
    /// The directed pair plan.
    #[must_use]
    pub fn plan(&self) -> &MultiAttrPlan {
        &self.plan
    }

    /// Embed `wm` along every pair, interference-aware.
    ///
    /// # Errors
    ///
    /// Embedding failures on any pass.
    pub fn embed(
        &self,
        rel: &mut Relation,
        wm: &Watermark,
    ) -> Result<Vec<PairEmbedOutcome>, CoreError> {
        embed_multiattr_with_cache(&self.plan, rel, wm, &self.cache)
    }

    /// Decode every pair surviving in `rel` against `claimed`.
    ///
    /// # Errors
    ///
    /// Misuse only (plans built for a different schema family).
    pub fn decode(
        &self,
        rel: &Relation,
        claimed: &Watermark,
    ) -> Result<Vec<PairWitness>, CoreError> {
        decode_multiattr_with_cache(&self.plan, rel, claimed, &self.cache)
    }

    /// Decode and aggregate: how many surviving witnesses testify at
    /// significance `alpha`.
    ///
    /// # Errors
    ///
    /// As [`MultiAttrSession::decode`].
    pub fn verdict(
        &self,
        rel: &Relation,
        claimed: &Watermark,
        alpha: f64,
    ) -> Result<AggregateVerdict, CoreError> {
        Ok(crate::multiattr::aggregate_verdict(&self.decode(rel, claimed)?, alpha))
    }
}

/// Buyer fingerprinting bound to one session's columns and cache.
#[derive(Debug, Clone)]
pub struct FingerprintSession {
    registry: FingerprintRegistry,
    key: ColumnRef,
    target: ColumnRef,
}

impl FingerprintSession {
    /// Register a buyer (idempotent).
    pub fn register(&mut self, buyer: &str) {
        self.registry.register(buyer);
    }

    /// The buyer-specific mark (reproducible by the seller alone).
    #[must_use]
    pub fn mark_for(&self, buyer: &str) -> Watermark {
        self.registry.mark_for(buyer)
    }

    /// Produce `buyer`'s fingerprinted copy of `rel`.
    ///
    /// # Errors
    ///
    /// Embedding failures.
    pub fn mark_copy(
        &mut self,
        rel: &Relation,
        buyer: &str,
    ) -> Result<(Relation, EmbedReport), CoreError> {
        self.registry.mark_copy(rel, buyer, &self.key.name, &self.target.name)
    }

    /// Produce fingerprinted copies for a whole batch of buyers in one
    /// recipient-batched pass — see
    /// [`FingerprintRegistry::mark_copies`].
    ///
    /// # Errors
    ///
    /// Embedding failures.
    pub fn mark_copies(
        &mut self,
        rel: &Relation,
        buyers: &[&str],
    ) -> Result<Vec<(Relation, EmbedReport)>, CoreError> {
        self.registry.mark_copies(rel, buyers, &self.key.name, &self.target.name)
    }

    /// Produce `buyer`'s fingerprinted copy as a [`MarkDelta`] patch
    /// set against the shared base — see
    /// [`FingerprintRegistry::mark_delta`].
    ///
    /// # Errors
    ///
    /// Embedding failures.
    pub fn mark_delta(
        &mut self,
        rel: &Relation,
        buyer: &str,
    ) -> Result<(MarkDelta, EmbedReport), CoreError> {
        self.registry.mark_delta(rel, buyer, &self.key.name, &self.target.name)
    }

    /// Produce [`MarkDelta`]s for a whole batch of buyers from one
    /// recipient-batched scan, never cloning the base — see
    /// [`FingerprintRegistry::mark_deltas`].
    ///
    /// # Errors
    ///
    /// Embedding failures.
    pub fn mark_deltas(
        &mut self,
        rel: &Relation,
        buyers: &[&str],
    ) -> Result<Vec<(MarkDelta, EmbedReport)>, CoreError> {
        self.registry.mark_deltas(rel, buyers, &self.key.name, &self.target.name)
    }

    /// Stream per-segment [`MarkDelta`]s for a batch of buyers under
    /// the pager budget — see
    /// [`FingerprintRegistry::mark_deltas_segmented`].
    ///
    /// # Errors
    ///
    /// Attribute-resolution, paging, or embedding failures.
    pub fn mark_deltas_segmented(
        &mut self,
        seg: &mut SegmentedRelation,
        buyers: &[&str],
    ) -> Result<Vec<(Vec<MarkDelta>, EmbedReport)>, CoreError> {
        self.registry.mark_deltas_segmented(seg, buyers, &self.key.name, &self.target.name)
    }

    /// Decode `suspect` under every registered buyer's keys, strongest
    /// evidence first (recipient-batched; see
    /// [`FingerprintRegistry::trace`]).
    ///
    /// # Errors
    ///
    /// Attribute-resolution failures.
    pub fn trace(&self, suspect: &Relation) -> Result<Vec<TraceResult>, CoreError> {
        self.registry.trace(suspect, &self.key.name, &self.target.name)
    }

    /// The per-recipient reference for [`FingerprintSession::trace`] —
    /// see [`FingerprintRegistry::trace_sequential`].
    ///
    /// # Errors
    ///
    /// Attribute-resolution failures.
    pub fn trace_sequential(&self, suspect: &Relation) -> Result<Vec<TraceResult>, CoreError> {
        self.registry.trace_sequential(suspect, &self.key.name, &self.target.name)
    }

    /// The single accused buyer, when exactly one clears `alpha`.
    ///
    /// # Errors
    ///
    /// Attribute-resolution failures.
    pub fn accuse(&self, suspect: &Relation, alpha: f64) -> Result<Option<String>, CoreError> {
        self.registry.accuse(suspect, &self.key.name, &self.target.name, alpha)
    }

    /// The underlying registry (buyer list, per-buyer specs).
    #[must_use]
    pub fn registry(&self) -> &FingerprintRegistry {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catmark_datagen::{ItemScanConfig, SalesGenerator};
    use catmark_relation::{ops, Value};

    fn fixture(tuples: usize, e: u64) -> (SalesGenerator, Relation, WatermarkSpec, Watermark) {
        let gen = SalesGenerator::new(ItemScanConfig { tuples, ..Default::default() });
        let rel = gen.generate();
        let spec = WatermarkSpec::builder(gen.item_domain())
            .master_key("session-tests")
            .e(e)
            .wm_len(10)
            .expected_tuples(tuples)
            .erasure(crate::decode::ErasurePolicy::Abstain)
            .build()
            .unwrap();
        let wm = Watermark::from_u64(0b1011001110, 10);
        (gen, rel, spec, wm)
    }

    fn session_for(rel: &Relation, spec: &WatermarkSpec) -> MarkSession {
        MarkSession::builder(spec.clone())
            .key_column("visit_nbr")
            .target_column("item_nbr")
            .bind(rel)
            .unwrap()
    }

    #[test]
    fn bind_resolves_columns_once() {
        let (_, rel, spec, _) = fixture(500, 10);
        let s = session_for(&rel, &spec);
        assert_eq!(s.key().name(), "visit_nbr");
        assert_eq!(s.key().index(), 0);
        assert_eq!(s.target().name(), "item_nbr");
        assert_eq!(s.target().index(), 1);
    }

    #[test]
    fn bind_errors_carry_column_context() {
        let (_, rel, spec, _) = fixture(100, 10);
        let err = MarkSession::builder(spec.clone())
            .key_column("visit_nbr")
            .target_column("nope")
            .bind(&rel)
            .unwrap_err();
        let CoreError::ColumnBinding { column, arity, available, .. } = &err else {
            panic!("expected ColumnBinding, got {err:?}");
        };
        assert_eq!(column, "nope");
        assert_eq!(*arity, 2);
        assert_eq!(available, &["visit_nbr".to_owned(), "item_nbr".to_owned()]);

        // Missing target entirely.
        let err = MarkSession::builder(spec.clone()).key_column("visit_nbr").bind(&rel);
        assert!(matches!(err, Err(CoreError::ColumnBinding { .. })));

        // Key and target must differ.
        let err = MarkSession::builder(spec.clone())
            .key_column("item_nbr")
            .target_column("item_nbr")
            .bind(&rel);
        assert!(matches!(err, Err(CoreError::ColumnBinding { .. })));

        // Non-categorical target (the key column is never categorical).
        let err =
            MarkSession::builder(spec).key_column("item_nbr").target_column("visit_nbr").bind(&rel);
        assert!(matches!(err, Err(CoreError::ColumnBinding { .. })));
    }

    #[test]
    fn bind_rejects_type_incompatible_domain() {
        let (_, rel, spec, _) = fixture(100, 10);
        let mut text_spec = spec;
        text_spec.domain =
            CategoricalDomain::new(vec![Value::Text("a".into()), Value::Text("b".into())]).unwrap();
        let err = MarkSession::builder(text_spec)
            .key_column("visit_nbr")
            .target_column("item_nbr")
            .bind(&rel);
        assert!(matches!(err, Err(CoreError::ColumnBinding { .. })), "{err:?}");
    }

    #[test]
    fn embed_decode_detect_on_one_handle() {
        let (_, mut rel, spec, wm) = fixture(6_000, 15);
        let s = session_for(&rel, &spec);
        let report = s.embed(&mut rel, &wm).unwrap();
        assert!(report.fit_count() > 200);
        // The embed left the key column untouched, so the decode and
        // the detect reuse the cached plan: exactly one plan lives in
        // the cache after the whole run.
        let decode = s.decode(&rel).unwrap();
        assert_eq!(decode.watermark, wm);
        let verdict = s.detect(&rel, &wm).unwrap();
        assert!(verdict.is_significant(1e-2));
        assert_eq!(s.cache().len(), 1);
        // Outcome views agree with the underlying reports.
        assert_eq!(verdict.fit_count(), decode.fit_tuples);
        assert!(verdict.confidence() > 0.99);
        assert!(!format!("{verdict}").is_empty());
    }

    #[test]
    fn session_methods_error_after_schema_drift() {
        let (_, mut rel, spec, wm) = fixture(2_000, 10);
        let s = session_for(&rel, &spec);
        s.embed(&mut rel, &wm).unwrap();
        // A5-style projection drops the key column behind the session.
        let partitioned = ops::project(&rel, &[1], 0, false).unwrap();
        let err = s.decode(&partitioned).unwrap_err();
        let msg = err.to_string();
        assert!(matches!(err, CoreError::ColumnBinding { .. }), "{msg}");
        assert!(msg.contains("visit_nbr"), "{msg}");
        assert!(msg.contains("item_nbr"), "actionable listing missing: {msg}");
    }

    #[test]
    fn stale_plan_surfaces_as_error_after_mutation_behind_the_session() {
        let (_, mut rel, spec, wm) = fixture(2_000, 10);
        let s = session_for(&rel, &spec);
        s.embed(&mut rel, &wm).unwrap();
        let plan = s.plan(&rel).unwrap();
        // The relation is re-keyed behind the session's back.
        let old = rel.tuple(0).unwrap().get(0).as_int().unwrap();
        rel.update_value(0, 0, Value::Int(old + 9_000_000)).unwrap();
        let err = s.decode_planned(&rel, &plan);
        assert!(matches!(err, Err(CoreError::InvalidSpec(_))), "{err:?}");
        // The self-planning path recovers by replanning.
        assert_eq!(s.decode(&rel).unwrap().watermark.len(), wm.len());
    }

    #[test]
    fn planned_paths_match_self_planning_paths() {
        let (_, rel, spec, wm) = fixture(3_000, 10);
        let s = session_for(&rel, &spec);
        let plan = s.plan(&rel).unwrap();
        let mut a = rel.clone();
        let mut b = rel;
        let ra = s.embed(&mut a, &wm).unwrap();
        let rb = s.embed_planned(&mut b, &wm, &plan).unwrap();
        assert_eq!(ra, rb);
        assert!(a.iter().zip(b.iter()).all(|(x, y)| x == y));
        let plan_after = s.plan(&a).unwrap();
        assert_eq!(s.decode(&a).unwrap(), s.decode_planned(&b, &plan_after).unwrap());
    }

    #[test]
    fn stream_marker_matches_batch_embed() {
        let (_, rel, spec, wm) = fixture(3_000, 10);
        let s = session_for(&rel, &spec);
        let mut batch = rel.clone();
        s.embed(&mut batch, &wm).unwrap();
        let marker = s.stream(&wm).unwrap();
        let mut streamed = Relation::new(rel.schema().clone());
        for tuple in rel.iter() {
            marker.ingest(&mut streamed, tuple.values().to_vec()).unwrap();
        }
        assert!(batch.iter().zip(streamed.iter()).all(|(a, b)| a == b));
        // Wrong watermark length is rejected up front.
        assert!(s.stream(&Watermark::from_u64(1, 3)).is_err());
    }

    #[test]
    fn contest_resolves_through_the_session() {
        let (gen, mut rel, spec, wm) = fixture(9_000, 10);
        let s = session_for(&rel, &spec);
        s.embed(&mut rel, &wm).unwrap();
        let owner = s.claim("owner", &wm);
        let mallory_spec = WatermarkSpec::builder(gen.item_domain())
            .master_key("mallory")
            .e(10)
            .wm_len(10)
            .expected_tuples(9_000)
            .erasure(crate::decode::ErasurePolicy::Abstain)
            .build()
            .unwrap();
        let mallory = Claim {
            claimant: "mallory".into(),
            spec: mallory_spec,
            watermark: Watermark::from_u64(0b0011001100, 10),
        };
        crate::contest::additive_attack(&mut rel, &mallory, "visit_nbr", "item_nbr").unwrap();
        let (outcome, ev_owner, _) = s.contest(&owner, &mallory, &rel, 1e-2, 0.01).unwrap();
        assert_eq!(outcome, ContestOutcome::EarlierClaim("owner".into()));
        assert!(ev_owner.confidence() > 0.9);
        // Re-running the contest replans nothing new.
        let before = s.cache().len();
        s.contest(&owner, &mallory, &rel, 1e-2, 0.01).unwrap();
        assert_eq!(s.cache().len(), before);
    }

    #[test]
    fn fingerprint_handle_traces_through_the_session() {
        let (_, rel, spec, _) = fixture(8_000, 15);
        let s = session_for(&rel, &spec);
        let mut fp = s.fingerprint();
        let (copy, _) = fp.mark_copy(&rel, "acme").unwrap();
        fp.register("globex");
        let leaked = ops::sample_bernoulli(&ops::shuffle(&copy, 3), 0.6, 4);
        assert_eq!(fp.accuse(&leaked, 1e-2).unwrap(), Some("acme".to_owned()));
        let results = fp.trace(&leaked).unwrap();
        assert_eq!(results[0].buyer, "acme");
        assert!(!format!("{}", results[0]).is_empty());
    }

    #[test]
    fn multiattr_handle_embeds_and_witnesses() {
        let gen = SalesGenerator::new(ItemScanConfig {
            tuples: 8_000,
            items: 400,
            with_city: true,
            ..Default::default()
        });
        let mut rel = gen.generate();
        let spec = WatermarkSpec::builder(gen.item_domain())
            .master_key("session-multiattr")
            .e(5)
            .wm_len(10)
            .expected_tuples(rel.len())
            .erasure(crate::decode::ErasurePolicy::Abstain)
            .build()
            .unwrap();
        let s = MarkSession::builder(spec)
            .key_column("visit_nbr")
            .target_column("item_nbr")
            .bind(&rel)
            .unwrap();
        let wm = Watermark::from_u64(0b1100101011, 10);
        let mut domains = HashMap::new();
        domains.insert("item_nbr".to_owned(), gen.item_domain());
        domains.insert("store_city".to_owned(), gen.city_domain());
        let ma = s.multiattr(&rel, &domains).unwrap();
        let outcomes = ma.embed(&mut rel, &wm).unwrap();
        assert_eq!(outcomes.len(), ma.plan().pairs().len());
        let verdict = ma.verdict(&rel, &wm, 1e-2).unwrap();
        assert!(verdict.significant_witnesses >= 2, "{verdict}");
        assert!(verdict.confidence() > 0.99);
    }

    #[test]
    fn sessions_share_the_cache_across_clones() {
        let (_, mut rel, spec, wm) = fixture(2_000, 10);
        let s = session_for(&rel, &spec);
        let clone = s.clone();
        s.embed(&mut rel, &wm).unwrap();
        clone.decode(&rel).unwrap();
        assert_eq!(s.cache().len(), 1, "clone re-planned instead of sharing");
    }
}
