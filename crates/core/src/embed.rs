//! Mark encoding (Section 3.2.1, Figure 1(a)).
//!
//! ```text
//! wm_embed(K, A, wm, k1, k2, e, ECC)
//!   wm_data ← ECC.encode(wm, N/e)
//!   for j ← 1 .. N
//!     if H(T_j(K), k1) mod e == 0 then
//!       t ← set_bit(H(T_j(K), k1), 0, wm_data[H(T_j(K), k2)])
//!       T_j(A) ← a_t
//! ```
//!
//! The encoder walks the relation once; for every fit tuple it derives
//! the carried `wm_data` position from `H(·, k2)`, a pseudorandom base
//! index from the top bits of `H(·, k1)`, forces the base's LSB to the
//! watermark bit and writes the corresponding domain value back.
//! Optionally every alteration is gated by a [`QualityGuard`]
//! (Section 4.1).

use std::collections::HashMap;

use catmark_relation::{ColumnMut, ColumnView, MarkDelta, MarkDeltaBuilder, Relation, Value};

use crate::ecc::ErrorCorrectingCode;
use crate::error::CoreError;
use crate::plan::MarkPlan;
use crate::quality::{Alteration, CodedAlteration, QualityGuard};
use crate::spec::{Watermark, WatermarkSpec};

/// Outcome of an embedding pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmbedReport {
    /// Total tuples examined (`N`).
    pub total_tuples: usize,
    /// Tuples satisfying the fitness criterion (≈ N/e).
    pub fit_tuples: usize,
    /// Tuples whose attribute value actually changed.
    pub altered: usize,
    /// Fit tuples whose value already carried the right bit pattern.
    pub unchanged: usize,
    /// Alterations vetoed by quality constraints.
    pub vetoed: usize,
    /// Distinct `wm_data` positions that received at least one
    /// embedding (the paper: "a large majority of the bits in wm_data
    /// are going to be embedded at least once").
    pub positions_covered: usize,
    /// Total `wm_data` positions available (`spec.wm_data_len`), so
    /// coverage is computable from the report alone.
    pub positions_total: usize,
    /// Rows whose attribute value was actually altered. Fit tuples
    /// whose value already matched are *not* listed: they need no
    /// protection from later passes (their vote already agrees).
    pub touched_rows: Vec<usize>,
}

impl EmbedReport {
    /// Fraction of the relation altered — the data-distortion cost the
    /// paper trades against resilience (Figure 5's x-axis is driven by
    /// this through `e`).
    #[must_use]
    pub fn alteration_rate(&self) -> f64 {
        if self.total_tuples == 0 {
            0.0
        } else {
            self.altered as f64 / self.total_tuples as f64
        }
    }
}

impl std::fmt::Display for EmbedReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "embedded {} of {} fit tuples ({} already carried their bit, {} vetoed), \
             covering {}/{} positions — {:.2}% of {} tuples altered",
            self.altered,
            self.fit_tuples,
            self.unchanged,
            self.vetoed,
            self.positions_covered,
            self.positions_total,
            self.alteration_rate() * 100.0,
            self.total_tuples,
        )
    }
}

impl crate::session::Outcome for EmbedReport {
    fn fit_count(&self) -> usize {
        self.fit_tuples
    }

    /// Fraction of `wm_data` positions that received at least one
    /// carrier.
    fn coverage(&self) -> f64 {
        if self.positions_total == 0 {
            0.0
        } else {
            self.positions_covered as f64 / self.positions_total as f64
        }
    }

    /// Fraction of fit tuples that ended up carrying their assigned
    /// bit (vetoed alterations erode it; 0 when nothing was fit).
    fn confidence(&self) -> f64 {
        if self.fit_tuples == 0 {
            0.0
        } else {
            (self.altered + self.unchanged) as f64 / self.fit_tuples as f64
        }
    }
}

/// Watermark encoder for one `(key, categorical attribute)` pair.
#[derive(Debug, Clone)]
pub struct Embedder<'a> {
    spec: &'a WatermarkSpec,
}

impl<'a> Embedder<'a> {
    /// Engine constructor for the session layer and the other in-crate
    /// operators. External callers bind a
    /// [`crate::session::MarkSession`], which resolves columns once
    /// and shares one plan cache across every operator.
    pub(crate) fn engine(spec: &'a WatermarkSpec) -> Self {
        Embedder { spec }
    }

    /// Fully general embedding: explicit attribute indices, pluggable
    /// ECC, optional guard. Builds a fresh [`MarkPlan`] internally;
    /// callers that already hold one (or share a
    /// [`crate::plan::PlanCache`] with a later decode) should use
    /// [`Embedder::embed_with_plan`].
    ///
    /// # Errors
    ///
    /// Watermark length mismatch, a key target column, or a domain
    /// whose value type differs from the target column's.
    pub fn embed_by_idx(
        &self,
        rel: &mut Relation,
        key_idx: usize,
        attr_idx: usize,
        wm: &Watermark,
        ecc: &dyn ErrorCorrectingCode,
        guard: Option<&mut QualityGuard>,
    ) -> Result<EmbedReport, CoreError> {
        let plan = MarkPlan::build(self.spec, rel, key_idx);
        self.embed_with_plan(rel, attr_idx, wm, ecc, guard, &plan)
    }

    /// Embedding over a precomputed [`MarkPlan`]: the per-tuple hash
    /// work is already done, so this pass only rewrites values.
    ///
    /// Byte-identical to [`Embedder::embed_by_idx`] when the plan was
    /// built from the same spec and relation.
    ///
    /// # Errors
    ///
    /// As [`Embedder::embed_by_idx`], plus [`CoreError::InvalidSpec`]
    /// when the plan does not match this spec/relation.
    pub fn embed_with_plan(
        &self,
        rel: &mut Relation,
        attr_idx: usize,
        wm: &Watermark,
        ecc: &dyn ErrorCorrectingCode,
        guard: Option<&mut QualityGuard>,
        plan: &MarkPlan,
    ) -> Result<EmbedReport, CoreError> {
        if !plan.matches(self.spec, rel) {
            return Err(CoreError::InvalidSpec(
                "mark plan was built for a different spec or relation".into(),
            ));
        }
        self.embed_with_plan_trusted(rel, attr_idx, wm, ecc, guard, plan)
    }

    /// [`Embedder::embed_with_plan`] minus the plan-staleness
    /// fingerprint pass — for plans the caller *just* obtained from a
    /// [`crate::plan::PlanCache`] lookup over the same relation, where
    /// the cache key already proved content identity.
    pub(crate) fn embed_with_plan_trusted(
        &self,
        rel: &mut Relation,
        attr_idx: usize,
        wm: &Watermark,
        ecc: &dyn ErrorCorrectingCode,
        guard: Option<&mut QualityGuard>,
        plan: &MarkPlan,
    ) -> Result<EmbedReport, CoreError> {
        if wm.len() != self.spec.wm_len {
            return Err(CoreError::InvalidSpec(format!(
                "watermark has {} bits but the spec declares {}",
                wm.len(),
                self.spec.wm_len
            )));
        }
        let wm_data = ecc.encode(wm, self.spec.wm_data_len);
        let mut report = EmbedReport {
            total_tuples: plan.rows(),
            fit_tuples: plan.fit().len(),
            altered: 0,
            unchanged: 0,
            vetoed: 0,
            positions_covered: 0,
            positions_total: self.spec.wm_data_len,
            touched_rows: Vec::new(),
        };
        let mut covered = vec![false; self.spec.wm_data_len];
        self.embed_pass(rel, attr_idx, &wm_data, guard, plan, 0, &mut covered, &mut report)?;
        report.positions_covered = covered.iter().filter(|&&c| c).count();
        Ok(report)
    }

    /// The write pass over one relation (or one **segment** of a
    /// [`catmark_relation::SegmentedRelation`], with `row_base` the
    /// segment's first global row): plan-driven value rewriting into
    /// a caller-owned coverage bitmap and report. The out-of-core
    /// driver calls this once per segment with shared `covered` /
    /// `report` state, which is exactly what makes segment streaming
    /// byte-identical to a monolithic pass — every decision here
    /// depends only on the tuple's own planned facts and `wm_data`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn embed_pass(
        &self,
        rel: &mut Relation,
        attr_idx: usize,
        wm_data: &[bool],
        mut guard: Option<&mut QualityGuard>,
        plan: &MarkPlan,
        row_base: usize,
        covered: &mut [bool],
        report: &mut EmbedReport,
    ) -> Result<(), CoreError> {
        // A guarded pass binds the guard to code space once: every
        // constraint that accepts evaluates candidate alterations as
        // (old domain code, new domain code) pairs — the goodness
        // loop then proposes without materializing a single `Value`.
        if let Some(g) = guard.as_deref_mut() {
            g.bind_codes(attr_idx, &self.spec.domain);
        }
        // The write pass runs directly on the target column's typed
        // storage: integer domains write `i64`s, text domains write
        // dictionary codes resolved once per domain value.
        match rel.column_mut(attr_idx).map_err(CoreError::Relation)? {
            ColumnMut::Int(xs) => {
                let dom = int_domain(self.spec)?;
                // Reverse map: stored integer → domain code, so the
                // old value's code is one hash of an `i64` away (a
                // foreign old value falls back to the value path).
                // Only guarded passes read it.
                let dom_code_of: HashMap<i64, u32> = if guard.is_some() {
                    dom.iter().enumerate().map(|(t, &v)| (v, t as u32)).collect()
                } else {
                    HashMap::new()
                };
                for planned in plan.fit() {
                    let row = planned.row as usize;
                    let idx = planned.position as usize;
                    let t = plan.value_index(planned, wm_data[idx]);
                    let new = dom[t];
                    let old = xs[row];
                    if old == new {
                        report.unchanged += 1;
                        covered[idx] = true;
                        continue;
                    }
                    if let Some(g) = guard.as_deref_mut() {
                        let admitted = match dom_code_of.get(&old) {
                            Some(&old_code) => g.propose_coded(CodedAlteration {
                                row: row_base + row,
                                attr: attr_idx,
                                old: old_code,
                                new: t as u32,
                            }),
                            None => g.propose(Alteration {
                                row: row_base + row,
                                attr: attr_idx,
                                old: Value::Int(old),
                                new: Value::Int(new),
                            }),
                        };
                        if !admitted {
                            report.vetoed += 1;
                            continue;
                        }
                    }
                    xs[row] = new;
                    report.altered += 1;
                    covered[idx] = true;
                    report.touched_rows.push(row_base + row);
                }
            }
            ColumnMut::Text(mut tc) => {
                // Intern every domain value up front: the per-row work
                // is then a pure code compare-and-store.
                let dom_codes: Result<Vec<u32>, CoreError> = self
                    .spec
                    .domain
                    .values()
                    .iter()
                    .map(|v| {
                        v.as_text().map(|s| tc.intern(s)).ok_or_else(|| {
                            CoreError::InvalidSpec(format!(
                                "domain holds {} values but the target column is text",
                                v.type_name()
                            ))
                        })
                    })
                    .collect();
                let dom_codes = dom_codes?;
                // Reverse map: dictionary code → domain code (None
                // for dictionary entries outside the domain). Built
                // after the interning above so every domain value has
                // its dictionary slot. Only guarded passes read it.
                let mut dom_code_of: Vec<Option<u32>> =
                    vec![None; if guard.is_some() { tc.dict().len() } else { 0 }];
                if guard.is_some() {
                    for (t, &c) in dom_codes.iter().enumerate() {
                        dom_code_of[c as usize] = Some(t as u32);
                    }
                }
                for planned in plan.fit() {
                    let row = planned.row as usize;
                    let idx = planned.position as usize;
                    let t = plan.value_index(planned, wm_data[idx]);
                    let new = dom_codes[t];
                    let old = tc.code(row);
                    if old == new {
                        report.unchanged += 1;
                        covered[idx] = true;
                        continue;
                    }
                    if let Some(g) = guard.as_deref_mut() {
                        let admitted = match dom_code_of[old as usize] {
                            Some(old_code) => g.propose_coded(CodedAlteration {
                                row: row_base + row,
                                attr: attr_idx,
                                old: old_code,
                                new: t as u32,
                            }),
                            None => g.propose(Alteration {
                                row: row_base + row,
                                attr: attr_idx,
                                old: Value::Text(tc.dict().get(old).to_owned()),
                                new: Value::Text(tc.dict().get(new).to_owned()),
                            }),
                        };
                        if !admitted {
                            report.vetoed += 1;
                            continue;
                        }
                    }
                    tc.set(row, new);
                    report.altered += 1;
                    covered[idx] = true;
                    report.touched_rows.push(row_base + row);
                }
            }
        }
        Ok(())
    }

    /// Delta extraction over a precomputed plan: the same decisions as
    /// [`Embedder::embed_with_plan`] on a clone of `rel`, but emitted
    /// as a [`MarkDelta`] without ever materializing the clone.
    /// `base.apply_delta(&delta)` rebuilds the copy byte-identically
    /// (pinned by proptest and golden).
    ///
    /// # Errors
    ///
    /// As [`Embedder::embed_with_plan`].
    pub fn extract_delta_with_plan(
        &self,
        rel: &Relation,
        attr_idx: usize,
        wm: &Watermark,
        ecc: &dyn ErrorCorrectingCode,
        plan: &MarkPlan,
    ) -> Result<(MarkDelta, EmbedReport), CoreError> {
        if !plan.matches(self.spec, rel) {
            return Err(CoreError::InvalidSpec(
                "mark plan was built for a different spec or relation".into(),
            ));
        }
        self.extract_delta_with_plan_trusted(rel, attr_idx, wm, ecc, plan)
    }

    /// [`Embedder::extract_delta_with_plan`] minus the plan-staleness
    /// check — the cache-backed fast path, mirroring
    /// [`Embedder::embed_with_plan_trusted`].
    pub(crate) fn extract_delta_with_plan_trusted(
        &self,
        rel: &Relation,
        attr_idx: usize,
        wm: &Watermark,
        ecc: &dyn ErrorCorrectingCode,
        plan: &MarkPlan,
    ) -> Result<(MarkDelta, EmbedReport), CoreError> {
        let table = self.delta_domain_table(rel, attr_idx)?;
        self.extract_delta_with_table(rel, attr_idx, wm, ecc, plan, &table)
    }

    /// [`Embedder::extract_delta_with_plan_trusted`] with the resolved
    /// domain table supplied by the caller. The table depends only on
    /// `(domain values, target column)` — never on the spec's keys —
    /// so batch producers (one table, a thousand recipients) build it
    /// once with [`Embedder::delta_domain_table`] and reuse it across
    /// every per-recipient extraction over the same relation.
    pub(crate) fn extract_delta_with_table(
        &self,
        rel: &Relation,
        attr_idx: usize,
        wm: &Watermark,
        ecc: &dyn ErrorCorrectingCode,
        plan: &MarkPlan,
        table: &DeltaDomainTable,
    ) -> Result<(MarkDelta, EmbedReport), CoreError> {
        if wm.len() != self.spec.wm_len {
            return Err(CoreError::InvalidSpec(format!(
                "watermark has {} bits but the spec declares {}",
                wm.len(),
                self.spec.wm_len
            )));
        }
        let wm_data = ecc.encode(wm, self.spec.wm_data_len);
        let mut report = EmbedReport {
            total_tuples: plan.rows(),
            fit_tuples: plan.fit().len(),
            altered: 0,
            unchanged: 0,
            vetoed: 0,
            positions_covered: 0,
            positions_total: self.spec.wm_data_len,
            touched_rows: Vec::with_capacity(plan.fit().len()),
        };
        let mut covered = vec![false; self.spec.wm_data_len];
        let delta = self.extract_delta_pass_with_table(
            rel,
            attr_idx,
            &wm_data,
            plan,
            0,
            &mut covered,
            &mut report,
            table,
        )?;
        report.positions_covered = covered.iter().filter(|&&c| c).count();
        Ok((delta, report))
    }

    /// Resolve the spec's domain against `rel`'s target column once:
    /// raw integers for an integer column, or — for a text column —
    /// each domain value's code in the *virtually extended* code space
    /// (base dictionary plus, in domain order, the entries interning
    /// would have appended). Everything here is invariant across the
    /// specs of a recipient batch (derived specs share the domain), so
    /// one table serves every buyer's extraction over `rel`.
    ///
    /// # Errors
    ///
    /// The same schema refusals as [`Relation::column_mut`] (mirrored
    /// so the delta path errors exactly where the materializing path
    /// does), or [`CoreError::InvalidSpec`] on a domain/column type
    /// mismatch.
    pub(crate) fn delta_domain_table(
        &self,
        rel: &Relation,
        attr_idx: usize,
    ) -> Result<DeltaDomainTable, CoreError> {
        if attr_idx >= rel.schema().arity() {
            return Err(CoreError::Relation(catmark_relation::RelationError::InvalidSchema(
                format!("attribute index {attr_idx} out of range"),
            )));
        }
        if attr_idx == rel.schema().key_index() {
            return Err(CoreError::Relation(catmark_relation::RelationError::InvalidSchema(
                "the key column cannot be rewritten in bulk (it backs the key index)".into(),
            )));
        }
        match rel.column(attr_idx) {
            ColumnView::Int(_) => Ok(DeltaDomainTable::Int(int_domain(self.spec)?)),
            ColumnView::Text { dict, .. } => {
                // Virtual interning: resolve each domain value to its
                // base code, or to the extension code `tc.intern`
                // would have assigned, in the same order.
                let base_dict_len = dict.len();
                let mut foreign: HashMap<&str, u32> = HashMap::new();
                let mut extension: Vec<String> = Vec::new();
                let mut dom_codes = Vec::with_capacity(self.spec.domain.values().len());
                for v in self.spec.domain.values() {
                    let s = v.as_text().ok_or_else(|| {
                        CoreError::InvalidSpec(format!(
                            "domain holds {} values but the target column is text",
                            v.type_name()
                        ))
                    })?;
                    let code = match dict.code_of(s) {
                        Some(code) => code,
                        None => *foreign.entry(s).or_insert_with(|| {
                            extension.push(s.to_string());
                            (base_dict_len + extension.len() - 1) as u32
                        }),
                    };
                    dom_codes.push(code);
                }
                Ok(DeltaDomainTable::Text { base_dict_len, dom_codes, extension })
            }
        }
    }

    /// The read-only twin of [`Embedder::embed_pass`]: walk the plan's
    /// fit set over one relation (or one segment, with `row_base` its
    /// first global row) making exactly the decisions the write pass
    /// would, but record each rewrite as a patch instead of storing
    /// it. For text columns the write pass interns every domain value
    /// up front; this pass reproduces that interning *virtually* —
    /// domain values absent from the base dictionary become
    /// dictionary-extension entries in domain order, occupying the
    /// codes interning would have assigned — which is what makes the
    /// rebuilt copy's dictionary byte-identical, down to entries no
    /// row references.
    ///
    /// The domain table is hoisted out as a parameter — the batch hot
    /// loop builds it once per `(column, domain)` and reuses it for
    /// every recipient, so the per-recipient work is exactly the fit
    /// walk: a code compare and a patch push per fit tuple, no
    /// per-recipient domain resolution, no re-validation of an
    /// ordering the fit walk guarantees.
    ///
    /// `table` must have been built by [`Embedder::delta_domain_table`]
    /// against this same `rel` and `attr_idx` (same column type, same
    /// dictionary) under a spec sharing this spec's domain.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn extract_delta_pass_with_table(
        &self,
        rel: &Relation,
        attr_idx: usize,
        wm_data: &[bool],
        plan: &MarkPlan,
        row_base: usize,
        covered: &mut [bool],
        report: &mut EmbedReport,
        table: &DeltaDomainTable,
    ) -> Result<MarkDelta, CoreError> {
        let builder = match (rel.column(attr_idx), table) {
            (ColumnView::Int(xs), DeltaDomainTable::Int(dom)) => {
                let mut builder = MarkDeltaBuilder::int(attr_idx, rel.len());
                for planned in plan.fit() {
                    let row = planned.row as usize;
                    let idx = planned.position as usize;
                    let t = plan.value_index(planned, wm_data[idx]);
                    let new = dom[t];
                    let old = xs[row];
                    if old == new {
                        report.unchanged += 1;
                        covered[idx] = true;
                        continue;
                    }
                    builder.push_int(row, old, new);
                    report.altered += 1;
                    covered[idx] = true;
                    report.touched_rows.push(row_base + row);
                }
                builder
            }
            (
                ColumnView::Text { codes, dict },
                DeltaDomainTable::Text { base_dict_len, dom_codes, extension },
            ) => {
                debug_assert_eq!(
                    dict.len(),
                    *base_dict_len,
                    "delta domain table was built against a different dictionary"
                );
                let mut builder = MarkDeltaBuilder::text(attr_idx, rel.len(), *base_dict_len);
                for entry in extension {
                    builder.extend_dict(entry);
                }
                for planned in plan.fit() {
                    let row = planned.row as usize;
                    let idx = planned.position as usize;
                    let t = plan.value_index(planned, wm_data[idx]);
                    let new = dom_codes[t];
                    let old = codes[row];
                    if old == new {
                        report.unchanged += 1;
                        covered[idx] = true;
                        continue;
                    }
                    builder.push_code(row, old, new);
                    report.altered += 1;
                    covered[idx] = true;
                    report.touched_rows.push(row_base + row);
                }
                builder
            }
            _ => {
                return Err(CoreError::InvalidSpec(
                    "delta domain table does not match the target column type".into(),
                ))
            }
        };
        // The fit walk pushes at most one patch per row in ascending
        // plan order, and codes come from the table built against this
        // dictionary — the trusted finish debug-asserts all of it.
        Ok(builder.finish_trusted())
    }
}

/// The once-per-batch resolution of a spec's domain against a target
/// column — see [`Embedder::delta_domain_table`]. Shared across every
/// recipient of a delta batch: the table is a function of the domain
/// and the column, never of a recipient's derived keys.
#[derive(Debug, Clone)]
pub(crate) enum DeltaDomainTable {
    /// Integer target column: the domain as raw `i64`s, indexed by
    /// domain code.
    Int(Vec<i64>),
    /// Text target column: each domain value's code in the virtually
    /// extended code space, plus the extension entries (in assignment
    /// order) every recipient's builder must replay.
    Text {
        /// Dictionary length the table was resolved against.
        base_dict_len: usize,
        /// Domain code → extended-space dictionary code.
        dom_codes: Vec<u32>,
        /// Entries past the base dictionary, in code order.
        extension: Vec<String>,
    },
}

/// The spec's domain as raw integers, for writing straight into an
/// integer column.
fn int_domain(spec: &WatermarkSpec) -> Result<Vec<i64>, CoreError> {
    spec.domain
        .values()
        .iter()
        .map(|v| {
            v.as_int().ok_or_else(|| {
                CoreError::InvalidSpec(format!(
                    "domain holds {} values but the target column is integer",
                    v.type_name()
                ))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::FitnessSelector;
    use crate::quality::AlterationBudget;
    use catmark_datagen::{ItemScanConfig, SalesGenerator};

    fn setup(tuples: usize, e: u64) -> (Relation, WatermarkSpec, Watermark) {
        let gen = SalesGenerator::new(ItemScanConfig { tuples, ..Default::default() });
        let rel = gen.generate();
        let spec = WatermarkSpec::builder(gen.item_domain())
            .master_key("embed-tests")
            .e(e)
            .wm_len(10)
            .expected_tuples(tuples)
            .build()
            .unwrap();
        let wm = Watermark::from_u64(0b1011001110, 10);
        (rel, spec, wm)
    }

    #[test]
    fn embeds_expected_tuple_fraction() {
        let (mut rel, spec, wm) = setup(12_000, 60);
        let report = crate::testkit::embed(&spec, &mut rel, "visit_nbr", "item_nbr", &wm).unwrap();
        assert_eq!(report.total_tuples, 12_000);
        let expected = 200.0;
        assert!(
            (report.fit_tuples as f64 - expected).abs() < expected * 0.35,
            "fit={}",
            report.fit_tuples
        );
        // Nearly all fit tuples require an actual value change (the
        // prior value matching by chance has probability ~1/nA… ×2).
        assert!(report.altered + report.unchanged == report.fit_tuples);
        assert!(report.altered as f64 > 0.9 * report.fit_tuples as f64);
        assert_eq!(report.vetoed, 0);
    }

    #[test]
    fn embedded_values_stay_in_domain_with_correct_lsb() {
        let (mut rel, spec, wm) = setup(3_000, 20);
        let report = crate::testkit::embed(&spec, &mut rel, "visit_nbr", "item_nbr", &wm).unwrap();
        let ecc = crate::ecc::MajorityVotingEcc;
        let wm_data = ecc.encode(&wm, spec.wm_data_len);
        let sel = FitnessSelector::new(&spec);
        for &row in &report.touched_rows {
            let tuple = rel.tuple(row).unwrap();
            let t = spec.domain.index_of(tuple.get(1)).expect("value in domain");
            let idx = sel.position(tuple.get(0));
            assert_eq!(t & 1 == 1, wm_data[idx], "row {row} carries the wrong bit");
        }
    }

    #[test]
    fn embedding_is_deterministic() {
        let (rel, spec, wm) = setup(2_000, 30);
        let mut a = rel.clone();
        let mut b = rel;
        crate::testkit::embed(&spec, &mut a, "visit_nbr", "item_nbr", &wm).unwrap();
        crate::testkit::embed(&spec, &mut b, "visit_nbr", "item_nbr", &wm).unwrap();
        assert!(a.iter().zip(b.iter()).all(|(x, y)| x == y));
    }

    #[test]
    fn embedding_is_idempotent() {
        // Re-embedding the same watermark changes nothing: every fit
        // tuple already carries its assigned value.
        let (mut rel, spec, wm) = setup(2_000, 30);
        let first = crate::testkit::embed(&spec, &mut rel, "visit_nbr", "item_nbr", &wm).unwrap();
        let second = crate::testkit::embed(&spec, &mut rel, "visit_nbr", "item_nbr", &wm).unwrap();
        assert!(first.altered > 0);
        assert_eq!(second.altered, 0);
        assert_eq!(second.unchanged, second.fit_tuples);
    }

    #[test]
    fn rejects_wrong_watermark_length() {
        let (mut rel, spec, _) = setup(1_000, 30);
        let wm = Watermark::from_u64(1, 5);
        let err = crate::testkit::embed(&spec, &mut rel, "visit_nbr", "item_nbr", &wm);
        assert!(matches!(err, Err(CoreError::InvalidSpec(_))));
    }

    #[test]
    fn rejects_unknown_attributes() {
        let (mut rel, spec, wm) = setup(100, 30);
        assert!(crate::testkit::embed(&spec, &mut rel, "nope", "item_nbr", &wm).is_err());
        assert!(crate::testkit::embed(&spec, &mut rel, "visit_nbr", "nope", &wm).is_err());
    }

    #[test]
    fn guard_vetoes_are_counted_and_skip_alterations() {
        let (mut rel, spec, wm) = setup(6_000, 30);
        let mut guard = QualityGuard::new(vec![Box::new(AlterationBudget::new(10))]);
        let report = crate::testkit::embed_guarded(
            &spec,
            &mut rel,
            "visit_nbr",
            "item_nbr",
            &wm,
            &mut guard,
        )
        .unwrap();
        assert_eq!(report.altered, 10);
        assert!(report.vetoed > 0);
        assert_eq!(guard.log().len(), 10);
    }

    #[test]
    fn guard_undo_restores_original_relation() {
        let (rel, spec, wm) = setup(2_000, 30);
        let original = rel.clone();
        let mut marked = rel;
        let mut guard = QualityGuard::new(vec![]);
        crate::testkit::embed_guarded(&spec, &mut marked, "visit_nbr", "item_nbr", &wm, &mut guard)
            .unwrap();
        assert!(original.iter().zip(marked.iter()).any(|(a, b)| a != b));
        guard.undo_all(&mut marked).unwrap();
        assert!(original.iter().zip(marked.iter()).all(|(a, b)| a == b));
    }

    #[test]
    fn alteration_rate_matches_one_over_e_scaling() {
        let (mut rel, spec, wm) = setup(12_000, 60);
        let report = crate::testkit::embed(&spec, &mut rel, "visit_nbr", "item_nbr", &wm).unwrap();
        let rate = report.alteration_rate();
        // ~1/e of tuples altered (minus the few unchanged-by-chance).
        assert!((rate - 1.0 / 60.0).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn covers_most_positions() {
        let (mut rel, spec, wm) = setup(6_000, 60);
        let report = crate::testkit::embed(&spec, &mut rel, "visit_nbr", "item_nbr", &wm).unwrap();
        // With ~100 fit tuples into 100 positions, coverage follows
        // the coupon-collector/Poisson curve: ≈ 1 - 1/e ≈ 63%.
        let coverage = report.positions_covered as f64 / spec.wm_data_len as f64;
        assert!(coverage > 0.45, "coverage={coverage}");
    }

    #[test]
    fn key_attribute_is_never_modified() {
        let (rel, spec, wm) = setup(3_000, 20);
        let mut marked = rel.clone();
        crate::testkit::embed(&spec, &mut marked, "visit_nbr", "item_nbr", &wm).unwrap();
        assert!(rel.column(0) == marked.column(0));
    }
}
