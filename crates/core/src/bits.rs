//! The paper's bit-manipulation notation (Section 2.1).
//!
//! * `b(X)` — the number of bits required to represent `X`;
//! * `msb(X, b)` — the most significant `b` bits of `X` (left-padded
//!   with zeroes when `X` is shorter);
//! * `set_bit(d, a, v)` — `d` with bit position `a` forced to `v`.
//!
//! These operate on the `u64` view of keyed hashes (see
//! `catmark_crypto::KeyedHash::hash_u64`).

/// `b(x)`: bits required to represent `x` (with `b(0) = 1`).
#[must_use]
pub fn bit_length(x: u64) -> u32 {
    if x == 0 {
        1
    } else {
        u64::BITS - x.leading_zeros()
    }
}

/// `msb(x, b)`: the most significant `b` bits of the 64-bit value `x`.
///
/// For `b = 0` the result is 0; for `b >= 64` the result is `x`.
#[must_use]
pub fn msb(x: u64, b: u32) -> u64 {
    if b == 0 {
        0
    } else if b >= u64::BITS {
        x
    } else {
        x >> (u64::BITS - b)
    }
}

/// `set_bit(d, a, v)`: `d` with bit `a` (0 = least significant) set to
/// `v`.
///
/// # Panics
///
/// Panics when `a >= 64`.
#[must_use]
pub fn set_bit(d: u64, a: u32, v: bool) -> u64 {
    assert!(a < u64::BITS, "bit position {a} out of range");
    if v {
        d | (1u64 << a)
    } else {
        d & !(1u64 << a)
    }
}

/// Force the least-significant bit of a domain index while keeping the
/// result inside `[0, n)`.
///
/// This is the deviation from the paper's raw
/// `set_bit(msb(H, b(nA)), 0, bit)` documented in DESIGN.md: the
/// paper's expression can produce `t >= nA`. Here, when forcing the
/// LSB pushes the index to exactly `n` (possible only when `n` is odd
/// and `base = n - 1`), we step down by 2, which stays in range *and*
/// preserves the forced bit.
///
/// # Panics
///
/// Panics when `n < 2` or `base >= n`.
#[must_use]
pub fn force_lsb_in_domain(base: u64, bit: bool, n: u64) -> u64 {
    assert!(n >= 2, "domain must have at least 2 values");
    assert!(base < n, "base index {base} outside domain of {n}");
    let t = set_bit(base, 0, bit);
    let t = if t >= n { t - 2 } else { t };
    debug_assert!(t < n);
    debug_assert_eq!(t & 1 == 1, bit);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_length_matches_definition() {
        assert_eq!(bit_length(0), 1);
        assert_eq!(bit_length(1), 1);
        assert_eq!(bit_length(2), 2);
        assert_eq!(bit_length(255), 8);
        assert_eq!(bit_length(256), 9);
        assert_eq!(bit_length(u64::MAX), 64);
        // The paper's example: nA = 16000 yields only 14 bits.
        assert_eq!(bit_length(16_000 - 1), 14);
    }

    #[test]
    fn msb_extracts_top_bits() {
        let x = 0xABCD_0000_0000_0000u64;
        assert_eq!(msb(x, 4), 0xA);
        assert_eq!(msb(x, 8), 0xAB);
        assert_eq!(msb(x, 16), 0xABCD);
        assert_eq!(msb(x, 0), 0);
        assert_eq!(msb(x, 64), x);
        assert_eq!(msb(x, 100), x);
    }

    #[test]
    fn set_bit_sets_and_clears() {
        assert_eq!(set_bit(0b100, 0, true), 0b101);
        assert_eq!(set_bit(0b101, 0, false), 0b100);
        assert_eq!(set_bit(0, 63, true), 1u64 << 63);
        // Idempotent.
        assert_eq!(set_bit(set_bit(7, 1, false), 1, false), 0b101);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_bit_panics_past_64() {
        let _ = set_bit(0, 64, true);
    }

    #[test]
    fn force_lsb_exhaustive_small_domains() {
        // For every domain size 2..=17, base and bit: result in range
        // with the requested LSB.
        for n in 2u64..=17 {
            for base in 0..n {
                for bit in [false, true] {
                    let t = force_lsb_in_domain(base, bit, n);
                    assert!(t < n, "n={n} base={base} bit={bit} t={t}");
                    assert_eq!(t & 1 == 1, bit, "n={n} base={base} bit={bit} t={t}");
                }
            }
        }
    }

    #[test]
    fn force_lsb_keeps_base_when_already_correct() {
        assert_eq!(force_lsb_in_domain(6, false, 10), 6);
        assert_eq!(force_lsb_in_domain(7, true, 10), 7);
    }

    #[test]
    fn force_lsb_odd_domain_edge() {
        // n = 5, base = 4, bit = 1 → raw t = 5 (out of range) → 3.
        assert_eq!(force_lsb_in_domain(4, true, 5), 3);
    }
}
