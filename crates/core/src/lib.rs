//! `catmark-core` — watermarking categorical relational data.
//!
//! This crate implements the primary contribution of *Proving Ownership
//! over Categorical Data* (Radu Sion, ICDE 2004 / CERIAS TR 2003-19):
//! blind, resilient watermark embedding in the association between a
//! relation's primary key and its categorical attributes, plus every
//! extension the paper describes.
//!
//! # The scheme in one paragraph
//!
//! A keyed one-way hash of each tuple's primary key selects a sparse,
//! secret subset of "fit" tuples (`H(T(K), k1) mod e == 0`, Section
//! 3.2.1). The watermark `wm` is redundantly expanded by an
//! error-correcting code into `wm_data` (≈ N/e bits). For every fit
//! tuple, a second keyed hash picks which `wm_data` bit that tuple
//! carries, and the tuple's categorical value is replaced by a
//! pseudorandom domain value whose least-significant index bit equals
//! that watermark bit. Detection is *blind*: it re-derives the fit set
//! and positions from the keys alone, majority-votes the redundant
//! copies, and measures how improbable the match would be by chance.
//!
//! # Module map
//!
//! | Paper section | Module |
//! |---|---|
//! | the typed session API over everything below | [`session`] |
//! | §2.1 notation (`b(·)`, `msb`, `set_bit`) | [`bits`] |
//! | §3.2.1 fit-tuple selection | [`fitness`] |
//! | shared per-tuple fact layer (plans, caching) | [`plan`] |
//! | §3.2.1 error correction (majority voting) | [`ecc`] |
//! | §3.2.1 mark encoding | [`embed`] |
//! | §3.2.2 mark decoding | [`decode`] |
//! | out-of-core embed/decode over spilled segments | [`outofcore`] |
//! | incremental re-mark/re-detect over versioned segments | [`incremental`] |
//! | Fig. 1(b)/2(b) embedding-map alternative | [`map_variant`] |
//! | §3.3 multiple attribute embeddings | [`multiattr`] |
//! | §3.3 pair-closure construction | [`closure`] |
//! | §4.1 on-the-fly quality assessment | [`quality`] |
//! | reference \[5\]'s query preservation, made enforceable | [`query_preserve`] |
//! | §4.2 frequency-domain encoding | [`freq`] |
//! | §4.3 incremental updates | [`stream`] |
//! | §4.4 court-time detection odds | [`mod@detect`] |
//! | §4.5 bijective attribute re-mapping | [`remap`] |
//! | §4.6 data addition | [`addition`] |
//! | §6 additive attacks (future work, implemented) | [`contest`] |
//! | court-portable evidence bundles (`CMKEVD1`) | [`evidence`] |
//! | §6 constraint language (future work, implemented) | [`constraint_lang`] |
//! | §3.1 direct-domain augmentation (sketched, implemented) | [`wide`] |
//! | intro's buyer scenario: traitor tracing | [`fingerprint`] |
//!
//! The public entry point is [`session::MarkSession`]: it binds the
//! key material and the relation's columns once (typed
//! [`session::ColumnRef`] handles, validated at bind time), owns the
//! [`plan::PlanCache`], and exposes every operation above as a method.
//! The per-operator structs remain as the engine underneath it.
//!
//! # Quickstart
//!
//! ```
//! use catmark_core::{ErasurePolicy, MarkSession, Watermark, WatermarkSpec};
//! use catmark_datagen::{ItemScanConfig, SalesGenerator};
//!
//! // A sales relation: (visit_nbr PRIMARY KEY, item_nbr CATEGORICAL).
//! let gen = SalesGenerator::new(ItemScanConfig { tuples: 2000, ..Default::default() });
//! let mut rel = gen.generate();
//!
//! // Key material: two secret keys, the fitness modulus e, and the
//! // attribute's value domain. e = 10 over 2000 tuples puts ~5
//! // redundant copies behind each of the 40 wm_data positions.
//! let spec = WatermarkSpec::builder(gen.item_domain())
//!     .master_key("my-secret")
//!     .e(10)
//!     .wm_len(10)
//!     .wm_data_len(40)
//!     .erasure(ErasurePolicy::Abstain)
//!     .build()
//!     .unwrap();
//!
//! // Bind the columns once; the session owns the plan cache.
//! let session = MarkSession::builder(spec)
//!     .key_column("visit_nbr")
//!     .target_column("item_nbr")
//!     .bind(&rel)
//!     .unwrap();
//!
//! let wm = Watermark::from_u64(0b10_0111_0101, 10);
//! let report = session.embed(&mut rel, &wm).unwrap();
//! assert!(report.fit_tuples > 0);
//!
//! // Blind detection: only the session (keys + parameters) is needed,
//! // and the plan built for the embed is reused — no key is rehashed.
//! let decoded = session.decode(&rel).unwrap();
//! assert_eq!(decoded.watermark, wm);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addition;
pub mod bits;
pub mod closure;
pub mod constraint_lang;
pub mod contest;
pub mod decode;
pub mod detect;
pub mod ecc;
pub mod embed;
pub mod error;
pub mod evidence;
pub mod fingerprint;
pub mod fitness;
pub mod freq;
pub mod incremental;
pub mod keyfile;
pub mod map_variant;
pub mod multiattr;
pub mod outofcore;
pub mod plan;
pub mod power;
pub mod quality;
pub mod query_preserve;
pub mod remap;
pub mod session;
pub mod spec;
pub mod stream;
pub mod wide;

pub use decode::{DecodeReport, Decoder, ErasurePolicy};
pub use detect::{detect, Detection};
pub use embed::{EmbedReport, Embedder};
pub use error::CoreError;
pub use evidence::{verify_evidence, Certified, ClaimSummary, ContestSummary, EvidenceSummary};
pub use fitness::{FitFacts, FitnessSelector};
pub use incremental::{IncrementalDecodeReport, IncrementalEmbedReport, VoteCache};
pub use outofcore::PipelineStats;
pub use plan::{MarkPlan, MultiKeyPlan, MultiPlanCache, PlanCache, PlannedRow};
pub use session::{
    ColumnRef, FingerprintSession, MarkSession, MarkSessionBuilder, MultiAttrSession, Outcome,
    Verdict,
};
pub use spec::{Watermark, WatermarkSpec, WatermarkSpecBuilder};

/// Test-only stringly conveniences over the typed engines: the
/// production surface resolves columns once through `MarkSession`, but
/// in-crate tests read better with `(rel, "pk", "attr")` one-liners.
#[cfg(test)]
pub(crate) mod testkit {
    use catmark_relation::Relation;

    use crate::decode::{DecodeReport, Decoder};
    use crate::ecc::MajorityVotingEcc;
    use crate::embed::{EmbedReport, Embedder};
    use crate::error::CoreError;
    use crate::quality::QualityGuard;
    use crate::spec::{Watermark, WatermarkSpec};

    pub(crate) fn embed(
        spec: &WatermarkSpec,
        rel: &mut Relation,
        key_attr: &str,
        target_attr: &str,
        wm: &Watermark,
    ) -> Result<EmbedReport, CoreError> {
        let key_idx = rel.schema().index_of(key_attr)?;
        let attr_idx = rel.schema().index_of(target_attr)?;
        Embedder::engine(spec).embed_by_idx(rel, key_idx, attr_idx, wm, &MajorityVotingEcc, None)
    }

    pub(crate) fn embed_guarded(
        spec: &WatermarkSpec,
        rel: &mut Relation,
        key_attr: &str,
        target_attr: &str,
        wm: &Watermark,
        guard: &mut QualityGuard,
    ) -> Result<EmbedReport, CoreError> {
        let key_idx = rel.schema().index_of(key_attr)?;
        let attr_idx = rel.schema().index_of(target_attr)?;
        Embedder::engine(spec).embed_by_idx(
            rel,
            key_idx,
            attr_idx,
            wm,
            &MajorityVotingEcc,
            Some(guard),
        )
    }

    pub(crate) fn decode(
        spec: &WatermarkSpec,
        rel: &Relation,
        key_attr: &str,
        target_attr: &str,
    ) -> Result<DecodeReport, CoreError> {
        let key_idx = rel.schema().index_of(key_attr)?;
        let attr_idx = rel.schema().index_of(target_attr)?;
        Decoder::engine(spec).decode_by_idx(rel, key_idx, attr_idx, &MajorityVotingEcc)
    }
}
