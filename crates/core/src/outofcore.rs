//! Out-of-core watermarking: [`MarkSession`] drivers over a
//! [`SegmentedRelation`].
//!
//! A relation larger than RAM cannot take the monolithic
//! embed/decode path — it is never fully resident. These drivers run
//! the same passes **segment-at-a-time** under the segmented
//! relation's pager: each segment is paged in (within the configured
//! resident-byte budget), planned, embedded or vote-counted, and
//! paged back out, while only small aggregate state (the coverage
//! bitmap, the per-position vote tallies) crosses segment boundaries.
//!
//! # Why streaming is byte-identical
//!
//! Everything the scheme computes per tuple is a pure function of
//! that tuple's primary key under the spec's keys: fitness, `wm_data`
//! position, value base (see [`crate::plan`]). Embedding therefore
//! commutes with any partition of the rows — a segment's
//! [`MarkPlan`] is exactly the corresponding slice of the monolithic
//! plan — and decoding is a sum of commutative per-position vote
//! increments resolved once at the end. The golden byte-identity
//! suite and the segment-boundary proptests pin both facts.
//!
//! ```
//! use catmark_core::{MarkSession, Watermark, WatermarkSpec};
//! use catmark_datagen::{ItemScanConfig, SalesGenerator};
//! use catmark_relation::SegmentedRelation;
//!
//! let gen = SalesGenerator::new(ItemScanConfig { tuples: 2_000, ..Default::default() });
//! let rel = gen.generate();
//! let spec = WatermarkSpec::builder(gen.item_domain())
//!     .master_key("my-secret")
//!     .e(10)
//!     .wm_len(10)
//!     .expected_tuples(rel.len())
//!     .build()
//!     .unwrap();
//! let session = MarkSession::builder(spec)
//!     .key_column("visit_nbr")
//!     .target_column("item_nbr")
//!     .bind(&rel)
//!     .unwrap();
//!
//! // Split into segments under a resident budget of 1/4 of the data;
//! // cold segments spill to the (here in-memory) segment store.
//! let mut seg = SegmentedRelation::builder(rel.schema().clone())
//!     .segment_rows(256)
//!     .budget_bytes(rel.resident_bytes() / 4)
//!     .from_relation(&rel)
//!     .unwrap();
//!
//! let wm = Watermark::from_u64(0b10_0111_0101, 10);
//! let report = session.embed_segmented(&mut seg, &wm).unwrap();
//! assert!(report.fit_count() > 0);
//! let verdict = session.detect_segmented(&mut seg, &wm).unwrap();
//! assert!(verdict.is_significant(1e-2));
//! assert!(seg.peak_pageable_bytes() <= rel.resident_bytes() / 4);
//! # use catmark_core::session::Outcome;
//! ```

use catmark_relation::SegmentedRelation;

use crate::decode::{DecodeReport, Decoder, VoteAccumulator};
use crate::detect::detect;
use crate::ecc::{ErrorCorrectingCode, MajorityVotingEcc};
use crate::embed::{EmbedReport, Embedder};
use crate::error::CoreError;
use crate::plan::{MarkPlan, PlanCache};
use crate::quality::QualityGuard;
use crate::session::{MarkSession, Verdict};
use crate::spec::Watermark;

impl MarkSession {
    /// Verify the bound columns still line up with the segmented
    /// relation's schema.
    fn check_segmented(&self, seg: &SegmentedRelation) -> Result<(), CoreError> {
        self.key().still_bound(seg.schema())?;
        self.target().still_bound(seg.schema())
    }

    /// Whether per-segment plans should go through the session's
    /// [`PlanCache`]: embedding never touches the key column, so an
    /// embed → decode round trip can reuse every segment's plan —
    /// halving the keyed-hash work — as long as the cache can
    /// actually hold them. Past half the cache capacity the reset
    /// policy would churn instead of hit, so large segment counts
    /// build plans directly.
    fn segment_plans_cacheable(seg: &SegmentedRelation) -> bool {
        seg.segment_count() <= PlanCache::CAPACITY / 2
    }

    /// The plan for one resident segment, cached when sensible.
    fn segment_plan(
        &self,
        rel: &catmark_relation::Relation,
        key_idx: usize,
        cacheable: bool,
    ) -> Result<std::sync::Arc<MarkPlan>, CoreError> {
        if cacheable {
            self.cache().plan_for(self.spec(), rel, key_idx)
        } else {
            Ok(std::sync::Arc::new(MarkPlan::build(self.spec(), rel, key_idx)))
        }
    }

    /// [`MarkSession::embed`] over a [`SegmentedRelation`]: segments
    /// are paged in one at a time, planned, and rewritten in place
    /// under the relation's resident-byte budget. Byte-identical to
    /// embedding the materialized relation in memory.
    ///
    /// # Errors
    ///
    /// Binding drift, watermark length mismatch, or
    /// [`CoreError::Relation`] when paging/spilling fails.
    pub fn embed_segmented(
        &self,
        seg: &mut SegmentedRelation,
        wm: &Watermark,
    ) -> Result<EmbedReport, CoreError> {
        self.embed_segmented_inner(seg, wm, None)
    }

    /// [`MarkSession::embed_guarded`] over a [`SegmentedRelation`]:
    /// the guard's state persists across segments and proposals
    /// arrive in ascending global row order, so admit/veto decisions
    /// match a monolithic guarded pass.
    ///
    /// # Errors
    ///
    /// As [`MarkSession::embed_segmented`].
    pub fn embed_guarded_segmented(
        &self,
        seg: &mut SegmentedRelation,
        wm: &Watermark,
        guard: &mut QualityGuard,
    ) -> Result<EmbedReport, CoreError> {
        self.embed_segmented_inner(seg, wm, Some(guard))
    }

    fn embed_segmented_inner(
        &self,
        seg: &mut SegmentedRelation,
        wm: &Watermark,
        mut guard: Option<&mut QualityGuard>,
    ) -> Result<EmbedReport, CoreError> {
        self.check_segmented(seg)?;
        let spec = self.spec();
        if wm.len() != spec.wm_len {
            return Err(CoreError::InvalidSpec(format!(
                "watermark has {} bits but the spec declares {}",
                wm.len(),
                spec.wm_len
            )));
        }
        let wm_data = MajorityVotingEcc.encode(wm, spec.wm_data_len);
        let key_idx = self.key().index();
        let attr_idx = self.target().index();
        let engine = Embedder::engine(spec);
        let mut report = EmbedReport {
            total_tuples: seg.len(),
            fit_tuples: 0,
            altered: 0,
            unchanged: 0,
            vetoed: 0,
            positions_covered: 0,
            positions_total: spec.wm_data_len,
            touched_rows: Vec::new(),
        };
        let mut covered = vec![false; spec.wm_data_len];
        let mut base = 0usize;
        let cacheable = Self::segment_plans_cacheable(seg);
        for i in 0..seg.segment_count() {
            let rows = seg.segment_len(i);
            let g = guard.as_deref_mut();
            seg.with_segment_mut(i, |rel| -> Result<(), CoreError> {
                let plan = self.segment_plan(rel, key_idx, cacheable)?;
                report.fit_tuples += plan.fit().len();
                engine.embed_pass(
                    rel,
                    attr_idx,
                    &wm_data,
                    g,
                    &plan,
                    base,
                    &mut covered,
                    &mut report,
                )
            })
            .map_err(CoreError::Relation)??;
            base += rows;
        }
        report.positions_covered = covered.iter().filter(|&&c| c).count();
        Ok(report)
    }

    /// [`MarkSession::decode`] over a [`SegmentedRelation`]: one
    /// vote-accumulation pass per segment, one resolution at the end.
    /// Byte-identical to decoding the materialized relation.
    ///
    /// # Errors
    ///
    /// Binding drift, or [`CoreError::Relation`] when paging fails.
    pub fn decode_segmented(&self, seg: &mut SegmentedRelation) -> Result<DecodeReport, CoreError> {
        self.check_segmented(seg)?;
        let spec = self.spec();
        let key_idx = self.key().index();
        let attr_idx = self.target().index();
        let mut votes = VoteAccumulator::new(spec.wm_data_len);
        let cacheable = Self::segment_plans_cacheable(seg);
        for i in 0..seg.segment_count() {
            seg.with_segment(i, |rel| -> Result<(), CoreError> {
                // Embedding never rewrites the key column, so after an
                // embed_segmented these lookups hit the cache: the
                // round trip hashes each key once, as in-memory does.
                let plan = self.segment_plan(rel, key_idx, cacheable)?;
                votes.accumulate(spec, rel, attr_idx, &plan);
                Ok(())
            })
            .map_err(CoreError::Relation)??;
        }
        Decoder::engine(spec).resolve(&MajorityVotingEcc, votes)
    }

    /// [`MarkSession::detect`] over a [`SegmentedRelation`]: the
    /// streaming blind decode weighed against the claimed mark.
    ///
    /// # Errors
    ///
    /// As [`MarkSession::decode_segmented`].
    pub fn detect_segmented(
        &self,
        seg: &mut SegmentedRelation,
        claimed: &Watermark,
    ) -> Result<Verdict, CoreError> {
        let decode = self.decode_segmented(seg)?;
        let detection = detect(&decode.watermark, claimed);
        Ok(Verdict { decode, detection })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::AlterationBudget;
    use catmark_datagen::{ItemScanConfig, SalesGenerator};
    use catmark_relation::Relation;

    fn fixture(tuples: usize, e: u64) -> (Relation, MarkSession, Watermark) {
        let gen = SalesGenerator::new(ItemScanConfig { tuples, ..Default::default() });
        let rel = gen.generate();
        let spec = crate::WatermarkSpec::builder(gen.item_domain())
            .master_key("outofcore-tests")
            .e(e)
            .wm_len(10)
            .expected_tuples(tuples)
            .erasure(crate::decode::ErasurePolicy::Abstain)
            .build()
            .unwrap();
        let session = MarkSession::builder(spec)
            .key_column("visit_nbr")
            .target_column("item_nbr")
            .bind(&rel)
            .unwrap();
        (rel, session, Watermark::from_u64(0b1011001110, 10))
    }

    fn segmented(rel: &Relation, rows: usize, budget: usize) -> SegmentedRelation {
        SegmentedRelation::builder(rel.schema().clone())
            .segment_rows(rows)
            .budget_bytes(budget)
            .from_relation(rel)
            .unwrap()
    }

    #[test]
    fn segmented_round_trip_is_byte_identical_under_quarter_budget() {
        let (rel, session, wm) = fixture(4_000, 10);
        let mut mono = rel.clone();
        let mono_report = session.embed(&mut mono, &wm).unwrap();
        let mono_decode = session.decode(&mono).unwrap();

        let budget = rel.resident_bytes() / 4;
        let mut seg = segmented(&rel, 250, budget);
        let seg_report = session.embed_segmented(&mut seg, &wm).unwrap();
        assert_eq!(seg_report, mono_report, "embed reports diverge");
        let seg_decode = session.decode_segmented(&mut seg).unwrap();
        assert_eq!(seg_decode, mono_decode, "decode reports diverge");
        assert!(seg.peak_pageable_bytes() <= budget, "budget was not honored");

        let back = seg.to_relation().unwrap();
        assert!(mono.iter().zip(back.iter()).all(|(a, b)| a == b), "marked bytes diverge");

        let verdict = session.detect_segmented(&mut seg, &wm).unwrap();
        assert!(verdict.is_significant(1e-3));
    }

    #[test]
    fn guarded_segmented_matches_guarded_monolithic() {
        let (rel, session, wm) = fixture(3_000, 10);
        let mut mono = rel.clone();
        let mut mono_guard = QualityGuard::new(vec![Box::new(AlterationBudget::new(40))]);
        let mono_report = session.embed_guarded(&mut mono, &wm, &mut mono_guard).unwrap();

        let mut seg = segmented(&rel, 177, rel.resident_bytes() / 3);
        let mut seg_guard = QualityGuard::new(vec![Box::new(AlterationBudget::new(40))]);
        let seg_report = session.embed_guarded_segmented(&mut seg, &wm, &mut seg_guard).unwrap();
        assert_eq!(seg_report, mono_report);
        assert_eq!(mono_guard.log().len(), seg_guard.log().len());
        let back = seg.to_relation().unwrap();
        assert!(mono.iter().zip(back.iter()).all(|(a, b)| a == b));
    }

    #[test]
    fn binding_drift_errors_before_any_paging() {
        let (rel, session, wm) = fixture(200, 10);
        let other = catmark_relation::Schema::builder()
            .key_attr("different", catmark_relation::AttrType::Integer)
            .categorical_attr("cols", catmark_relation::AttrType::Integer)
            .build()
            .unwrap();
        let mut seg = SegmentedRelation::builder(other).build();
        assert!(matches!(
            session.embed_segmented(&mut seg, &wm),
            Err(CoreError::ColumnBinding { .. })
        ));
        assert!(matches!(session.decode_segmented(&mut seg), Err(CoreError::ColumnBinding { .. })));
        let _ = rel;
    }

    #[test]
    fn wrong_watermark_length_is_rejected() {
        let (rel, session, _) = fixture(200, 10);
        let mut seg = segmented(&rel, 64, usize::MAX);
        let short = Watermark::from_u64(1, 3);
        assert!(matches!(
            session.embed_segmented(&mut seg, &short),
            Err(CoreError::InvalidSpec(_))
        ));
    }

    #[test]
    fn empty_and_single_row_segments_round_trip() {
        let (rel, session, wm) = fixture(101, 5);
        let mut seg = SegmentedRelation::builder(rel.schema().clone())
            .segment_rows(1)
            .from_relation(&rel)
            .unwrap();
        seg.seal_tail().unwrap(); // explicit empty trailing segment
        let mut mono = rel.clone();
        let mono_report = session.embed(&mut mono, &wm).unwrap();
        let seg_report = session.embed_segmented(&mut seg, &wm).unwrap();
        assert_eq!(seg_report, mono_report);
        assert_eq!(session.decode_segmented(&mut seg).unwrap(), session.decode(&mono).unwrap());
    }
}
