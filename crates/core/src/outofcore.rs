//! Out-of-core watermarking: [`MarkSession`] drivers over a
//! [`SegmentedRelation`].
//!
//! A relation larger than RAM cannot take the monolithic
//! embed/decode path — it is never fully resident. These drivers run
//! the same passes **segment-at-a-time** under the segmented
//! relation's pager: each segment is paged in (within the configured
//! resident-byte budget), planned, embedded or vote-counted, and
//! paged back out, while only small aggregate state (the coverage
//! bitmap, the per-position vote tallies) crosses segment boundaries.
//!
//! # Why streaming is byte-identical
//!
//! Everything the scheme computes per tuple is a pure function of
//! that tuple's primary key under the spec's keys: fitness, `wm_data`
//! position, value base (see [`crate::plan`]). Embedding therefore
//! commutes with any partition of the rows — a segment's
//! [`MarkPlan`] is exactly the corresponding slice of the monolithic
//! plan — and decoding is a sum of commutative per-position vote
//! increments resolved once at the end. The golden byte-identity
//! suite and the segment-boundary proptests pin both facts.
//!
//! # The two-stage pipeline
//!
//! Sequentially, each segment pays `plan` (keyed hashing, CPU-bound)
//! then `embed`/`accumulate` plus paging (store I/O) back to back.
//! Planning only reads the key column, which no pass ever rewrites,
//! so segment `i + 1`'s plan is computable the moment its bytes are
//! readable — it does not depend on segment `i`'s outcome. The
//! pipelined drivers exploit exactly that: a single prefetch worker
//! hashes and plans segment `i + 1` from an **off-pager clone** while
//! the main thread embeds or vote-counts segment `i`. All mutation,
//! guard state, reporting, and vote accumulation stay on the main
//! thread in segment order, so every byte and report matches the
//! sequential driver exactly.
//!
//! Memory stays bounded: the pager's budget is still enforced as a
//! hard ceiling on resident segments (`peak_pageable_bytes() <=
//! max(budget, peak_segment_bytes())`, unchanged), and the pipeline
//! adds **at most one in-flight segment clone** on top — the clone
//! channel is a rendezvous, so a new clone is only handed over once
//! the worker has dropped the previous one. Total footprint is
//! therefore `pager budget + one segment clone`, and
//! [`PipelineStats::peak_inflight_bytes`] reports the clone's
//! high-water mark so callers can assert it.
//!
//! The `CATMARK_PIPELINE` environment variable overrides dispatch for
//! the plain `embed_segmented`/`decode_segmented` entry points:
//! `seq`/`off` forces the sequential reference drivers, `on` forces
//! the pipeline, and `auto` (the default) pipelines only when the
//! host has more than one CPU and there is more than one segment.
//! Both paths are byte-identical; the override is purely about
//! resource shape.
//!
//! ```
//! use catmark_core::{MarkSession, Watermark, WatermarkSpec};
//! use catmark_datagen::{ItemScanConfig, SalesGenerator};
//! use catmark_relation::SegmentedRelation;
//!
//! let gen = SalesGenerator::new(ItemScanConfig { tuples: 2_000, ..Default::default() });
//! let rel = gen.generate();
//! let spec = WatermarkSpec::builder(gen.item_domain())
//!     .master_key("my-secret")
//!     .e(10)
//!     .wm_len(10)
//!     .expected_tuples(rel.len())
//!     .build()
//!     .unwrap();
//! let session = MarkSession::builder(spec)
//!     .key_column("visit_nbr")
//!     .target_column("item_nbr")
//!     .bind(&rel)
//!     .unwrap();
//!
//! // Split into segments under a resident budget of 1/4 of the data;
//! // cold segments spill to the (here in-memory) segment store.
//! let mut seg = SegmentedRelation::builder(rel.schema().clone())
//!     .segment_rows(256)
//!     .budget_bytes(rel.resident_bytes() / 4)
//!     .from_relation(&rel)
//!     .unwrap();
//!
//! let wm = Watermark::from_u64(0b10_0111_0101, 10);
//! let report = session.embed_segmented(&mut seg, &wm).unwrap();
//! assert!(report.fit_count() > 0);
//! let verdict = session.detect_segmented(&mut seg, &wm).unwrap();
//! assert!(verdict.is_significant(1e-2));
//! assert!(seg.peak_pageable_bytes() <= rel.resident_bytes() / 4);
//! # use catmark_core::session::Outcome;
//! ```

use std::sync::mpsc;
use std::sync::Arc;

use catmark_relation::{Relation, SegmentedRelation};

use crate::decode::{DecodeReport, Decoder, VoteAccumulator};
use crate::detect::detect;
use crate::ecc::{ErrorCorrectingCode, MajorityVotingEcc};
use crate::embed::{EmbedReport, Embedder};
use crate::error::CoreError;
use crate::plan::{MarkPlan, PlanCache};
use crate::quality::QualityGuard;
use crate::session::{MarkSession, Verdict};
use crate::spec::Watermark;

/// Resource counters from one pipelined out-of-core pass.
///
/// The pipeline's memory contract is `pager budget + one in-flight
/// segment clone`; [`PipelineStats::peak_inflight_bytes`] is the
/// observed size of that one clone (its high-water mark across the
/// pass), never a sum over several — the rendezvous hand-off keeps at
/// most one clone alive at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineStats {
    /// Segments the pass covered.
    pub segments: usize,
    /// Segments whose plan was built ahead by the prefetch worker
    /// (every segment but the first, unless the worker died).
    pub prefetched: usize,
    /// Largest off-pager segment clone handed to the worker, in
    /// bytes. Zero when nothing was prefetched.
    pub peak_inflight_bytes: usize,
}

/// How the plain segmented entry points choose between the
/// sequential reference drivers and the pipelined ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PipelineMode {
    /// Pipeline when the host has >1 CPU and there are >1 segments.
    Auto,
    /// Always the sequential reference driver.
    Sequential,
    /// Always the two-stage pipeline.
    Pipelined,
}

/// Read `CATMARK_PIPELINE`. Unknown values fall back to auto with a
/// note on stderr rather than failing a long embed run over an
/// environment typo.
fn pipeline_mode() -> PipelineMode {
    match std::env::var("CATMARK_PIPELINE") {
        Ok(raw) => match raw.trim().to_ascii_lowercase().as_str() {
            "seq" | "sequential" | "off" | "0" => PipelineMode::Sequential,
            "on" | "pipeline" | "pipelined" | "1" => PipelineMode::Pipelined,
            "" | "auto" => PipelineMode::Auto,
            other => {
                eprintln!("catmark: unknown CATMARK_PIPELINE value {other:?}; using auto");
                PipelineMode::Auto
            }
        },
        Err(_) => PipelineMode::Auto,
    }
}

impl MarkSession {
    /// Verify the bound columns still line up with the segmented
    /// relation's schema.
    pub(crate) fn check_segmented(&self, seg: &SegmentedRelation) -> Result<(), CoreError> {
        self.key().still_bound(seg.schema())?;
        self.target().still_bound(seg.schema())
    }

    /// Shared embed preamble: binding and length validation, then the
    /// ECC-expanded `wm_data` both embed drivers consume.
    pub(crate) fn checked_wm_data(
        &self,
        seg: &SegmentedRelation,
        wm: &Watermark,
    ) -> Result<Vec<bool>, CoreError> {
        self.check_segmented(seg)?;
        let spec = self.spec();
        if wm.len() != spec.wm_len {
            return Err(CoreError::InvalidSpec(format!(
                "watermark has {} bits but the spec declares {}",
                wm.len(),
                spec.wm_len
            )));
        }
        Ok(MajorityVotingEcc.encode(wm, spec.wm_data_len))
    }

    /// Whether per-segment plans should go through the session's
    /// [`PlanCache`]: embedding never touches the key column, so an
    /// embed → decode round trip can reuse every segment's plan —
    /// halving the keyed-hash work — as long as the cache can
    /// actually hold them. Past half the cache capacity the reset
    /// policy would churn instead of hit, so large segment counts
    /// build plans directly.
    pub(crate) fn segment_plans_cacheable(seg: &SegmentedRelation) -> bool {
        seg.segment_count() <= PlanCache::CAPACITY / 2
    }

    /// The plan for one resident segment, cached when sensible.
    pub(crate) fn segment_plan(
        &self,
        rel: &Relation,
        key_idx: usize,
        cacheable: bool,
    ) -> Result<Arc<MarkPlan>, CoreError> {
        if cacheable {
            self.cache().plan_for(self.spec(), rel, key_idx)
        } else {
            Ok(Arc::new(MarkPlan::build(self.spec(), rel, key_idx)))
        }
    }

    /// Whether the plain entry points should pipeline this relation.
    fn pipeline_enabled(seg: &SegmentedRelation) -> bool {
        match pipeline_mode() {
            PipelineMode::Sequential => false,
            PipelineMode::Pipelined => true,
            PipelineMode::Auto => {
                seg.segment_count() > 1
                    && std::thread::available_parallelism().map_or(1, std::num::NonZero::get) > 1
            }
        }
    }

    /// The two-stage pipeline skeleton both pipelined drivers share:
    /// a prefetch worker plans segment `i + 1` from an off-pager
    /// clone while the main thread runs `step` (embed or vote
    /// accumulation) over segment `i` with segment `i`'s plan and
    /// first global row index.
    ///
    /// Correctness leans on two invariants. First, a plan reads only
    /// the key column, which no pass rewrites, so the clone taken
    /// *before* segment `i` is mutated still plans segment `i + 1`
    /// exactly. Second, plan-cache keys are content fingerprints, so
    /// the worker populates the same entries the sequential driver
    /// would. The clone channel is a rendezvous (capacity 0): the
    /// hand-off of clone `i + 1` only completes after the worker has
    /// finished (and dropped) clone `i`, bounding off-pager memory to
    /// one segment.
    fn run_pipelined(
        &self,
        seg: &mut SegmentedRelation,
        mut step: impl FnMut(&mut SegmentedRelation, usize, usize, &MarkPlan) -> Result<(), CoreError>,
    ) -> Result<PipelineStats, CoreError> {
        let key_idx = self.key().index();
        let cacheable = Self::segment_plans_cacheable(seg);
        let n = seg.segment_count();
        let mut stats = PipelineStats { segments: n, ..PipelineStats::default() };
        if n <= 1 {
            // Nothing to overlap; skip the worker entirely.
            for i in 0..n {
                let plan = seg
                    .with_segment(i, |rel| self.segment_plan(rel, key_idx, cacheable))
                    .map_err(CoreError::Relation)??;
                step(seg, i, 0, &plan)?;
            }
            return Ok(stats);
        }
        std::thread::scope(|scope| -> Result<(), CoreError> {
            let (clone_tx, clone_rx) = mpsc::sync_channel::<Relation>(0);
            let (plan_tx, plan_rx) = mpsc::sync_channel::<Result<Arc<MarkPlan>, CoreError>>(1);
            scope.spawn(move || {
                while let Ok(rel) = clone_rx.recv() {
                    let plan = self.segment_plan(&rel, key_idx, cacheable);
                    // Release the clone before signalling readiness for
                    // the next one — this is what keeps the in-flight
                    // bound at a single segment.
                    drop(rel);
                    if plan_tx.send(plan).is_err() {
                        break; // the driver hung up (error path)
                    }
                }
            });
            let mut base = 0usize;
            for i in 0..n {
                if i + 1 < n {
                    let clone =
                        seg.with_segment(i + 1, Relation::clone).map_err(CoreError::Relation)?;
                    stats.peak_inflight_bytes =
                        stats.peak_inflight_bytes.max(clone.resident_bytes());
                    if clone_tx.send(clone).is_ok() {
                        stats.prefetched += 1;
                    }
                }
                let rows = seg.segment_len(i);
                let plan = if i == 0 {
                    // No plan is in flight yet; the first segment is
                    // planned inline while the worker starts on the
                    // second.
                    seg.with_segment(0, |rel| self.segment_plan(rel, key_idx, cacheable))
                        .map_err(CoreError::Relation)??
                } else {
                    // The worker only stops after this side hangs up,
                    // so a closed channel here means it panicked;
                    // propagate (the scope re-raises its panic too).
                    plan_rx.recv().expect("plan prefetch worker disconnected")?
                };
                step(seg, i, base, &plan)?;
                base += rows;
            }
            drop(clone_tx); // stop the worker; the scope joins it
            Ok(())
        })?;
        Ok(stats)
    }

    /// [`MarkSession::embed`] over a [`SegmentedRelation`]: segments
    /// are paged in one at a time, planned, and rewritten in place
    /// under the relation's resident-byte budget. Byte-identical to
    /// embedding the materialized relation in memory.
    ///
    /// Dispatches between [`MarkSession::embed_segmented_sequential`]
    /// and [`MarkSession::embed_segmented_pipelined`] per the
    /// `CATMARK_PIPELINE` policy (see the module docs); both produce
    /// identical bytes and reports.
    ///
    /// # Errors
    ///
    /// Binding drift, watermark length mismatch, or
    /// [`CoreError::Relation`] when paging/spilling fails.
    pub fn embed_segmented(
        &self,
        seg: &mut SegmentedRelation,
        wm: &Watermark,
    ) -> Result<EmbedReport, CoreError> {
        if Self::pipeline_enabled(seg) {
            self.embed_pipelined_inner(seg, wm, None).map(|(report, _)| report)
        } else {
            self.embed_sequential_inner(seg, wm, None)
        }
    }

    /// [`MarkSession::embed_guarded`] over a [`SegmentedRelation`]:
    /// the guard's state persists across segments and proposals
    /// arrive in ascending global row order, so admit/veto decisions
    /// match a monolithic guarded pass. Dispatches like
    /// [`MarkSession::embed_segmented`]; the guard always runs on the
    /// driving thread in segment order, pipelined or not.
    ///
    /// # Errors
    ///
    /// As [`MarkSession::embed_segmented`].
    pub fn embed_guarded_segmented(
        &self,
        seg: &mut SegmentedRelation,
        wm: &Watermark,
        guard: &mut QualityGuard,
    ) -> Result<EmbedReport, CoreError> {
        if Self::pipeline_enabled(seg) {
            self.embed_pipelined_inner(seg, wm, Some(guard)).map(|(report, _)| report)
        } else {
            self.embed_sequential_inner(seg, wm, Some(guard))
        }
    }

    /// The sequential reference embed driver: plan and embed each
    /// segment back to back on one thread. Kept public (alongside the
    /// pipelined form) as the golden reference the pipeline is pinned
    /// against.
    ///
    /// # Errors
    ///
    /// As [`MarkSession::embed_segmented`].
    pub fn embed_segmented_sequential(
        &self,
        seg: &mut SegmentedRelation,
        wm: &Watermark,
    ) -> Result<EmbedReport, CoreError> {
        self.embed_sequential_inner(seg, wm, None)
    }

    /// Sequential reference form of
    /// [`MarkSession::embed_guarded_segmented`].
    ///
    /// # Errors
    ///
    /// As [`MarkSession::embed_segmented`].
    pub fn embed_guarded_segmented_sequential(
        &self,
        seg: &mut SegmentedRelation,
        wm: &Watermark,
        guard: &mut QualityGuard,
    ) -> Result<EmbedReport, CoreError> {
        self.embed_sequential_inner(seg, wm, Some(guard))
    }

    /// The pipelined embed driver: plans prefetched one segment
    /// ahead, mutation sequential on this thread. Byte-identical to
    /// the sequential form.
    ///
    /// # Errors
    ///
    /// As [`MarkSession::embed_segmented`].
    pub fn embed_segmented_pipelined(
        &self,
        seg: &mut SegmentedRelation,
        wm: &Watermark,
    ) -> Result<EmbedReport, CoreError> {
        self.embed_pipelined_inner(seg, wm, None).map(|(report, _)| report)
    }

    /// [`MarkSession::embed_segmented_pipelined`] plus the pipeline's
    /// resource counters, for callers asserting the memory contract.
    ///
    /// # Errors
    ///
    /// As [`MarkSession::embed_segmented`].
    pub fn embed_segmented_pipelined_with_stats(
        &self,
        seg: &mut SegmentedRelation,
        wm: &Watermark,
    ) -> Result<(EmbedReport, PipelineStats), CoreError> {
        self.embed_pipelined_inner(seg, wm, None)
    }

    /// Guarded pipelined embed with resource counters.
    ///
    /// # Errors
    ///
    /// As [`MarkSession::embed_segmented`].
    pub fn embed_guarded_segmented_pipelined_with_stats(
        &self,
        seg: &mut SegmentedRelation,
        wm: &Watermark,
        guard: &mut QualityGuard,
    ) -> Result<(EmbedReport, PipelineStats), CoreError> {
        self.embed_pipelined_inner(seg, wm, Some(guard))
    }

    fn embed_sequential_inner(
        &self,
        seg: &mut SegmentedRelation,
        wm: &Watermark,
        mut guard: Option<&mut QualityGuard>,
    ) -> Result<EmbedReport, CoreError> {
        let wm_data = self.checked_wm_data(seg, wm)?;
        let spec = self.spec();
        let key_idx = self.key().index();
        let attr_idx = self.target().index();
        let engine = Embedder::engine(spec);
        let mut report = EmbedReport {
            total_tuples: seg.len(),
            fit_tuples: 0,
            altered: 0,
            unchanged: 0,
            vetoed: 0,
            positions_covered: 0,
            positions_total: spec.wm_data_len,
            touched_rows: Vec::new(),
        };
        let mut covered = vec![false; spec.wm_data_len];
        let mut base = 0usize;
        let cacheable = Self::segment_plans_cacheable(seg);
        for i in 0..seg.segment_count() {
            let rows = seg.segment_len(i);
            let g = guard.as_deref_mut();
            seg.with_segment_mut(i, |rel| -> Result<(), CoreError> {
                let plan = self.segment_plan(rel, key_idx, cacheable)?;
                report.fit_tuples += plan.fit().len();
                engine.embed_pass(
                    rel,
                    attr_idx,
                    &wm_data,
                    g,
                    &plan,
                    base,
                    &mut covered,
                    &mut report,
                )
            })
            .map_err(CoreError::Relation)??;
            base += rows;
        }
        report.positions_covered = covered.iter().filter(|&&c| c).count();
        Ok(report)
    }

    fn embed_pipelined_inner(
        &self,
        seg: &mut SegmentedRelation,
        wm: &Watermark,
        mut guard: Option<&mut QualityGuard>,
    ) -> Result<(EmbedReport, PipelineStats), CoreError> {
        let wm_data = self.checked_wm_data(seg, wm)?;
        let spec = self.spec();
        let attr_idx = self.target().index();
        let engine = Embedder::engine(spec);
        let mut report = EmbedReport {
            total_tuples: seg.len(),
            fit_tuples: 0,
            altered: 0,
            unchanged: 0,
            vetoed: 0,
            positions_covered: 0,
            positions_total: spec.wm_data_len,
            touched_rows: Vec::new(),
        };
        let mut covered = vec![false; spec.wm_data_len];
        let stats = self.run_pipelined(seg, |seg, i, base, plan| {
            report.fit_tuples += plan.fit().len();
            let g = guard.as_deref_mut();
            seg.with_segment_mut(i, |rel| {
                engine.embed_pass(rel, attr_idx, &wm_data, g, plan, base, &mut covered, &mut report)
            })
            .map_err(CoreError::Relation)?
        })?;
        report.positions_covered = covered.iter().filter(|&&c| c).count();
        Ok((report, stats))
    }

    /// [`MarkSession::decode`] over a [`SegmentedRelation`]: one
    /// vote-accumulation pass per segment, one resolution at the end.
    /// Byte-identical to decoding the materialized relation.
    /// Dispatches like [`MarkSession::embed_segmented`].
    ///
    /// # Errors
    ///
    /// Binding drift, or [`CoreError::Relation`] when paging fails.
    pub fn decode_segmented(&self, seg: &mut SegmentedRelation) -> Result<DecodeReport, CoreError> {
        if Self::pipeline_enabled(seg) {
            self.decode_pipelined_inner(seg).map(|(report, _)| report)
        } else {
            self.decode_segmented_sequential(seg)
        }
    }

    /// The sequential reference decode driver.
    ///
    /// # Errors
    ///
    /// As [`MarkSession::decode_segmented`].
    pub fn decode_segmented_sequential(
        &self,
        seg: &mut SegmentedRelation,
    ) -> Result<DecodeReport, CoreError> {
        self.check_segmented(seg)?;
        let spec = self.spec();
        let key_idx = self.key().index();
        let attr_idx = self.target().index();
        let mut votes = VoteAccumulator::new(spec.wm_data_len);
        let cacheable = Self::segment_plans_cacheable(seg);
        for i in 0..seg.segment_count() {
            seg.with_segment(i, |rel| -> Result<(), CoreError> {
                // Embedding never rewrites the key column, so after an
                // embed_segmented these lookups hit the cache: the
                // round trip hashes each key once, as in-memory does.
                let plan = self.segment_plan(rel, key_idx, cacheable)?;
                votes.accumulate(spec, rel, attr_idx, &plan);
                Ok(())
            })
            .map_err(CoreError::Relation)??;
        }
        Decoder::engine(spec).resolve(&MajorityVotingEcc, votes)
    }

    /// The pipelined decode driver: plans prefetched one segment
    /// ahead, vote accumulation sequential on this thread.
    ///
    /// # Errors
    ///
    /// As [`MarkSession::decode_segmented`].
    pub fn decode_segmented_pipelined(
        &self,
        seg: &mut SegmentedRelation,
    ) -> Result<DecodeReport, CoreError> {
        self.decode_pipelined_inner(seg).map(|(report, _)| report)
    }

    /// [`MarkSession::decode_segmented_pipelined`] plus the
    /// pipeline's resource counters.
    ///
    /// # Errors
    ///
    /// As [`MarkSession::decode_segmented`].
    pub fn decode_segmented_pipelined_with_stats(
        &self,
        seg: &mut SegmentedRelation,
    ) -> Result<(DecodeReport, PipelineStats), CoreError> {
        self.decode_pipelined_inner(seg)
    }

    fn decode_pipelined_inner(
        &self,
        seg: &mut SegmentedRelation,
    ) -> Result<(DecodeReport, PipelineStats), CoreError> {
        self.check_segmented(seg)?;
        let spec = self.spec();
        let attr_idx = self.target().index();
        let mut votes = VoteAccumulator::new(spec.wm_data_len);
        let stats = self.run_pipelined(seg, |seg, i, _base, plan| {
            seg.with_segment(i, |rel| votes.accumulate(spec, rel, attr_idx, plan))
                .map_err(CoreError::Relation)
        })?;
        let report = Decoder::engine(spec).resolve(&MajorityVotingEcc, votes)?;
        Ok((report, stats))
    }

    /// [`MarkSession::detect`] over a [`SegmentedRelation`]: the
    /// streaming blind decode weighed against the claimed mark.
    ///
    /// # Errors
    ///
    /// As [`MarkSession::decode_segmented`].
    pub fn detect_segmented(
        &self,
        seg: &mut SegmentedRelation,
        claimed: &Watermark,
    ) -> Result<Verdict, CoreError> {
        let decode = self.decode_segmented(seg)?;
        let detection = detect(&decode.watermark, claimed);
        Ok(Verdict { decode, detection })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::AlterationBudget;
    use catmark_datagen::{ItemScanConfig, SalesGenerator};
    use catmark_relation::Relation;

    fn fixture(tuples: usize, e: u64) -> (Relation, MarkSession, Watermark) {
        let gen = SalesGenerator::new(ItemScanConfig { tuples, ..Default::default() });
        let rel = gen.generate();
        let spec = crate::WatermarkSpec::builder(gen.item_domain())
            .master_key("outofcore-tests")
            .e(e)
            .wm_len(10)
            .expected_tuples(tuples)
            .erasure(crate::decode::ErasurePolicy::Abstain)
            .build()
            .unwrap();
        let session = MarkSession::builder(spec)
            .key_column("visit_nbr")
            .target_column("item_nbr")
            .bind(&rel)
            .unwrap();
        (rel, session, Watermark::from_u64(0b1011001110, 10))
    }

    fn segmented(rel: &Relation, rows: usize, budget: usize) -> SegmentedRelation {
        SegmentedRelation::builder(rel.schema().clone())
            .segment_rows(rows)
            .budget_bytes(budget)
            .from_relation(rel)
            .unwrap()
    }

    #[test]
    fn segmented_round_trip_is_byte_identical_under_quarter_budget() {
        let (rel, session, wm) = fixture(4_000, 10);
        let mut mono = rel.clone();
        let mono_report = session.embed(&mut mono, &wm).unwrap();
        let mono_decode = session.decode(&mono).unwrap();

        let budget = rel.resident_bytes() / 4;
        let mut seg = segmented(&rel, 250, budget);
        let seg_report = session.embed_segmented_sequential(&mut seg, &wm).unwrap();
        assert_eq!(seg_report, mono_report, "embed reports diverge");
        let seg_decode = session.decode_segmented_sequential(&mut seg).unwrap();
        assert_eq!(seg_decode, mono_decode, "decode reports diverge");
        assert!(seg.peak_pageable_bytes() <= budget, "budget was not honored");

        let back = seg.to_relation().unwrap();
        assert!(mono.iter().zip(back.iter()).all(|(a, b)| a == b), "marked bytes diverge");

        let verdict = session.detect_segmented(&mut seg, &wm).unwrap();
        assert!(verdict.is_significant(1e-3));
    }

    #[test]
    fn pipelined_round_trip_matches_sequential_and_bounds_memory() {
        let (rel, session, wm) = fixture(4_000, 10);
        let budget = rel.resident_bytes() / 4;

        let mut seq = segmented(&rel, 250, budget);
        let seq_report = session.embed_segmented_sequential(&mut seq, &wm).unwrap();
        let seq_decode = session.decode_segmented_sequential(&mut seq).unwrap();
        let seq_bytes = seq.to_relation().unwrap();

        let mut piped = segmented(&rel, 250, budget);
        let (pipe_report, embed_stats) =
            session.embed_segmented_pipelined_with_stats(&mut piped, &wm).unwrap();
        assert_eq!(pipe_report, seq_report, "pipelined embed report diverges");
        let (pipe_decode, decode_stats) =
            session.decode_segmented_pipelined_with_stats(&mut piped).unwrap();
        assert_eq!(pipe_decode, seq_decode, "pipelined decode report diverges");
        let pipe_bytes = piped.to_relation().unwrap();
        assert!(
            seq_bytes.iter().zip(pipe_bytes.iter()).all(|(a, b)| a == b),
            "pipelined bytes diverge"
        );

        // The pager ceiling is unchanged by pipelining...
        assert!(
            piped.peak_pageable_bytes() <= budget.max(piped.peak_segment_bytes()),
            "pipelined pager ceiling violated"
        );
        // ...and the pipeline adds at most one in-flight segment clone
        // on top of it.
        for stats in [embed_stats, decode_stats] {
            assert_eq!(stats.segments, piped.segment_count());
            assert_eq!(stats.prefetched, piped.segment_count() - 1);
            assert!(
                stats.peak_inflight_bytes <= piped.peak_segment_bytes(),
                "in-flight clone {} exceeds the largest segment {}",
                stats.peak_inflight_bytes,
                piped.peak_segment_bytes()
            );
        }
    }

    #[test]
    fn guarded_segmented_matches_guarded_monolithic() {
        let (rel, session, wm) = fixture(3_000, 10);
        let mut mono = rel.clone();
        let mut mono_guard = QualityGuard::new(vec![Box::new(AlterationBudget::new(40))]);
        let mono_report = session.embed_guarded(&mut mono, &wm, &mut mono_guard).unwrap();

        let mut seg = segmented(&rel, 177, rel.resident_bytes() / 3);
        let mut seg_guard = QualityGuard::new(vec![Box::new(AlterationBudget::new(40))]);
        let seg_report =
            session.embed_guarded_segmented_sequential(&mut seg, &wm, &mut seg_guard).unwrap();
        assert_eq!(seg_report, mono_report);
        assert_eq!(mono_guard.log().len(), seg_guard.log().len());
        let back = seg.to_relation().unwrap();
        assert!(mono.iter().zip(back.iter()).all(|(a, b)| a == b));

        // Guard decisions are order-sensitive; the pipelined driver
        // must reproduce them exactly (the guard runs on the driving
        // thread either way).
        let mut piped = segmented(&rel, 177, rel.resident_bytes() / 3);
        let mut pipe_guard = QualityGuard::new(vec![Box::new(AlterationBudget::new(40))]);
        let (pipe_report, _) = session
            .embed_guarded_segmented_pipelined_with_stats(&mut piped, &wm, &mut pipe_guard)
            .unwrap();
        assert_eq!(pipe_report, mono_report);
        assert_eq!(pipe_guard.log().len(), mono_guard.log().len());
        let piped_back = piped.to_relation().unwrap();
        assert!(mono.iter().zip(piped_back.iter()).all(|(a, b)| a == b));
    }

    #[test]
    fn pipeline_env_override_is_consulted() {
        // Every mode is byte-identical, so this pins that each
        // override value dispatches and completes with the same
        // report — the env var changes resource shape, never results.
        let (rel, session, wm) = fixture(600, 8);
        let mut reference = segmented(&rel, 97, rel.resident_bytes() / 3);
        let expect = session.embed_segmented_sequential(&mut reference, &wm).unwrap();
        for mode in ["seq", "on", "auto", " On ", "not-a-mode"] {
            std::env::set_var("CATMARK_PIPELINE", mode);
            let mut seg = segmented(&rel, 97, rel.resident_bytes() / 3);
            let report = session.embed_segmented(&mut seg, &wm).unwrap();
            assert_eq!(report, expect, "CATMARK_PIPELINE={mode}");
        }
        std::env::remove_var("CATMARK_PIPELINE");
    }

    #[test]
    fn binding_drift_errors_before_any_paging() {
        let (rel, session, wm) = fixture(200, 10);
        let other = catmark_relation::Schema::builder()
            .key_attr("different", catmark_relation::AttrType::Integer)
            .categorical_attr("cols", catmark_relation::AttrType::Integer)
            .build()
            .unwrap();
        let mut seg = SegmentedRelation::builder(other).build();
        assert!(matches!(
            session.embed_segmented(&mut seg, &wm),
            Err(CoreError::ColumnBinding { .. })
        ));
        assert!(matches!(session.decode_segmented(&mut seg), Err(CoreError::ColumnBinding { .. })));
        assert!(matches!(
            session.embed_segmented_pipelined(&mut seg, &wm),
            Err(CoreError::ColumnBinding { .. })
        ));
        assert!(matches!(
            session.decode_segmented_pipelined(&mut seg),
            Err(CoreError::ColumnBinding { .. })
        ));
        let _ = rel;
    }

    #[test]
    fn wrong_watermark_length_is_rejected() {
        let (rel, session, _) = fixture(200, 10);
        let mut seg = segmented(&rel, 64, usize::MAX);
        let short = Watermark::from_u64(1, 3);
        assert!(matches!(
            session.embed_segmented(&mut seg, &short),
            Err(CoreError::InvalidSpec(_))
        ));
        assert!(matches!(
            session.embed_segmented_pipelined(&mut seg, &short),
            Err(CoreError::InvalidSpec(_))
        ));
    }

    #[test]
    fn empty_and_single_row_segments_round_trip() {
        let (rel, session, wm) = fixture(101, 5);
        let mut seg = SegmentedRelation::builder(rel.schema().clone())
            .segment_rows(1)
            .from_relation(&rel)
            .unwrap();
        seg.seal_tail().unwrap(); // explicit empty trailing segment
        let mut mono = rel.clone();
        let mono_report = session.embed(&mut mono, &wm).unwrap();
        let seg_report = session.embed_segmented(&mut seg, &wm).unwrap();
        assert_eq!(seg_report, mono_report);
        assert_eq!(session.decode_segmented(&mut seg).unwrap(), session.decode(&mono).unwrap());

        // Same shape through the pipeline: a 1-row-per-segment split
        // maximizes hand-offs, and the trailing empty segment is a
        // prefetch of an empty clone.
        let mut piped = SegmentedRelation::builder(rel.schema().clone())
            .segment_rows(1)
            .from_relation(&rel)
            .unwrap();
        piped.seal_tail().unwrap();
        let (pipe_report, stats) =
            session.embed_segmented_pipelined_with_stats(&mut piped, &wm).unwrap();
        assert_eq!(pipe_report, mono_report);
        assert_eq!(stats.prefetched, piped.segment_count() - 1);
    }
}
