//! Pair-closure construction over the schema (Section 3.3).
//!
//! The paper proposes "watermarking each and every attribute pair by
//! first building a closure for the set of attribute pairs over the
//! entire schema that minimizes the number of encoding interferences
//! while maximizing the number of pairs watermarked", and leaves open
//! "if a pair-closure can be constructed over the schema such that no
//! categorical attributes are going to be used as primary key
//! place-holders".
//!
//! This module is that construction, phrased as a graph-orientation
//! problem. Attributes are vertices; every unordered attribute pair is
//! an edge that must be *oriented* — the head is the pass's **target**
//! (the attribute altered), the tail its **pseudo-key** (the attribute
//! hashed for fitness and bit selection). Two passes interfere exactly
//! when they target the same attribute, so the number of interferences
//! is driven by target **load** (in-degree):
//!
//! 1. `(K, A_i)` edges are forced: the primary key is never altered,
//!    so every such edge targets `A_i`.
//! 2. Categorical–categorical edges are oriented greedily toward the
//!    currently lighter target (ties prefer the lower-cardinality
//!    side, keeping the higher-cardinality attribute as the
//!    pseudo-key, which maximizes that pair's bandwidth).
//! 3. A local-search pass flips any edge whose target carries at least
//!    two more passes than its tail would; each flip strictly reduces
//!    the sum of squared loads, so the search terminates at a locally
//!    balanced orientation.
//! 4. Pairs whose pseudo-key cannot select fit tuples (fewer than two
//!    distinct values — the paper's "extreme case, A can have just one
//!    possible value which would upset the fit tuple selection
//!    algorithm") are dropped and reported, answering the open
//!    question *constructively* when possible and diagnosing it when
//!    not.

use std::collections::{HashMap, HashSet};

use catmark_relation::{CategoricalDomain, Relation};

use crate::error::CoreError;
use crate::multiattr::{MultiAttrPlan, PairConfig};
use crate::spec::WatermarkSpec;

/// One oriented attribute pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrientedPair {
    /// Attribute hashed for fitness/bit selection (never altered).
    pub pseudo_key: String,
    /// Attribute altered by the pass.
    pub target: String,
}

/// The closure: oriented pairs plus diagnostics.
#[derive(Debug, Clone)]
pub struct Closure {
    /// Oriented pairs, in embedding order: `(K, ·)` passes first, then
    /// categorical pairs by descending pseudo-key cardinality.
    pub pairs: Vec<OrientedPair>,
    /// Pairs dropped because no orientation gave the pseudo-key at
    /// least two distinct values.
    pub dropped: Vec<(String, String)>,
    /// Per-attribute target load (number of passes altering it).
    pub load: HashMap<String, usize>,
    /// Number of pairs whose pseudo-key is a categorical attribute
    /// (zero answers the paper's open question affirmatively for this
    /// schema — only possible when there are fewer than two
    /// categorical attributes).
    pub categorical_pseudo_keys: usize,
}

impl Closure {
    /// The maximum target load — the interference bottleneck. Lower is
    /// better; `(K, ·)`-only schemas achieve 1.
    #[must_use]
    pub fn max_load(&self) -> usize {
        self.load.values().copied().max().unwrap_or(0)
    }

    /// Number of watermarked pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no pair survived.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Build the closure for `rel`'s schema.
///
/// # Errors
///
/// [`CoreError::InvalidSpec`] when the schema has no categorical
/// attributes.
pub fn build_closure(rel: &Relation) -> Result<Closure, CoreError> {
    let schema = rel.schema();
    let key = schema.key_attr().name.clone();
    let cats: Vec<String> =
        schema.categorical_indices().into_iter().map(|i| schema.attr(i).name.clone()).collect();
    if cats.is_empty() {
        return Err(CoreError::InvalidSpec(
            "schema has no categorical attributes to watermark".into(),
        ));
    }

    let mut distinct: HashMap<String, usize> = HashMap::new();
    distinct.insert(key.clone(), distinct_count(rel, schema.key_index()));
    for name in &cats {
        let idx = schema.index_of(name).expect("name from schema");
        distinct.insert(name.clone(), distinct_count(rel, idx));
    }

    // Forced (K, A_i) edges.
    let mut load: HashMap<String, usize> = HashMap::new();
    let mut forced = Vec::with_capacity(cats.len());
    for name in &cats {
        forced.push(OrientedPair { pseudo_key: key.clone(), target: name.clone() });
        *load.entry(name.clone()).or_insert(0) += 1;
    }

    // Greedy orientation of categorical-categorical edges.
    let mut free: Vec<OrientedPair> = Vec::new();
    let mut dropped = Vec::new();
    for (i, a) in cats.iter().enumerate() {
        for b in &cats[i + 1..] {
            let a_ok = distinct[a] >= 2;
            let b_ok = distinct[b] >= 2;
            let target = match (a_ok, b_ok) {
                (false, false) => {
                    dropped.push((a.clone(), b.clone()));
                    continue;
                }
                // Only one side can pseudo-key: the other is targeted.
                (true, false) => b.clone(),
                (false, true) => a.clone(),
                (true, true) => {
                    let (la, lb) =
                        (load.get(a).copied().unwrap_or(0), load.get(b).copied().unwrap_or(0));
                    match la.cmp(&lb) {
                        std::cmp::Ordering::Less => a.clone(),
                        std::cmp::Ordering::Greater => b.clone(),
                        // Tie: target the lower-cardinality side so the
                        // higher-cardinality attribute pseudo-keys.
                        std::cmp::Ordering::Equal => {
                            if distinct[a] <= distinct[b] {
                                a.clone()
                            } else {
                                b.clone()
                            }
                        }
                    }
                }
            };
            let pseudo_key = if target == *a { b.clone() } else { a.clone() };
            *load.entry(target.clone()).or_insert(0) += 1;
            free.push(OrientedPair { pseudo_key, target });
        }
    }

    rebalance(&mut free, &mut load, &distinct);

    // Order: forced passes first, then free pairs by descending
    // pseudo-key cardinality (strong witnesses embed first so later
    // interference skips land on the weak ones).
    free.sort_by(|x, y| {
        distinct[&y.pseudo_key]
            .cmp(&distinct[&x.pseudo_key])
            .then_with(|| x.pseudo_key.cmp(&y.pseudo_key))
            .then_with(|| x.target.cmp(&y.target))
    });
    let categorical_pseudo_keys = free.len();
    let mut pairs = forced;
    pairs.extend(free);
    Ok(Closure { pairs, dropped, load, categorical_pseudo_keys })
}

/// Flip edges whose target is at least two passes heavier than their
/// tail. Each flip reduces `Σ load²` by at least 2, so the loop
/// terminates; the result has no single-edge improvement left.
fn rebalance(
    edges: &mut [OrientedPair],
    load: &mut HashMap<String, usize>,
    distinct: &HashMap<String, usize>,
) {
    loop {
        let mut flipped = false;
        for edge in edges.iter_mut() {
            // Never flip onto a pseudo-key-incapable attribute.
            if distinct.get(&edge.target).copied().unwrap_or(0) < 2 {
                continue;
            }
            let lt = load.get(&edge.target).copied().unwrap_or(0);
            let lp = load.get(&edge.pseudo_key).copied().unwrap_or(0);
            if lt > lp + 1 {
                *load.entry(edge.target.clone()).or_insert(0) -= 1;
                *load.entry(edge.pseudo_key.clone()).or_insert(0) += 1;
                std::mem::swap(&mut edge.pseudo_key, &mut edge.target);
                flipped = true;
            }
        }
        if !flipped {
            break;
        }
    }
}

/// Derive a [`MultiAttrPlan`] from a closure: per-pair subkeys from the
/// pair label, per-pair `wm_data` sized from the pseudo-key's usable
/// bandwidth (row count for the primary key, distinct values
/// otherwise).
///
/// # Errors
///
/// [`CoreError::InvalidSpec`] when a categorical attribute in the
/// closure is missing from `domains`.
pub fn plan_from_closure(
    rel: &Relation,
    base: &WatermarkSpec,
    domains: &HashMap<String, CategoricalDomain>,
    closure: &Closure,
) -> Result<MultiAttrPlan, CoreError> {
    let schema = rel.schema();
    let key_name = &schema.key_attr().name;
    let mut pairs = Vec::with_capacity(closure.pairs.len());
    for op in &closure.pairs {
        let mut spec = base.derived(&format!("pair:{}:{}", op.pseudo_key, op.target));
        spec.domain = domains.get(&op.target).cloned().ok_or_else(|| {
            CoreError::InvalidSpec(format!("no domain provided for {:?}", op.target))
        })?;
        let bandwidth = if op.pseudo_key == *key_name {
            rel.len()
        } else {
            let idx = schema.index_of(&op.pseudo_key)?;
            distinct_count(rel, idx)
        };
        spec.wm_data_len = ((bandwidth as u64 / spec.e) as usize).max(spec.wm_len);
        pairs.push(PairConfig {
            pseudo_key: op.pseudo_key.clone(),
            target: op.target.clone(),
            spec,
        });
    }
    Ok(MultiAttrPlan::from_pairs(pairs))
}

fn distinct_count(rel: &Relation, attr_idx: usize) -> usize {
    rel.column_iter(attr_idx).collect::<HashSet<_>>().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::ErasurePolicy;
    use crate::multiattr::{aggregate_verdict, decode_multiattr, embed_multiattr};
    use crate::spec::Watermark;
    use catmark_datagen::domains::product_codes;
    use catmark_relation::{AttrType, Schema, Value};

    /// (k, item, supplier, store) with cardinalities 400 / 300 / 20.
    fn wide_fixture(n: i64) -> Relation {
        let schema = Schema::builder()
            .key_attr("k", AttrType::Integer)
            .categorical_attr("item", AttrType::Integer)
            .categorical_attr("supplier", AttrType::Integer)
            .categorical_attr("store", AttrType::Integer)
            .build()
            .unwrap();
        let mut rel = Relation::with_capacity(schema, n as usize);
        for i in 0..n {
            rel.push(vec![
                Value::Int(i),
                Value::Int(10_000 + (i * 7_919) % 400),
                Value::Int(500 + (i * 104_729) % 300),
                Value::Int((i * 31) % 20),
            ])
            .unwrap();
        }
        rel
    }

    #[test]
    fn closure_covers_every_pair() {
        let rel = wide_fixture(6_000);
        let c = build_closure(&rel).unwrap();
        // 3 (K, ·) + C(3, 2) = 6 pairs, none dropped.
        assert_eq!(c.len(), 6);
        assert!(c.dropped.is_empty());
        assert_eq!(c.categorical_pseudo_keys, 3);
        // Every unordered pair appears exactly once.
        let mut seen: Vec<(String, String)> = c
            .pairs
            .iter()
            .map(|p| {
                let mut v = [p.pseudo_key.clone(), p.target.clone()];
                v.sort();
                (v[0].clone(), v[1].clone())
            })
            .collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn closure_balances_target_load() {
        let rel = wide_fixture(6_000);
        let c = build_closure(&rel).unwrap();
        // 6 passes over 3 targetable attributes: perfectly balanced
        // load is 2 per attribute.
        assert_eq!(c.max_load(), 2, "load map: {:?}", c.load);
        assert!(c.load.values().all(|&l| l == 2));
    }

    #[test]
    fn key_is_never_a_target() {
        let rel = wide_fixture(1_000);
        let c = build_closure(&rel).unwrap();
        assert!(c.pairs.iter().all(|p| p.target != "k"));
        assert!(!c.load.contains_key("k"));
    }

    #[test]
    fn ties_prefer_high_cardinality_pseudo_keys() {
        let rel = wide_fixture(6_000);
        let c = build_closure(&rel).unwrap();
        // The (item, store) pair: store has 20 values, item 400 — item
        // must pseudo-key unless load forbids it; with balanced loads
        // the tie rule keeps the big attribute as pseudo-key at least
        // once.
        let cat_pairs: Vec<&OrientedPair> =
            c.pairs.iter().filter(|p| p.pseudo_key != "k").collect();
        assert!(
            cat_pairs.iter().any(|p| p.pseudo_key == "item"),
            "item never pseudo-keys: {cat_pairs:?}"
        );
    }

    #[test]
    fn single_valued_attribute_never_pseudo_keys() {
        let schema = Schema::builder()
            .key_attr("k", AttrType::Integer)
            .categorical_attr("a", AttrType::Integer)
            .categorical_attr("constant", AttrType::Integer)
            .build()
            .unwrap();
        let mut rel = Relation::new(schema);
        for i in 0..100i64 {
            rel.push(vec![Value::Int(i), Value::Int(i % 10), Value::Int(7)]).unwrap();
        }
        let c = build_closure(&rel).unwrap();
        assert!(c.pairs.iter().all(|p| p.pseudo_key != "constant"));
        // The (a, constant) pair is still watermarked — oriented so
        // `a` pseudo-keys and `constant` absorbs the alterations.
        assert!(c.pairs.iter().any(|p| p.pseudo_key == "a" && p.target == "constant"));
    }

    #[test]
    fn two_single_valued_attributes_drop_their_pair() {
        let schema = Schema::builder()
            .key_attr("k", AttrType::Integer)
            .categorical_attr("c1", AttrType::Integer)
            .categorical_attr("c2", AttrType::Integer)
            .build()
            .unwrap();
        let mut rel = Relation::new(schema);
        for i in 0..50i64 {
            rel.push(vec![Value::Int(i), Value::Int(1), Value::Int(2)]).unwrap();
        }
        let c = build_closure(&rel).unwrap();
        assert_eq!(c.dropped, vec![("c1".to_owned(), "c2".to_owned())]);
        // The forced (K, ·) passes survive.
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn no_categorical_attributes_errors() {
        let schema = Schema::builder()
            .key_attr("k", AttrType::Integer)
            .attr("free", AttrType::Integer)
            .build()
            .unwrap();
        let rel = Relation::new(schema);
        assert!(matches!(build_closure(&rel), Err(CoreError::InvalidSpec(_))));
    }

    #[test]
    fn rebalance_flips_overloaded_targets() {
        // Hand-built pathological orientation: everything targets `a`.
        let mut edges = vec![
            OrientedPair { pseudo_key: "b".into(), target: "a".into() },
            OrientedPair { pseudo_key: "c".into(), target: "a".into() },
            OrientedPair { pseudo_key: "d".into(), target: "a".into() },
        ];
        let mut load: HashMap<String, usize> = HashMap::from([
            ("a".to_owned(), 3),
            ("b".to_owned(), 0),
            ("c".to_owned(), 0),
            ("d".to_owned(), 0),
        ]);
        let distinct: HashMap<String, usize> =
            ["a", "b", "c", "d"].into_iter().map(|s| (s.to_owned(), 100)).collect();
        rebalance(&mut edges, &mut load, &distinct);
        let max = load.values().copied().max().unwrap();
        assert!(max <= 1, "load after rebalance: {load:?}");
    }

    #[test]
    fn rebalance_respects_incapable_attributes() {
        let mut edges = vec![
            OrientedPair { pseudo_key: "big".into(), target: "tiny".into() },
            OrientedPair { pseudo_key: "big2".into(), target: "tiny".into() },
            OrientedPair { pseudo_key: "big3".into(), target: "tiny".into() },
        ];
        let mut load: HashMap<String, usize> = HashMap::from([("tiny".to_owned(), 3)]);
        let distinct: HashMap<String, usize> = HashMap::from([
            ("tiny".to_owned(), 1),
            ("big".to_owned(), 100),
            ("big2".to_owned(), 100),
            ("big3".to_owned(), 100),
        ]);
        rebalance(&mut edges, &mut load, &distinct);
        // tiny cannot pseudo-key: orientation must not change.
        assert!(edges.iter().all(|e| e.target == "tiny"));
    }

    #[test]
    fn closure_plan_embeds_and_witnesses() {
        let mut rel = wide_fixture(8_000);
        let c = build_closure(&rel).unwrap();
        let item_domain = product_codes(400, 10_000);
        let supplier_domain = product_codes(300, 500);
        let store_domain = product_codes(20, 0);
        let base = WatermarkSpec::builder(item_domain.clone())
            .master_key("closure-tests")
            .e(5)
            .wm_len(10)
            .expected_tuples(rel.len())
            .erasure(ErasurePolicy::Abstain)
            .build()
            .unwrap();
        let domains = HashMap::from([
            ("item".to_owned(), item_domain),
            ("supplier".to_owned(), supplier_domain),
            ("store".to_owned(), store_domain),
        ]);
        let plan = plan_from_closure(&rel, &base, &domains, &c).unwrap();
        assert_eq!(plan.pairs().len(), 6);
        let wm = Watermark::from_u64(0b1010011001, 10);
        let outcomes = embed_multiattr(&plan, &mut rel, &wm).unwrap();
        assert_eq!(outcomes.len(), 6);
        let witnesses = decode_multiattr(&plan, &rel, &wm).unwrap();
        let verdict = aggregate_verdict(&witnesses, 1e-2);
        // The three (K, ·) witnesses are high-bandwidth and must all
        // testify; categorical pairs may be weaker.
        assert!(verdict.significant_witnesses >= 3, "verdict: {verdict:?}");
    }

    #[test]
    fn plan_requires_domains() {
        let rel = wide_fixture(100);
        let c = build_closure(&rel).unwrap();
        let base = WatermarkSpec::builder(product_codes(400, 10_000))
            .master_key("x")
            .expected_tuples(100)
            .build()
            .unwrap();
        let err = plan_from_closure(&rel, &base, &HashMap::new(), &c);
        assert!(matches!(err, Err(CoreError::InvalidSpec(_))));
    }
}
