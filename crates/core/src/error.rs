//! Error type for the watermarking pipeline.

use catmark_relation::RelationError;

/// Errors produced by watermark embedding, decoding and the
/// extensions.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A substrate (relational) operation failed.
    Relation(RelationError),
    /// Invalid watermarking parameters.
    InvalidSpec(String),
    /// A column could not be bound to a relation: the name (or index)
    /// does not resolve, or the resolved attribute is unusable for the
    /// requested role. Carries the relation's arity and attribute list
    /// so the caller can see exactly what *was* available.
    ColumnBinding {
        /// The column that failed to bind.
        column: String,
        /// Why it failed to bind.
        reason: String,
        /// Arity of the relation the binding was attempted against.
        arity: usize,
        /// The attribute names the relation actually offers.
        available: Vec<String>,
    },
    /// The data offers too little bandwidth for the requested
    /// watermark (the `|wm| < N/e` requirement of Section 4.4).
    InsufficientBandwidth {
        /// Watermark length requested.
        wm_len: usize,
        /// `wm_data` capacity available.
        capacity: usize,
    },
    /// The embedding-map variant was asked to decode without a map
    /// entry for any fit tuple.
    EmptyEmbedding,
    /// A tenant-scoped key registry refused to serve key material to a
    /// different tenant. Key material never crosses tenant boundaries:
    /// a registry bound to one tenant rejects lookups on behalf of any
    /// other, regardless of whether the requested key name exists.
    TenantIsolation {
        /// The tenant the registry is bound to.
        tenant: String,
        /// The tenant the lookup was issued for.
        requested: String,
    },
    /// Quality constraints vetoed every candidate alteration.
    AllAlterationsVetoed,
    /// An evidence bundle failed verification: malformed wire bytes, a
    /// broken checksum, or internally inconsistent recorded facts. The
    /// reason names the first check that failed. A bundle that trips
    /// this error must never be presented as evidence.
    EvidenceInvalid {
        /// The first verification check that failed.
        reason: String,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Relation(e) => write!(f, "relation error: {e}"),
            CoreError::InvalidSpec(msg) => write!(f, "invalid watermark spec: {msg}"),
            CoreError::ColumnBinding { column, reason, arity, available } => {
                write!(
                    f,
                    "cannot bind column {column:?}: {reason} (relation has {arity} attribute{}: {})",
                    if *arity == 1 { "" } else { "s" },
                    available.join(", ")
                )
            }
            CoreError::InsufficientBandwidth { wm_len, capacity } => write!(
                f,
                "watermark of {wm_len} bits exceeds embedding capacity of {capacity} positions"
            ),
            CoreError::EmptyEmbedding => {
                f.write_str("no fit tuples found; nothing was embedded or decoded")
            }
            CoreError::TenantIsolation { tenant, requested } => write!(
                f,
                "tenant isolation: key registry is bound to tenant {tenant:?} \
                 but the lookup was issued for tenant {requested:?}"
            ),
            CoreError::AllAlterationsVetoed => {
                f.write_str("quality constraints vetoed every candidate alteration")
            }
            CoreError::EvidenceInvalid { reason } => {
                write!(f, "evidence bundle rejected: {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Relation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationError> for CoreError {
    fn from(e: RelationError) -> Self {
        CoreError::Relation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_detail() {
        let e = CoreError::InsufficientBandwidth { wm_len: 100, capacity: 10 };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn column_binding_names_the_column_and_the_alternatives() {
        let e = CoreError::ColumnBinding {
            column: "item_nbr".into(),
            reason: "no such attribute".into(),
            arity: 2,
            available: vec!["visit_nbr".into(), "item".into()],
        };
        let msg = e.to_string();
        assert!(msg.contains("item_nbr"), "{msg}");
        assert!(msg.contains("no such attribute"), "{msg}");
        assert!(msg.contains("2 attributes"), "{msg}");
        assert!(msg.contains("visit_nbr, item"), "{msg}");
    }

    #[test]
    fn tenant_isolation_names_both_tenants() {
        let e = CoreError::TenantIsolation { tenant: "acme".into(), requested: "globex".into() };
        let msg = e.to_string();
        assert!(msg.contains("acme"), "{msg}");
        assert!(msg.contains("globex"), "{msg}");
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn evidence_invalid_names_the_failed_check() {
        let e = CoreError::EvidenceInvalid { reason: "payload checksum mismatch".into() };
        let msg = e.to_string();
        assert!(msg.contains("rejected"), "{msg}");
        assert!(msg.contains("payload checksum mismatch"), "{msg}");
    }

    #[test]
    fn relation_errors_convert_and_chain() {
        let inner = RelationError::UnknownAttr("a".into());
        let e: CoreError = inner.clone().into();
        assert_eq!(e, CoreError::Relation(inner));
        assert!(std::error::Error::source(&e).is_some());
    }
}
