//! Watermark reinforcement through data addition (Section 4.6).
//!
//! Alteration destroys data value; *addition* does not. The paper
//! proposes artificially injecting tuples that (i) satisfy the secret
//! fitness criterion and (ii) carry correctly encoded watermark bits —
//! "because e effectively reduces the fitness-criteria testing space
//! …, we can afford to massively produce random tuple values and test
//! for fitness. On average one in every e tuples should conform."
//!
//! [`inject_fit_tuples`] performs that rejection sampling: synthesize
//! candidate primary keys, keep the fit ones, encode the right
//! attribute value for each, and fill the remaining attributes from a
//! randomly chosen existing tuple so the additions blend into the data
//! distribution ("conforming to the overall data distribution, in
//! order to preserve stealthiness").

use catmark_relation::ops::SplitMix64;
use catmark_relation::{Relation, Value};

use crate::ecc::{ErrorCorrectingCode, MajorityVotingEcc};
use crate::error::CoreError;
use crate::fitness::FitnessSelector;
use crate::spec::{Watermark, WatermarkSpec};

/// Synthesizes candidate primary-key values for injection.
pub trait KeySynthesizer {
    /// Produce the `attempt`-th candidate key value.
    fn candidate(&mut self, attempt: u64) -> Value;
}

/// Synthesizes integer keys uniformly from a half-open range.
#[derive(Debug, Clone)]
pub struct IntKeySynthesizer {
    lo: i64,
    hi: i64,
    rng: SplitMix64,
}

impl IntKeySynthesizer {
    /// Keys drawn uniformly from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    #[must_use]
    pub fn new(lo: i64, hi: i64, seed: u64) -> Self {
        assert!(lo < hi, "empty key range");
        IntKeySynthesizer { lo, hi, rng: SplitMix64::new(seed) }
    }
}

impl KeySynthesizer for IntKeySynthesizer {
    fn candidate(&mut self, _attempt: u64) -> Value {
        let span = (self.hi - self.lo) as u64;
        Value::Int(self.lo + (self.rng.next_u64() % span) as i64)
    }
}

/// Outcome of an injection pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdditionReport {
    /// Tuples added (each is fit and correctly encoded).
    pub added: usize,
    /// Candidate keys synthesized in total.
    pub attempts: u64,
    /// Candidates rejected because the key already existed.
    pub duplicate_keys: u64,
}

/// Injection parameters for [`inject_fit_tuples`].
#[derive(Debug, Clone, Copy)]
pub struct InjectionParams {
    /// Number of fit tuples to add.
    pub count: usize,
    /// Candidate budget; `None` defaults to `count * e * 20`.
    pub max_attempts: Option<u64>,
    /// Seed for template-row selection (stealth attribute filling).
    pub seed: u64,
}

impl InjectionParams {
    /// Add `count` tuples with the default attempt budget.
    #[must_use]
    pub fn new(count: usize, seed: u64) -> Self {
        InjectionParams { count, max_attempts: None, seed }
    }
}

/// Inject up to `params.count` synthetic fit tuples into `rel`.
///
/// Stops early when `params.max_attempts` candidates have been
/// examined (guard against pathological synthesizers).
///
/// # Errors
///
/// Unknown attributes, wrong watermark length, or injection into an
/// empty relation (no template tuples to copy non-key attributes
/// from).
pub fn inject_fit_tuples(
    spec: &WatermarkSpec,
    rel: &mut Relation,
    key_attr: &str,
    target_attr: &str,
    wm: &Watermark,
    params: InjectionParams,
    synthesizer: &mut dyn KeySynthesizer,
) -> Result<AdditionReport, CoreError> {
    let InjectionParams { count, max_attempts, seed } = params;
    if wm.len() != spec.wm_len {
        return Err(CoreError::InvalidSpec(format!(
            "watermark has {} bits but the spec declares {}",
            wm.len(),
            spec.wm_len
        )));
    }
    if rel.is_empty() {
        return Err(CoreError::EmptyEmbedding);
    }
    let key_idx = rel.schema().index_of(key_attr)?;
    let attr_idx = rel.schema().index_of(target_attr)?;
    let sel = FitnessSelector::new(spec);
    let ecc = MajorityVotingEcc;
    let wm_data = ecc.encode(wm, spec.wm_data_len);
    let n = spec.domain.len() as u64;
    let max_attempts = max_attempts.unwrap_or(count as u64 * spec.e * 20);
    let mut template_rng = SplitMix64::new(seed);
    let mut report = AdditionReport { added: 0, attempts: 0, duplicate_keys: 0 };
    let original_len = rel.len() as u64;

    while report.added < count && report.attempts < max_attempts {
        report.attempts += 1;
        let key = synthesizer.candidate(report.attempts);
        if rel.find_by_key(&key).is_some() {
            report.duplicate_keys += 1;
            continue;
        }
        let Some(facts) = sel.facts(&key) else {
            continue;
        };
        let bit = wm_data[facts.position];
        let t = crate::bits::force_lsb_in_domain(facts.value_base(n), bit, n) as usize;
        // Stealth: copy every non-key, non-target attribute from a
        // random *original* tuple so marginals are preserved.
        let template_row = (template_rng.next_u64() % original_len) as usize;
        let mut values = rel.tuple(template_row).expect("row in range").values().to_vec();
        values[key_idx] = key;
        values[attr_idx] = spec.domain.value_at(t).clone();
        rel.push(values)?;
        report.added += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use catmark_datagen::{ItemScanConfig, SalesGenerator};
    use catmark_relation::ops;

    fn fixture(tuples: usize, e: u64) -> (Relation, WatermarkSpec, Watermark) {
        let gen = SalesGenerator::new(ItemScanConfig { tuples, ..Default::default() });
        let mut rel = gen.generate();
        let spec = WatermarkSpec::builder(gen.item_domain())
            .master_key("addition-tests")
            .e(e)
            .wm_len(10)
            .expected_tuples(tuples)
            .build()
            .unwrap();
        let wm = Watermark::from_u64(0b0101110010, 10);
        crate::testkit::embed(&spec, &mut rel, "visit_nbr", "item_nbr", &wm).unwrap();
        (rel, spec, wm)
    }

    fn synth() -> IntKeySynthesizer {
        // Disjoint from the generator's visit range.
        IntKeySynthesizer::new(100_000_000, 200_000_000, 77)
    }

    #[test]
    fn injects_requested_count_of_fit_tuples() {
        let (mut rel, spec, wm) = fixture(6_000, 30);
        let before = rel.len();
        let report = inject_fit_tuples(
            &spec,
            &mut rel,
            "visit_nbr",
            "item_nbr",
            &wm,
            InjectionParams::new(50, 1),
            &mut synth(),
        )
        .unwrap();
        assert_eq!(report.added, 50);
        assert_eq!(rel.len(), before + 50);
        // Rejection sampling: roughly e candidates per acceptance.
        let per_accept = report.attempts as f64 / 50.0;
        assert!((per_accept - 30.0).abs() < 15.0, "attempts/accept = {per_accept}");
    }

    #[test]
    fn injected_tuples_are_fit_and_vote_correctly() {
        let (mut rel, spec, wm) = fixture(6_000, 30);
        let before = rel.len();
        inject_fit_tuples(
            &spec,
            &mut rel,
            "visit_nbr",
            "item_nbr",
            &wm,
            InjectionParams::new(30, 2),
            &mut synth(),
        )
        .unwrap();
        let sel = FitnessSelector::new(&spec);
        let ecc = MajorityVotingEcc;
        let wm_data = ecc.encode(&wm, spec.wm_data_len);
        for row in before..rel.len() {
            let tuple = rel.tuple(row).unwrap();
            assert!(sel.is_fit(tuple.get(0)));
            let t = spec.domain.index_of(tuple.get(1)).unwrap();
            let idx = sel.position(tuple.get(0));
            assert_eq!(t & 1 == 1, wm_data[idx]);
        }
    }

    #[test]
    fn addition_strengthens_decoding_under_loss() {
        // Compare decode quality under heavy loss with and without
        // reinforcement.
        let (rel, spec, wm) = fixture(6_000, 60);
        let mut reinforced = rel.clone();
        inject_fit_tuples(
            &spec,
            &mut reinforced,
            "visit_nbr",
            "item_nbr",
            &wm,
            InjectionParams::new(200, 3),
            &mut synth(),
        )
        .unwrap();
        let mut plain_errors = 0usize;
        let mut reinforced_errors = 0usize;
        for seed in 0..8 {
            let lost_plain = ops::sample_bernoulli(&rel, 0.25, seed);
            let lost_reinf = ops::sample_bernoulli(&reinforced, 0.25, seed);
            plain_errors += wm.hamming_distance(
                &crate::testkit::decode(&spec, &lost_plain, "visit_nbr", "item_nbr")
                    .unwrap()
                    .watermark,
            );
            reinforced_errors += wm.hamming_distance(
                &crate::testkit::decode(&spec, &lost_reinf, "visit_nbr", "item_nbr")
                    .unwrap()
                    .watermark,
            );
        }
        assert!(
            reinforced_errors <= plain_errors,
            "reinforced {reinforced_errors} vs plain {plain_errors}"
        );
        assert!(reinforced_errors < 8, "reinforced decode should be near-perfect");
    }

    #[test]
    fn respects_max_attempts() {
        let (mut rel, spec, wm) = fixture(1_000, 30);
        let report = inject_fit_tuples(
            &spec,
            &mut rel,
            "visit_nbr",
            "item_nbr",
            &wm,
            InjectionParams { count: 1_000, max_attempts: Some(100), seed: 4 },
            &mut synth(),
        )
        .unwrap();
        assert!(report.attempts <= 100);
        assert!(report.added < 1_000);
    }

    #[test]
    fn skips_duplicate_keys() {
        let (mut rel, spec, wm) = fixture(1_000, 30);
        // A synthesizer that proposes keys already present.
        struct Existing(Vec<Value>, usize);
        impl KeySynthesizer for Existing {
            fn candidate(&mut self, _attempt: u64) -> Value {
                let v = self.0[self.1 % self.0.len()].clone();
                self.1 += 1;
                v
            }
        }
        let keys: Vec<Value> = rel.column_iter(0).collect();
        let mut s = Existing(keys, 0);
        let report = inject_fit_tuples(
            &spec,
            &mut rel,
            "visit_nbr",
            "item_nbr",
            &wm,
            InjectionParams { count: 5, max_attempts: Some(50), seed: 5 },
            &mut s,
        )
        .unwrap();
        assert_eq!(report.added, 0);
        assert_eq!(report.duplicate_keys, 50);
    }

    #[test]
    fn rejects_empty_relation() {
        let gen = SalesGenerator::new(ItemScanConfig { tuples: 10, ..Default::default() });
        let spec = WatermarkSpec::builder(gen.item_domain())
            .master_key("x")
            .expected_tuples(1000)
            .build()
            .unwrap();
        let mut empty = Relation::new(gen.schema());
        let err = inject_fit_tuples(
            &spec,
            &mut empty,
            "visit_nbr",
            "item_nbr",
            &Watermark::from_u64(1, 10),
            InjectionParams::new(5, 6),
            &mut synth(),
        );
        assert!(matches!(err, Err(CoreError::EmptyEmbedding)));
    }
}
