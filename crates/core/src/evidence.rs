//! Certified detection: serialized, independently checkable evidence
//! bundles (`CMKEVD1`).
//!
//! A detection run is forensic evidence, but an in-process
//! [`Verdict`] dies with the process. This module gives every
//! detection driver a *certified* twin that emits a replayable
//! certificate alongside the unchanged fast-path result:
//!
//! - **key commitment** — SHA-256 of the v1 key file (never the key);
//! - **relation identity** — the committed version's segment blob
//!   hashes, or a whole-relation content hash for in-memory runs;
//! - **per-segment vote tallies** — the raw `(ones, zeros)` counts
//!   every later check folds from;
//! - **spec + ECC parameters**, the resolved `wm_data`, the decoded
//!   mark, the claim comparison, and (for contests) the contest trace.
//!
//! [`verify_evidence`] re-checks a bundle **without the relation or
//! the keys**: it re-folds the tallies, re-resolves every position,
//! re-runs the ECC majority vote, recomputes the binomial
//! false-positive odds, and re-derives the contest outcome. What it
//! cannot re-derive keylessly — the keyed-PRF coins behind ties and
//! `RandomFill` erasures, and the hash commitments themselves — it
//! checks for *consistency* (a recorded coin must be a legal coin; a
//! commitment must verify against the original artifacts when they
//! are produced). Every failure is a typed
//! [`CoreError::EvidenceInvalid`]; malformed bytes never panic.
//!
//! Certification does not touch the fast path: the certified drivers
//! run the *same* single accumulation pass as their fast twins and
//! serialize the tallies they were going to fold anyway, so the
//! returned outcome is byte-identical by construction (pinned by the
//! golden suite and the bench gate).

use catmark_crypto::HashAlgorithm;
use catmark_relation::{Relation, SegmentedRelation, VersionManifest};

use crate::contest::{Claim, ClaimEvidence, ContestOutcome};
use crate::decode::{DecodeReport, Decoder, ErasurePolicy, VoteAccumulator};
use crate::detect::{binomial_tail_half, detect, Detection};
use crate::error::CoreError;
use crate::incremental::VoteCache;
use crate::keyfile::to_key_file;
use crate::plan::spec_identity;
use crate::session::{MarkSession, Verdict};
use crate::spec::{Watermark, WatermarkSpec};

/// Magic bytes opening every evidence bundle.
const MAGIC: &[u8; 8] = b"CMKEVD1\0";
/// Bytes of framing before the payload: magic, payload SHA-256,
/// payload length.
const HEADER: usize = 48;
/// Sanity ceilings for crafted bundles that pass the checksum.
const MAX_WM_DATA: usize = 1 << 24;
const MAX_SEGMENTS: usize = 1 << 20;
const MAX_WM_LEN: usize = 4096;
const MAX_STR: usize = 1 << 16;

/// ECC tag: majority voting, the only session decode ECC.
const ECC_MAJORITY: u8 = 0;

fn invalid(reason: impl Into<String>) -> CoreError {
    CoreError::EvidenceInvalid { reason: reason.into() }
}

/// A fast-path outcome paired with the serialized `CMKEVD1` bundle
/// that replays it. The outcome is byte-identical to the uncertified
/// driver's.
#[derive(Debug, Clone)]
pub struct Certified<T> {
    /// The fast-path outcome.
    pub outcome: T,
    /// The encoded evidence bundle.
    pub bundle: Vec<u8>,
}

/// What a bundle binds the detection run to: a whole in-memory
/// relation by content hash, or a committed version by its segment
/// blob hashes.
#[derive(Debug, Clone, PartialEq, Eq)]
enum RelationIdentity {
    /// Row count plus SHA-256 over every value's canonical bytes in
    /// row-major order.
    Whole { rows: u64, hash: [u8; 32] },
    /// A committed version: id plus the manifest's `(blob hash, rows)`
    /// list in segment order.
    Versioned { version: u64, segments: Vec<([u8; 32], u64)> },
}

impl RelationIdentity {
    fn describe(&self) -> String {
        match self {
            RelationIdentity::Whole { rows, hash } => {
                format!("whole relation, {rows} rows, sha256 {}", hex(hash))
            }
            RelationIdentity::Versioned { version, segments } => {
                format!("version {version}, {} segments", segments.len())
            }
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(s, "{b:02x}");
    }
    s
}

/// One segment's (or the whole relation's) serialized vote tally.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TallyRecord {
    fit_tuples: u64,
    votes_cast: u64,
    foreign_values: u64,
    ones: Vec<u32>,
    zeros: Vec<u32>,
}

/// The contest trace one party's bundle carries: both unanimities,
/// both presence verdicts, and the outcome from this party's
/// perspective.
#[derive(Debug, Clone, PartialEq)]
struct ContestTrace {
    claimant: String,
    opponent: String,
    alpha: f64,
    unanimity_margin: f64,
    own_unanimity: f64,
    opponent_unanimity: f64,
    own_present: bool,
    opponent_present: bool,
    /// 0 = only own claim, 1 = only opponent's, 2 = own is earlier,
    /// 3 = opponent is earlier, 4 = indeterminate, 5 = neither.
    outcome: u8,
}

/// Everything a parsed bundle records, before consistency checks.
#[derive(Debug, Clone)]
struct ParsedBundle {
    key_commitment: [u8; 32],
    wm_len: usize,
    wm_data_len: usize,
    erasure: ErasurePolicy,
    identity: RelationIdentity,
    tallies: Vec<TallyRecord>,
    /// Resolved positions: 0 = false, 1 = true, 2 = abstained.
    wm_data: Vec<u8>,
    positions_observed: u32,
    positions_erased: u32,
    position_conflicts: u32,
    decoded: Vec<bool>,
    claim: Option<ClaimRecord>,
    contest: Option<ContestTrace>,
}

#[derive(Debug, Clone, PartialEq)]
struct ClaimRecord {
    claimed: Vec<bool>,
    matched_bits: u32,
    total_bits: u32,
    false_positive_probability: f64,
}

/// The verified facts [`verify_evidence`] hands back.
#[derive(Debug, Clone, PartialEq)]
pub struct EvidenceSummary {
    /// Hex SHA-256 of the claimant's v1 key file.
    pub key_commitment: String,
    /// Human description of the relation/version the run was bound to.
    pub relation: String,
    /// Per-segment tallies the bundle carries (1 for whole-relation
    /// runs).
    pub segments: usize,
    /// Total fit tuples across every tally.
    pub fit_tuples: u64,
    /// Total votes cast.
    pub votes_cast: u64,
    /// Total fit tuples whose value fell outside the domain.
    pub foreign_values: u64,
    /// The decoded watermark, most significant bit first.
    pub decoded: String,
    /// The claim comparison, when the run judged one.
    pub claim: Option<ClaimSummary>,
    /// The contest trace, when the run was one side of a contest.
    pub contest: Option<ContestSummary>,
}

/// The re-derived claim comparison inside a verified bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct ClaimSummary {
    /// The claimed watermark bits.
    pub claimed: String,
    /// Bits of the decoded mark agreeing with the claim.
    pub matched_bits: usize,
    /// Total bits compared.
    pub total_bits: usize,
    /// Recomputed binomial-tail false-positive odds.
    pub false_positive_probability: f64,
}

impl ClaimSummary {
    /// Whether the verified claim clears significance level `alpha`.
    #[must_use]
    pub fn is_significant(&self, alpha: f64) -> bool {
        self.false_positive_probability < alpha
    }
}

/// The re-derived contest facts inside a verified bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct ContestSummary {
    /// The party this bundle belongs to.
    pub claimant: String,
    /// The other party.
    pub opponent: String,
    /// Significance level the contest used.
    pub alpha: f64,
    /// Unanimity margin the contest used.
    pub unanimity_margin: f64,
    /// Human rendering of the verified outcome.
    pub outcome: String,
}

impl std::fmt::Display for EvidenceSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "key commitment  {}", self.key_commitment)?;
        writeln!(f, "relation        {}", self.relation)?;
        writeln!(
            f,
            "tallies         {} segment(s), {} fit tuples, {} votes, {} foreign",
            self.segments, self.fit_tuples, self.votes_cast, self.foreign_values
        )?;
        write!(f, "decoded         {}", self.decoded)?;
        if let Some(claim) = &self.claim {
            write!(
                f,
                "\nclaim           {} — {}/{} bits match, chance odds {:.2e}",
                claim.claimed,
                claim.matched_bits,
                claim.total_bits,
                claim.false_positive_probability
            )?;
        }
        if let Some(contest) = &self.contest {
            write!(
                f,
                "\ncontest         {:?} vs {:?} at alpha {:.1e}: {}",
                contest.claimant, contest.opponent, contest.alpha, contest.outcome
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------- encode

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn push_bits(out: &mut Vec<u8>, bits: &[bool]) {
    out.extend(bits.iter().map(|&b| u8::from(b)));
}

fn algo_tag(algo: HashAlgorithm) -> u8 {
    match algo {
        HashAlgorithm::Md5 => 0,
        HashAlgorithm::Sha1 => 1,
        HashAlgorithm::Sha256 => 2,
    }
}

fn erasure_tag(policy: ErasurePolicy) -> u8 {
    match policy {
        ErasurePolicy::Abstain => 0,
        ErasurePolicy::RandomFill => 1,
        ErasurePolicy::ZeroFill => 2,
    }
}

/// SHA-256 commitment to the spec's v1 key file — binds the bundle to
/// the detection keys without revealing them.
fn key_commitment(spec: &WatermarkSpec) -> [u8; 32] {
    HashAlgorithm::Sha256
        .digest(to_key_file(spec).as_bytes())
        .try_into()
        .expect("sha-256 digests are 32 bytes")
}

/// Content hash for in-memory runs: SHA-256 over every value's
/// canonical bytes in row-major order.
fn whole_relation_hash(rel: &Relation) -> [u8; 32] {
    let mut h = HashAlgorithm::Sha256.hasher();
    for tuple in rel.iter() {
        for value in tuple.values() {
            h.update(&value.canonical_bytes());
        }
    }
    h.finalize_vec().try_into().expect("sha-256 digests are 32 bytes")
}

/// Assemble and frame one bundle.
fn encode_bundle(
    spec: &WatermarkSpec,
    identity: &RelationIdentity,
    tallies: &[VoteAccumulator],
    report: &DecodeReport,
    claim: Option<(&Watermark, &Detection)>,
    contest: Option<&ContestTrace>,
) -> Vec<u8> {
    let identity_bytes = match identity {
        RelationIdentity::Whole { .. } => 41,
        RelationIdentity::Versioned { segments, .. } => 13 + 40 * segments.len(),
    };
    let tally_bytes = 24 + 8 * spec.wm_data_len;
    let mut p = Vec::with_capacity(
        51 + identity_bytes
            + 4
            + tallies.len() * tally_bytes
            + spec.wm_data_len
            + 12
            + spec.wm_len
            + 128,
    );
    p.extend_from_slice(&key_commitment(spec));
    p.push(algo_tag(spec.algo));
    push_u64(&mut p, spec.e);
    push_u32(&mut p, spec.wm_len as u32);
    push_u32(&mut p, spec.wm_data_len as u32);
    p.push(erasure_tag(spec.erasure));
    p.push(ECC_MAJORITY);
    match identity {
        RelationIdentity::Whole { rows, hash } => {
            p.push(0);
            push_u64(&mut p, *rows);
            p.extend_from_slice(hash);
        }
        RelationIdentity::Versioned { version, segments } => {
            p.push(1);
            push_u64(&mut p, *version);
            push_u32(&mut p, segments.len() as u32);
            for (hash, rows) in segments {
                p.extend_from_slice(hash);
                push_u64(&mut p, *rows);
            }
        }
    }
    push_u32(&mut p, tallies.len() as u32);
    for tally in tallies {
        push_u64(&mut p, tally.fit_tuples() as u64);
        push_u64(&mut p, tally.votes_cast() as u64);
        push_u64(&mut p, tally.foreign_values() as u64);
        for &o in tally.ones() {
            push_u32(&mut p, o);
        }
        for &z in tally.zeros() {
            push_u32(&mut p, z);
        }
    }
    p.extend(report.wm_data.iter().map(|slot| match slot {
        Some(false) => 0u8,
        Some(true) => 1,
        None => 2,
    }));
    push_u32(&mut p, report.positions_observed as u32);
    push_u32(&mut p, report.positions_erased as u32);
    push_u32(&mut p, report.position_conflicts as u32);
    push_bits(&mut p, report.watermark.bits());
    match claim {
        Some((claimed, detection)) => {
            p.push(1);
            push_bits(&mut p, claimed.bits());
            push_u32(&mut p, detection.matched_bits as u32);
            push_u32(&mut p, detection.total_bits as u32);
            push_f64(&mut p, detection.false_positive_probability);
        }
        None => p.push(0),
    }
    match contest {
        Some(trace) => {
            p.push(1);
            push_str(&mut p, &trace.claimant);
            push_str(&mut p, &trace.opponent);
            push_f64(&mut p, trace.alpha);
            push_f64(&mut p, trace.unanimity_margin);
            push_f64(&mut p, trace.own_unanimity);
            push_f64(&mut p, trace.opponent_unanimity);
            p.push(u8::from(trace.own_present));
            p.push(u8::from(trace.opponent_present));
            p.push(trace.outcome);
        }
        None => p.push(0),
    }

    let mut out = Vec::with_capacity(HEADER + p.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&HashAlgorithm::Sha256.digest(&p));
    push_u64(&mut out, p.len() as u64);
    out.extend_from_slice(&p);
    out
}

// ---------------------------------------------------------------- decode

/// Strict little-endian reader over the payload.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CoreError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| invalid(format!("truncated payload reading {what}")))?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, CoreError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, CoreError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &str) -> Result<u64, CoreError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    fn f64(&mut self, what: &str) -> Result<f64, CoreError> {
        let v = f64::from_bits(self.u64(what)?);
        if v.is_nan() {
            return Err(invalid(format!("{what} is not a number")));
        }
        Ok(v)
    }

    fn hash(&mut self, what: &str) -> Result<[u8; 32], CoreError> {
        Ok(self.take(32, what)?.try_into().expect("32 bytes"))
    }

    fn bit(&mut self, what: &str) -> Result<bool, CoreError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(invalid(format!("{what} holds {other}, not a bit"))),
        }
    }

    fn bits(&mut self, n: usize, what: &str) -> Result<Vec<bool>, CoreError> {
        (0..n).map(|_| self.bit(what)).collect()
    }

    fn string(&mut self, what: &str) -> Result<String, CoreError> {
        let len = self.u32(what)? as usize;
        if len > MAX_STR {
            return Err(invalid(format!("{what} length {len} exceeds the format limit")));
        }
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| invalid(format!("{what} is not valid UTF-8")))
    }
}

fn parse_bundle(bytes: &[u8]) -> Result<ParsedBundle, CoreError> {
    if bytes.len() < HEADER {
        return Err(invalid(format!(
            "bundle of {} bytes is shorter than the {HEADER}-byte header",
            bytes.len()
        )));
    }
    if &bytes[..8] != MAGIC {
        return Err(invalid("bad magic: not a CMKEVD1 evidence bundle"));
    }
    let stored_digest = &bytes[8..40];
    let payload_len = u64::from_le_bytes(bytes[40..48].try_into().expect("8 bytes")) as usize;
    let payload = &bytes[HEADER..];
    if payload.len() != payload_len {
        return Err(invalid(format!(
            "payload length field says {payload_len} bytes but {} follow the header",
            payload.len()
        )));
    }
    if HashAlgorithm::Sha256.digest(payload) != stored_digest {
        return Err(invalid("payload checksum mismatch: the bundle was altered"));
    }

    let mut r = Reader { bytes: payload, at: 0 };
    let key_commitment = r.hash("key commitment")?;
    match r.u8("algo tag")? {
        0..=2 => (),
        other => return Err(invalid(format!("unknown algo tag {other}"))),
    }
    let e = r.u64("e")?;
    if e == 0 {
        return Err(invalid("fitness modulus e is zero"));
    }
    let wm_len = r.u32("wm_len")? as usize;
    if wm_len == 0 || wm_len > MAX_WM_LEN {
        return Err(invalid(format!("watermark length {wm_len} outside 1..={MAX_WM_LEN}")));
    }
    let wm_data_len = r.u32("wm_data_len")? as usize;
    if wm_data_len < wm_len || wm_data_len > MAX_WM_DATA {
        return Err(invalid(format!(
            "wm_data length {wm_data_len} outside {wm_len}..={MAX_WM_DATA}"
        )));
    }
    let erasure = match r.u8("erasure tag")? {
        0 => ErasurePolicy::Abstain,
        1 => ErasurePolicy::RandomFill,
        2 => ErasurePolicy::ZeroFill,
        other => return Err(invalid(format!("unknown erasure tag {other}"))),
    };
    match r.u8("ecc tag")? {
        ECC_MAJORITY => {}
        other => return Err(invalid(format!("unknown ecc tag {other}"))),
    }
    let identity = match r.u8("identity tag")? {
        0 => {
            let rows = r.u64("relation rows")?;
            let hash = r.hash("relation hash")?;
            RelationIdentity::Whole { rows, hash }
        }
        1 => {
            let version = r.u64("version id")?;
            let count = r.u32("segment count")? as usize;
            if count > MAX_SEGMENTS {
                return Err(invalid(format!("segment count {count} exceeds the format limit")));
            }
            let mut segments = Vec::with_capacity(count);
            for _ in 0..count {
                let hash = r.hash("segment hash")?;
                let rows = r.u64("segment rows")?;
                segments.push((hash, rows));
            }
            RelationIdentity::Versioned { version, segments }
        }
        other => return Err(invalid(format!("unknown identity tag {other}"))),
    };
    let tally_count = r.u32("tally count")? as usize;
    let expected_tallies = match &identity {
        RelationIdentity::Whole { .. } => 1,
        RelationIdentity::Versioned { segments, .. } => segments.len(),
    };
    if tally_count != expected_tallies {
        return Err(invalid(format!(
            "{tally_count} tallies recorded but the relation identity names {expected_tallies}"
        )));
    }
    let mut tallies = Vec::with_capacity(tally_count);
    for _ in 0..tally_count {
        let fit_tuples = r.u64("tally fit tuples")?;
        let votes_cast = r.u64("tally votes")?;
        let foreign_values = r.u64("tally foreign values")?;
        let mut ones = Vec::with_capacity(wm_data_len);
        for _ in 0..wm_data_len {
            ones.push(r.u32("tally ones")?);
        }
        let mut zeros = Vec::with_capacity(wm_data_len);
        for _ in 0..wm_data_len {
            zeros.push(r.u32("tally zeros")?);
        }
        tallies.push(TallyRecord { fit_tuples, votes_cast, foreign_values, ones, zeros });
    }
    let mut wm_data = Vec::with_capacity(wm_data_len);
    for _ in 0..wm_data_len {
        let slot = r.u8("resolved wm_data")?;
        if slot > 2 {
            return Err(invalid(format!("resolved wm_data slot holds {slot}, not 0/1/2")));
        }
        wm_data.push(slot);
    }
    let positions_observed = r.u32("positions observed")?;
    let positions_erased = r.u32("positions erased")?;
    let position_conflicts = r.u32("position conflicts")?;
    let decoded = r.bits(wm_len, "decoded watermark bit")?;
    let claim = match r.u8("claim flag")? {
        0 => None,
        1 => {
            let claimed = r.bits(wm_len, "claimed watermark bit")?;
            let matched_bits = r.u32("matched bits")?;
            let total_bits = r.u32("total bits")?;
            let false_positive_probability = r.f64("false-positive probability")?;
            Some(ClaimRecord { claimed, matched_bits, total_bits, false_positive_probability })
        }
        other => return Err(invalid(format!("claim flag holds {other}, not 0/1"))),
    };
    let contest = match r.u8("contest flag")? {
        0 => None,
        1 => {
            let claimant = r.string("contest claimant")?;
            let opponent = r.string("contest opponent")?;
            let alpha = r.f64("contest alpha")?;
            let unanimity_margin = r.f64("unanimity margin")?;
            let own_unanimity = r.f64("own unanimity")?;
            let opponent_unanimity = r.f64("opponent unanimity")?;
            let own_present = r.bit("own presence flag")?;
            let opponent_present = r.bit("opponent presence flag")?;
            let outcome = r.u8("contest outcome tag")?;
            if outcome > 5 {
                return Err(invalid(format!("unknown contest outcome tag {outcome}")));
            }
            Some(ContestTrace {
                claimant,
                opponent,
                alpha,
                unanimity_margin,
                own_unanimity,
                opponent_unanimity,
                own_present,
                opponent_present,
                outcome,
            })
        }
        other => return Err(invalid(format!("contest flag holds {other}, not 0/1"))),
    };
    if r.at != payload.len() {
        return Err(invalid(format!(
            "{} trailing bytes after the contest section",
            payload.len() - r.at
        )));
    }
    Ok(ParsedBundle {
        key_commitment,
        wm_len,
        wm_data_len,
        erasure,
        identity,
        tallies,
        wm_data,
        positions_observed,
        positions_erased,
        position_conflicts,
        decoded,
        claim,
        contest,
    })
}

// ---------------------------------------------------------------- verify

/// Independently check an evidence bundle — **no relation, no keys**.
///
/// Re-folds the per-segment tallies, re-resolves every `wm_data`
/// position (majorities must match; recorded tie/erasure coins are
/// accepted but must be legal for the recorded erasure policy),
/// re-runs the ECC majority vote per watermark bit, recomputes the
/// claim's matched-bit count and binomial false-positive odds to exact
/// f64 equality, and re-derives the contest outcome from the recorded
/// unanimities and presence verdicts. The key commitment and relation
/// hashes are *commitments*: they bind the bundle to specific keys and
/// bytes and are checked for integrity here, and for equality whenever
/// the original artifacts are produced.
///
/// # Errors
///
/// [`CoreError::EvidenceInvalid`] naming the first failed check.
/// Never panics on malformed input.
pub fn verify_evidence(bytes: &[u8]) -> Result<EvidenceSummary, CoreError> {
    let b = parse_bundle(bytes)?;

    // Fold the tallies, checking each one's internal accounting.
    let mut ones = vec![0u64; b.wm_data_len];
    let mut zeros = vec![0u64; b.wm_data_len];
    let (mut fit, mut votes, mut foreign) = (0u64, 0u64, 0u64);
    for (i, tally) in b.tallies.iter().enumerate() {
        if tally.votes_cast + tally.foreign_values != tally.fit_tuples {
            return Err(invalid(format!(
                "tally {i}: votes {} + foreign {} != fit {}",
                tally.votes_cast, tally.foreign_values, tally.fit_tuples
            )));
        }
        let cast: u64 = tally.ones.iter().map(|&o| u64::from(o)).sum::<u64>()
            + tally.zeros.iter().map(|&z| u64::from(z)).sum::<u64>();
        if cast != tally.votes_cast {
            return Err(invalid(format!(
                "tally {i}: per-position votes sum to {cast}, not the recorded {}",
                tally.votes_cast
            )));
        }
        for p in 0..b.wm_data_len {
            ones[p] += u64::from(tally.ones[p]);
            zeros[p] += u64::from(tally.zeros[p]);
        }
        fit += tally.fit_tuples;
        votes += tally.votes_cast;
        foreign += tally.foreign_values;
    }

    // Re-resolve every position against the recorded wm_data.
    let (mut observed, mut erased, mut conflicts) = (0u32, 0u32, 0u32);
    for p in 0..b.wm_data_len {
        let (o, z) = (ones[p], zeros[p]);
        let recorded = b.wm_data[p];
        if o + z == 0 {
            erased += 1;
            let legal = match b.erasure {
                ErasurePolicy::Abstain => recorded == 2,
                ErasurePolicy::RandomFill => recorded <= 1,
                ErasurePolicy::ZeroFill => recorded == 0,
            };
            if !legal {
                return Err(invalid(format!(
                    "position {p}: unvoted slot holds {recorded}, illegal under the \
                     recorded erasure policy"
                )));
            }
        } else {
            observed += 1;
            if o > 0 && z > 0 {
                conflicts += 1;
            }
            let legal = match o.cmp(&z) {
                std::cmp::Ordering::Greater => recorded == 1,
                std::cmp::Ordering::Less => recorded == 0,
                std::cmp::Ordering::Equal => recorded <= 1, // keyed tie coin
            };
            if !legal {
                return Err(invalid(format!(
                    "position {p}: {o} ones vs {z} zeros but the resolved slot holds {recorded}"
                )));
            }
        }
    }
    if observed != b.positions_observed || erased != b.positions_erased {
        return Err(invalid(format!(
            "recorded {}/{} observed/erased positions, re-fold finds {observed}/{erased}",
            b.positions_observed, b.positions_erased
        )));
    }
    if conflicts != b.position_conflicts {
        return Err(invalid(format!(
            "recorded {} position conflicts, re-fold finds {conflicts}",
            b.position_conflicts
        )));
    }

    // Re-run the ECC: each watermark bit j majority-votes its copies
    // (positions ≡ j mod wm_len). A strict majority must match the
    // decoded bit; ties fall to the recorded keyed coin.
    for j in 0..b.wm_len {
        let (mut t, mut f_) = (0u64, 0u64);
        let mut p = j;
        while p < b.wm_data_len {
            match b.wm_data[p] {
                1 => t += 1,
                0 => f_ += 1,
                _ => {}
            }
            p += b.wm_len;
        }
        let legal = match t.cmp(&f_) {
            std::cmp::Ordering::Greater => b.decoded[j],
            std::cmp::Ordering::Less => !b.decoded[j],
            std::cmp::Ordering::Equal => true, // keyed tie coin
        };
        if !legal {
            return Err(invalid(format!(
                "watermark bit {j}: {t} true vs {f_} false copies contradict the decoded bit"
            )));
        }
    }

    // Recompute the claim comparison exactly.
    let claim_summary = match &b.claim {
        None => None,
        Some(claim) => {
            if claim.total_bits as usize != b.wm_len {
                return Err(invalid(format!(
                    "claim compares {} bits but the watermark has {}",
                    claim.total_bits, b.wm_len
                )));
            }
            let matched = b.decoded.iter().zip(&claim.claimed).filter(|(a, b)| a == b).count();
            if matched != claim.matched_bits as usize {
                return Err(invalid(format!(
                    "claim records {} matched bits, re-count finds {matched}",
                    claim.matched_bits
                )));
            }
            let fpp = binomial_tail_half(b.wm_len, matched);
            if fpp.to_bits() != claim.false_positive_probability.to_bits() {
                return Err(invalid(format!(
                    "claim records false-positive odds {:e}, recompute finds {fpp:e}",
                    claim.false_positive_probability
                )));
            }
            Some(ClaimSummary {
                claimed: bit_string(&claim.claimed),
                matched_bits: matched,
                total_bits: b.wm_len,
                false_positive_probability: fpp,
            })
        }
    };

    // Re-derive the contest outcome from the recorded facts.
    let contest_summary = match &b.contest {
        None => None,
        Some(trace) => {
            let Some(claim) = &claim_summary else {
                return Err(invalid("contest trace without a claim section"));
            };
            let voted = u64::from(observed.max(1));
            let unanimity = f64::from(observed - conflicts) / voted as f64;
            if unanimity.to_bits() != trace.own_unanimity.to_bits() {
                return Err(invalid(format!(
                    "contest records own unanimity {}, re-fold finds {unanimity}",
                    trace.own_unanimity
                )));
            }
            let present = claim.false_positive_probability < trace.alpha;
            if present != trace.own_present {
                return Err(invalid(format!(
                    "contest records own presence {}, the claim odds say {present}",
                    trace.own_present
                )));
            }
            let expected = match (trace.own_present, trace.opponent_present) {
                (false, false) => 5,
                (true, false) => 0,
                (false, true) => 1,
                (true, true) => {
                    if trace.own_unanimity + trace.unanimity_margin < trace.opponent_unanimity {
                        2
                    } else if trace.opponent_unanimity + trace.unanimity_margin
                        < trace.own_unanimity
                    {
                        3
                    } else {
                        4
                    }
                }
            };
            if expected != trace.outcome {
                return Err(invalid(format!(
                    "contest outcome tag {} contradicts the recorded presence/unanimity \
                     facts (expected {expected})",
                    trace.outcome
                )));
            }
            let outcome = match trace.outcome {
                0 => format!("only {:?}'s mark is present", trace.claimant),
                1 => format!("only {:?}'s mark is present", trace.opponent),
                2 => format!("{:?}'s mark is the earlier embedding", trace.claimant),
                3 => format!("{:?}'s mark is the earlier embedding", trace.opponent),
                4 => "both marks present and statistically indistinguishable".to_owned(),
                _ => "neither mark is present".to_owned(),
            };
            Some(ContestSummary {
                claimant: trace.claimant.clone(),
                opponent: trace.opponent.clone(),
                alpha: trace.alpha,
                unanimity_margin: trace.unanimity_margin,
                outcome,
            })
        }
    };

    Ok(EvidenceSummary {
        key_commitment: hex(&b.key_commitment),
        relation: b.identity.describe(),
        segments: b.tallies.len(),
        fit_tuples: fit,
        votes_cast: votes,
        foreign_values: foreign,
        decoded: bit_string(&b.decoded),
        claim: claim_summary,
        contest: contest_summary,
    })
}

fn bit_string(bits: &[bool]) -> String {
    bits.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

// ------------------------------------------------------- certified drivers

impl MarkSession {
    /// Merge per-segment tallies and resolve them exactly as the fast
    /// path does.
    fn resolve_tallies(&self, tallies: &[VoteAccumulator]) -> Result<DecodeReport, CoreError> {
        let mut votes = VoteAccumulator::new(self.spec().wm_data_len);
        for tally in tallies {
            votes.merge(tally);
        }
        Decoder::engine(self.spec()).resolve(&crate::ecc::MajorityVotingEcc, votes)
    }

    /// [`MarkSession::decode`] plus its evidence bundle. The report is
    /// byte-identical to the fast path (one accumulation pass, one
    /// resolution — the bundle serializes the tally that pass was
    /// going to fold anyway).
    ///
    /// # Errors
    ///
    /// As [`MarkSession::decode`].
    pub fn decode_certified(&self, rel: &Relation) -> Result<Certified<DecodeReport>, CoreError> {
        let (report, tally, identity) = self.certified_whole_pass(rel)?;
        let bundle = encode_bundle(self.spec(), &identity, &[tally], &report, None, None);
        Ok(Certified { outcome: report, bundle })
    }

    /// [`MarkSession::detect`] plus its evidence bundle.
    ///
    /// # Errors
    ///
    /// As [`MarkSession::detect`].
    pub fn detect_certified(
        &self,
        rel: &Relation,
        claimed: &Watermark,
    ) -> Result<Certified<Verdict>, CoreError> {
        let (report, tally, identity) = self.certified_whole_pass(rel)?;
        let detection = detect(&report.watermark, claimed);
        let bundle = encode_bundle(
            self.spec(),
            &identity,
            &[tally],
            &report,
            Some((claimed, &detection)),
            None,
        );
        Ok(Certified { outcome: Verdict { decode: report, detection }, bundle })
    }

    /// One whole-relation accumulation pass: the fast path's tally
    /// plus the content-hash identity.
    fn certified_whole_pass(
        &self,
        rel: &Relation,
    ) -> Result<(DecodeReport, VoteAccumulator, RelationIdentity), CoreError> {
        let spec = self.spec();
        let plan = self.plan(rel)?;
        let mut tally = VoteAccumulator::new(spec.wm_data_len);
        tally.accumulate(spec, rel, self.target().index(), &plan);
        let report = self.resolve_tallies(std::slice::from_ref(&tally))?;
        let identity =
            RelationIdentity::Whole { rows: rel.len() as u64, hash: whole_relation_hash(rel) };
        Ok((report, tally, identity))
    }

    /// Certified [`MarkSession::detect`] of an in-memory relation
    /// *against a committed version's manifest*: the monolithic plan
    /// is partitioned at the manifest's segment boundaries so the
    /// bundle carries the same per-segment tallies — and therefore the
    /// same bytes — as the certified segmented and incremental drivers
    /// over that version. A segment's plan is an exact slice of the
    /// monolithic one, so the partitions tally identically.
    ///
    /// # Errors
    ///
    /// As [`MarkSession::detect`], plus [`CoreError::InvalidSpec`]
    /// when `manifest` does not describe `rel`'s rows.
    pub fn detect_certified_version(
        &self,
        rel: &Relation,
        claimed: &Watermark,
        manifest: &VersionManifest,
    ) -> Result<Certified<Verdict>, CoreError> {
        if manifest.rows() != rel.len() as u64 {
            return Err(CoreError::InvalidSpec(format!(
                "manifest v{} describes {} rows but the relation holds {}",
                manifest.id,
                manifest.rows(),
                rel.len()
            )));
        }
        let spec = self.spec();
        let attr_idx = self.target().index();
        let plan = self.plan(rel)?;
        let fit = plan.fit();
        let mut tallies = Vec::with_capacity(manifest.segments.len());
        let mut row_base = 0u64;
        let mut cursor = 0usize;
        for segment in &manifest.segments {
            row_base += segment.rows;
            let start = cursor;
            while cursor < fit.len() && u64::from(fit[cursor].row) < row_base {
                cursor += 1;
            }
            let mut tally = VoteAccumulator::new(spec.wm_data_len);
            tally.accumulate_rows(spec, rel, attr_idx, &fit[start..cursor]);
            tallies.push(tally);
        }
        let report = self.resolve_tallies(&tallies)?;
        let detection = detect(&report.watermark, claimed);
        let bundle = encode_bundle(
            spec,
            &manifest_identity(manifest),
            &tallies,
            &report,
            Some((claimed, &detection)),
            None,
        );
        Ok(Certified { outcome: Verdict { decode: report, detection }, bundle })
    }

    /// Certified [`MarkSession::detect_segmented`] (sequential
    /// reference driver): per-segment tallies are kept instead of
    /// folded eagerly, then merged and resolved exactly as the fast
    /// path folds them. Works out-of-core — segments stream through
    /// the pager one at a time.
    ///
    /// # Errors
    ///
    /// As [`MarkSession::detect_segmented`], plus
    /// [`CoreError::InvalidSpec`] when `manifest` does not describe
    /// `seg`.
    pub fn detect_certified_segmented(
        &self,
        seg: &mut SegmentedRelation,
        claimed: &Watermark,
        manifest: &VersionManifest,
    ) -> Result<Certified<Verdict>, CoreError> {
        self.check_segmented(seg)?;
        Self::check_manifest(seg, manifest)?;
        let spec = self.spec();
        let key_idx = self.key().index();
        let attr_idx = self.target().index();
        let cacheable = Self::segment_plans_cacheable(seg);
        let mut tallies = Vec::with_capacity(seg.segment_count());
        for i in 0..seg.segment_count() {
            let mut tally = VoteAccumulator::new(spec.wm_data_len);
            seg.with_segment(i, |rel| -> Result<(), CoreError> {
                let plan = self.segment_plan(rel, key_idx, cacheable)?;
                tally.accumulate(spec, rel, attr_idx, &plan);
                Ok(())
            })
            .map_err(CoreError::Relation)??;
            tallies.push(tally);
        }
        self.certify_segment_tallies(tallies, claimed, manifest)
    }

    /// Certified [`MarkSession::detect_incremental`]: per-segment
    /// tallies come from the [`VoteCache`] when the blob was already
    /// seen and are accumulated fresh (and cached) otherwise. A tally
    /// is a pure function of a blob's bytes under the spec's keys, so
    /// warm and cold runs produce byte-identical bundles.
    ///
    /// # Errors
    ///
    /// As [`MarkSession::detect_incremental`].
    pub fn detect_certified_incremental(
        &self,
        seg: &mut SegmentedRelation,
        claimed: &Watermark,
        manifest: &VersionManifest,
        cache: &mut VoteCache,
    ) -> Result<Certified<Verdict>, CoreError> {
        self.check_segmented(seg)?;
        Self::check_manifest(seg, manifest)?;
        let spec = self.spec();
        let key_idx = self.key().index();
        let attr_idx = self.target().index();
        let spec_id = spec_identity(spec);
        let cacheable = Self::segment_plans_cacheable(seg);
        let mut tallies = Vec::with_capacity(seg.segment_count());
        for i in 0..seg.segment_count() {
            let hash = manifest.segments[i].hash;
            if let Some(tally) = cache.lookup(spec_id, &hash) {
                tallies.push(tally.clone());
                continue;
            }
            let mut tally = VoteAccumulator::new(spec.wm_data_len);
            seg.with_segment(i, |rel| -> Result<(), CoreError> {
                let plan = self.segment_plan(rel, key_idx, cacheable)?;
                tally.accumulate(spec, rel, attr_idx, &plan);
                Ok(())
            })
            .map_err(CoreError::Relation)??;
            cache.insert(spec_id, hash, tally.clone());
            tallies.push(tally);
        }
        cache.retain_manifest(spec_id, manifest);
        self.certify_segment_tallies(tallies, claimed, manifest)
    }

    fn certify_segment_tallies(
        &self,
        tallies: Vec<VoteAccumulator>,
        claimed: &Watermark,
        manifest: &VersionManifest,
    ) -> Result<Certified<Verdict>, CoreError> {
        let report = self.resolve_tallies(&tallies)?;
        let detection = detect(&report.watermark, claimed);
        let bundle = encode_bundle(
            self.spec(),
            &manifest_identity(manifest),
            &tallies,
            &report,
            Some((claimed, &detection)),
            None,
        );
        Ok(Certified { outcome: Verdict { decode: report, detection }, bundle })
    }

    /// Certified [`MarkSession::contest`]: the same two evidence
    /// gatherings and the same resolution, plus one bundle per claim —
    /// each committing to the *same* relation identity and carrying
    /// the contest trace from its claimant's perspective. The two
    /// bundles are paired by that shared identity plus the recorded
    /// opponent facts.
    ///
    /// # Errors
    ///
    /// As [`MarkSession::contest`].
    pub fn contest_certified(
        &self,
        a: &Claim,
        b: &Claim,
        rel: &Relation,
        alpha: f64,
        unanimity_margin: f64,
    ) -> Result<(ContestOutcome, Certified<ClaimEvidence>, Certified<ClaimEvidence>), CoreError>
    {
        let key_idx = self.key().index();
        let attr_idx = self.target().index();
        let identity =
            RelationIdentity::Whole { rows: rel.len() as u64, hash: whole_relation_hash(rel) };

        let gather = |claim: &Claim| -> Result<
            (ClaimEvidence, VoteAccumulator, DecodeReport, Detection),
            CoreError,
        > {
            let plan = self.cache().plan_for(&claim.spec, rel, key_idx)?;
            let mut tally = VoteAccumulator::new(claim.spec.wm_data_len);
            tally.accumulate(&claim.spec, rel, attr_idx, &plan);
            let mut votes = VoteAccumulator::new(claim.spec.wm_data_len);
            votes.merge(&tally);
            let decode =
                Decoder::engine(&claim.spec).resolve(&crate::ecc::MajorityVotingEcc, votes)?;
            let detection = detect(&decode.watermark, &claim.watermark);
            let voted = decode.positions_observed.max(1);
            let unanimous = decode.positions_observed - decode.position_conflicts;
            let evidence = ClaimEvidence {
                claimant: claim.claimant.clone(),
                decode: decode.clone(),
                detection: detection.clone(),
                vote_unanimity: unanimous as f64 / voted as f64,
            };
            Ok((evidence, tally, decode, detection))
        };

        let (ev_a, tally_a, decode_a, det_a) = gather(a)?;
        let (ev_b, tally_b, decode_b, det_b) = gather(b)?;
        let outcome = match (ev_a.is_present(alpha), ev_b.is_present(alpha)) {
            (false, false) => ContestOutcome::NeitherClaim,
            (true, false) => ContestOutcome::OnlyClaim(ev_a.claimant.clone()),
            (false, true) => ContestOutcome::OnlyClaim(ev_b.claimant.clone()),
            (true, true) => {
                if ev_a.vote_unanimity + unanimity_margin < ev_b.vote_unanimity {
                    ContestOutcome::EarlierClaim(ev_a.claimant.clone())
                } else if ev_b.vote_unanimity + unanimity_margin < ev_a.vote_unanimity {
                    ContestOutcome::EarlierClaim(ev_b.claimant.clone())
                } else {
                    ContestOutcome::Indeterminate
                }
            }
        };

        let trace = |own: &ClaimEvidence, other: &ClaimEvidence| ContestTrace {
            claimant: own.claimant.clone(),
            opponent: other.claimant.clone(),
            alpha,
            unanimity_margin,
            own_unanimity: own.vote_unanimity,
            opponent_unanimity: other.vote_unanimity,
            own_present: own.is_present(alpha),
            opponent_present: other.is_present(alpha),
            outcome: outcome_tag(&outcome, &own.claimant),
        };
        let bundle_a = encode_bundle(
            &a.spec,
            &identity,
            std::slice::from_ref(&tally_a),
            &decode_a,
            Some((&a.watermark, &det_a)),
            Some(&trace(&ev_a, &ev_b)),
        );
        let bundle_b = encode_bundle(
            &b.spec,
            &identity,
            std::slice::from_ref(&tally_b),
            &decode_b,
            Some((&b.watermark, &det_b)),
            Some(&trace(&ev_b, &ev_a)),
        );
        Ok((
            outcome,
            Certified { outcome: ev_a, bundle: bundle_a },
            Certified { outcome: ev_b, bundle: bundle_b },
        ))
    }
}

fn manifest_identity(manifest: &VersionManifest) -> RelationIdentity {
    RelationIdentity::Versioned {
        version: manifest.id,
        segments: manifest.segments.iter().map(|s| (s.hash, s.rows)).collect(),
    }
}

fn outcome_tag(outcome: &ContestOutcome, own: &str) -> u8 {
    match outcome {
        ContestOutcome::OnlyClaim(who) => u8::from(who != own),
        ContestOutcome::EarlierClaim(who) => 2 + u8::from(who != own),
        ContestOutcome::Indeterminate => 4,
        ContestOutcome::NeitherClaim => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contest::additive_attack;
    use catmark_datagen::{ItemScanConfig, SalesGenerator};
    use catmark_relation::{ContentStore, VersionLog};

    fn fixture(tuples: usize, e: u64) -> (Relation, MarkSession, Watermark) {
        let gen = SalesGenerator::new(ItemScanConfig { tuples, ..Default::default() });
        let rel = gen.generate();
        let spec = WatermarkSpec::builder(gen.item_domain())
            .master_key("evidence-tests")
            .e(e)
            .wm_len(10)
            .expected_tuples(tuples)
            .build()
            .unwrap();
        let session = MarkSession::builder(spec)
            .key_column("visit_nbr")
            .target_column("item_nbr")
            .bind(&rel)
            .unwrap();
        (rel, session, Watermark::from_u64(0b1011001110, 10))
    }

    #[test]
    fn certified_detect_matches_the_fast_path_and_verifies() {
        let (mut rel, session, wm) = fixture(4_000, 10);
        session.embed(&mut rel, &wm).unwrap();
        let fast = session.detect(&rel, &wm).unwrap();
        let certified = session.detect_certified(&rel, &wm).unwrap();
        assert_eq!(certified.outcome, fast, "certified verdict diverged from the fast path");

        let summary = verify_evidence(&certified.bundle).unwrap();
        assert_eq!(summary.decoded, wm.to_string());
        assert_eq!(summary.segments, 1);
        assert_eq!(summary.fit_tuples as usize, fast.decode.fit_tuples);
        let claim = summary.claim.as_ref().unwrap();
        assert_eq!(claim.matched_bits, fast.detection.matched_bits);
        assert_eq!(
            claim.false_positive_probability.to_bits(),
            fast.detection.false_positive_probability.to_bits()
        );
        assert!(claim.is_significant(1e-2));
        // The summary renders without touching the relation or keys.
        assert!(summary.to_string().contains("key commitment"));
    }

    #[test]
    fn certified_decode_has_no_claim_section() {
        let (mut rel, session, wm) = fixture(3_000, 10);
        session.embed(&mut rel, &wm).unwrap();
        let fast = session.decode(&rel).unwrap();
        let certified = session.decode_certified(&rel).unwrap();
        assert_eq!(certified.outcome, fast);
        let summary = verify_evidence(&certified.bundle).unwrap();
        assert!(summary.claim.is_none());
        assert!(summary.contest.is_none());
        assert_eq!(summary.decoded, fast.watermark.to_string());
    }

    #[test]
    fn certified_bundles_are_deterministic_and_relation_bound() {
        let (mut rel, session, wm) = fixture(3_000, 10);
        session.embed(&mut rel, &wm).unwrap();
        let one = session.detect_certified(&rel, &wm).unwrap();
        let two = session.detect_certified(&rel, &wm).unwrap();
        assert_eq!(one.bundle, two.bundle, "same run, same bytes");

        // A different relation state commits a different content hash.
        let altered = additive_attack(
            &mut rel,
            &session.claim("mallory", &Watermark::from_u64(0x155, 10)),
            "visit_nbr",
            "item_nbr",
        );
        assert!(altered.is_ok());
        let three = session.detect_certified(&rel, &wm).unwrap();
        assert_ne!(one.bundle, three.bundle);
    }

    #[test]
    fn certified_version_paths_agree_bytewise() {
        let (rel, session, wm) = fixture(4_000, 10);
        let store = ContentStore::in_memory();
        let mut log = VersionLog::new();
        let mut seg = SegmentedRelation::builder(rel.schema().clone())
            .segment_rows(500)
            .store(Box::new(store.clone()))
            .from_relation(&rel)
            .unwrap();
        session.embed_segmented_sequential(&mut seg, &wm).unwrap();
        let v = log.commit(&mut seg, &store).unwrap();
        let manifest = log.get(v).unwrap().clone();

        let fast = session.detect_segmented(&mut seg, &wm).unwrap();
        let segmented = session.detect_certified_segmented(&mut seg, &wm, &manifest).unwrap();
        assert_eq!(segmented.outcome, fast);

        let mut cache = VoteCache::new();
        let cold =
            session.detect_certified_incremental(&mut seg, &wm, &manifest, &mut cache).unwrap();
        let warm =
            session.detect_certified_incremental(&mut seg, &wm, &manifest, &mut cache).unwrap();
        assert_eq!(segmented.bundle, cold.bundle, "segmented vs cold incremental");
        assert_eq!(cold.bundle, warm.bundle, "cold vs warm incremental");

        let mono = log.open_version(v, rel.schema(), &store, None).unwrap().to_relation().unwrap();
        let version = session.detect_certified_version(&mono, &wm, &manifest).unwrap();
        assert_eq!(version.bundle, segmented.bundle, "monolithic vs segmented");
        assert_eq!(version.outcome, fast);

        let summary = verify_evidence(&segmented.bundle).unwrap();
        assert_eq!(summary.segments, seg.segment_count());
        assert!(summary.relation.starts_with(&format!("version {v}")));
    }

    #[test]
    fn contest_certified_matches_contest_and_both_bundles_verify() {
        let (mut rel, session, wm) = fixture(12_000, 10);
        let owner = session.claim("owner", &wm);
        let gen = SalesGenerator::new(ItemScanConfig { tuples: 12_000, ..Default::default() });
        let mallory_spec = WatermarkSpec::builder(gen.item_domain())
            .master_key("evidence-mallory")
            .e(10)
            .wm_len(10)
            .expected_tuples(12_000)
            .build()
            .unwrap();
        let mallory = Claim {
            claimant: "mallory".into(),
            spec: mallory_spec,
            watermark: Watermark::from_u64(0x2A5, 10),
        };
        session.embed(&mut rel, &wm).unwrap();
        additive_attack(&mut rel, &mallory, "visit_nbr", "item_nbr").unwrap();

        let (fast_outcome, fast_a, fast_b) =
            session.contest(&owner, &mallory, &rel, 1e-2, 0.01).unwrap();
        let (outcome, cert_a, cert_b) =
            session.contest_certified(&owner, &mallory, &rel, 1e-2, 0.01).unwrap();
        assert_eq!(outcome, fast_outcome);
        assert_eq!(cert_a.outcome.decode, fast_a.decode);
        assert_eq!(cert_b.outcome.decode, fast_b.decode);
        assert_eq!(cert_a.outcome.vote_unanimity.to_bits(), fast_a.vote_unanimity.to_bits());

        for (cert, opponent) in [(&cert_a, "mallory"), (&cert_b, "owner")] {
            let summary = verify_evidence(&cert.bundle).unwrap();
            let contest = summary.contest.as_ref().unwrap();
            assert_eq!(contest.opponent, opponent);
            assert!(contest.outcome.contains("owner"), "{}", contest.outcome);
        }
    }

    #[test]
    fn tampered_bundles_are_rejected_not_accepted() {
        let (mut rel, session, wm) = fixture(3_000, 10);
        session.embed(&mut rel, &wm).unwrap();
        let certified = session.detect_certified(&rel, &wm).unwrap();
        let bundle = certified.bundle;
        verify_evidence(&bundle).unwrap();

        // Any single flipped byte breaks the magic, the checksum, or
        // the framing.
        for at in [0usize, 9, 41, HEADER + 3, bundle.len() - 1] {
            let mut evil = bundle.clone();
            evil[at] ^= 0x40;
            let err = verify_evidence(&evil).unwrap_err();
            assert!(
                matches!(err, CoreError::EvidenceInvalid { .. }),
                "byte {at}: wrong error {err:?}"
            );
        }
        // Truncations at every boundary class.
        for keep in [0usize, 7, HEADER - 1, HEADER + 10, bundle.len() - 1] {
            let err = verify_evidence(&bundle[..keep]).unwrap_err();
            assert!(matches!(err, CoreError::EvidenceInvalid { .. }), "keep {keep}");
        }
    }

    #[test]
    fn rehashed_inconsistent_payload_is_still_rejected() {
        let (mut rel, session, wm) = fixture(3_000, 10);
        session.embed(&mut rel, &wm).unwrap();
        let bundle = session.detect_certified(&rel, &wm).unwrap().bundle;

        // An adversary who re-computes the checksum after inflating a
        // tally count still fails the internal consistency re-fold.
        let mut payload = bundle[HEADER..].to_vec();
        // First tally's fit_tuples lives right after the identity
        // section; easier and robust: flip a vote count somewhere in
        // the middle of the payload and re-frame.
        let mid = payload.len() / 2;
        payload[mid] = payload[mid].wrapping_add(1);
        let mut evil = Vec::new();
        evil.extend_from_slice(MAGIC);
        evil.extend_from_slice(&HashAlgorithm::Sha256.digest(&payload));
        evil.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        evil.extend_from_slice(&payload);
        let err = verify_evidence(&evil).unwrap_err();
        assert!(matches!(err, CoreError::EvidenceInvalid { .. }), "{err:?}");
    }

    #[test]
    fn verify_needs_neither_relation_nor_keys() {
        // The bundle alone — bytes in, summary out. (The compiler
        // enforces this: verify_evidence's signature takes only bytes.
        // This test pins that the summary carries the court-relevant
        // facts.)
        let (mut rel, session, wm) = fixture(6_000, 60);
        session.embed(&mut rel, &wm).unwrap();
        let certified = session.detect_certified(&rel, &wm).unwrap();
        drop(rel);
        drop(session);
        let summary = verify_evidence(&certified.bundle).unwrap();
        assert_eq!(summary.key_commitment.len(), 64);
        assert!(summary.relation.starts_with("whole relation"));
        assert!(summary.claim.unwrap().is_significant(1e-2));
    }
}
