//! Watermarking-quality metrics in the spirit of the paper's own
//! evaluation framework citation — Sion, Atallah & Prabhakar,
//! *"Power: metrics for evaluating watermarking algorithms"*
//! (IEEE ITCC 2002, reference \[11\]).
//!
//! The POWER framework scores a watermarking run on three axes:
//!
//! * **distortion** — how much the marking changed the data,
//! * **resilience** — how much of the mark survives a given attack,
//! * **convince-ability** — how improbable the surviving evidence is
//!   by chance.
//!
//! [`score_run`] computes all three for a concrete
//! (embed → attack → decode) execution, giving benches and
//! applications a single comparable summary.

use catmark_relation::{CategoricalDomain, FrequencyHistogram, Relation};

use crate::decode::Decoder;
use crate::detect::detect;
use crate::error::CoreError;
use crate::spec::{Watermark, WatermarkSpec};

/// The POWER-style score of one watermarking run.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerScore {
    /// Fraction of tuples whose marked attribute differs from the
    /// original (data distortion, lower is better).
    pub distortion_rate: f64,
    /// L1 drift of the attribute's frequency histogram introduced by
    /// marking (semantic distortion, lower is better).
    pub frequency_drift: f64,
    /// Fraction of watermark bits recovered after the attack
    /// (resilience, higher is better).
    pub resilience: f64,
    /// Probability the recovered evidence arises by chance
    /// (convince-ability, lower is better).
    pub false_positive_probability: f64,
    /// Fraction of the suspect's fit tuples that still vote
    /// (carrier survival under the attack).
    pub carrier_survival: f64,
}

impl PowerScore {
    /// A single scalar for coarse ranking: resilience minus distortion
    /// penalties, zeroed when the evidence is not significant at 1%.
    ///
    /// This mirrors POWER's intent (one comparable number) without
    /// claiming its exact weighting, which the ITCC paper leaves
    /// application-specific.
    #[must_use]
    pub fn composite(&self) -> f64 {
        if self.false_positive_probability > 1e-2 {
            return 0.0;
        }
        (self.resilience - self.distortion_rate - self.frequency_drift).max(0.0)
    }
}

/// Score a complete run: `original` (pre-marking), `marked`
/// (post-marking, pre-attack), `suspect` (post-attack), the spec and
/// the embedded mark.
///
/// # Errors
///
/// Attribute-resolution failures or histogram errors on the original
/// / marked relations (the suspect may contain foreign values — those
/// only reduce `carrier_survival`).
pub fn score_run(
    original: &Relation,
    marked: &Relation,
    suspect: &Relation,
    spec: &WatermarkSpec,
    wm: &Watermark,
    key_attr: &str,
    target_attr: &str,
) -> Result<PowerScore, CoreError> {
    let attr_idx = original.schema().index_of(target_attr)?;
    let changed = original
        .iter()
        .zip(marked.iter())
        .filter(|(a, b)| a.get(attr_idx) != b.get(attr_idx))
        .count();
    let distortion_rate = changed as f64 / original.len().max(1) as f64;

    let frequency_drift = histogram_drift(original, marked, attr_idx, &spec.domain)?;

    let key_idx = suspect.schema().index_of(key_attr)?;
    let suspect_attr_idx = suspect.schema().index_of(target_attr)?;
    let decode = Decoder::engine(spec).decode_by_idx(
        suspect,
        key_idx,
        suspect_attr_idx,
        &crate::ecc::MajorityVotingEcc,
    )?;
    let detection = detect(&decode.watermark, wm);
    let carrier_survival = if decode.fit_tuples == 0 {
        0.0
    } else {
        decode.votes_cast as f64 / decode.fit_tuples as f64
    };
    Ok(PowerScore {
        distortion_rate,
        frequency_drift,
        resilience: detection.match_fraction,
        false_positive_probability: detection.false_positive_probability,
        carrier_survival,
    })
}

fn histogram_drift(
    original: &Relation,
    marked: &Relation,
    attr_idx: usize,
    domain: &CategoricalDomain,
) -> Result<f64, CoreError> {
    let before = FrequencyHistogram::from_relation(original, attr_idx, domain)?;
    let after = FrequencyHistogram::from_relation(marked, attr_idx, domain)?;
    Ok(before.l1_distance(&after))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::ErasurePolicy;

    use catmark_datagen::{ItemScanConfig, SalesGenerator};
    use catmark_relation::ops;

    fn run(e: u64, keep: f64) -> PowerScore {
        let gen = SalesGenerator::new(ItemScanConfig { tuples: 6_000, ..Default::default() });
        let original = gen.generate();
        let spec = WatermarkSpec::builder(gen.item_domain())
            .master_key("power-tests")
            .e(e)
            .wm_len(10)
            .expected_tuples(original.len())
            .erasure(ErasurePolicy::Abstain)
            .build()
            .unwrap();
        let wm = Watermark::from_u64(0b1010110100, 10);
        let mut marked = original.clone();
        crate::testkit::embed(&spec, &mut marked, "visit_nbr", "item_nbr", &wm).unwrap();
        let suspect = ops::sample_bernoulli(&marked, keep, 1234);
        score_run(&original, &marked, &suspect, &spec, &wm, "visit_nbr", "item_nbr").unwrap()
    }

    #[test]
    fn unattacked_run_scores_cleanly() {
        let score = run(30, 1.0);
        assert!((score.resilience - 1.0).abs() < 1e-9);
        assert!((score.carrier_survival - 1.0).abs() < 1e-9);
        // e = 30 alters ~1/30 of tuples.
        assert!((score.distortion_rate - 1.0 / 30.0).abs() < 0.01);
        assert!(score.frequency_drift < 0.1);
        assert!(score.false_positive_probability < 1e-2);
        assert!(score.composite() > 0.8);
    }

    #[test]
    fn distortion_scales_with_bandwidth() {
        let cheap = run(60, 1.0);
        let expensive = run(10, 1.0);
        assert!(expensive.distortion_rate > cheap.distortion_rate);
    }

    #[test]
    fn resilience_degrades_with_loss_but_survival_tracks_keep() {
        let intact = run(30, 1.0);
        let lossy = run(30, 0.3);
        assert!(lossy.resilience <= intact.resilience + 1e-9);
        // Survivors still vote: carrier survival is about the values'
        // integrity, not the row count.
        assert!((lossy.carrier_survival - 1.0).abs() < 1e-9);
    }

    #[test]
    fn composite_zeroes_on_insignificant_evidence() {
        let score = PowerScore {
            distortion_rate: 0.01,
            frequency_drift: 0.0,
            resilience: 0.6,
            false_positive_probability: 0.37,
            carrier_survival: 1.0,
        };
        assert_eq!(score.composite(), 0.0);
    }

    #[test]
    fn composite_never_negative() {
        let score = PowerScore {
            distortion_rate: 0.9,
            frequency_drift: 0.9,
            resilience: 0.5,
            false_positive_probability: 1e-5,
            carrier_survival: 1.0,
        };
        assert_eq!(score.composite(), 0.0);
    }
}
