//! Incremental re-mark and re-detect under churn: [`MarkSession`]
//! drivers that diff [`VersionManifest`]s instead of re-visiting every
//! segment.
//!
//! A versioned segmented relation (see `catmark_relation::versioned`)
//! commits each state as an ordered list of content-hashed segment
//! blobs. When a marked relation is updated and must be re-marked, the
//! manifests tell the drivers **exactly** which segments changed: a
//! segment whose blob hash matches the last *marked* manifest still
//! holds its marked bytes, and one whose hash differs must be
//! re-embedded.
//!
//! # Why skipping clean segments is byte-identical
//!
//! Embedding is **idempotent**: a fit tuple's new value is a pure
//! function of its key, the watermark, and the domain — never of the
//! value currently stored. Re-embedding an already-marked segment
//! rewrites every fit tuple to the value it already holds. So the full
//! re-pass and the incremental pass agree byte for byte: on dirty
//! segments both run the same per-segment pass (a segment's
//! [`crate::plan::MarkPlan`] is an exact slice of the monolithic one),
//! and on clean segments the full pass is a no-op while the
//! incremental pass does not even page them in. The golden
//! byte-identity suite pins this.
//!
//! Decoding is a sum of commutative per-position vote increments
//! resolved once at the end, so a clean segment's votes can be folded
//! in from a cache ([`VoteCache`], keyed by `(spec identity, blob
//! hash)`) instead of re-hashing its keys — the resolved
//! [`DecodeReport`] is identical to the full streaming decode by
//! commutativity (`VoteAccumulator` merge order never matters).
//!
//! # Contract
//!
//! The caller hands the driver two manifests of the **same** pile:
//! `marked`, committed immediately after the previous (full or
//! incremental) embed, and `current`, committed after the updates and
//! describing `seg`'s present contents. Commit before re-marking —
//! uncommitted mutations are invisible to the diff. When the
//! geometry changed (segment size, segment count, or any segment's
//! row count), the diff is undefined and the drivers fall back to the
//! full segmented pass.

use std::collections::HashMap;

use catmark_relation::{BlobHash, CacheStats, SegmentedRelation, VersionManifest};

use crate::decode::{DecodeReport, Decoder, VoteAccumulator};
use crate::detect::detect;
use crate::ecc::MajorityVotingEcc;
use crate::embed::{EmbedReport, Embedder};
use crate::error::CoreError;
use crate::plan::spec_identity;
use crate::session::{MarkSession, Verdict};
use crate::spec::Watermark;

/// Outcome of [`MarkSession::embed_incremental`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncrementalEmbedReport {
    /// The embed pass over the segments actually visited. On the
    /// incremental path `total_tuples`, `fit_tuples`, `touched_rows`,
    /// and `positions_covered` describe the **dirty segments only**
    /// (clean segments already hold their marked bytes); on the
    /// fallback path this is the full-pass report.
    pub report: EmbedReport,
    /// Segments re-embedded because their blob hash changed.
    pub dirty_segments: usize,
    /// Segments skipped because their blob hash still matches the
    /// marked manifest.
    pub clean_segments: usize,
    /// Whether the driver fell back to the full segmented pass
    /// because the manifests' geometries differ.
    pub full_fallback: bool,
}

/// Outcome of [`MarkSession::decode_incremental`].
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalDecodeReport {
    /// The resolved decode — identical to
    /// [`MarkSession::decode_segmented`] over the same contents.
    pub report: DecodeReport,
    /// Segments whose votes were accumulated fresh this pass.
    pub accumulated_segments: usize,
    /// Segments whose votes were folded in from the [`VoteCache`].
    pub cached_segments: usize,
}

/// Memoized per-segment vote tallies, keyed by `(spec identity, blob
/// hash)`.
///
/// A segment blob's votes are a pure function of its bytes under the
/// spec's keys, so a content hash fully identifies them: any version,
/// any position in the relation, any time. After each
/// [`MarkSession::decode_incremental`] pass the cache retains only
/// the hashes of the manifest just decoded (per spec), bounding it to
/// one manifest's worth of tallies per spec while keeping the clean
/// majority warm across churn rounds.
#[derive(Debug, Default)]
pub struct VoteCache {
    entries: HashMap<(u64, BlobHash), VoteAccumulator>,
    stats: CacheStats,
}

impl VoteCache {
    /// Fresh, empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached segment tallies currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no tallies.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime hit/miss/eviction counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drop every cached tally. Counters survive — they describe
    /// traffic, not contents.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Counted lookup.
    pub(crate) fn lookup(&mut self, spec_id: u64, hash: &BlobHash) -> Option<&VoteAccumulator> {
        let found = self.entries.get(&(spec_id, *hash));
        if found.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        found
    }

    pub(crate) fn insert(&mut self, spec_id: u64, hash: BlobHash, votes: VoteAccumulator) {
        self.entries.insert((spec_id, hash), votes);
    }

    /// Keep only `spec_id`'s entries for blobs referenced by
    /// `manifest` (other specs' entries are untouched). Dropped
    /// entries count as evictions.
    pub(crate) fn retain_manifest(&mut self, spec_id: u64, manifest: &VersionManifest) {
        let live: std::collections::HashSet<&BlobHash> =
            manifest.segments.iter().map(|s| &s.hash).collect();
        let before = self.entries.len();
        self.entries.retain(|(sid, hash), _| *sid != spec_id || live.contains(hash));
        self.stats.evictions += (before - self.entries.len()) as u64;
    }
}

impl MarkSession {
    /// Check that `manifest` describes `seg`'s committed geometry —
    /// the cheap invariant a stale or foreign manifest trips over.
    pub(crate) fn check_manifest(
        seg: &SegmentedRelation,
        manifest: &VersionManifest,
    ) -> Result<(), CoreError> {
        let matches = manifest.segments.len() == seg.segment_count()
            && (0..seg.segment_count())
                .all(|i| manifest.segments[i].rows == seg.segment_len(i) as u64);
        if matches {
            Ok(())
        } else {
            Err(CoreError::InvalidSpec(format!(
                "manifest v{} ({} segments, {} rows) does not describe this segmented \
                 relation ({} segments, {} rows); commit the relation and pass the \
                 resulting manifest",
                manifest.id,
                manifest.segments.len(),
                manifest.rows(),
                seg.segment_count(),
                seg.len(),
            )))
        }
    }

    /// [`MarkSession::embed_segmented`] that re-embeds **only** the
    /// segments whose content hash changed between the `marked`
    /// manifest (committed right after the previous embed) and the
    /// `current` one (committed after the updates, describing `seg`
    /// now). Byte-identical to the full segmented pass — embedding is
    /// idempotent, so segments whose blobs are unchanged already hold
    /// exactly the bytes a full re-pass would write (see the module
    /// docs). Falls back to the full pass when the manifests'
    /// geometries differ.
    ///
    /// # Errors
    ///
    /// Binding drift, watermark length mismatch,
    /// [`CoreError::InvalidSpec`] when `current` does not describe
    /// `seg`, or [`CoreError::Relation`] when paging/spilling fails.
    pub fn embed_incremental(
        &self,
        seg: &mut SegmentedRelation,
        wm: &Watermark,
        marked: &VersionManifest,
        current: &VersionManifest,
    ) -> Result<IncrementalEmbedReport, CoreError> {
        let wm_data = self.checked_wm_data(seg, wm)?;
        Self::check_manifest(seg, current)?;
        let Some(dirty) = current.dirty_against(marked) else {
            // Geometry changed: the per-segment diff is undefined, so
            // run the plain driver (which itself dispatches
            // sequential/pipelined per policy).
            let report = self.embed_segmented(seg, wm)?;
            return Ok(IncrementalEmbedReport {
                report,
                dirty_segments: seg.segment_count(),
                clean_segments: 0,
                full_fallback: true,
            });
        };
        let spec = self.spec();
        let key_idx = self.key().index();
        let attr_idx = self.target().index();
        let engine = Embedder::engine(spec);
        let cacheable = Self::segment_plans_cacheable(seg);
        let mut report = EmbedReport {
            total_tuples: dirty.iter().map(|&i| seg.segment_len(i)).sum(),
            fit_tuples: 0,
            altered: 0,
            unchanged: 0,
            vetoed: 0,
            positions_covered: 0,
            positions_total: spec.wm_data_len,
            touched_rows: Vec::new(),
        };
        let mut covered = vec![false; spec.wm_data_len];
        // Walk all segments to keep the global row base exact, but
        // only dirty ones are paged in and re-embedded.
        let mut next_dirty = dirty.iter().copied().peekable();
        let mut base = 0usize;
        for i in 0..seg.segment_count() {
            let rows = seg.segment_len(i);
            if next_dirty.peek() == Some(&i) {
                next_dirty.next();
                seg.with_segment_mut(i, |rel| -> Result<(), CoreError> {
                    let plan = self.segment_plan(rel, key_idx, cacheable)?;
                    report.fit_tuples += plan.fit().len();
                    engine.embed_pass(
                        rel,
                        attr_idx,
                        &wm_data,
                        None,
                        &plan,
                        base,
                        &mut covered,
                        &mut report,
                    )
                })
                .map_err(CoreError::Relation)??;
            }
            base += rows;
        }
        report.positions_covered = covered.iter().filter(|&&c| c).count();
        Ok(IncrementalEmbedReport {
            report,
            dirty_segments: dirty.len(),
            clean_segments: seg.segment_count() - dirty.len(),
            full_fallback: false,
        })
    }

    /// [`MarkSession::decode_segmented`] that folds cached
    /// per-segment vote tallies for blobs already seen by `cache` and
    /// accumulates fresh ones only for new blobs. The resolved report
    /// is identical to the full streaming decode: votes are
    /// commutative per-position increments, so merge order cannot
    /// change the resolution. `manifest` must describe `seg`'s
    /// committed contents.
    ///
    /// # Errors
    ///
    /// Binding drift, [`CoreError::InvalidSpec`] when `manifest` does
    /// not describe `seg`, or [`CoreError::Relation`] when paging
    /// fails.
    pub fn decode_incremental(
        &self,
        seg: &mut SegmentedRelation,
        manifest: &VersionManifest,
        cache: &mut VoteCache,
    ) -> Result<IncrementalDecodeReport, CoreError> {
        self.check_segmented(seg)?;
        Self::check_manifest(seg, manifest)?;
        let spec = self.spec();
        let key_idx = self.key().index();
        let attr_idx = self.target().index();
        let spec_id = spec_identity(spec);
        let cacheable = Self::segment_plans_cacheable(seg);
        let mut votes = VoteAccumulator::new(spec.wm_data_len);
        let mut accumulated = 0usize;
        let mut cached = 0usize;
        for i in 0..seg.segment_count() {
            let hash = manifest.segments[i].hash;
            if let Some(tally) = cache.lookup(spec_id, &hash) {
                votes.merge(tally);
                cached += 1;
                continue;
            }
            let mut tally = VoteAccumulator::new(spec.wm_data_len);
            seg.with_segment(i, |rel| -> Result<(), CoreError> {
                let plan = self.segment_plan(rel, key_idx, cacheable)?;
                tally.accumulate(spec, rel, attr_idx, &plan);
                Ok(())
            })
            .map_err(CoreError::Relation)??;
            votes.merge(&tally);
            cache.insert(spec_id, hash, tally);
            accumulated += 1;
        }
        cache.retain_manifest(spec_id, manifest);
        let report = Decoder::engine(spec).resolve(&MajorityVotingEcc, votes)?;
        Ok(IncrementalDecodeReport {
            report,
            accumulated_segments: accumulated,
            cached_segments: cached,
        })
    }

    /// [`MarkSession::detect_segmented`] through the incremental
    /// decode: the blind decode (vote cache and all) weighed against
    /// the claimed mark. This is the engine under a service's
    /// `detect_at`: open a historical version, decode it, judge the
    /// claim.
    ///
    /// # Errors
    ///
    /// As [`MarkSession::decode_incremental`].
    pub fn detect_incremental(
        &self,
        seg: &mut SegmentedRelation,
        claimed: &Watermark,
        manifest: &VersionManifest,
        cache: &mut VoteCache,
    ) -> Result<Verdict, CoreError> {
        let inc = self.decode_incremental(seg, manifest, cache)?;
        let detection = detect(&inc.report.watermark, claimed);
        Ok(Verdict { decode: inc.report, detection })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catmark_datagen::{ItemScanConfig, SalesGenerator};
    use catmark_relation::{ContentStore, Relation, Value, VersionLog};

    const SEG_ROWS: usize = 250;

    fn fixture(tuples: usize, e: u64) -> (Relation, MarkSession, Watermark) {
        let gen = SalesGenerator::new(ItemScanConfig { tuples, ..Default::default() });
        let rel = gen.generate();
        let spec = crate::WatermarkSpec::builder(gen.item_domain())
            .master_key("incremental-tests")
            .e(e)
            .wm_len(10)
            .expected_tuples(tuples)
            .build()
            .unwrap();
        let session = MarkSession::builder(spec)
            .key_column("visit_nbr")
            .target_column("item_nbr")
            .bind(&rel)
            .unwrap();
        (rel, session, Watermark::from_u64(0b1011001110, 10))
    }

    fn versioned(rel: &Relation, store: &ContentStore) -> SegmentedRelation {
        SegmentedRelation::builder(rel.schema().clone())
            .segment_rows(SEG_ROWS)
            .store(Box::new(store.clone()))
            .from_relation(rel)
            .unwrap()
    }

    /// Overwrite ~`frac` of the target column with deterministic
    /// domain values, clustered so only some segments go dirty.
    fn churn(seg: &mut SegmentedRelation, session: &MarkSession, frac_rows: usize, seed: u64) {
        let domain: Vec<Value> = session.spec().domain.values().to_vec();
        let mut state = seed | 1;
        let attr = session.target().index();
        for k in 0..frac_rows {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Confine updates to the first quarter of the segments so
            // the rest stay clean.
            let span = (seg.segment_count() / 4).max(1) * SEG_ROWS;
            let row = (state as usize) % span.min(seg.len());
            let value = domain[(k + row) % domain.len()].clone();
            let (s, local) = (row / SEG_ROWS, row % SEG_ROWS);
            seg.with_segment_mut(s, |rel| rel.update_value(local, attr, value)).unwrap().unwrap();
        }
    }

    #[test]
    fn incremental_embed_is_byte_identical_to_full_repass() {
        let (rel, session, wm) = fixture(4_000, 10);
        let store = ContentStore::in_memory();
        let mut log = VersionLog::new();
        let mut seg = versioned(&rel, &store);
        session.embed_segmented_sequential(&mut seg, &wm).unwrap();
        let marked_id = log.commit(&mut seg, &store).unwrap();

        churn(&mut seg, &session, 400, 0xC0FFEE);
        let current_id = log.commit(&mut seg, &store).unwrap();
        let marked = log.get(marked_id).unwrap().clone();
        let current = log.get(current_id).unwrap().clone();

        // A twin of the updated, pre-re-mark state for the full pass.
        let mut twin = log.open_version(current_id, rel.schema(), &store, None).unwrap();
        session.embed_segmented_sequential(&mut twin, &wm).unwrap();

        let inc = session.embed_incremental(&mut seg, &wm, &marked, &current).unwrap();
        assert!(!inc.full_fallback);
        assert!(inc.dirty_segments > 0, "churn dirtied no segment");
        assert!(inc.clean_segments > 0, "churn dirtied every segment");
        assert_eq!(inc.dirty_segments + inc.clean_segments, seg.segment_count());

        let ours = seg.to_relation().unwrap();
        let theirs = twin.to_relation().unwrap();
        assert!(
            ours.iter().zip(theirs.iter()).all(|(a, b)| a == b),
            "incremental re-mark diverged from the full re-pass"
        );
        // And the re-marked commit shares every clean blob with the
        // marked ancestor.
        let remarked_id = log.commit(&mut seg, &store).unwrap();
        let remarked = log.get(remarked_id).unwrap();
        let still_dirty = remarked.dirty_against(&marked).unwrap();
        assert!(still_dirty.len() <= inc.dirty_segments);
    }

    #[test]
    fn incremental_decode_matches_full_and_reuses_cached_tallies() {
        let (rel, session, wm) = fixture(4_000, 10);
        let store = ContentStore::in_memory();
        let mut log = VersionLog::new();
        let mut seg = versioned(&rel, &store);
        session.embed_segmented_sequential(&mut seg, &wm).unwrap();
        let marked_id = log.commit(&mut seg, &store).unwrap();
        let marked = log.get(marked_id).unwrap().clone();

        let full = session.decode_segmented_sequential(&mut seg).unwrap();
        let mut cache = VoteCache::new();
        let first = session.decode_incremental(&mut seg, &marked, &mut cache).unwrap();
        assert_eq!(first.report, full, "cold incremental decode diverges");
        assert_eq!(first.accumulated_segments, seg.segment_count());
        assert_eq!(first.cached_segments, 0);

        let second = session.decode_incremental(&mut seg, &marked, &mut cache).unwrap();
        assert_eq!(second.report, full, "warm incremental decode diverges");
        assert_eq!(second.cached_segments, seg.segment_count());
        assert_eq!(second.accumulated_segments, 0);
        assert!(cache.stats().hits >= seg.segment_count() as u64);

        // Churn, re-mark incrementally, and decode again: only the
        // dirtied segments re-accumulate, and the report still equals
        // the full decode of the new state.
        churn(&mut seg, &session, 400, 0xBEEF);
        let cur_id = log.commit(&mut seg, &store).unwrap();
        let cur = log.get(cur_id).unwrap().clone();
        let inc = session.embed_incremental(&mut seg, &wm, &marked, &cur).unwrap();
        let remarked_id = log.commit(&mut seg, &store).unwrap();
        let remarked = log.get(remarked_id).unwrap().clone();
        let third = session.decode_incremental(&mut seg, &remarked, &mut cache).unwrap();
        assert_eq!(third.report, session.decode_segmented_sequential(&mut seg).unwrap());
        assert!(third.cached_segments >= seg.segment_count() - inc.dirty_segments);
        assert!(cache.len() <= seg.segment_count(), "cache retained dead blobs");

        let verdict = session.detect_incremental(&mut seg, &wm, &remarked, &mut cache).unwrap();
        assert!(verdict.is_significant(1e-3));
    }

    #[test]
    fn geometry_change_falls_back_to_the_full_pass() {
        let (rel, session, wm) = fixture(1_000, 10);
        let store = ContentStore::in_memory();
        let mut log = VersionLog::new();
        let mut seg = versioned(&rel, &store);
        session.embed_segmented_sequential(&mut seg, &wm).unwrap();
        log.commit(&mut seg, &store).unwrap();

        // A manifest of the same data under different segmentation.
        let other_store = ContentStore::in_memory();
        let mut other_log = VersionLog::new();
        let mut coarse = SegmentedRelation::builder(rel.schema().clone())
            .segment_rows(SEG_ROWS * 2)
            .store(Box::new(other_store.clone()))
            .from_relation(&rel)
            .unwrap();
        let foreign_id = other_log.commit(&mut coarse, &other_store).unwrap();
        let foreign = other_log.get(foreign_id).unwrap().clone();

        let current = log.latest().unwrap().clone();
        let inc = session.embed_incremental(&mut seg, &wm, &foreign, &current).unwrap();
        assert!(inc.full_fallback);
        assert_eq!(inc.dirty_segments, seg.segment_count());

        // A manifest that doesn't describe `seg` at all is an error,
        // not a silent wrong diff.
        assert!(matches!(
            session.embed_incremental(&mut seg, &wm, &current, &foreign),
            Err(CoreError::InvalidSpec(_))
        ));
        let mut cache = VoteCache::new();
        assert!(matches!(
            session.decode_incremental(&mut seg, &foreign, &mut cache),
            Err(CoreError::InvalidSpec(_))
        ));
    }
}
