//! Persisting detection key material.
//!
//! Blind detection (Section 3.2.2) needs exactly the
//! [`WatermarkSpec`] — keys, parameters and the attribute's value
//! domain — possibly years after embedding ("it is unrealistic to
//! assume the original data available after a longer time elapses").
//! This module serializes a spec to a self-describing, line-oriented
//! text format suitable for escrow (print it, vault it, hand it to a
//! notary):
//!
//! ```text
//! catmark-key-file v1
//! algo sha256
//! k1 <hex>
//! k2 <hex>
//! e 60
//! wm_len 10
//! wm_data_len 100
//! erasure random-fill
//! domain-int 10000 10001 10002 …
//! ```
//!
//! Text domains use one `domain-text <hex-of-utf8>` entry per value so
//! arbitrary content round-trips. The format is versioned and refuses
//! unknown versions.
//!
//! # Tenant-scoped registries
//!
//! The service front end holds key material for many tenants at once,
//! so single-spec escrow files compose into a versioned
//! [`TenantKeyRegistry`]: one tenant, several *named* keys, serialized
//! as another line-oriented text file:
//!
//! ```text
//! catmark-tenant-registry v1
//! tenant acme
//! key production <hex-of-key-file>
//! key staging <hex-of-key-file>
//! ```
//!
//! Each `key` payload is a complete v1 key file, hex-encoded onto one
//! line, so the registry inherits the escrow format verbatim (and any
//! future key-file version bump flows through unchanged). Lookups are
//! tenant-checked: asking a registry bound to one tenant for another
//! tenant's key is a [`CoreError::TenantIsolation`] error, never a
//! fallthrough.

use catmark_crypto::hex::{from_hex, to_hex};
use catmark_crypto::SecretKey;
use catmark_relation::{CategoricalDomain, Value};

use crate::decode::ErasurePolicy;
use crate::error::CoreError;
use crate::spec::WatermarkSpec;

const MAGIC: &str = "catmark-key-file v1";

/// Serialize `spec` to the key-file text format.
#[must_use]
pub fn to_key_file(spec: &WatermarkSpec) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{MAGIC}");
    let _ = writeln!(out, "algo {}", spec.algo);
    let _ = writeln!(out, "k1 {}", to_hex(spec.k1.as_bytes()));
    let _ = writeln!(out, "k2 {}", to_hex(spec.k2.as_bytes()));
    let _ = writeln!(out, "e {}", spec.e);
    let _ = writeln!(out, "wm_len {}", spec.wm_len);
    let _ = writeln!(out, "wm_data_len {}", spec.wm_data_len);
    let erasure = match spec.erasure {
        ErasurePolicy::Abstain => "abstain",
        ErasurePolicy::RandomFill => "random-fill",
        ErasurePolicy::ZeroFill => "zero-fill",
    };
    let _ = writeln!(out, "erasure {erasure}");
    // Integer-only domains pack onto one line; mixed/text domains get
    // one line per value.
    if spec.domain.values().iter().all(|v| matches!(v, Value::Int(_))) {
        let ints: Vec<String> = spec
            .domain
            .values()
            .iter()
            .map(|v| v.as_int().expect("checked integer").to_string())
            .collect();
        let _ = writeln!(out, "domain-int {}", ints.join(" "));
    } else {
        for v in spec.domain.values() {
            match v {
                Value::Int(i) => {
                    let _ = writeln!(out, "domain-int {i}");
                }
                Value::Text(s) => {
                    let _ = writeln!(out, "domain-text {}", to_hex(s.as_bytes()));
                }
            }
        }
    }
    out
}

/// Parse a key file back into a [`WatermarkSpec`].
///
/// # Errors
///
/// [`CoreError::InvalidSpec`] on version mismatch, missing or
/// malformed fields.
pub fn from_key_file(text: &str) -> Result<WatermarkSpec, CoreError> {
    let bad = |msg: String| CoreError::InvalidSpec(format!("key file: {msg}"));
    let mut lines = text.lines();
    let magic = lines.next().ok_or_else(|| bad("empty input".into()))?;
    if magic.trim() != MAGIC {
        return Err(bad(format!("unsupported header {magic:?}")));
    }
    let mut algo = None;
    let mut k1 = None;
    let mut k2 = None;
    let mut e = None;
    let mut wm_len = None;
    let mut wm_data_len = None;
    let mut erasure = ErasurePolicy::default();
    let mut domain_values: Vec<Value> = Vec::new();
    for (idx, raw) in lines.enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let (field, rest) =
            line.split_once(' ').ok_or_else(|| bad(format!("line {}: missing value", idx + 2)))?;
        match field {
            "algo" => {
                algo = Some(rest.parse().map_err(|e| bad(format!("algo: {e}")))?);
            }
            "k1" => {
                k1 = Some(SecretKey::from_bytes(from_hex(rest).map_err(|e| bad(e.to_string()))?))
            }
            "k2" => {
                k2 = Some(SecretKey::from_bytes(from_hex(rest).map_err(|e| bad(e.to_string()))?))
            }
            "e" => e = Some(rest.parse::<u64>().map_err(|e| bad(format!("e: {e}")))?),
            "wm_len" => {
                wm_len = Some(rest.parse::<usize>().map_err(|e| bad(format!("wm_len: {e}")))?);
            }
            "wm_data_len" => {
                wm_data_len =
                    Some(rest.parse::<usize>().map_err(|e| bad(format!("wm_data_len: {e}")))?);
            }
            "erasure" => {
                erasure = match rest {
                    "abstain" => ErasurePolicy::Abstain,
                    "random-fill" => ErasurePolicy::RandomFill,
                    "zero-fill" => ErasurePolicy::ZeroFill,
                    other => return Err(bad(format!("unknown erasure policy {other:?}"))),
                };
            }
            "domain-int" => {
                for part in rest.split_whitespace() {
                    domain_values.push(Value::Int(
                        part.parse().map_err(|e| bad(format!("domain-int: {e}")))?,
                    ));
                }
            }
            "domain-text" => {
                let bytes = from_hex(rest).map_err(|e| bad(e.to_string()))?;
                let s = String::from_utf8(bytes).map_err(|e| bad(format!("domain-text: {e}")))?;
                domain_values.push(Value::Text(s));
            }
            other => return Err(bad(format!("unknown field {other:?}"))),
        }
    }
    let domain = CategoricalDomain::new(domain_values).map_err(|e| bad(format!("domain: {e}")))?;
    let spec = WatermarkSpec::builder(domain)
        .algorithm(algo.ok_or_else(|| bad("missing algo".into()))?)
        .keys(
            k1.ok_or_else(|| bad("missing k1".into()))?,
            k2.ok_or_else(|| bad("missing k2".into()))?,
        )
        .e(e.ok_or_else(|| bad("missing e".into()))?)
        .wm_len(wm_len.ok_or_else(|| bad("missing wm_len".into()))?)
        .wm_data_len(wm_data_len.ok_or_else(|| bad("missing wm_data_len".into()))?)
        .erasure(erasure)
        .build()?;
    Ok(spec)
}

const REGISTRY_MAGIC: &str = "catmark-tenant-registry v1";

/// `true` when `s` can serve as a tenant or key name: non-empty and
/// free of whitespace (the formats above are space-delimited).
fn valid_token(s: &str) -> bool {
    !s.is_empty() && !s.chars().any(char::is_whitespace)
}

/// A named collection of [`WatermarkSpec`]s bound to a single tenant.
///
/// The service daemon loads one registry per tenant; every lookup
/// carries the requesting tenant's name and is refused with
/// [`CoreError::TenantIsolation`] when it does not match the tenant the
/// registry was built for. Key names are unique within a registry and
/// preserve insertion order.
#[derive(Debug, Clone)]
pub struct TenantKeyRegistry {
    tenant: String,
    keys: Vec<(String, WatermarkSpec)>,
}

impl TenantKeyRegistry {
    /// Create an empty registry bound to `tenant`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidSpec`] when `tenant` is empty or contains
    /// whitespace (the on-disk format is space-delimited).
    pub fn new(tenant: &str) -> Result<Self, CoreError> {
        if !valid_token(tenant) {
            return Err(CoreError::InvalidSpec(format!(
                "tenant registry: invalid tenant name {tenant:?} (must be non-empty, no whitespace)"
            )));
        }
        Ok(TenantKeyRegistry { tenant: tenant.to_string(), keys: Vec::new() })
    }

    /// The tenant this registry is bound to.
    #[must_use]
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Add (or replace, for key rotation) the spec stored under `name`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidSpec`] when `name` is empty or contains
    /// whitespace.
    pub fn insert(&mut self, name: &str, spec: WatermarkSpec) -> Result<(), CoreError> {
        if !valid_token(name) {
            return Err(CoreError::InvalidSpec(format!(
                "tenant registry: invalid key name {name:?} (must be non-empty, no whitespace)"
            )));
        }
        match self.keys.iter_mut().find(|(n, _)| n == name) {
            Some((_, slot)) => *slot = spec,
            None => self.keys.push((name.to_string(), spec)),
        }
        Ok(())
    }

    /// Look up the spec stored under `name` on behalf of `tenant`.
    ///
    /// # Errors
    ///
    /// [`CoreError::TenantIsolation`] when `tenant` is not the tenant
    /// this registry is bound to — checked *before* the name, so a
    /// cross-tenant caller cannot even probe which key names exist.
    /// [`CoreError::InvalidSpec`] when the name is unknown.
    pub fn get(&self, tenant: &str, name: &str) -> Result<&WatermarkSpec, CoreError> {
        if tenant != self.tenant {
            return Err(CoreError::TenantIsolation {
                tenant: self.tenant.clone(),
                requested: tenant.to_string(),
            });
        }
        self.keys.iter().find(|(n, _)| n == name).map(|(_, spec)| spec).ok_or_else(|| {
            CoreError::InvalidSpec(format!(
                "tenant registry: tenant {tenant:?} has no key named {name:?}"
            ))
        })
    }

    /// The named entries, in insertion order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &WatermarkSpec)> {
        self.keys.iter().map(|(n, s)| (n.as_str(), s))
    }

    /// Number of named keys held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when no keys are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Serialize to the registry text format.
    #[must_use]
    pub fn to_registry_file(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{REGISTRY_MAGIC}");
        let _ = writeln!(out, "tenant {}", self.tenant);
        for (name, spec) in &self.keys {
            let _ = writeln!(out, "key {} {}", name, to_hex(to_key_file(spec).as_bytes()));
        }
        out
    }

    /// Parse a registry file produced by
    /// [`to_registry_file`](Self::to_registry_file).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidSpec`] on version mismatch, missing tenant,
    /// duplicate key names, or a malformed embedded key file.
    pub fn from_registry_file(text: &str) -> Result<Self, CoreError> {
        let bad = |msg: String| CoreError::InvalidSpec(format!("tenant registry: {msg}"));
        let mut lines = text.lines();
        let magic = lines.next().ok_or_else(|| bad("empty input".into()))?;
        if magic.trim() != REGISTRY_MAGIC {
            return Err(bad(format!("unsupported header {magic:?}")));
        }
        let mut tenant: Option<String> = None;
        let mut keys: Vec<(String, WatermarkSpec)> = Vec::new();
        for (idx, raw) in lines.enumerate() {
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            let (field, rest) = line
                .split_once(' ')
                .ok_or_else(|| bad(format!("line {}: missing value", idx + 2)))?;
            match field {
                "tenant" => {
                    if tenant.is_some() {
                        return Err(bad("duplicate tenant line".into()));
                    }
                    if !valid_token(rest) {
                        return Err(bad(format!("invalid tenant name {rest:?}")));
                    }
                    tenant = Some(rest.to_string());
                }
                "key" => {
                    if tenant.is_none() {
                        return Err(bad("key entry before tenant line".into()));
                    }
                    let (name, payload) = rest.split_once(' ').ok_or_else(|| {
                        bad(format!("line {}: key needs name and payload", idx + 2))
                    })?;
                    if keys.iter().any(|(n, _)| n == name) {
                        return Err(bad(format!("duplicate key name {name:?}")));
                    }
                    let bytes = from_hex(payload).map_err(|e| bad(format!("key {name:?}: {e}")))?;
                    let embedded =
                        String::from_utf8(bytes).map_err(|e| bad(format!("key {name:?}: {e}")))?;
                    let spec = from_key_file(&embedded)?;
                    keys.push((name.to_string(), spec));
                }
                other => return Err(bad(format!("unknown field {other:?}"))),
            }
        }
        let tenant = tenant.ok_or_else(|| bad("missing tenant line".into()))?;
        Ok(TenantKeyRegistry { tenant, keys })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Watermark;
    use catmark_crypto::HashAlgorithm;
    use catmark_datagen::{domains, ItemScanConfig, SalesGenerator};

    fn spec() -> WatermarkSpec {
        WatermarkSpec::builder(domains::product_codes(50, 1000))
            .master_key("keyfile-tests")
            .e(25)
            .wm_len(12)
            .wm_data_len(96)
            .erasure(ErasurePolicy::Abstain)
            .build()
            .unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let original = spec();
        let restored = from_key_file(&to_key_file(&original)).unwrap();
        assert_eq!(restored.algo, original.algo);
        assert_eq!(restored.k1, original.k1);
        assert_eq!(restored.k2, original.k2);
        assert_eq!(restored.e, original.e);
        assert_eq!(restored.wm_len, original.wm_len);
        assert_eq!(restored.wm_data_len, original.wm_data_len);
        assert_eq!(restored.erasure, original.erasure);
        assert_eq!(restored.domain, original.domain);
    }

    #[test]
    fn text_domains_round_trip() {
        let mut original = spec();
        original.domain = domains::cities();
        let restored = from_key_file(&to_key_file(&original)).unwrap();
        assert_eq!(restored.domain, domains::cities());
    }

    #[test]
    fn restored_spec_decodes_marked_data() {
        let gen = SalesGenerator::new(ItemScanConfig { tuples: 4_000, ..Default::default() });
        let mut rel = gen.generate();
        let original = WatermarkSpec::builder(gen.item_domain())
            .master_key("escrow")
            .e(15)
            .wm_len(10)
            .expected_tuples(rel.len())
            .erasure(ErasurePolicy::Abstain)
            .build()
            .unwrap();
        let wm = Watermark::from_u64(0b10_0110_1101 & 0x3FF, 10);
        crate::testkit::embed(&original, &mut rel, "visit_nbr", "item_nbr", &wm).unwrap();
        // Years later: only the key file survives.
        let restored = from_key_file(&to_key_file(&original)).unwrap();
        let decoded = crate::testkit::decode(&restored, &rel, "visit_nbr", "item_nbr").unwrap();
        assert_eq!(decoded.watermark, wm);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_key_file("").is_err());
        assert!(from_key_file("not-a-key-file v9\n").is_err());
        let mut missing_k1 = to_key_file(&spec());
        missing_k1 =
            missing_k1.lines().filter(|l| !l.starts_with("k1")).collect::<Vec<_>>().join("\n");
        assert!(from_key_file(&missing_k1).is_err());
        let truncated_domain =
            format!("{MAGIC}\nalgo sha256\nk1 aa\nk2 bb\ne 5\nwm_len 4\nwm_data_len 8\n");
        assert!(from_key_file(&truncated_domain).is_err(), "empty domain must fail");
        let unknown_field = format!("{}\nbogus 1\n", to_key_file(&spec()).trim());
        assert!(from_key_file(&unknown_field).is_err());
    }

    #[test]
    fn rejects_bad_erasure_and_algo() {
        let base = to_key_file(&spec());
        let bad_erasure = base.replace("erasure abstain", "erasure maybe");
        assert!(from_key_file(&bad_erasure).is_err());
        let bad_algo = base.replace("algo sha256", "algo rot13");
        assert!(from_key_file(&bad_algo).is_err());
    }

    #[test]
    fn tenant_registry_round_trips_named_keys() {
        let mut reg = TenantKeyRegistry::new("acme").unwrap();
        reg.insert("production", spec()).unwrap();
        let mut staging = spec();
        staging.domain = domains::cities();
        reg.insert("staging", staging.clone()).unwrap();

        let restored = TenantKeyRegistry::from_registry_file(&reg.to_registry_file()).unwrap();
        assert_eq!(restored.tenant(), "acme");
        assert_eq!(restored.len(), 2);
        let names: Vec<&str> = restored.entries().map(|(n, _)| n).collect();
        assert_eq!(names, ["production", "staging"], "insertion order survives");
        let prod = restored.get("acme", "production").unwrap();
        assert_eq!(prod.k1, spec().k1);
        assert_eq!(prod.k2, spec().k2);
        assert_eq!(prod.e, spec().e);
        let stag = restored.get("acme", "staging").unwrap();
        assert_eq!(stag.domain, domains::cities());
    }

    #[test]
    fn tenant_registry_enforces_isolation_before_name_lookup() {
        let mut reg = TenantKeyRegistry::new("acme").unwrap();
        reg.insert("production", spec()).unwrap();
        // Wrong tenant: refused even for a key name that exists...
        let err = reg.get("globex", "production").unwrap_err();
        assert_eq!(
            err,
            CoreError::TenantIsolation { tenant: "acme".into(), requested: "globex".into() }
        );
        // ...and for one that does not, so name existence never leaks.
        let err = reg.get("globex", "no-such-key").unwrap_err();
        assert!(matches!(err, CoreError::TenantIsolation { .. }));
        // Right tenant, unknown name: a plain spec error instead.
        assert!(matches!(reg.get("acme", "no-such-key"), Err(CoreError::InvalidSpec(_))));
    }

    #[test]
    fn tenant_registry_insert_replaces_for_rotation() {
        let mut reg = TenantKeyRegistry::new("acme").unwrap();
        reg.insert("production", spec()).unwrap();
        let mut rotated = spec();
        rotated.e = 99;
        reg.insert("production", rotated).unwrap();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get("acme", "production").unwrap().e, 99);
    }

    #[test]
    fn tenant_registry_rejects_bad_names_and_malformed_files() {
        assert!(TenantKeyRegistry::new("").is_err());
        assert!(TenantKeyRegistry::new("two words").is_err());
        let mut reg = TenantKeyRegistry::new("acme").unwrap();
        assert!(reg.insert("", spec()).is_err());
        assert!(reg.insert("spaced name", spec()).is_err());

        assert!(TenantKeyRegistry::from_registry_file("").is_err());
        assert!(TenantKeyRegistry::from_registry_file("catmark-tenant-registry v9\n").is_err());
        // Key before tenant.
        let early =
            format!("{REGISTRY_MAGIC}\nkey a {}\n", to_hex(to_key_file(&spec()).as_bytes()));
        assert!(TenantKeyRegistry::from_registry_file(&early).is_err());
        // Missing tenant entirely.
        assert!(TenantKeyRegistry::from_registry_file(&format!("{REGISTRY_MAGIC}\n")).is_err());
        // Duplicate tenant line.
        let dup = format!("{REGISTRY_MAGIC}\ntenant a\ntenant b\n");
        assert!(TenantKeyRegistry::from_registry_file(&dup).is_err());
        // Duplicate key name.
        let payload = to_hex(to_key_file(&spec()).as_bytes());
        let dupkey = format!("{REGISTRY_MAGIC}\ntenant acme\nkey a {payload}\nkey a {payload}\n");
        assert!(TenantKeyRegistry::from_registry_file(&dupkey).is_err());
        // Corrupt hex payload.
        let corrupt = format!("{REGISTRY_MAGIC}\ntenant acme\nkey a zz-not-hex\n");
        assert!(TenantKeyRegistry::from_registry_file(&corrupt).is_err());
        // Unknown field.
        let unknown = format!("{REGISTRY_MAGIC}\ntenant acme\nbogus 1\n");
        assert!(TenantKeyRegistry::from_registry_file(&unknown).is_err());
    }

    #[test]
    fn file_does_not_contain_plaintext_master() {
        // Keys in the file are the *derived* k1/k2, never a master
        // passphrase (derivation is one-way).
        let s = WatermarkSpec::builder(domains::product_codes(10, 0))
            .algorithm(HashAlgorithm::Sha256)
            .master_key("hunter2-master-passphrase")
            .e(5)
            .wm_len(4)
            .wm_data_len(8)
            .build()
            .unwrap();
        assert!(!to_key_file(&s).contains("hunter2"));
    }
}
