//! A small constraint language for quality-guarded embedding.
//!
//! The paper's conclusions propose "to define a generic language
//! (possibly subset of SQL) able to naturally express such constraints
//! and their propagation at embedding time". This module implements a
//! line-oriented declarative language compiling to the
//! [`crate::quality`] plugin stack:
//!
//! ```text
//! # anything after '#' is a comment
//! budget 3%                  # alter at most 3% of tuples
//! budget 500                 # …or an absolute count
//! drift <= 0.02              # max L1 histogram drift of the target attribute
//! immutable 0..100           # rows 0..100 must not change
//! allow in (42, 17, "soda")  # replacement values restricted to this set
//! preserve count in (42, 17) tolerance 5     # count query may drift ≤ 5 rows
//! preserve count range 100..120 tolerance 2% # …or ≤ 2% of its baseline
//! ```
//!
//! Every line contributes one [`QualityConstraint`];
//! [`compile`] assembles them into a ready [`QualityGuard`]. The
//! `preserve count` form compiles to
//! [`query_preserve::CountQueryPreservation`](crate::query_preserve) —
//! the enforceable version of the query-preservation contract the
//! paper cites from Gross-Amblard.
//!
//! Every constraint this language produces supports the guard's
//! code-space fast path ([`QualityConstraint::bind_codes`]): at
//! guarded-embed time the stack is bound to the embedding domain
//! once — value sets become per-domain-code truth tables — and the
//! goodness loop then evaluates each candidate alteration with
//! indexed loads only, no `Value` materialization.

use catmark_relation::{CategoricalDomain, Relation, Value};

use crate::error::CoreError;
use crate::quality::{
    AllowedReplacements, AlterationBudget, FrequencyDriftLimit, ImmutableRows, QualityConstraint,
    QualityGuard,
};
use crate::query_preserve::{CountQuery, CountQueryPreservation, Tolerance, ValueSet};

/// A parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    /// Line the error occurred on (1-based).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for LangError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "constraint language error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LangError {}

/// One parsed constraint declaration (the AST).
#[derive(Debug, Clone, PartialEq)]
pub enum Decl {
    /// `budget N` / `budget P%`.
    Budget {
        /// Absolute count, or percentage when `percent` is set.
        amount: f64,
        /// Whether `amount` is a percentage of the relation size.
        percent: bool,
    },
    /// `drift <= X`.
    Drift {
        /// Maximum admitted L1 histogram drift.
        max_l1: f64,
    },
    /// `immutable A..B` (half-open row range).
    Immutable {
        /// First protected row.
        start: usize,
        /// One past the last protected row.
        end: usize,
    },
    /// `allow in (v, …)`.
    AllowIn {
        /// Admitted replacement values.
        values: Vec<Value>,
    },
    /// `preserve count in (v, …) tolerance T[%]` /
    /// `preserve count range A..B tolerance T[%]`.
    PreserveCount {
        /// The selection whose count must be preserved.
        selection: CountSelection,
        /// Allowed drift (rows, or percent of baseline when `percent`).
        tolerance: f64,
        /// Whether `tolerance` is relative to the baseline count.
        percent: bool,
    },
}

/// The selection of a `preserve count` declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum CountSelection {
    /// Explicit value list.
    In(Vec<Value>),
    /// Inclusive integer range.
    Range(i64, i64),
}

/// Parse a program into declarations.
///
/// # Errors
///
/// [`LangError`] with the offending line.
pub fn parse(src: &str) -> Result<Vec<Decl>, LangError> {
    let mut decls = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |message: String| LangError { line: line_no, message };
        let (keyword, rest) = match line.split_once(char::is_whitespace) {
            Some((k, r)) => (k, r.trim()),
            None => (line, ""),
        };
        let decl = match keyword {
            "budget" => parse_budget(rest).map_err(err)?,
            "drift" => parse_drift(rest).map_err(err)?,
            "immutable" => parse_immutable(rest).map_err(err)?,
            "allow" => parse_allow(rest).map_err(err)?,
            "preserve" => parse_preserve(rest).map_err(err)?,
            other => return Err(err(format!("unknown keyword {other:?}"))),
        };
        decls.push(decl);
    }
    Ok(decls)
}

fn parse_budget(rest: &str) -> Result<Decl, String> {
    if rest.is_empty() {
        return Err("budget needs an amount, e.g. `budget 3%` or `budget 500`".into());
    }
    if let Some(pct) = rest.strip_suffix('%') {
        let amount: f64 = pct.trim().parse().map_err(|e| format!("bad percentage {pct:?}: {e}"))?;
        if !(0.0..=100.0).contains(&amount) {
            return Err(format!("percentage {amount} outside 0..=100"));
        }
        Ok(Decl::Budget { amount, percent: true })
    } else {
        let amount: u64 = rest.parse().map_err(|e| format!("bad count {rest:?}: {e}"))?;
        Ok(Decl::Budget { amount: amount as f64, percent: false })
    }
}

fn parse_drift(rest: &str) -> Result<Decl, String> {
    let value = rest
        .strip_prefix("<=")
        .ok_or_else(|| "drift expects `drift <= <value>`".to_owned())?
        .trim();
    let max_l1: f64 = value.parse().map_err(|e| format!("bad drift bound {value:?}: {e}"))?;
    if !(0.0..=2.0).contains(&max_l1) {
        return Err(format!("drift bound {max_l1} outside the L1 range 0..=2"));
    }
    Ok(Decl::Drift { max_l1 })
}

fn parse_immutable(rest: &str) -> Result<Decl, String> {
    let (start, end) = rest
        .split_once("..")
        .ok_or_else(|| "immutable expects a row range, e.g. `immutable 0..100`".to_owned())?;
    let start: usize = start.trim().parse().map_err(|e| format!("bad range start: {e}"))?;
    let end: usize = end.trim().parse().map_err(|e| format!("bad range end: {e}"))?;
    if end < start {
        return Err(format!("empty range {start}..{end}"));
    }
    Ok(Decl::Immutable { start, end })
}

fn parse_allow(rest: &str) -> Result<Decl, String> {
    let rest =
        rest.strip_prefix("in").ok_or_else(|| "allow expects `allow in (v, …)`".to_owned())?.trim();
    let inner = rest
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| "allow list must be parenthesized".to_owned())?;
    let values = parse_value_list(inner)?;
    if values.is_empty() {
        return Err("allow list is empty".into());
    }
    Ok(Decl::AllowIn { values })
}

fn parse_preserve(rest: &str) -> Result<Decl, String> {
    let rest = rest
        .strip_prefix("count")
        .ok_or_else(|| "preserve expects `preserve count …`".to_owned())?
        .trim();
    let (selection_src, tolerance_src) = rest
        .split_once("tolerance")
        .ok_or_else(|| "preserve count needs a `tolerance` clause".to_owned())?;
    let selection_src = selection_src.trim();
    let selection = if let Some(list) = selection_src.strip_prefix("in") {
        let inner = list
            .trim()
            .strip_prefix('(')
            .and_then(|s| s.strip_suffix(')'))
            .ok_or_else(|| "preserve count in-list must be parenthesized".to_owned())?;
        let values = parse_value_list(inner)?;
        if values.is_empty() {
            return Err("preserve count in-list is empty".into());
        }
        CountSelection::In(values)
    } else if let Some(range) = selection_src.strip_prefix("range") {
        let (lo, hi) = range
            .trim()
            .split_once("..")
            .ok_or_else(|| "preserve count range expects `range A..B`".to_owned())?;
        let lo: i64 = lo.trim().parse().map_err(|e| format!("bad range start: {e}"))?;
        let hi: i64 = hi.trim().parse().map_err(|e| format!("bad range end: {e}"))?;
        if hi < lo {
            return Err(format!("empty range {lo}..{hi}"));
        }
        CountSelection::Range(lo, hi)
    } else {
        return Err("preserve count expects `in (…)` or `range A..B`".into());
    };
    let tolerance_src = tolerance_src.trim();
    if tolerance_src.is_empty() {
        return Err("tolerance needs an amount, e.g. `tolerance 5` or `tolerance 2%`".into());
    }
    let (tolerance, percent) = if let Some(pct) = tolerance_src.strip_suffix('%') {
        let t: f64 =
            pct.trim().parse().map_err(|e| format!("bad tolerance percentage {pct:?}: {e}"))?;
        if !(0.0..=100.0).contains(&t) {
            return Err(format!("tolerance percentage {t} outside 0..=100"));
        }
        (t, true)
    } else {
        let t: u64 = tolerance_src
            .parse()
            .map_err(|e| format!("bad tolerance count {tolerance_src:?}: {e}"))?;
        (t as f64, false)
    };
    Ok(Decl::PreserveCount { selection, tolerance, percent })
}

fn parse_value_list(inner: &str) -> Result<Vec<Value>, String> {
    let mut values = Vec::new();
    for part in split_top_level(inner) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if let Some(q) = part.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
            values.push(Value::Text(q.to_owned()));
        } else {
            let v: i64 = part.parse().map_err(|e| {
                format!("value {part:?} is neither an integer nor quoted text: {e}")
            })?;
            values.push(Value::Int(v));
        }
    }
    Ok(values)
}

/// Split on commas that are not inside quotes.
fn split_top_level(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    for c in s.chars() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                current.push(c);
            }
            ',' if !in_quotes => parts.push(std::mem::take(&mut current)),
            other => current.push(other),
        }
    }
    parts.push(current);
    parts
}

/// Compile a program directly into a [`QualityGuard`] for embedding
/// into attribute `attr_idx` of `rel` over `domain`.
///
/// # Errors
///
/// Parse errors (wrapped into [`CoreError::InvalidSpec`]) or histogram
/// construction failures for `drift` constraints.
pub fn compile(
    src: &str,
    rel: &Relation,
    attr_idx: usize,
    domain: &CategoricalDomain,
) -> Result<QualityGuard, CoreError> {
    let decls = parse(src).map_err(|e| CoreError::InvalidSpec(e.to_string()))?;
    let mut constraints: Vec<Box<dyn QualityConstraint>> = Vec::with_capacity(decls.len());
    for (i, decl) in decls.into_iter().enumerate() {
        constraints.push(match decl {
            Decl::Budget { amount, percent: true } => {
                Box::new(AlterationBudget::fraction_of(rel.len(), amount / 100.0))
            }
            Decl::Budget { amount, percent: false } => {
                Box::new(AlterationBudget::new(amount as usize))
            }
            Decl::Drift { max_l1 } => {
                Box::new(FrequencyDriftLimit::new(rel, attr_idx, domain, max_l1)?)
            }
            Decl::Immutable { start, end } => Box::new(ImmutableRows::new(start..end)),
            Decl::AllowIn { values } => Box::new(AllowedReplacements::new(values)),
            Decl::PreserveCount { selection, tolerance, percent } => {
                let values = match selection {
                    CountSelection::In(values) => ValueSet::In(values.into_iter().collect()),
                    CountSelection::Range(lo, hi) => {
                        ValueSet::Range(Value::Int(lo), Value::Int(hi))
                    }
                };
                let tol = if percent {
                    Tolerance::Relative(tolerance / 100.0)
                } else {
                    Tolerance::Absolute(tolerance as u64)
                };
                let query = CountQuery::new(&format!("preserve-{}", i + 1), attr_idx, values, tol);
                Box::new(CountQueryPreservation::from_relation(rel, vec![query]))
            }
        });
    }
    Ok(QualityGuard::new(constraints))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Watermark, WatermarkSpec};
    use catmark_datagen::{ItemScanConfig, SalesGenerator};

    #[test]
    fn parses_every_form() {
        let src = r#"
            # protect the flagship accounts
            budget 3%
            budget 500
            drift <= 0.02
            immutable 0..100
            allow in (42, 17, "soda")
        "#;
        let decls = parse(src).unwrap();
        assert_eq!(decls.len(), 5);
        assert_eq!(decls[0], Decl::Budget { amount: 3.0, percent: true });
        assert_eq!(decls[1], Decl::Budget { amount: 500.0, percent: false });
        assert_eq!(decls[2], Decl::Drift { max_l1: 0.02 });
        assert_eq!(decls[3], Decl::Immutable { start: 0, end: 100 });
        assert_eq!(
            decls[4],
            Decl::AllowIn {
                values: vec![Value::Int(42), Value::Int(17), Value::Text("soda".into())]
            }
        );
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        assert_eq!(parse("\n  # nothing\n\n").unwrap(), vec![]);
        assert_eq!(parse("budget 1 # trailing").unwrap().len(), 1);
    }

    #[test]
    fn error_reports_line_numbers() {
        let err = parse("budget 1\nfrobnicate 2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("frobnicate"));
    }

    #[test]
    fn rejects_malformed_declarations() {
        for (src, fragment) in [
            ("budget", "amount"),
            ("budget 150%", "outside"),
            ("budget -3", "bad count"),
            ("drift 0.1", "<="),
            ("drift <= 9", "outside"),
            ("immutable 5", "row range"),
            ("immutable 9..3", "empty range"),
            ("allow (1)", "allow in"),
            ("allow in 1, 2", "parenthesized"),
            ("allow in ()", "empty"),
            ("allow in (maybe)", "neither"),
        ] {
            let err = parse(src).unwrap_err();
            assert!(
                err.message.contains(fragment),
                "{src:?}: expected {fragment:?} in {:?}",
                err.message
            );
        }
    }

    #[test]
    fn parses_preserve_count_forms() {
        let decls = parse(
            "preserve count in (42, 17) tolerance 5\n\
             preserve count range 100..120 tolerance 2%\n",
        )
        .unwrap();
        assert_eq!(
            decls[0],
            Decl::PreserveCount {
                selection: CountSelection::In(vec![Value::Int(42), Value::Int(17)]),
                tolerance: 5.0,
                percent: false,
            }
        );
        assert_eq!(
            decls[1],
            Decl::PreserveCount {
                selection: CountSelection::Range(100, 120),
                tolerance: 2.0,
                percent: true,
            }
        );
    }

    #[test]
    fn rejects_malformed_preserve_count() {
        for (src, fragment) in [
            ("preserve 5", "preserve count"),
            ("preserve count tolerance 5", "in (…)"),
            ("preserve count in (1)", "tolerance"),
            ("preserve count in () tolerance 1", "empty"),
            ("preserve count in (1) tolerance", "amount"),
            ("preserve count in (1) tolerance 120%", "outside"),
            ("preserve count range 9..3 tolerance 1", "empty range"),
            ("preserve count range 9 tolerance 1", "A..B"),
        ] {
            let err = parse(src).unwrap_err();
            assert!(
                err.message.contains(fragment),
                "{src:?}: expected {fragment:?} in {:?}",
                err.message
            );
        }
    }

    #[test]
    fn compiled_preserve_count_vetoes_drift() {
        use crate::quality::Alteration;
        let gen = SalesGenerator::new(ItemScanConfig { tuples: 2_000, ..Default::default() });
        let rel = gen.generate();
        let domain = gen.item_domain();
        // Pick the most frequent item so it certainly occurs.
        let hist = catmark_relation::FrequencyHistogram::from_relation(&rel, 1, &domain).unwrap();
        let top = hist.rank_by_frequency()[0];
        let top_value = domain.value_at(top).clone();
        let other = domain.value_at((top + 1) % domain.len()).clone();
        let program = format!("preserve count in ({}) tolerance 1", top_value.as_int().unwrap());
        let mut guard = compile(&program, &rel, 1, &domain).unwrap();
        // Removing one tuple from the selection is fine, a second is
        // vetoed.
        let hit_rows: Vec<usize> = rel
            .iter()
            .enumerate()
            .filter(|(_, t)| t.get(1) == &top_value)
            .map(|(r, _)| r)
            .take(2)
            .collect();
        assert_eq!(hit_rows.len(), 2, "top value occurs at least twice");
        let change =
            |row: usize| Alteration { row, attr: 1, old: top_value.clone(), new: other.clone() };
        assert!(guard.propose(change(hit_rows[0])));
        assert!(!guard.propose(change(hit_rows[1])));
        assert_eq!(guard.vetoes(), 1);
    }

    #[test]
    fn quoted_values_may_contain_commas() {
        let decls = parse(r#"allow in ("a,b", 3)"#).unwrap();
        assert_eq!(
            decls[0],
            Decl::AllowIn { values: vec![Value::Text("a,b".into()), Value::Int(3)] }
        );
    }

    #[test]
    fn compiled_guard_enforces_the_program() {
        let gen = SalesGenerator::new(ItemScanConfig { tuples: 6_000, ..Default::default() });
        let mut rel = gen.generate();
        let domain = gen.item_domain();
        let spec = WatermarkSpec::builder(domain.clone())
            .master_key("lang-tests")
            .e(20)
            .wm_len(10)
            .expected_tuples(rel.len())
            .build()
            .unwrap();
        let mut guard = compile("budget 0.5%\nimmutable 0..1000\n", &rel, 1, &domain).unwrap();
        let wm = Watermark::from_u64(0x155, 10);
        let report = crate::testkit::embed_guarded(
            &spec,
            &mut rel,
            "visit_nbr",
            "item_nbr",
            &wm,
            &mut guard,
        )
        .unwrap();
        // Budget: 0.5% of 6000 = 30 alterations max.
        assert!(report.altered <= 30, "altered {}", report.altered);
        // Immutable: no touched row below 1000.
        assert!(report.touched_rows.iter().all(|&r| r >= 1000));
        assert!(report.vetoed > 0);
    }

    #[test]
    fn compile_surfaces_parse_errors_as_core_errors() {
        let gen = SalesGenerator::new(ItemScanConfig { tuples: 100, ..Default::default() });
        let rel = gen.generate();
        let err = compile("nope", &rel, 1, &gen.item_domain());
        assert!(matches!(err, Err(CoreError::InvalidSpec(_))));
    }
}
