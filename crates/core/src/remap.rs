//! Bijective attribute re-mapping recovery (Section 4.5).
//!
//! Attack A6: Mallory maps the categorical values `{a_1 … a_nA}`
//! bijectively into a fresh domain `{a'_1 … a'_nA}` (and could even
//! sell a "reverse mapper" alongside). Watermark decoding then fails
//! at the `T_j(A) = a_t` lookup. The countermeasure: over large data
//! sets the value occurrence frequencies are a distinguishing
//! fingerprint — "we propose to sample this frequency in the suspected
//! (remapped) dataset and compare the resulting estimates with the
//! known occurrence frequencies. Next, we sort both sets and associate
//! items by comparing their values."
//!
//! [`recover_mapping`] performs exactly that rank matching and
//! [`apply_inverse`] rewrites the suspect relation back into the
//! original domain so the ordinary blind decoder can run.

use std::collections::HashMap;

use catmark_relation::{CategoricalDomain, FrequencyHistogram, Relation, Value};

use crate::error::CoreError;

/// A recovered inverse mapping from suspect values to original domain
/// values.
#[derive(Debug, Clone, PartialEq)]
pub struct RemapRecovery {
    mapping: HashMap<Value, Value>,
    /// Rank-matching diagnostics: mean absolute frequency gap between
    /// matched pairs. Small values mean confident recovery.
    pub mean_frequency_gap: f64,
    /// Suspect values that could not be matched (cardinality
    /// mismatch).
    pub unmatched: usize,
}

impl RemapRecovery {
    /// The recovered original value for `suspect`, if matched.
    #[must_use]
    pub fn original_of(&self, suspect: &Value) -> Option<&Value> {
        self.mapping.get(suspect)
    }

    /// Number of matched value pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.mapping.len()
    }

    /// Whether nothing was matched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.mapping.is_empty()
    }

    /// Fraction of the reference domain that was matched to some
    /// suspect value.
    #[must_use]
    pub fn coverage(&self, reference: &CategoricalDomain) -> f64 {
        self.mapping.len() as f64 / reference.len() as f64
    }
}

/// Recover the inverse of a (suspected) bijective remapping of
/// attribute `attr` by frequency-rank matching.
///
/// `reference` is the rights holder's embed-time histogram (part of
/// the retained key material); the suspect histogram is estimated from
/// the data at hand. Values are paired rank-by-rank after sorting both
/// sides by descending frequency.
///
/// The paper's caveat applies: uniformly distributed values cannot be
/// distinguished this way ("there is nothing one can do to watermark
/// that result"); skew is what makes the fingerprint work. Check
/// [`RemapRecovery::mean_frequency_gap`] before trusting a recovery.
///
/// # Errors
///
/// Unknown attribute, or a suspect column with fewer than two distinct
/// values.
pub fn recover_mapping(
    reference: &FrequencyHistogram,
    suspect: &Relation,
    attr: &str,
) -> Result<RemapRecovery, CoreError> {
    let attr_idx = suspect.schema().index_of(attr)?;
    let suspect_domain = CategoricalDomain::from_column(suspect, attr_idx)?;
    let suspect_hist = FrequencyHistogram::from_relation(suspect, attr_idx, &suspect_domain)?;

    let ref_rank = reference.rank_by_frequency();
    let sus_rank = suspect_hist.rank_by_frequency();
    let matched = ref_rank.len().min(sus_rank.len());

    let mut mapping = HashMap::with_capacity(matched);
    let mut gap_total = 0.0;
    for r in 0..matched {
        let original = reference.domain().value_at(ref_rank[r]).clone();
        let suspect_value = suspect_domain.value_at(sus_rank[r]).clone();
        gap_total += (reference.frequency(ref_rank[r]) - suspect_hist.frequency(sus_rank[r])).abs();
        mapping.insert(suspect_value, original);
    }
    Ok(RemapRecovery {
        mapping,
        mean_frequency_gap: if matched == 0 { 0.0 } else { gap_total / matched as f64 },
        unmatched: sus_rank.len().saturating_sub(matched),
    })
}

/// As [`recover_mapping`], but only pair values whose occurrence count
/// is *unique* on both sides — the unambiguous part of the frequency
/// fingerprint.
///
/// Tie groups (values sharing a count) cannot be disambiguated by
/// frequency alone; plain rank matching assigns them arbitrarily,
/// which makes mis-restored carriers cast *wrong* votes. Leaving them
/// unmatched turns those votes into abstentions — strictly better for
/// the majority decoder.
///
/// This matters in practice: the embedder selects replacement values
/// uniformly over the domain (the paper's `msb(H(K, k1), b(nA))`), so
/// on long-tailed, high-cardinality domains most *carriers* sit in the
/// low-count tail where counts collide. See EXPERIMENTS.md ("A6 on
/// high-cardinality domains") for the measured effect.
///
/// # Errors
///
/// Unknown attribute, or a suspect column with fewer than two distinct
/// values.
pub fn recover_mapping_confident(
    reference: &FrequencyHistogram,
    suspect: &Relation,
    attr: &str,
) -> Result<RemapRecovery, CoreError> {
    let attr_idx = suspect.schema().index_of(attr)?;
    let suspect_domain = CategoricalDomain::from_column(suspect, attr_idx)?;
    let suspect_hist = FrequencyHistogram::from_relation(suspect, attr_idx, &suspect_domain)?;

    let unique_counts = |counts: &[u64]| -> HashMap<u64, usize> {
        let mut freq_of_count: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, &c) in counts.iter().enumerate() {
            freq_of_count.entry(c).or_default().push(i);
        }
        freq_of_count
            .into_iter()
            .filter(|(_, members)| members.len() == 1)
            .map(|(c, members)| (c, members[0]))
            .collect()
    };
    let ref_unique = unique_counts(reference.counts());
    let sus_unique = unique_counts(suspect_hist.counts());

    let mut mapping = HashMap::new();
    let mut gap_total = 0.0;
    for (&count, &ref_idx) in &ref_unique {
        if count == 0 {
            continue;
        }
        if let Some(&sus_idx) = sus_unique.get(&count) {
            mapping.insert(
                suspect_domain.value_at(sus_idx).clone(),
                reference.domain().value_at(ref_idx).clone(),
            );
            gap_total += (reference.frequency(ref_idx) - suspect_hist.frequency(sus_idx)).abs();
        }
    }
    let matched = mapping.len();
    Ok(RemapRecovery {
        unmatched: suspect_domain.len() - matched,
        mean_frequency_gap: if matched == 0 { 0.0 } else { gap_total / matched as f64 },
        mapping,
    })
}

/// Rewrite attribute `attr` of `suspect` through the recovered inverse
/// mapping, producing a relation in the original value domain.
/// Unmatched values are left as-is (they will abstain at decode time).
///
/// A remap that changed the attribute's *type* (e.g. city names
/// relabeled as integers) is undone at the schema level too: the
/// output schema restores the type of the recovered original values.
/// Unmatched foreign values of the wrong type are replaced by typed
/// placeholders — they carry no watermark information in either form
/// (foreign to the original domain, they abstain at decode), and the
/// placeholder keeps the row intact and the relation type-safe.
///
/// # Errors
///
/// Unknown attribute.
pub fn apply_inverse(
    suspect: &Relation,
    attr: &str,
    recovery: &RemapRecovery,
) -> Result<Relation, CoreError> {
    let attr_idx = suspect.schema().index_of(attr)?;
    // Decide the restored attribute type from the mapping's targets
    // (all original-domain values share one type).
    let restored_ty = recovery
        .mapping
        .values()
        .next()
        .map(|v| match v {
            Value::Int(_) => catmark_relation::AttrType::Integer,
            Value::Text(_) => catmark_relation::AttrType::Text,
        })
        .unwrap_or(suspect.schema().attr(attr_idx).ty);
    let schema = if restored_ty == suspect.schema().attr(attr_idx).ty {
        suspect.schema().clone()
    } else {
        let mut b = catmark_relation::Schema::builder();
        for (i, a) in suspect.schema().attrs().iter().enumerate() {
            let ty = if i == attr_idx { restored_ty } else { a.ty };
            b = if i == suspect.schema().key_index() {
                b.key_attr(&a.name, ty)
            } else if a.categorical {
                b.categorical_attr(&a.name, ty)
            } else {
                b.attr(&a.name, ty)
            };
        }
        b.build()?
    };
    let coerce = |v: Value| -> Value {
        // Unmatched leftovers must still satisfy the restored type;
        // they carry no watermark information either way (they would
        // be foreign to the original domain and abstain at decode).
        match (restored_ty, &v) {
            (catmark_relation::AttrType::Integer, Value::Text(s)) => {
                Value::Int(i64::from_le_bytes(hash8(s.as_bytes())))
            }
            (catmark_relation::AttrType::Text, Value::Int(i)) => {
                Value::Text(format!("⟨unmapped {i}⟩"))
            }
            _ => v,
        }
    };
    let mut out = Relation::with_capacity(schema, suspect.len());
    for tuple in suspect.iter() {
        let mut values = tuple.values().to_vec();
        let current = values[attr_idx].clone();
        values[attr_idx] = match recovery.original_of(&current) {
            Some(original) => original.clone(),
            None => coerce(current),
        };
        out.push_unchecked_key(values)?;
    }
    Ok(out)
}

/// Stable 8-byte digest of arbitrary bytes (for foreign-value
/// placeholders only; not security-relevant).
fn hash8(bytes: &[u8]) -> [u8; 8] {
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        acc ^= u64::from(b);
        acc = acc.wrapping_mul(0x1000_0000_01b3);
    }
    acc.to_le_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::spec::{Watermark, WatermarkSpec};
    use catmark_datagen::{ItemScanConfig, SalesGenerator};

    /// Remap every item number through a bijection (the A6 attack).
    fn remap_items(rel: &Relation, f: impl Fn(i64) -> i64) -> Relation {
        let mut out = Relation::with_capacity(rel.schema().clone(), rel.len());
        for tuple in rel.iter() {
            let mut values = tuple.values().to_vec();
            let old = values[1].as_int().expect("integer item");
            values[1] = Value::Int(f(old));
            out.push_unchecked_key(values).unwrap();
        }
        out
    }

    fn fixture() -> (Relation, CategoricalDomain) {
        // Strong Zipf skew: the frequency fingerprint is sharp.
        let gen = SalesGenerator::new(ItemScanConfig {
            tuples: 30_000,
            items: 50,
            zipf_exponent: 1.2,
            ..Default::default()
        });
        (gen.generate(), gen.item_domain())
    }

    #[test]
    fn recovers_a_bijective_remap_on_skewed_data() {
        let (rel, domain) = fixture();
        let reference = FrequencyHistogram::from_relation(&rel, 1, &domain).unwrap();
        // Affine remap into a disjoint range.
        let attacked = remap_items(&rel, |v| v * 3 + 1_000_000);
        let recovery = recover_mapping(&reference, &attacked, "item_nbr").unwrap();
        assert_eq!(recovery.unmatched, 0);
        // The vast majority of values must map back correctly; ties
        // among equal-frequency tail values may swap.
        let correct = attacked
            .column_iter(1)
            .zip(rel.column_iter(1))
            .filter(|(s, o)| recovery.original_of(s) == Some(o))
            .count();
        let frac = correct as f64 / rel.len() as f64;
        assert!(frac > 0.95, "only {frac} of tuples map back");
    }

    #[test]
    fn end_to_end_watermark_survives_remapping() {
        let (mut rel, domain) = fixture();
        let spec = WatermarkSpec::builder(domain.clone())
            .master_key("remap-tests")
            .e(10)
            .wm_len(10)
            .expected_tuples(rel.len())
            .build()
            .unwrap();
        let wm = Watermark::from_u64(0b1001101011, 10);
        crate::testkit::embed(&spec, &mut rel, "visit_nbr", "item_nbr", &wm).unwrap();
        // Rights holder retains the *post-embedding* histogram.
        let reference = FrequencyHistogram::from_relation(&rel, 1, &domain).unwrap();
        // Mallory remaps.
        let attacked = remap_items(&rel, |v| -v);
        // Direct decode yields only abstentions.
        let direct = crate::testkit::decode(&spec, &attacked, "visit_nbr", "item_nbr").unwrap();
        assert_eq!(direct.votes_cast, 0);
        // Recover the mapping, invert, decode.
        let recovery = recover_mapping(&reference, &attacked, "item_nbr").unwrap();
        let restored = apply_inverse(&attacked, "item_nbr", &recovery).unwrap();
        let report = crate::testkit::decode(&spec, &restored, "visit_nbr", "item_nbr").unwrap();
        let detection = crate::detect::detect(&report.watermark, &wm);
        assert!(detection.is_significant(1e-2), "detection after recovery: {detection:?}");
    }

    #[test]
    fn confident_recovery_only_maps_unique_counts() {
        let (rel, domain) = fixture();
        let reference = FrequencyHistogram::from_relation(&rel, 1, &domain).unwrap();
        let attacked = remap_items(&rel, |v| v + 10_000_000);
        let confident = recover_mapping_confident(&reference, &attacked, "item_nbr").unwrap();
        let full = recover_mapping(&reference, &attacked, "item_nbr").unwrap();
        // Confident matches are a subset of the rank matching…
        assert!(confident.len() <= full.len());
        assert!(!confident.is_empty());
        // …and every confident match is *correct* (identity up to the
        // affine shift).
        for (suspect_v, original_v) in &confident.mapping {
            let s = suspect_v.as_int().unwrap();
            let o = original_v.as_int().unwrap();
            assert_eq!(s - 10_000_000, o, "confident match must be exact");
        }
    }

    #[test]
    fn confident_recovery_abstains_rather_than_misvotes() {
        use crate::decode::ErasurePolicy;
        // High-cardinality domain with a heavy tie tail: plain rank
        // matching scrambles tie groups and produces conflicting
        // votes; confident recovery must produce none.
        let gen = SalesGenerator::new(ItemScanConfig {
            tuples: 4_000,
            items: 1_000,
            ..Default::default()
        });
        let mut rel = gen.generate();
        let spec = crate::spec::WatermarkSpec::builder(gen.item_domain())
            .master_key("confident-remap")
            .e(15)
            .wm_len(10)
            .expected_tuples(rel.len())
            .erasure(ErasurePolicy::Abstain)
            .build()
            .unwrap();
        let wm = Watermark::from_u64(0b1100101101, 10);
        crate::testkit::embed(&spec, &mut rel, "visit_nbr", "item_nbr", &wm).unwrap();
        let reference = FrequencyHistogram::from_relation(&rel, 1, &gen.item_domain()).unwrap();
        let attacked = remap_items(&rel, |v| -v);
        let confident = recover_mapping_confident(&reference, &attacked, "item_nbr").unwrap();
        let restored = apply_inverse(&attacked, "item_nbr", &confident).unwrap();
        let report = crate::testkit::decode(&spec, &restored, "visit_nbr", "item_nbr").unwrap();
        assert_eq!(
            report.position_conflicts, 0,
            "confident recovery must never cast contradictory votes"
        );
    }

    #[test]
    fn identity_remap_recovers_identity() {
        let (rel, domain) = fixture();
        let reference = FrequencyHistogram::from_relation(&rel, 1, &domain).unwrap();
        let recovery = recover_mapping(&reference, &rel, "item_nbr").unwrap();
        for t in 0..domain.len() {
            let v = domain.value_at(t);
            assert_eq!(recovery.original_of(v), Some(v));
        }
        assert!(recovery.mean_frequency_gap < 1e-12);
    }

    #[test]
    fn cardinality_mismatch_reports_unmatched() {
        let (rel, domain) = fixture();
        let reference = FrequencyHistogram::from_relation(&rel, 1, &domain).unwrap();
        // Suspect with extra foreign values: map half the items to a
        // *shared* target, halving distinct count, then add fresh ones.
        let attacked = remap_items(&rel, |v| if v % 2 == 0 { v } else { v + 1_000 });
        let recovery = recover_mapping(&reference, &attacked, "item_nbr").unwrap();
        // Matched count = min(|ref|, |suspect|); coverage reported.
        assert!(recovery.coverage(&domain) <= 1.0);
        assert!(!recovery.is_empty());
    }

    #[test]
    fn unmatched_values_pass_through_apply_inverse() {
        let (rel, domain) = fixture();
        let reference = FrequencyHistogram::from_relation(&rel, 1, &domain).unwrap();
        let attacked = remap_items(&rel, |v| v + 500_000);
        let mut recovery = recover_mapping(&reference, &attacked, "item_nbr").unwrap();
        // Forget one mapping entry.
        let forgotten = Value::Int(10_000 + 500_000);
        recovery.mapping.remove(&forgotten);
        let restored = apply_inverse(&attacked, "item_nbr", &recovery).unwrap();
        // The forgotten value survives unmapped.
        assert!(restored.column_iter(1).any(|v| v == forgotten));
    }
}
