//! The direct-domain augmentation (Section 3.1): multiple watermark
//! bits per fit tuple.
//!
//! The base scheme spends one tuple alteration on one `wm_data` bit —
//! the remaining `b(nA) − 1` bits of the written value index are
//! pseudorandom filler. But the paper observes the direct domain
//! itself offers `log2(nA)` bits of entropy and proposes to "augment
//! [the association channel] with a direct-domain watermark". This
//! module implements that augmentation: the low `w` bits of the
//! chosen index carry `w` *consecutive* `wm_data` positions, trading
//! robustness for capacity:
//!
//! * **capacity** — a fit set of size F carries `w·F` position votes,
//!   so the same `e` supports a `w×` longer `wm_data` (or `w×` more
//!   redundancy);
//! * **robustness** — one altered tuple now damages up to `w`
//!   positions, and the pseudorandom part of the value shrinks by
//!   `w − 1` bits (values cluster more, a mild stealth cost).
//!
//! The `wide_channel` ablation bench quantifies the trade-off. With
//! `w = 1` the codec is exactly the base scheme.

use catmark_relation::Relation;

use crate::decode::ErasurePolicy;
use crate::ecc::{ErrorCorrectingCode, MajorityVotingEcc};
use crate::error::CoreError;
use crate::fitness::FitnessSelector;
use crate::spec::{Watermark, WatermarkSpec};

/// Multi-bit-per-tuple encoder/decoder.
#[derive(Debug, Clone)]
pub struct WideCodec<'a> {
    spec: &'a WatermarkSpec,
    /// Watermark bits carried per fit tuple (`1..=b(nA) − 1`).
    width: u32,
}

impl<'a> WideCodec<'a> {
    /// Codec carrying `width` bits per fit tuple.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidSpec`] when `width` is zero or does not
    /// leave at least one pseudorandom index bit (`width >= b(nA)`).
    pub fn new(spec: &'a WatermarkSpec, width: u32) -> Result<Self, CoreError> {
        let index_bits = spec.domain.index_bits();
        if width == 0 {
            return Err(CoreError::InvalidSpec("width must be at least 1".into()));
        }
        if width >= index_bits {
            return Err(CoreError::InvalidSpec(format!(
                "width {width} leaves no pseudorandom bits in a {index_bits}-bit domain index"
            )));
        }
        Ok(WideCodec { spec, width })
    }

    /// Bits carried per fit tuple.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The `wm_data` positions a fit tuple carries: `width`
    /// consecutive positions starting at `H(K, k2) mod |wm_data|`.
    fn positions(&self, sel: &FitnessSelector, key: &catmark_relation::Value) -> Vec<usize> {
        self.positions_from(sel.position(key))
    }

    /// Positions derived from an already-computed start position (the
    /// single-hash `facts` path).
    fn positions_from(&self, start: usize) -> Vec<usize> {
        let len = self.spec.wm_data_len;
        (0..self.width as usize).map(|i| (start + i) % len).collect()
    }

    /// Choose the domain index whose low `width` bits equal `payload`,
    /// keeping the high bits pseudorandom and the result in `[0, nA)`.
    fn index_for(&self, base: u64, payload: u64, n: u64) -> u64 {
        let w = self.width;
        let mask = (1u64 << w) - 1;
        let mut t = (base & !mask) | (payload & mask);
        // Clamp into the domain while preserving the low w bits.
        while t >= n {
            t -= 1 << w;
        }
        debug_assert!(t < n);
        debug_assert_eq!(t & mask, payload & mask);
        t
    }

    /// Embed `wm` (width bits per fit tuple).
    ///
    /// # Errors
    ///
    /// Unknown attributes or watermark length mismatch.
    pub fn embed(
        &self,
        rel: &mut Relation,
        key_attr: &str,
        target_attr: &str,
        wm: &Watermark,
    ) -> Result<usize, CoreError> {
        if wm.len() != self.spec.wm_len {
            return Err(CoreError::InvalidSpec(format!(
                "watermark has {} bits but the spec declares {}",
                wm.len(),
                self.spec.wm_len
            )));
        }
        let key_idx = rel.schema().index_of(key_attr)?;
        let attr_idx = rel.schema().index_of(target_attr)?;
        let sel = FitnessSelector::new(self.spec);
        let wm_data = MajorityVotingEcc.encode(wm, self.spec.wm_data_len);
        let n = self.spec.domain.len() as u64;
        let mut altered = 0usize;
        for row in 0..rel.len() {
            let key = rel.tuple(row).expect("row in range").get(key_idx).clone();
            let Some(facts) = sel.facts(&key) else {
                continue;
            };
            let positions = self.positions_from(facts.position);
            let mut payload = 0u64;
            for (i, &pos) in positions.iter().enumerate() {
                payload |= u64::from(wm_data[pos]) << i;
            }
            let t = self.index_for(facts.value_base(n), payload, n) as usize;
            let new_value = self.spec.domain.value_at(t).clone();
            let old = rel.update_value(row, attr_idx, new_value.clone())?;
            if old != new_value {
                altered += 1;
            }
        }
        Ok(altered)
    }

    /// Blind decode.
    ///
    /// # Errors
    ///
    /// Unknown attributes.
    pub fn decode(
        &self,
        rel: &Relation,
        key_attr: &str,
        target_attr: &str,
    ) -> Result<Watermark, CoreError> {
        let key_idx = rel.schema().index_of(key_attr)?;
        let attr_idx = rel.schema().index_of(target_attr)?;
        let sel = FitnessSelector::new(self.spec);
        let len = self.spec.wm_data_len;
        let mut ones = vec![0u32; len];
        let mut zeros = vec![0u32; len];
        for tuple in rel.iter() {
            let key = tuple.get(key_idx);
            if !sel.is_fit(key) {
                continue;
            }
            let Ok(t) = self.spec.domain.index_of(tuple.get(attr_idx)) else {
                continue;
            };
            for (i, pos) in self.positions(&sel, key).into_iter().enumerate() {
                if (t >> i) & 1 == 1 {
                    ones[pos] += 1;
                } else {
                    zeros[pos] += 1;
                }
            }
        }
        let prf = catmark_crypto::KeyedPrf::new(
            self.spec.algo,
            self.spec.k2.derive(self.spec.algo, "wide-coins"),
        );
        let wm_data: Vec<Option<bool>> = (0..len)
            .map(|i| match (ones[i], zeros[i]) {
                (0, 0) => match self.spec.erasure {
                    ErasurePolicy::Abstain => None,
                    ErasurePolicy::RandomFill => Some(prf.bit("erasure", i as u64)),
                    ErasurePolicy::ZeroFill => Some(false),
                },
                (o, z) if o > z => Some(true),
                (o, z) if o < z => Some(false),
                _ => Some(prf.bit("pos-tie", i as u64)),
            })
            .collect();
        let mut tie_break = |j: usize| prf.bit("wm-tie", j as u64);
        Ok(MajorityVotingEcc.decode(&wm_data, self.spec.wm_len, &mut tie_break))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catmark_datagen::{ItemScanConfig, SalesGenerator};
    use catmark_relation::ops;

    fn setup(e: u64, wm_data_len: usize) -> (Relation, WatermarkSpec, Watermark) {
        let gen = SalesGenerator::new(ItemScanConfig { tuples: 6_000, ..Default::default() });
        let rel = gen.generate();
        let spec = WatermarkSpec::builder(gen.item_domain())
            .master_key("wide-tests")
            .e(e)
            .wm_len(10)
            .wm_data_len(wm_data_len)
            .erasure(ErasurePolicy::Abstain)
            .build()
            .unwrap();
        let wm = Watermark::from_u64(0b1001011010, 10);
        (rel, spec, wm)
    }

    #[test]
    fn round_trip_for_every_width() {
        for width in 1..=4u32 {
            let (mut rel, spec, wm) = setup(30, 100);
            let codec = WideCodec::new(&spec, width).unwrap();
            let altered = codec.embed(&mut rel, "visit_nbr", "item_nbr", &wm).unwrap();
            assert!(altered > 100, "width {width}: altered {altered}");
            let decoded = codec.decode(&rel, "visit_nbr", "item_nbr").unwrap();
            assert_eq!(decoded, wm, "width {width}");
        }
    }

    #[test]
    fn width_one_matches_base_scheme_semantics() {
        // Same positions, same LSB behaviour: decoding a width-1 wide
        // embedding with the standard decoder succeeds.
        let (mut rel, spec, wm) = setup(30, 100);
        WideCodec::new(&spec, 1).unwrap().embed(&mut rel, "visit_nbr", "item_nbr", &wm).unwrap();
        let report = crate::testkit::decode(&spec, &rel, "visit_nbr", "item_nbr").unwrap();
        assert_eq!(report.watermark, wm);
    }

    #[test]
    fn wider_channels_fill_more_positions_per_tuple() {
        // At large wm_data and modest fit count, width 4 achieves the
        // coverage width 1 cannot.
        let (rel, spec, wm) = setup(60, 400);
        let mut narrow = rel.clone();
        WideCodec::new(&spec, 1).unwrap().embed(&mut narrow, "visit_nbr", "item_nbr", &wm).unwrap();
        let narrow_decoded =
            WideCodec::new(&spec, 1).unwrap().decode(&narrow, "visit_nbr", "item_nbr").unwrap();
        let mut wide = rel;
        WideCodec::new(&spec, 4).unwrap().embed(&mut wide, "visit_nbr", "item_nbr", &wm).unwrap();
        let wide_decoded =
            WideCodec::new(&spec, 4).unwrap().decode(&wide, "visit_nbr", "item_nbr").unwrap();
        // ~100 fit tuples into 400 positions: width 1 leaves 3/4 of
        // positions erased; width 4 covers ~63%.
        let narrow_err = wm.hamming_distance(&narrow_decoded);
        let wide_err = wm.hamming_distance(&wide_decoded);
        assert!(wide_err <= narrow_err, "wide {wide_err} vs narrow {narrow_err}");
        assert_eq!(wide_err, 0, "width 4 must decode cleanly at this coverage");
    }

    #[test]
    fn wide_channel_survives_loss_and_shuffle() {
        let (mut rel, spec, wm) = setup(20, 200);
        let codec = WideCodec::new(&spec, 3).unwrap();
        codec.embed(&mut rel, "visit_nbr", "item_nbr", &wm).unwrap();
        let suspect = ops::sample_bernoulli(&ops::shuffle(&rel, 9), 0.6, 10);
        assert_eq!(codec.decode(&suspect, "visit_nbr", "item_nbr").unwrap(), wm);
    }

    #[test]
    fn index_for_preserves_payload_and_range() {
        let (_, spec, _) = setup(30, 100);
        for width in 1..=4u32 {
            let codec = WideCodec::new(&spec, width).unwrap();
            let n = spec.domain.len() as u64;
            let mask = (1u64 << width) - 1;
            for base in [0u64, 1, 17, 511, 999] {
                for payload in 0..=mask {
                    let t = codec.index_for(base, payload, n);
                    assert!(t < n);
                    assert_eq!(t & mask, payload);
                }
            }
        }
    }

    #[test]
    fn rejects_degenerate_widths() {
        let (_, spec, _) = setup(30, 100);
        assert!(WideCodec::new(&spec, 0).is_err());
        // 1000-value domain → 10 index bits; width 10 leaves nothing.
        assert!(WideCodec::new(&spec, 10).is_err());
        assert!(WideCodec::new(&spec, 9).is_ok());
    }
}
