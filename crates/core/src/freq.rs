//! Frequency-domain encoding (Section 4.2).
//!
//! Against the extreme vertical-partitioning attack that keeps a
//! *single* categorical attribute, the association channel is gone;
//! the only property left carrying value is the attribute's occurrence
//! frequency distribution `[f_A(a_i)]`. The paper proposes embedding a
//! second watermark there with the numeric-set scheme of
//! Sion–Atallah–Prabhakar ("On watermarking numeric sets", IWDW 2002),
//! noting the fortunate alignment: minimizing absolute change in the
//! frequency domain also minimizes the *number of items* changed in
//! the categorical domain.
//!
//! The encoder here realizes that idea as quantization index
//! modulation over secret subset sums:
//!
//! 1. A keyed hash partitions the domain values into `|wm|` secret
//!    groups.
//! 2. Each group's total occurrence count `s_j` is quantized into
//!    cells of width `step`; the *parity* of the cell index carries
//!    watermark bit `j`.
//! 3. Embedding moves the minimum number of tuples between groups to
//!    land every `s_j` in the interior of a parity-correct cell;
//!    decoding just recomputes the parities.
//!
//! Any attack that shifts a group count by less than half a cell
//! leaves the mark intact — and, exactly as the paper requires, the
//! channel survives row re-sorting, duplicate elimination does not
//! apply (counts are the signal), and the primary key is never
//! consulted.

use catmark_crypto::{HashAlgorithm, KeyedHash, SecretKey};
use catmark_relation::{CategoricalDomain, FrequencyHistogram, Relation, Value};

use crate::error::CoreError;
use crate::spec::Watermark;

/// Parameters of the frequency-domain codec.
#[derive(Debug, Clone)]
pub struct FreqCodec {
    algo: HashAlgorithm,
    key: SecretKey,
    /// Quantization cell width, in tuples. Robustness radius is
    /// `step / 2` tuples per group; distortion is at most
    /// `step` tuples moved per mismatched group.
    step: u64,
    wm_len: usize,
}

/// Outcome of a frequency-domain embedding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreqEmbedReport {
    /// Tuples whose value was changed.
    pub moved: usize,
    /// Groups whose parity already matched (no movement needed).
    pub groups_unchanged: usize,
    /// Target group counts after embedding, in group order.
    pub group_counts: Vec<u64>,
}

impl FreqCodec {
    /// Codec with the given secret `key`, cell width `step` and
    /// watermark length.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidSpec`] for zero `step` or zero `wm_len`.
    pub fn new(
        algo: HashAlgorithm,
        key: impl Into<SecretKey>,
        step: u64,
        wm_len: usize,
    ) -> Result<Self, CoreError> {
        if step == 0 {
            return Err(CoreError::InvalidSpec("step must be positive".into()));
        }
        if wm_len == 0 {
            return Err(CoreError::InvalidSpec("watermark length must be positive".into()));
        }
        Ok(FreqCodec { algo, key: key.into(), step, wm_len })
    }

    /// The secret group of a domain value: `H(value, k) mod |wm|`.
    ///
    /// Groups depend on the value's *content*, not its domain index,
    /// so the grouping survives domain re-derivation on suspect data.
    #[must_use]
    pub fn group_of(&self, value: &Value) -> usize {
        let h = KeyedHash::new(self.algo, self.key.clone());
        (h.hash_u64(&[b"freq-group", &value.canonical_bytes()]) % self.wm_len as u64) as usize
    }

    /// Group occurrence sums of attribute `attr_idx` over `domain`.
    fn group_sums(
        &self,
        rel: &Relation,
        attr_idx: usize,
        domain: &CategoricalDomain,
    ) -> Result<Vec<u64>, CoreError> {
        let hist = FrequencyHistogram::from_relation(rel, attr_idx, domain)?;
        let mut sums = vec![0u64; self.wm_len];
        for t in 0..domain.len() {
            sums[self.group_of(domain.value_at(t))] += hist.count(t);
        }
        Ok(sums)
    }

    /// The bit a group sum currently carries: parity of its cell.
    fn parity(&self, sum: u64) -> bool {
        (sum / self.step) % 2 == 1
    }

    /// The nearest parity-correct target for `sum`, placed at the
    /// middle of the chosen cell for maximum robustness.
    fn target_for(&self, sum: u64, bit: bool) -> u64 {
        let cell = sum / self.step;
        let mid = |c: u64| c * self.step + self.step / 2;
        if (cell % 2 == 1) == bit {
            // Already in a correct cell: recenter only if the sum sits
            // within step/4 of a cell edge (cheap insurance, few
            // moves); otherwise leave it alone to minimize distortion.
            let offset = sum - cell * self.step;
            let margin = self.step / 4;
            if offset < margin || offset >= self.step - margin {
                mid(cell)
            } else {
                sum
            }
        } else if cell == 0 {
            // Can only go up.
            mid(1)
        } else {
            // Choose the nearer neighbouring cell.
            let down = mid(cell - 1);
            let up = mid(cell + 1);
            if sum - down <= up - sum {
                down
            } else {
                up
            }
        }
    }

    /// Absorb as much of the target/total imbalance as possible by
    /// sliding targets *within* their chosen parity cells, preferring
    /// to keep `margin` distance from the cell edges. Returns the
    /// remaining imbalance.
    fn absorb_within_cells(&self, targets: &mut [u64], total: u64) -> i64 {
        for margin in [self.step / 4, 1, 0] {
            let current: i64 = targets.iter().map(|&t| t as i64).sum();
            let mut imbalance = total as i64 - current;
            if imbalance == 0 {
                return 0;
            }
            for t in targets.iter_mut() {
                if imbalance == 0 {
                    break;
                }
                let cell = *t / self.step;
                let lo = cell * self.step + margin;
                let hi = cell * self.step + self.step - 1 - margin.min(self.step - 1);
                if imbalance > 0 {
                    let take = (hi.saturating_sub(*t) as i64).min(imbalance);
                    *t += take as u64;
                    imbalance -= take;
                } else {
                    let take = (t.saturating_sub(lo) as i64).min(-imbalance);
                    *t -= take as u64;
                    imbalance += take;
                }
            }
        }
        let current: i64 = targets.iter().map(|&t| t as i64).sum();
        total as i64 - current
    }

    /// Rebalance `targets` so they sum exactly to `total`: first slide
    /// within cells, then — as a last resort — shift whole groups by
    /// two cells (parity preserved) toward the deficit.
    ///
    /// Moves between groups conserve the total row count, so targets
    /// that do not sum to `total` are unreachable; without this step
    /// an all-mismatched-in-the-same-direction watermark deadlocks the
    /// donor/acceptor matching (caught by the `freq_codec_round_trip`
    /// property test).
    fn balance_targets(&self, targets: &mut [u64], total: u64) {
        let two = 2 * self.step;
        // Each two-cell shift moves 2·step toward balance; the
        // imbalance is bounded by wm_len · step, so wm_len iterations
        // suffice (with slack).
        for _ in 0..=targets.len() {
            let imbalance = self.absorb_within_cells(targets, total);
            if imbalance == 0 {
                return;
            }
            if imbalance > 0 {
                let t = targets.iter_mut().min().expect("at least one group");
                *t += two;
            } else if let Some(t) = targets.iter_mut().filter(|t| **t >= two).max() {
                *t -= two;
            } else {
                return; // pathological: total smaller than one cell per group
            }
        }
    }

    /// Embed `wm` into the occurrence-frequency distribution of
    /// `attr` over `domain`.
    ///
    /// # Errors
    ///
    /// Unknown attribute, a domain smaller than `|wm|` (some group
    /// would be empty and unadjustable), or foreign values in the
    /// column.
    pub fn embed(
        &self,
        rel: &mut Relation,
        attr: &str,
        domain: &CategoricalDomain,
        wm: &Watermark,
    ) -> Result<FreqEmbedReport, CoreError> {
        if wm.len() != self.wm_len {
            return Err(CoreError::InvalidSpec(format!(
                "watermark has {} bits but the codec expects {}",
                wm.len(),
                self.wm_len
            )));
        }
        if domain.len() < self.wm_len {
            return Err(CoreError::InvalidSpec(format!(
                "domain of {} values cannot form {} non-empty groups",
                domain.len(),
                self.wm_len
            )));
        }
        let attr_idx = rel.schema().index_of(attr)?;
        let sums = self.group_sums(rel, attr_idx, domain)?;
        let total: u64 = sums.iter().sum();
        // The secret group of every *domain value*, hashed once: the
        // per-row work below is then a pair of indexed loads instead
        // of a keyed hash per row.
        let group_by_domain: Vec<usize> =
            (0..domain.len()).map(|t| self.group_of(domain.value_at(t))).collect();

        // Desired targets per group: nearest parity-correct point,
        // then rebalanced so they are jointly reachable (group moves
        // conserve the total).
        let mut targets: Vec<u64> =
            (0..self.wm_len).map(|j| self.target_for(sums[j], wm.bit(j))).collect();
        self.balance_targets(&mut targets, total);
        let mut deltas: Vec<i64> =
            (0..self.wm_len).map(|j| targets[j] as i64 - sums[j] as i64).collect();
        let groups_unchanged = deltas.iter().filter(|&&d| d == 0).count();
        debug_assert_eq!(deltas.iter().sum::<i64>(), 0, "targets must be balanced");

        // Rows per group, in code space: each row's domain code (one
        // per-distinct translation, already validated by the
        // group_sums histogram) indexes the precomputed group table.
        let mut rows_by_group: Vec<Vec<usize>> = vec![Vec::new(); self.wm_len];
        for (row, code) in domain.intern_column(rel, attr_idx).into_iter().enumerate() {
            let t = code.expect("group_sums validated every value against the domain") as usize;
            rows_by_group[group_by_domain[t]].push(row);
        }
        // Representative acceptor value per group: its most frequent
        // member (stealth: reinforce the mode rather than a rare value).
        let hist = FrequencyHistogram::from_relation(rel, attr_idx, domain)?;
        let mut acceptor_value: Vec<Option<Value>> = vec![None; self.wm_len];
        for t in hist.rank_by_frequency() {
            let g = group_by_domain[t];
            if acceptor_value[g].is_none() {
                acceptor_value[g] = Some(domain.value_at(t).clone());
            }
        }

        // Donor → acceptor matching; supply equals demand by
        // construction, so this drains both lists completely (barring
        // a donor group with fewer rows than its delta, which cannot
        // happen: a group's sum *is* its row count).
        let mut moved = 0usize;
        let mut donors: Vec<usize> = (0..self.wm_len).filter(|&j| deltas[j] < 0).collect();
        let mut acceptors: Vec<usize> = (0..self.wm_len).filter(|&j| deltas[j] > 0).collect();
        let mut current = sums;
        while let (Some(&d), Some(&a)) = (donors.last(), acceptors.last()) {
            let row = rows_by_group[d].pop().expect("group sum equals its row count");
            let new_value =
                acceptor_value[a].clone().expect("acceptor group has at least one domain value");
            rel.update_value(row, attr_idx, new_value)?;
            moved += 1;
            deltas[d] += 1;
            deltas[a] -= 1;
            current[d] -= 1;
            current[a] += 1;
            if deltas[d] == 0 {
                donors.pop();
            }
            if deltas[a] == 0 {
                acceptors.pop();
            }
        }
        debug_assert!(deltas.iter().all(|&d| d == 0), "matching must drain");
        Ok(FreqEmbedReport { moved, groups_unchanged, group_counts: current })
    }

    /// Decode the frequency-domain watermark: recompute group sums and
    /// read the cell parities.
    ///
    /// # Errors
    ///
    /// Unknown attribute or foreign values.
    pub fn decode(
        &self,
        rel: &Relation,
        attr: &str,
        domain: &CategoricalDomain,
    ) -> Result<Watermark, CoreError> {
        let attr_idx = rel.schema().index_of(attr)?;
        let sums = self.group_sums(rel, attr_idx, domain)?;
        Ok(Watermark::from_bits(sums.iter().map(|&s| self.parity(s)).collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catmark_datagen::{ItemScanConfig, SalesGenerator};
    use catmark_relation::ops;

    fn codec(step: u64) -> FreqCodec {
        FreqCodec::new(HashAlgorithm::Sha256, SecretKey::from_u64(0xF00D), step, 8).unwrap()
    }

    fn fixture() -> (Relation, CategoricalDomain) {
        let gen = SalesGenerator::new(ItemScanConfig {
            tuples: 10_000,
            items: 200,
            ..Default::default()
        });
        (gen.generate(), gen.item_domain())
    }

    #[test]
    fn round_trip() {
        let (mut rel, domain) = fixture();
        let c = codec(40);
        let wm = Watermark::from_u64(0b1011_0010, 8);
        let report = c.embed(&mut rel, "item_nbr", &domain, &wm).unwrap();
        assert!(report.moved < 8 * 40, "moved {} tuples", report.moved);
        assert_eq!(c.decode(&rel, "item_nbr", &domain).unwrap(), wm);
    }

    #[test]
    fn distortion_is_bounded_and_small() {
        let (mut rel, domain) = fixture();
        let original = rel.clone();
        let c = codec(40);
        let wm = Watermark::from_u64(0b0110_1001, 8);
        let report = c.embed(&mut rel, "item_nbr", &domain, &wm).unwrap();
        let changed = original.iter().zip(rel.iter()).filter(|(a, b)| a != b).count();
        assert_eq!(changed, report.moved);
        // At most ~1.5 cells of movement per group.
        assert!(changed <= 8 * 60, "changed {changed}");
        assert!((changed as f64) < 0.05 * rel.len() as f64, "changed {changed}");
    }

    #[test]
    fn survives_resorting_and_extreme_vertical_partition() {
        let (mut rel, domain) = fixture();
        let c = codec(40);
        let wm = Watermark::from_u64(0b1111_0000, 8);
        c.embed(&mut rel, "item_nbr", &domain, &wm).unwrap();
        // Keep ONLY the categorical attribute, shuffled: the paper's
        // worst-case partition.
        let item_idx = rel.schema().index_of("item_nbr").unwrap();
        let alone = ops::project(&ops::shuffle(&rel, 3), &[item_idx], 0, false).unwrap();
        assert_eq!(c.decode(&alone, "item_nbr", &domain).unwrap(), wm);
    }

    #[test]
    fn survives_small_alterations_but_not_half_cell_shifts() {
        let (mut rel, domain) = fixture();
        let c = codec(60);
        let wm = Watermark::from_u64(0b1010_1010, 8);
        c.embed(&mut rel, "item_nbr", &domain, &wm).unwrap();
        // Alter a handful of tuples (well under step/2 per group).
        let mut attacked = rel.clone();
        for row in 0..10 {
            attacked.update_value(row, 1, domain.value_at(row % domain.len()).clone()).unwrap();
        }
        assert_eq!(c.decode(&attacked, "item_nbr", &domain).unwrap(), wm);
    }

    #[test]
    fn group_assignment_is_key_dependent() {
        let a = FreqCodec::new(HashAlgorithm::Sha256, SecretKey::from_u64(1), 10, 8).unwrap();
        let b = FreqCodec::new(HashAlgorithm::Sha256, SecretKey::from_u64(2), 10, 8).unwrap();
        let (_, domain) = fixture();
        let differs = (0..domain.len())
            .any(|t| a.group_of(domain.value_at(t)) != b.group_of(domain.value_at(t)));
        assert!(differs);
    }

    #[test]
    fn groups_partition_all_values() {
        let c = codec(10);
        let (_, domain) = fixture();
        for t in 0..domain.len() {
            assert!(c.group_of(domain.value_at(t)) < 8);
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(FreqCodec::new(HashAlgorithm::Sha256, SecretKey::from_u64(1), 0, 8).is_err());
        assert!(FreqCodec::new(HashAlgorithm::Sha256, SecretKey::from_u64(1), 10, 0).is_err());
    }

    #[test]
    fn rejects_wrong_watermark_length() {
        let (mut rel, domain) = fixture();
        let c = codec(10);
        let err = c.embed(&mut rel, "item_nbr", &domain, &Watermark::from_u64(0, 4));
        assert!(matches!(err, Err(CoreError::InvalidSpec(_))));
    }

    #[test]
    fn rejects_domains_smaller_than_the_group_count() {
        // A 200-value domain cannot populate 300 groups.
        let (mut rel, domain) = fixture();
        let c_too_big =
            FreqCodec::new(HashAlgorithm::Sha256, SecretKey::from_u64(1), 10, 300).unwrap();
        let wm = Watermark::from_bits(vec![true; 300]);
        let err = c_too_big.embed(&mut rel, "item_nbr", &domain, &wm);
        assert!(matches!(err, Err(CoreError::InvalidSpec(_))));
    }

    #[test]
    fn parity_and_target_math() {
        let c = codec(10);
        assert!(!c.parity(5)); // cell 0
        assert!(c.parity(15)); // cell 1
        assert!(!c.parity(25)); // cell 2
                                // Already-correct sum away from edges stays put.
        assert_eq!(c.target_for(15, true), 15);
        // Correct cell but near the edge: recentered to 15.
        assert_eq!(c.target_for(10, true), 15);
        assert_eq!(c.target_for(19, true), 15);
        // Wrong parity: moves to the nearer odd cell's midpoint.
        assert_eq!(c.target_for(22, true), 15);
        assert_eq!(c.target_for(28, true), 35);
        // Cell 0 can only go up.
        assert_eq!(c.target_for(3, true), 15);
    }
}
