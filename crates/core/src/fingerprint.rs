//! Buyer fingerprinting (traitor tracing) on top of the watermark.
//!
//! The paper's motivating scenario: "a set of data is usually
//! produced/collected by a data collector and then sold in pieces to
//! parties specialized in mining that data". Rights protection then
//! has two questions — *is this mine?* (the watermark) and *which
//! buyer leaked it?* (the fingerprint). This module answers the second
//! by giving every buyer's copy a buyer-specific mark under
//! buyer-derived keys: tracing decodes a suspect copy under every
//! registered buyer's keys and ranks the detections.
//!
//! Because fit sets under different derived keys are statistically
//! independent (≈ 1/e² overlap), per-buyer marks barely interfere, and
//! a copy leaks its buyer's identity even after the usual attacks.

use catmark_crypto::SecretKey;
use catmark_relation::Relation;

use crate::decode::Decoder;
use crate::detect::{detect, Detection};
use crate::ecc::MajorityVotingEcc;
use crate::embed::{EmbedReport, Embedder};
use crate::error::CoreError;
use crate::plan::PlanCache;
use crate::spec::{Watermark, WatermarkSpec};

/// A registry of buyers sharing one base spec (master keys,
/// parameters, domain).
///
/// The registry carries a [`PlanCache`]: tracing decodes the suspect
/// under *every* buyer's keys, and a follow-up [`FingerprintRegistry::accuse`]
/// (or repeated traces during an investigation) re-decodes the same
/// copy — each `(buyer spec, suspect)` pair is planned once. Clones
/// share the cache.
#[derive(Debug, Clone)]
pub struct FingerprintRegistry {
    base: WatermarkSpec,
    buyers: Vec<String>,
    plans: PlanCache,
}

/// One buyer's trace result.
#[derive(Debug, Clone)]
pub struct TraceResult {
    /// Buyer identifier.
    pub buyer: String,
    /// Detection of that buyer's mark in the suspect copy.
    pub detection: Detection,
}

impl std::fmt::Display for TraceResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "buyer {:?}: {}", self.buyer, self.detection)
    }
}

impl FingerprintRegistry {
    /// Registry over `base` (its `k1`/`k2` act as master keys; buyers
    /// get derived subkeys).
    #[must_use]
    pub fn new(base: WatermarkSpec) -> Self {
        Self::with_cache(base, PlanCache::new())
    }

    /// Registry sharing an existing [`PlanCache`] — how a
    /// [`crate::session::MarkSession`] hands its cache down so traces
    /// and session decodes of the same copy plan once.
    #[must_use]
    pub fn with_cache(base: WatermarkSpec, plans: PlanCache) -> Self {
        FingerprintRegistry { base, buyers: Vec::new(), plans }
    }

    /// Register a buyer (idempotent).
    pub fn register(&mut self, buyer: &str) {
        if !self.buyers.iter().any(|b| b == buyer) {
            self.buyers.push(buyer.to_owned());
        }
    }

    /// Registered buyers, in registration order.
    #[must_use]
    pub fn buyers(&self) -> &[String] {
        &self.buyers
    }

    /// The buyer-specific spec: keys derived from the base pair and
    /// the buyer identity.
    #[must_use]
    pub fn spec_for(&self, buyer: &str) -> WatermarkSpec {
        self.base.derived(&format!("buyer:{buyer}"))
    }

    /// The buyer-specific mark: the keyed hash of the buyer identity,
    /// truncated to `wm_len` (reproducible by the seller alone).
    #[must_use]
    pub fn mark_for(&self, buyer: &str) -> Watermark {
        let key =
            SecretKey::from_bytes([self.base.k1.as_bytes(), b"fingerprint".as_slice()].concat());
        Watermark::from_identity(buyer, &key, self.base.wm_len)
    }

    /// Produce `buyer`'s fingerprinted copy of `rel` (registering the
    /// buyer if needed).
    ///
    /// # Errors
    ///
    /// Embedding failures.
    pub fn mark_copy(
        &mut self,
        rel: &Relation,
        buyer: &str,
        key_attr: &str,
        target_attr: &str,
    ) -> Result<(Relation, EmbedReport), CoreError> {
        self.register(buyer);
        let spec = self.spec_for(buyer);
        let wm = self.mark_for(buyer);
        let key_idx = rel.schema().index_of(key_attr)?;
        let attr_idx = rel.schema().index_of(target_attr)?;
        let mut copy = rel.clone();
        let plan = self.plans.plan_for(&spec, &copy, key_idx)?;
        let report = Embedder::engine(&spec).embed_with_plan(
            &mut copy,
            attr_idx,
            &wm,
            &MajorityVotingEcc,
            None,
            &plan,
        )?;
        Ok((copy, report))
    }

    /// Decode `suspect` under every registered buyer's keys, ranked by
    /// ascending false-positive probability (strongest evidence
    /// first).
    ///
    /// # Errors
    ///
    /// Attribute-resolution failures.
    pub fn trace(
        &self,
        suspect: &Relation,
        key_attr: &str,
        target_attr: &str,
    ) -> Result<Vec<TraceResult>, CoreError> {
        let key_idx = suspect.schema().index_of(key_attr)?;
        let attr_idx = suspect.schema().index_of(target_attr)?;
        let mut results = Vec::with_capacity(self.buyers.len());
        for buyer in &self.buyers {
            let spec = self.spec_for(buyer);
            let wm = self.mark_for(buyer);
            let plan = self.plans.plan_for(&spec, suspect, key_idx)?;
            let decode = Decoder::engine(&spec).decode_with_plan(
                suspect,
                attr_idx,
                &MajorityVotingEcc,
                &plan,
            )?;
            results.push(TraceResult {
                buyer: buyer.clone(),
                detection: detect(&decode.watermark, &wm),
            });
        }
        results.sort_by(|a, b| {
            a.detection
                .false_positive_probability
                .total_cmp(&b.detection.false_positive_probability)
        });
        Ok(results)
    }

    /// Convenience: the single accused buyer, when exactly one clears
    /// `alpha`.
    ///
    /// # Errors
    ///
    /// Attribute-resolution failures.
    pub fn accuse(
        &self,
        suspect: &Relation,
        key_attr: &str,
        target_attr: &str,
        alpha: f64,
    ) -> Result<Option<String>, CoreError> {
        let results = self.trace(suspect, key_attr, target_attr)?;
        let significant: Vec<&TraceResult> =
            results.iter().filter(|r| r.detection.is_significant(alpha)).collect();
        Ok(match significant.as_slice() {
            [only] => Some(only.buyer.clone()),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::ErasurePolicy;
    use catmark_datagen::{ItemScanConfig, SalesGenerator};
    use catmark_relation::ops;

    fn registry() -> (FingerprintRegistry, Relation) {
        let gen = SalesGenerator::new(ItemScanConfig { tuples: 8_000, ..Default::default() });
        let rel = gen.generate();
        let base = WatermarkSpec::builder(gen.item_domain())
            .master_key("fingerprint-tests")
            .e(15)
            .wm_len(10)
            .expected_tuples(rel.len())
            .erasure(ErasurePolicy::Abstain)
            .build()
            .unwrap();
        (FingerprintRegistry::new(base), rel)
    }

    #[test]
    fn distinct_buyers_get_distinct_marks_and_keys() {
        let (mut reg, _) = registry();
        reg.register("acme");
        reg.register("globex");
        reg.register("acme"); // idempotent
        assert_eq!(reg.buyers().len(), 2);
        assert_ne!(reg.mark_for("acme"), reg.mark_for("globex"));
        assert_ne!(reg.spec_for("acme").k1, reg.spec_for("globex").k1);
    }

    #[test]
    fn traces_the_leaking_buyer() {
        let (mut reg, rel) = registry();
        let buyers = ["acme", "globex", "initech", "umbrella"];
        let mut copies = Vec::new();
        for b in buyers {
            let (copy, report) = reg.mark_copy(&rel, b, "visit_nbr", "item_nbr").unwrap();
            assert!(report.altered > 100);
            copies.push(copy);
        }
        // initech leaks a shuffled, halved copy.
        let leaked = ops::sample_bernoulli(&ops::shuffle(&copies[2], 1), 0.5, 2);
        let results = reg.trace(&leaked, "visit_nbr", "item_nbr").unwrap();
        assert_eq!(results[0].buyer, "initech");
        assert!(results[0].detection.is_significant(1e-2));
        // Every other buyer stays at chance level.
        for r in &results[1..] {
            assert!(
                !r.detection.is_significant(1e-2),
                "{} spuriously detected: {:?}",
                r.buyer,
                r.detection
            );
        }
        assert_eq!(
            reg.accuse(&leaked, "visit_nbr", "item_nbr", 1e-2).unwrap(),
            Some("initech".to_owned())
        );
    }

    #[test]
    fn unmarked_data_accuses_nobody() {
        let (mut reg, rel) = registry();
        reg.register("acme");
        reg.register("globex");
        assert_eq!(reg.accuse(&rel, "visit_nbr", "item_nbr", 1e-2).unwrap(), None);
    }

    #[test]
    fn merged_copies_confuse_single_accusation_but_not_trace() {
        // A collusion of two buyers interleaving their copies: both
        // marks survive partially; accuse() declines to name one, and
        // trace() surfaces both at the top.
        let (mut reg, rel) = registry();
        let (copy_a, _) = reg.mark_copy(&rel, "acme", "visit_nbr", "item_nbr").unwrap();
        let (copy_b, _) = reg.mark_copy(&rel, "globex", "visit_nbr", "item_nbr").unwrap();
        reg.register("innocent");
        // Interleave: first half of A's rows, second half of B's.
        let mut merged = Relation::with_capacity(rel.schema().clone(), rel.len());
        for row in 0..rel.len() / 2 {
            merged.push_unchecked_key(copy_a.tuple(row).unwrap().values().to_vec()).unwrap();
        }
        for row in rel.len() / 2..rel.len() {
            merged.push_unchecked_key(copy_b.tuple(row).unwrap().values().to_vec()).unwrap();
        }
        let results = reg.trace(&merged, "visit_nbr", "item_nbr").unwrap();
        let top2: Vec<&str> = results[..2].iter().map(|r| r.buyer.as_str()).collect();
        assert!(top2.contains(&"acme") && top2.contains(&"globex"), "{top2:?}");
        assert!(results[0].detection.is_significant(1e-2));
        assert!(results[1].detection.is_significant(1e-2));
        assert_eq!(results[2].buyer, "innocent");
        assert_eq!(reg.accuse(&merged, "visit_nbr", "item_nbr", 1e-2).unwrap(), None);
    }
}
