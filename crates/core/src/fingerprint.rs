//! Buyer fingerprinting (traitor tracing) on top of the watermark.
//!
//! The paper's motivating scenario: "a set of data is usually
//! produced/collected by a data collector and then sold in pieces to
//! parties specialized in mining that data". Rights protection then
//! has two questions — *is this mine?* (the watermark) and *which
//! buyer leaked it?* (the fingerprint). This module answers the second
//! by giving every buyer's copy a buyer-specific mark under
//! buyer-derived keys: tracing decodes a suspect copy under every
//! registered buyer's keys and ranks the detections.
//!
//! Because fit sets under different derived keys are statistically
//! independent (≈ 1/e² overlap), per-buyer marks barely interfere, and
//! a copy leaks its buyer's identity even after the usual attacks.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use catmark_crypto::SecretKey;
use catmark_relation::{MarkDelta, Relation, SegmentedRelation};

use crate::decode::Decoder;
use crate::detect::{detect, Detection};
use crate::ecc::{ErrorCorrectingCode, MajorityVotingEcc};
use crate::embed::{EmbedReport, Embedder};
use crate::error::CoreError;
use crate::plan::{MultiPlanCache, PlanCache};
use crate::spec::{Watermark, WatermarkSpec};

/// Buyer identity → derived `(spec, mark)`, memoized because key
/// derivation hashes and every trace historically re-derived all of it
/// per call.
type DerivedCache = Arc<Mutex<HashMap<String, Arc<(WatermarkSpec, Watermark)>>>>;

/// A registry of buyers sharing one base spec (master keys,
/// parameters, domain).
///
/// The registry carries a [`PlanCache`]: tracing decodes the suspect
/// under *every* buyer's keys, and a follow-up [`FingerprintRegistry::accuse`]
/// (or repeated traces during an investigation) re-decodes the same
/// copy — each `(buyer spec, suspect)` pair is planned once. It also
/// carries a [`MultiPlanCache`] for the recipient-batched paths
/// ([`FingerprintRegistry::trace`], [`FingerprintRegistry::mark_copies`]),
/// which treat the whole buyer set as one cache entry — at hundreds of
/// buyers the per-plan cache's capacity would thrash. Derived buyer
/// specs and marks are memoized too, so repeated traces never re-derive
/// keys. Clones share all three stores.
#[derive(Debug, Clone)]
pub struct FingerprintRegistry {
    base: WatermarkSpec,
    buyers: Vec<String>,
    plans: PlanCache,
    multi_plans: MultiPlanCache,
    derived: DerivedCache,
}

/// One buyer's trace result.
#[derive(Debug, Clone)]
pub struct TraceResult {
    /// Buyer identifier.
    pub buyer: String,
    /// Detection of that buyer's mark in the suspect copy.
    pub detection: Detection,
}

impl std::fmt::Display for TraceResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "buyer {:?}: {}", self.buyer, self.detection)
    }
}

impl FingerprintRegistry {
    /// Registry over `base` (its `k1`/`k2` act as master keys; buyers
    /// get derived subkeys).
    #[must_use]
    pub fn new(base: WatermarkSpec) -> Self {
        Self::with_cache(base, PlanCache::new())
    }

    /// Registry sharing an existing [`PlanCache`] — how a
    /// [`crate::session::MarkSession`] hands its cache down so traces
    /// and session decodes of the same copy plan once.
    #[must_use]
    pub fn with_cache(base: WatermarkSpec, plans: PlanCache) -> Self {
        FingerprintRegistry {
            base,
            buyers: Vec::new(),
            plans,
            multi_plans: MultiPlanCache::new(),
            derived: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Register a buyer (idempotent).
    pub fn register(&mut self, buyer: &str) {
        if !self.buyers.iter().any(|b| b == buyer) {
            self.buyers.push(buyer.to_owned());
        }
    }

    /// Registered buyers, in registration order.
    #[must_use]
    pub fn buyers(&self) -> &[String] {
        &self.buyers
    }

    /// The per-spec plan cache behind the single-recipient paths —
    /// exposed so a service can report cache observability.
    #[must_use]
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plans
    }

    /// The batched multi-key plan cache behind `mark_copies` /
    /// `trace`.
    #[must_use]
    pub fn multi_plan_cache(&self) -> &MultiPlanCache {
        &self.multi_plans
    }

    /// The buyer-specific spec: keys derived from the base pair and
    /// the buyer identity.
    #[must_use]
    pub fn spec_for(&self, buyer: &str) -> WatermarkSpec {
        self.derived_entry(buyer).0.clone()
    }

    /// The buyer-specific mark: the keyed hash of the buyer identity,
    /// truncated to `wm_len` (reproducible by the seller alone).
    #[must_use]
    pub fn mark_for(&self, buyer: &str) -> Watermark {
        self.derived_entry(buyer).1.clone()
    }

    /// The memoized derived `(spec, mark)` pair for `buyer`, computing
    /// and caching it on first request. Derivation is deterministic, so
    /// the cache is purely a cost saver: a 1 000-buyer trace would
    /// otherwise re-run 1 000 key derivations (each several hashes plus
    /// a spec validation) on **every** call.
    fn derived_entry(&self, buyer: &str) -> Arc<(WatermarkSpec, Watermark)> {
        let mut derived = self.derived.lock().expect("derived-key cache is never poisoned");
        if let Some(entry) = derived.get(buyer) {
            return Arc::clone(entry);
        }
        let spec = self.base.derived(&format!("buyer:{buyer}"));
        let key =
            SecretKey::from_bytes([self.base.k1.as_bytes(), b"fingerprint".as_slice()].concat());
        let mark = Watermark::from_identity(buyer, &key, self.base.wm_len);
        let entry = Arc::new((spec, mark));
        derived.insert(buyer.to_owned(), Arc::clone(&entry));
        entry
    }

    /// Produce `buyer`'s fingerprinted copy of `rel` (registering the
    /// buyer if needed).
    ///
    /// # Errors
    ///
    /// Embedding failures.
    pub fn mark_copy(
        &mut self,
        rel: &Relation,
        buyer: &str,
        key_attr: &str,
        target_attr: &str,
    ) -> Result<(Relation, EmbedReport), CoreError> {
        let mut copies = self.mark_copies(rel, &[buyer], key_attr, target_attr)?;
        Ok(copies.pop().expect("one buyer in, one copy out"))
    }

    /// Produce fingerprinted copies of `rel` for a whole batch of
    /// buyers (registering each if needed), hashing the key column
    /// through the recipient-batched [`crate::plan::MultiKeyPlan`]:
    /// one streaming pass serves four buyers' plans at a time instead
    /// of one pass per buyer. Copies come back in `buyers` order,
    /// byte-identical to N sequential [`FingerprintRegistry::mark_copy`]
    /// calls (pinned by proptest).
    ///
    /// Since the delta rework this is a thin wrapper: it extracts each
    /// buyer's [`MarkDelta`] via
    /// [`FingerprintRegistry::mark_deltas`] and materializes it with
    /// [`Relation::apply_delta`] — callers who can ship patches
    /// instead of copies should call `mark_deltas` directly and skip
    /// the materialization entirely.
    ///
    /// # Errors
    ///
    /// Embedding failures.
    pub fn mark_copies(
        &mut self,
        rel: &Relation,
        buyers: &[&str],
        key_attr: &str,
        target_attr: &str,
    ) -> Result<Vec<(Relation, EmbedReport)>, CoreError> {
        let deltas = self.mark_deltas(rel, buyers, key_attr, target_attr)?;
        deltas
            .into_iter()
            .map(|(delta, report)| {
                let copy = rel.apply_delta(&delta).map_err(CoreError::Relation)?;
                Ok((copy, report))
            })
            .collect()
    }

    /// Produce `buyer`'s fingerprinted copy of `rel` as a
    /// [`MarkDelta`] patch set against the shared base (registering
    /// the buyer if needed). `rel.apply_delta(&delta)` is
    /// byte-identical to [`FingerprintRegistry::mark_copy`]'s output,
    /// at ~1/e of the relation's bytes.
    ///
    /// # Errors
    ///
    /// Embedding failures.
    pub fn mark_delta(
        &mut self,
        rel: &Relation,
        buyer: &str,
        key_attr: &str,
        target_attr: &str,
    ) -> Result<(MarkDelta, EmbedReport), CoreError> {
        let mut deltas = self.mark_deltas(rel, &[buyer], key_attr, target_attr)?;
        Ok(deltas.pop().expect("one buyer in, one delta out"))
    }

    /// Produce [`MarkDelta`]s for a whole batch of buyers from one
    /// recipient-batched [`crate::plan::MultiKeyPlan`] scan, **without
    /// ever cloning the base**: the embed decisions run read-only over
    /// `rel` and come back as ordered patch records (plus text
    /// dictionary extensions). Deltas come back in `buyers` order.
    ///
    /// A single-buyer batch plans through the per-plan [`PlanCache`]
    /// instead, so ordinary `mark_delta` traffic doesn't evict the
    /// (few, large) memoized recipient-set batches.
    ///
    /// # Errors
    ///
    /// Embedding failures.
    pub fn mark_deltas(
        &mut self,
        rel: &Relation,
        buyers: &[&str],
        key_attr: &str,
        target_attr: &str,
    ) -> Result<Vec<(MarkDelta, EmbedReport)>, CoreError> {
        let key_idx = rel.schema().index_of(key_attr)?;
        let attr_idx = rel.schema().index_of(target_attr)?;
        for buyer in buyers {
            self.register(buyer);
        }
        let entries: Vec<Arc<(WatermarkSpec, Watermark)>> =
            buyers.iter().map(|b| self.derived_entry(b)).collect();
        let plans: Vec<Arc<crate::plan::MarkPlan>> = if buyers.len() == 1 {
            vec![self.plans.plan_for(&entries[0].0, rel, key_idx)?]
        } else {
            let specs: Vec<WatermarkSpec> = entries.iter().map(|e| e.0.clone()).collect();
            self.multi_plans.plan_for(&specs, rel, key_idx)?.plans().to_vec()
        };
        let mut deltas = Vec::with_capacity(buyers.len());
        // The domain table depends on (domain, column) only — derived
        // specs share the registry's domain — so one resolution serves
        // the whole recipient batch.
        let table = match entries.first() {
            Some(entry) => Embedder::engine(&entry.0).delta_domain_table(rel, attr_idx)?,
            None => return Ok(deltas),
        };
        for (entry, plan) in entries.iter().zip(&plans) {
            let (spec, wm) = (&entry.0, &entry.1);
            // The cache key already proved content identity, so the
            // trusted path skips the per-buyer staleness fingerprint.
            let pair = Embedder::engine(spec).extract_delta_with_table(
                rel,
                attr_idx,
                wm,
                &MajorityVotingEcc,
                plan,
                &table,
            )?;
            deltas.push(pair);
        }
        Ok(deltas)
    }

    /// The out-of-core variant of [`FingerprintRegistry::mark_deltas`]:
    /// stream each segment through the pager budget once per batch and
    /// emit one [`MarkDelta`] *per segment* per buyer (patch rows and
    /// dictionary codes are segment-local, matching the segment's own
    /// dictionary). Each buyer's reports aggregate across segments
    /// exactly like the segmented embed drivers, so `fit`/`altered`/
    /// coverage match the monolithic path.
    ///
    /// # Errors
    ///
    /// Attribute-resolution, paging, or embedding failures.
    pub fn mark_deltas_segmented(
        &mut self,
        seg: &mut SegmentedRelation,
        buyers: &[&str],
        key_attr: &str,
        target_attr: &str,
    ) -> Result<Vec<(Vec<MarkDelta>, EmbedReport)>, CoreError> {
        if buyers.is_empty() {
            return Ok(Vec::new());
        }
        let key_idx = seg.schema().index_of(key_attr)?;
        let attr_idx = seg.schema().index_of(target_attr)?;
        for buyer in buyers {
            self.register(buyer);
        }
        let entries: Vec<Arc<(WatermarkSpec, Watermark)>> =
            buyers.iter().map(|b| self.derived_entry(b)).collect();
        let specs: Vec<WatermarkSpec> = entries.iter().map(|e| e.0.clone()).collect();
        let wm_data: Vec<Vec<bool>> =
            entries.iter().map(|e| MajorityVotingEcc.encode(&e.1, e.0.wm_data_len)).collect();
        let mut reports: Vec<EmbedReport> = entries
            .iter()
            .map(|e| EmbedReport {
                total_tuples: seg.len(),
                fit_tuples: 0,
                altered: 0,
                unchanged: 0,
                vetoed: 0,
                positions_covered: 0,
                positions_total: e.0.wm_data_len,
                touched_rows: Vec::new(),
            })
            .collect();
        let mut covered: Vec<Vec<bool>> =
            entries.iter().map(|e| vec![false; e.0.wm_data_len]).collect();
        let mut deltas: Vec<Vec<MarkDelta>> = vec![Vec::new(); buyers.len()];
        let mut base = 0usize;
        for i in 0..seg.segment_count() {
            let rows = seg.segment_len(i);
            seg.with_segment(i, |rel| -> Result<(), CoreError> {
                // Per-segment plans are built directly: recipient
                // batches would thrash the shared caches at one entry
                // per (segment, buyer set).
                let plans: Vec<Arc<crate::plan::MarkPlan>> = if specs.len() == 1 {
                    vec![Arc::new(crate::plan::MarkPlan::build(&specs[0], rel, key_idx))]
                } else {
                    crate::plan::MultiKeyPlan::build(&specs, rel, key_idx).plans().to_vec()
                };
                // One domain resolution per segment (the table keys on
                // the segment's own dictionary), shared by all buyers.
                let table = Embedder::engine(&entries[0].0).delta_domain_table(rel, attr_idx)?;
                for (b, (entry, plan)) in entries.iter().zip(&plans).enumerate() {
                    reports[b].fit_tuples += plan.fit().len();
                    let delta = Embedder::engine(&entry.0).extract_delta_pass_with_table(
                        rel,
                        attr_idx,
                        &wm_data[b],
                        plan,
                        base,
                        &mut covered[b],
                        &mut reports[b],
                        &table,
                    )?;
                    deltas[b].push(delta);
                }
                Ok(())
            })
            .map_err(CoreError::Relation)??;
            base += rows;
        }
        for (report, covered) in reports.iter_mut().zip(&covered) {
            report.positions_covered = covered.iter().filter(|&&c| c).count();
        }
        Ok(deltas.into_iter().zip(reports).collect())
    }

    /// Decode `suspect` under every registered buyer's keys, ranked by
    /// ascending false-positive probability (strongest evidence
    /// first).
    ///
    /// The per-buyer keyed-hash passes run recipient-batched through
    /// one [`crate::plan::MultiKeyPlan`] (four buyers' lanes per scan
    /// of the key column), and the whole buyer set's plan batch is
    /// memoized per suspect — repeated traces of the same copy during
    /// an investigation re-plan nothing. Results are identical to
    /// [`FingerprintRegistry::trace_sequential`] (pinned by proptest).
    ///
    /// # Errors
    ///
    /// Attribute-resolution failures.
    pub fn trace(
        &self,
        suspect: &Relation,
        key_attr: &str,
        target_attr: &str,
    ) -> Result<Vec<TraceResult>, CoreError> {
        let key_idx = suspect.schema().index_of(key_attr)?;
        let attr_idx = suspect.schema().index_of(target_attr)?;
        let entries: Vec<Arc<(WatermarkSpec, Watermark)>> =
            self.buyers.iter().map(|b| self.derived_entry(b)).collect();
        let specs: Vec<WatermarkSpec> = entries.iter().map(|e| e.0.clone()).collect();
        let batch = self.multi_plans.plan_for(&specs, suspect, key_idx)?;
        let mut results = Vec::with_capacity(self.buyers.len());
        for ((buyer, entry), plan) in self.buyers.iter().zip(&entries).zip(batch.plans()) {
            let (spec, wm) = (&entry.0, &entry.1);
            let decode = Decoder::engine(spec).decode_with_plan(
                suspect,
                attr_idx,
                &MajorityVotingEcc,
                plan,
            )?;
            results.push(TraceResult {
                buyer: buyer.clone(),
                detection: detect(&decode.watermark, wm),
            });
        }
        Self::rank(&mut results);
        Ok(results)
    }

    /// The per-recipient reference for [`FingerprintRegistry::trace`]:
    /// one full plan-and-decode pass per registered buyer through the
    /// per-plan cache, exactly the historical semantics. Kept public so
    /// equivalence tests (and callers who want per-buyer passes, e.g.
    /// to bound memory at enormous buyer counts) can pin the batched
    /// path against it.
    ///
    /// # Errors
    ///
    /// Attribute-resolution failures.
    pub fn trace_sequential(
        &self,
        suspect: &Relation,
        key_attr: &str,
        target_attr: &str,
    ) -> Result<Vec<TraceResult>, CoreError> {
        let key_idx = suspect.schema().index_of(key_attr)?;
        let attr_idx = suspect.schema().index_of(target_attr)?;
        let mut results = Vec::with_capacity(self.buyers.len());
        for buyer in &self.buyers {
            let entry = self.derived_entry(buyer);
            let (spec, wm) = (&entry.0, &entry.1);
            let plan = self.plans.plan_for(spec, suspect, key_idx)?;
            let decode = Decoder::engine(spec).decode_with_plan(
                suspect,
                attr_idx,
                &MajorityVotingEcc,
                &plan,
            )?;
            results.push(TraceResult {
                buyer: buyer.clone(),
                detection: detect(&decode.watermark, wm),
            });
        }
        Self::rank(&mut results);
        Ok(results)
    }

    /// Strongest evidence first: ascending false-positive probability,
    /// ties broken by buyer registration order (the sort is stable).
    fn rank(results: &mut [TraceResult]) {
        results.sort_by(|a, b| {
            a.detection
                .false_positive_probability
                .total_cmp(&b.detection.false_positive_probability)
        });
    }

    /// Convenience: the single accused buyer, when exactly one clears
    /// `alpha`.
    ///
    /// # Errors
    ///
    /// Attribute-resolution failures.
    pub fn accuse(
        &self,
        suspect: &Relation,
        key_attr: &str,
        target_attr: &str,
        alpha: f64,
    ) -> Result<Option<String>, CoreError> {
        let results = self.trace(suspect, key_attr, target_attr)?;
        let significant: Vec<&TraceResult> =
            results.iter().filter(|r| r.detection.is_significant(alpha)).collect();
        Ok(match significant.as_slice() {
            [only] => Some(only.buyer.clone()),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::ErasurePolicy;
    use catmark_datagen::{ItemScanConfig, SalesGenerator};
    use catmark_relation::ops;

    fn registry() -> (FingerprintRegistry, Relation) {
        let gen = SalesGenerator::new(ItemScanConfig { tuples: 8_000, ..Default::default() });
        let rel = gen.generate();
        let base = WatermarkSpec::builder(gen.item_domain())
            .master_key("fingerprint-tests")
            .e(15)
            .wm_len(10)
            .expected_tuples(rel.len())
            .erasure(ErasurePolicy::Abstain)
            .build()
            .unwrap();
        (FingerprintRegistry::new(base), rel)
    }

    #[test]
    fn distinct_buyers_get_distinct_marks_and_keys() {
        let (mut reg, _) = registry();
        reg.register("acme");
        reg.register("globex");
        reg.register("acme"); // idempotent
        assert_eq!(reg.buyers().len(), 2);
        assert_ne!(reg.mark_for("acme"), reg.mark_for("globex"));
        assert_ne!(reg.spec_for("acme").k1, reg.spec_for("globex").k1);
    }

    #[test]
    fn traces_the_leaking_buyer() {
        let (mut reg, rel) = registry();
        let buyers = ["acme", "globex", "initech", "umbrella"];
        let mut copies = Vec::new();
        for b in buyers {
            let (copy, report) = reg.mark_copy(&rel, b, "visit_nbr", "item_nbr").unwrap();
            assert!(report.altered > 100);
            copies.push(copy);
        }
        // initech leaks a shuffled, halved copy.
        let leaked = ops::sample_bernoulli(&ops::shuffle(&copies[2], 1), 0.5, 2);
        let results = reg.trace(&leaked, "visit_nbr", "item_nbr").unwrap();
        assert_eq!(results[0].buyer, "initech");
        assert!(results[0].detection.is_significant(1e-2));
        // Every other buyer stays at chance level.
        for r in &results[1..] {
            assert!(
                !r.detection.is_significant(1e-2),
                "{} spuriously detected: {:?}",
                r.buyer,
                r.detection
            );
        }
        assert_eq!(
            reg.accuse(&leaked, "visit_nbr", "item_nbr", 1e-2).unwrap(),
            Some("initech".to_owned())
        );
    }

    #[test]
    fn batched_copies_match_sequential_mark_copy() {
        // `mark_copies` must hand every buyer exactly the copy a
        // sequential `mark_copy` loop would have produced — including a
        // duplicate buyer id in the middle of the batch.
        let (mut batched_reg, rel) = registry();
        let (mut seq_reg, _) = registry();
        let buyers = ["acme", "globex", "acme", "initech", "umbrella", "hooli"];
        let batched = batched_reg.mark_copies(&rel, &buyers, "visit_nbr", "item_nbr").unwrap();
        assert_eq!(batched.len(), buyers.len());
        for (buyer, (copy, report)) in buyers.iter().zip(&batched) {
            let (expected, expected_report) =
                seq_reg.mark_copy(&rel, buyer, "visit_nbr", "item_nbr").unwrap();
            assert_eq!(copy.len(), expected.len(), "buyer {buyer}");
            assert!(
                copy.iter().zip(expected.iter()).all(|(a, b)| a == b),
                "buyer {buyer}: batched copy diverges from sequential"
            );
            assert_eq!(report.altered, expected_report.altered, "buyer {buyer}");
        }
        assert_eq!(batched_reg.buyers(), ["acme", "globex", "initech", "umbrella", "hooli"]);
    }

    #[test]
    fn deltas_rebuild_byte_identical_copies() {
        let (mut delta_reg, rel) = registry();
        let (mut copy_reg, _) = registry();
        let buyers = ["acme", "globex", "initech"];
        let deltas = delta_reg.mark_deltas(&rel, &buyers, "visit_nbr", "item_nbr").unwrap();
        let copies = copy_reg.mark_copies(&rel, &buyers, "visit_nbr", "item_nbr").unwrap();
        for ((buyer, (delta, d_report)), (copy, c_report)) in
            buyers.iter().zip(&deltas).zip(&copies)
        {
            assert_eq!(d_report, c_report, "buyer {buyer}: reports diverge");
            assert!(delta.patch_count() > 100, "buyer {buyer}");
            // Through the wire format and back.
            let wire = MarkDelta::decode(&delta.encode()).unwrap();
            let rebuilt = rel.apply_delta(&wire).unwrap();
            assert!(
                rebuilt.iter().zip(copy.iter()).all(|(a, b)| a == b),
                "buyer {buyer}: delta-rebuilt copy diverges from mark_copy"
            );
            // The delta is a small fraction of the materialized copy.
            assert!(delta.serialized_len() * 4 < copy.resident_bytes(), "buyer {buyer}");
        }
    }

    #[test]
    fn segmented_deltas_match_the_monolithic_path() {
        use catmark_relation::SegmentedRelation;
        let (mut seg_reg, rel) = registry();
        let (mut mono_reg, _) = registry();
        let buyers = ["acme", "globex", "initech"];
        let mut seg = SegmentedRelation::builder(rel.schema().clone())
            .segment_rows(1_000)
            .from_relation(&rel)
            .unwrap();
        let segmented =
            seg_reg.mark_deltas_segmented(&mut seg, &buyers, "visit_nbr", "item_nbr").unwrap();
        let copies = mono_reg.mark_copies(&rel, &buyers, "visit_nbr", "item_nbr").unwrap();
        for ((buyer, (seg_deltas, s_report)), (copy, c_report)) in
            buyers.iter().zip(&segmented).zip(&copies)
        {
            assert_eq!(s_report, c_report, "buyer {buyer}: segmented report diverges");
            assert_eq!(seg_deltas.len(), seg.segment_count());
            // Rebuild the copy segment by segment and compare rows.
            let mut rebuilt = Vec::new();
            for (i, delta) in seg_deltas.iter().enumerate() {
                let patched =
                    seg.with_segment(i, |segment| segment.apply_delta(delta)).unwrap().unwrap();
                for row in 0..patched.len() {
                    rebuilt.push(patched.tuple(row).unwrap().values().to_vec());
                }
            }
            assert_eq!(rebuilt.len(), copy.len(), "buyer {buyer}");
            for (row, values) in rebuilt.iter().enumerate() {
                assert_eq!(
                    values.as_slice(),
                    copy.tuple(row).unwrap().values(),
                    "buyer {buyer} row {row}"
                );
            }
        }
    }

    #[test]
    fn batched_trace_matches_sequential_trace() {
        let (mut reg, rel) = registry();
        for b in ["acme", "globex", "initech", "umbrella", "hooli"] {
            reg.mark_copy(&rel, b, "visit_nbr", "item_nbr").unwrap();
        }
        let (leaked, _) = reg.mark_copy(&rel, "globex", "visit_nbr", "item_nbr").unwrap();
        let batched = reg.trace(&leaked, "visit_nbr", "item_nbr").unwrap();
        let sequential = reg.trace_sequential(&leaked, "visit_nbr", "item_nbr").unwrap();
        assert_eq!(batched.len(), sequential.len());
        for (b, s) in batched.iter().zip(&sequential) {
            assert_eq!(b.buyer, s.buyer);
            assert_eq!(b.detection.matched_bits, s.detection.matched_bits);
            assert_eq!(
                b.detection.false_positive_probability,
                s.detection.false_positive_probability
            );
        }
        assert_eq!(batched[0].buyer, "globex");
    }

    #[test]
    fn derived_entries_are_memoized_and_stable() {
        let (reg, _) = registry();
        let spec_a = reg.spec_for("acme");
        let mark_a = reg.mark_for("acme");
        // Second call serves the memoized entry — same bytes.
        assert_eq!(spec_a.k1, reg.spec_for("acme").k1);
        assert_eq!(spec_a.k2, reg.spec_for("acme").k2);
        assert_eq!(mark_a, reg.mark_for("acme"));
        // And a fresh registry derives the same thing from scratch.
        let (fresh, _) = registry();
        assert_eq!(spec_a.k1, fresh.spec_for("acme").k1);
        assert_eq!(mark_a, fresh.mark_for("acme"));
    }

    #[test]
    fn unmarked_data_accuses_nobody() {
        let (mut reg, rel) = registry();
        reg.register("acme");
        reg.register("globex");
        assert_eq!(reg.accuse(&rel, "visit_nbr", "item_nbr", 1e-2).unwrap(), None);
    }

    #[test]
    fn merged_copies_confuse_single_accusation_but_not_trace() {
        // A collusion of two buyers interleaving their copies: both
        // marks survive partially; accuse() declines to name one, and
        // trace() surfaces both at the top.
        let (mut reg, rel) = registry();
        let (copy_a, _) = reg.mark_copy(&rel, "acme", "visit_nbr", "item_nbr").unwrap();
        let (copy_b, _) = reg.mark_copy(&rel, "globex", "visit_nbr", "item_nbr").unwrap();
        reg.register("innocent");
        // Interleave: first half of A's rows, second half of B's.
        let mut merged = Relation::with_capacity(rel.schema().clone(), rel.len());
        for row in 0..rel.len() / 2 {
            merged.push_unchecked_key(copy_a.tuple(row).unwrap().values().to_vec()).unwrap();
        }
        for row in rel.len() / 2..rel.len() {
            merged.push_unchecked_key(copy_b.tuple(row).unwrap().values().to_vec()).unwrap();
        }
        let results = reg.trace(&merged, "visit_nbr", "item_nbr").unwrap();
        let top2: Vec<&str> = results[..2].iter().map(|r| r.buyer.as_str()).collect();
        assert!(top2.contains(&"acme") && top2.contains(&"globex"), "{top2:?}");
        assert!(results[0].detection.is_significant(1e-2));
        assert!(results[1].detection.is_significant(1e-2));
        assert_eq!(results[2].buyer, "innocent");
        assert_eq!(reg.accuse(&merged, "visit_nbr", "item_nbr", 1e-2).unwrap(), None);
    }
}
