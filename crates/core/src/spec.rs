//! Watermarks and the key material / parameter bundle
//! ([`WatermarkSpec`]) shared by embedding and blind detection.

use catmark_crypto::{HashAlgorithm, KeyedHash, SecretKey};
use catmark_relation::CategoricalDomain;

use crate::decode::ErasurePolicy;
use crate::error::CoreError;

/// The watermark: an owner-chosen bit string (the paper uses
/// `|wm| = 10` bits in all experiments).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Watermark {
    bits: Vec<bool>,
}

impl Watermark {
    /// Watermark from explicit bits.
    ///
    /// # Panics
    ///
    /// Panics on an empty bit vector.
    #[must_use]
    pub fn from_bits(bits: Vec<bool>) -> Self {
        assert!(!bits.is_empty(), "watermark must have at least one bit");
        Watermark { bits }
    }

    /// The low `len` bits of `value`, most significant first.
    ///
    /// `Watermark::from_u64(0b101, 3)` is the bit string `101`.
    ///
    /// # Panics
    ///
    /// Panics when `len` is 0 or greater than 64.
    #[must_use]
    pub fn from_u64(value: u64, len: usize) -> Self {
        assert!((1..=64).contains(&len), "length must be in 1..=64");
        let bits = (0..len).map(|i| (value >> (len - 1 - i)) & 1 == 1).collect();
        Watermark { bits }
    }

    /// Watermark derived from an owner identity string: the keyed hash
    /// of the identity, truncated to `len` bits. This is how a rights
    /// holder turns "© 2004 DataCorp" into a mark.
    ///
    /// # Panics
    ///
    /// Panics when `len` is 0 or greater than 64.
    #[must_use]
    pub fn from_identity(identity: &str, key: &SecretKey, len: usize) -> Self {
        let h = KeyedHash::new(HashAlgorithm::Sha256, key.clone());
        Self::from_u64(h.hash_u64(&[b"identity", identity.as_bytes()]), len)
    }

    /// Bit at position `i`.
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        self.bits[i]
    }

    /// Number of bits `|wm|`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Always false (watermarks are non-empty by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// All bits, most significant first.
    #[must_use]
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Number of positions at which `self` and `other` differ
    /// (Hamming distance). Used for the paper's "mark alteration"
    /// metric.
    ///
    /// # Panics
    ///
    /// Panics when lengths differ.
    #[must_use]
    pub fn hamming_distance(&self, other: &Watermark) -> usize {
        assert_eq!(self.len(), other.len(), "watermarks must have equal length");
        self.bits.iter().zip(other.bits.iter()).filter(|(a, b)| a != b).count()
    }

    /// Fraction of differing bits — the y-axis of the paper's Figures
    /// 4–7 ("mark alteration (%)" / "mark loss (%)").
    #[must_use]
    pub fn alteration_fraction(&self, other: &Watermark) -> f64 {
        self.hamming_distance(other) as f64 / self.len() as f64
    }
}

impl std::fmt::Display for Watermark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for &b in &self.bits {
            f.write_str(if b { "1" } else { "0" })?;
        }
        Ok(())
    }
}

/// Everything embedding and blind detection share: the two secret
/// keys, the algorithm, the fitness modulus `e`, the watermark and
/// `wm_data` lengths, the categorical value domain, and the decoder's
/// erasure policy.
///
/// This is precisely the paper's detection input ("the potentially
/// watermarked data, the secret keys k1, k2 and e") plus the two
/// pieces of bookkeeping the pseudo-code leaves implicit: the value
/// domain `{a_1 … a_nA}` (needed to map values to indices `t`) and the
/// fixed `wm_data` length (needed because `N` shifts under data loss;
/// see DESIGN.md deviation 2).
#[derive(Debug, Clone)]
pub struct WatermarkSpec {
    /// Hash algorithm instantiating `crypto_hash()`.
    pub algo: HashAlgorithm,
    /// Fit-selection / value-selection key.
    pub k1: SecretKey,
    /// Watermark-bit position selection key (`k2 != k1`).
    pub k2: SecretKey,
    /// Fitness modulus: roughly one in `e` tuples is watermarked.
    pub e: u64,
    /// Watermark length `|wm|`.
    pub wm_len: usize,
    /// Expanded length `|wm_data|`, fixed at embed time (≈ N/e).
    pub wm_data_len: usize,
    /// The categorical attribute's value domain.
    pub domain: CategoricalDomain,
    /// How the decoder treats `wm_data` positions with no votes.
    pub erasure: ErasurePolicy,
}

impl WatermarkSpec {
    /// Start building a spec for an attribute with value domain
    /// `domain`.
    #[must_use]
    pub fn builder(domain: CategoricalDomain) -> WatermarkSpecBuilder {
        WatermarkSpecBuilder {
            algo: HashAlgorithm::default(),
            keys: None,
            e: 60,
            wm_len: 10,
            wm_data_len: None,
            expected_tuples: None,
            domain,
            erasure: ErasurePolicy::default(),
        }
    }

    /// Keyed hash `H(·, k1)` for fitness and value selection.
    #[must_use]
    pub fn keyed1(&self) -> KeyedHash {
        KeyedHash::new(self.algo, self.k1.clone())
    }

    /// Keyed hash `H(·, k2)` for `wm_data` position selection.
    #[must_use]
    pub fn keyed2(&self) -> KeyedHash {
        KeyedHash::new(self.algo, self.k2.clone())
    }

    /// Redundancy factor: expected number of `wm_data` positions per
    /// watermark bit.
    #[must_use]
    pub fn redundancy(&self) -> f64 {
        self.wm_data_len as f64 / self.wm_len as f64
    }

    /// A copy of this spec re-keyed with subkeys derived for `label`.
    ///
    /// Multi-attribute embedding (Section 3.3) marks several attribute
    /// pairs; deriving per-pair keys from the master pair keeps the
    /// encodings statistically independent while the detector can
    /// re-derive everything from the master secret.
    #[must_use]
    pub fn derived(&self, label: &str) -> WatermarkSpec {
        let mut spec = self.clone();
        spec.k1 = self.k1.derive(self.algo, &format!("k1:{label}"));
        spec.k2 = self.k2.derive(self.algo, &format!("k2:{label}"));
        spec
    }
}

/// Builder for [`WatermarkSpec`].
#[derive(Debug)]
pub struct WatermarkSpecBuilder {
    algo: HashAlgorithm,
    keys: Option<(SecretKey, SecretKey)>,
    e: u64,
    wm_len: usize,
    wm_data_len: Option<usize>,
    expected_tuples: Option<usize>,
    domain: CategoricalDomain,
    erasure: ErasurePolicy,
}

impl WatermarkSpecBuilder {
    /// Select the hash algorithm (default SHA-256).
    #[must_use]
    pub fn algorithm(mut self, algo: HashAlgorithm) -> Self {
        self.algo = algo;
        self
    }

    /// Derive `k1` and `k2` from a single master secret via
    /// domain-separated subkeys.
    #[must_use]
    pub fn master_key(mut self, master: impl Into<SecretKey>) -> Self {
        let master = master.into();
        let k1 = master.derive(self.algo, "catmark:k1");
        let k2 = master.derive(self.algo, "catmark:k2");
        self.keys = Some((k1, k2));
        self
    }

    /// Provide `k1` and `k2` explicitly.
    #[must_use]
    pub fn keys(mut self, k1: impl Into<SecretKey>, k2: impl Into<SecretKey>) -> Self {
        self.keys = Some((k1.into(), k2.into()));
        self
    }

    /// Fitness modulus `e` (default 60, the paper's running example).
    /// Smaller `e` ⇒ more altered tuples ⇒ more resilience (Figure 5).
    #[must_use]
    pub fn e(mut self, e: u64) -> Self {
        self.e = e;
        self
    }

    /// Watermark bit length (default 10, the paper's experiments).
    #[must_use]
    pub fn wm_len(mut self, wm_len: usize) -> Self {
        self.wm_len = wm_len;
        self
    }

    /// Fix `|wm_data|` explicitly.
    #[must_use]
    pub fn wm_data_len(mut self, len: usize) -> Self {
        self.wm_data_len = Some(len);
        self
    }

    /// Derive `|wm_data| = max(N/e, |wm|)` from the relation size `N`
    /// at embed time (the paper's sizing).
    #[must_use]
    pub fn expected_tuples(mut self, n: usize) -> Self {
        self.expected_tuples = Some(n);
        self
    }

    /// Decoder erasure policy (default [`ErasurePolicy::RandomFill`]).
    #[must_use]
    pub fn erasure(mut self, policy: ErasurePolicy) -> Self {
        self.erasure = policy;
        self
    }

    /// Validate and build.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidSpec`] on missing keys, `e = 0`, equal
    /// keys, or zero-length watermark; [`CoreError::InsufficientBandwidth`]
    /// when `|wm| > |wm_data|`.
    pub fn build(self) -> Result<WatermarkSpec, CoreError> {
        let (k1, k2) = self.keys.ok_or_else(|| {
            CoreError::InvalidSpec("no keys provided (use master_key or keys)".into())
        })?;
        if k1 == k2 {
            // The paper requires k2 != k1: reusing the key would
            // correlate tuple selection with bit-position selection.
            return Err(CoreError::InvalidSpec("k1 and k2 must differ".into()));
        }
        if self.e == 0 {
            return Err(CoreError::InvalidSpec("e must be positive".into()));
        }
        if self.wm_len == 0 {
            return Err(CoreError::InvalidSpec("watermark length must be positive".into()));
        }
        let wm_data_len = match (self.wm_data_len, self.expected_tuples) {
            (Some(len), _) => len,
            (None, Some(n)) => ((n as u64 / self.e) as usize).max(self.wm_len),
            (None, None) => {
                return Err(CoreError::InvalidSpec(
                    "provide wm_data_len or expected_tuples to size wm_data".into(),
                ))
            }
        };
        if wm_data_len < self.wm_len {
            return Err(CoreError::InsufficientBandwidth {
                wm_len: self.wm_len,
                capacity: wm_data_len,
            });
        }
        Ok(WatermarkSpec {
            algo: self.algo,
            k1,
            k2,
            e: self.e,
            wm_len: self.wm_len,
            wm_data_len,
            domain: self.domain,
            erasure: self.erasure,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catmark_relation::Value;

    fn domain() -> CategoricalDomain {
        CategoricalDomain::new((0..10).map(Value::Int).collect()).unwrap()
    }

    #[test]
    fn watermark_from_u64_bit_order() {
        let wm = Watermark::from_u64(0b101, 3);
        assert_eq!(wm.bits(), &[true, false, true]);
        assert_eq!(wm.to_string(), "101");
    }

    #[test]
    fn watermark_from_u64_pads_leading_zeros() {
        let wm = Watermark::from_u64(1, 5);
        assert_eq!(wm.to_string(), "00001");
    }

    #[test]
    fn hamming_and_alteration() {
        let a = Watermark::from_u64(0b1010, 4);
        let b = Watermark::from_u64(0b1001, 4);
        assert_eq!(a.hamming_distance(&b), 2);
        assert!((a.alteration_fraction(&b) - 0.5).abs() < 1e-12);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn hamming_requires_equal_lengths() {
        let _ = Watermark::from_u64(1, 3).hamming_distance(&Watermark::from_u64(1, 4));
    }

    #[test]
    fn identity_watermarks_are_key_dependent() {
        let id = "© 2004 DataCorp";
        let a = Watermark::from_identity(id, &SecretKey::from_u64(1), 16);
        let b = Watermark::from_identity(id, &SecretKey::from_u64(2), 16);
        assert_ne!(a, b);
        assert_eq!(a, Watermark::from_identity(id, &SecretKey::from_u64(1), 16));
    }

    #[test]
    fn builder_defaults_match_paper() {
        let spec = WatermarkSpec::builder(domain())
            .master_key("secret")
            .expected_tuples(6000)
            .build()
            .unwrap();
        assert_eq!(spec.e, 60);
        assert_eq!(spec.wm_len, 10);
        // N/e = 6000/60 = 100, the paper's |wm_data| example.
        assert_eq!(spec.wm_data_len, 100);
        assert!((spec.redundancy() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn builder_requires_keys() {
        let err = WatermarkSpec::builder(domain()).expected_tuples(100).build();
        assert!(matches!(err, Err(CoreError::InvalidSpec(_))));
    }

    #[test]
    fn builder_rejects_equal_keys() {
        let err = WatermarkSpec::builder(domain())
            .keys(SecretKey::from_u64(5), SecretKey::from_u64(5))
            .expected_tuples(100)
            .build();
        assert!(matches!(err, Err(CoreError::InvalidSpec(_))));
    }

    #[test]
    fn builder_rejects_zero_e() {
        let err =
            WatermarkSpec::builder(domain()).master_key("s").e(0).expected_tuples(100).build();
        assert!(matches!(err, Err(CoreError::InvalidSpec(_))));
    }

    #[test]
    fn builder_enforces_bandwidth() {
        let err =
            WatermarkSpec::builder(domain()).master_key("s").wm_len(64).wm_data_len(10).build();
        assert!(matches!(err, Err(CoreError::InsufficientBandwidth { .. })));
    }

    #[test]
    fn expected_tuples_never_sizes_below_wm_len() {
        // 100 tuples at e=60 → N/e = 1, clamped up to |wm| = 10.
        let spec =
            WatermarkSpec::builder(domain()).master_key("s").expected_tuples(100).build().unwrap();
        assert_eq!(spec.wm_data_len, 10);
    }

    #[test]
    fn derived_specs_have_fresh_keys() {
        let spec =
            WatermarkSpec::builder(domain()).master_key("s").expected_tuples(6000).build().unwrap();
        let d = spec.derived("pair:item:city");
        assert_ne!(d.k1, spec.k1);
        assert_ne!(d.k2, spec.k2);
        assert_eq!(d.e, spec.e);
        // Deterministic re-derivation.
        assert_eq!(spec.derived("pair:item:city").k1, d.k1);
    }
}
