//! Multiple attribute embeddings (Section 3.3).
//!
//! A vertical-partitioning adversary (A5) may keep any two attributes
//! and discard the rest — including the primary key. The defense is to
//! watermark *every* attribute pair: for a schema `(K, A, B)` apply
//! `mark(K, A)`, `mark(K, B)` and `mark(A, B)`, each time treating the
//! pair's first attribute as the primary key of the base algorithm.
//! Each surviving pair is then an independent rights "witness".
//!
//! Two complications the paper calls out are handled here:
//!
//! * **Interference** — `mark(A, B)` must not overwrite the
//!   alterations `mark(K, B)` made to `B`. A shared touched-row ledger
//!   ("maintaining a hash-map at watermarking time, remembering
//!   modified tuples in each marking pass") makes later passes skip
//!   already-modified targets.
//! * **Direction** — when `B` already carries marks, prefer
//!   `mark(B, A)` over `mark(A, B)`: still encoding in the A–B
//!   association, but spending the distortion budget on the
//!   less-marked attribute and "spreading the watermark throughout the
//!   entire data".

use std::collections::{HashMap, HashSet};

use catmark_relation::{CategoricalDomain, Relation};

use crate::decode::{DecodeReport, Decoder};
use crate::detect::{detect, Detection};
use crate::embed::{EmbedReport, Embedder};
use crate::error::CoreError;
use crate::quality::{ImmutableRows, QualityGuard};
use crate::spec::{Watermark, WatermarkSpec};

/// One directed pair embedding: `pseudo_key` plays the role of the
/// primary key, `target` is the attribute altered.
#[derive(Debug, Clone)]
pub struct PairConfig {
    /// Attribute acting as the primary key for this pass.
    pub pseudo_key: String,
    /// Attribute carrying the mark bits for this pass.
    pub target: String,
    /// Per-pair spec (derived keys, target's domain, pair-sized
    /// `wm_data`).
    pub spec: WatermarkSpec,
}

impl PairConfig {
    /// Stable label identifying this pair (used for key derivation).
    #[must_use]
    pub fn label(&self) -> String {
        format!("pair:{}:{}", self.pseudo_key, self.target)
    }
}

/// The full multi-pair embedding plan — the paper's "closure for the
/// set of attribute pairs over the entire schema that minimizes the
/// number of encoding interferences while maximizing the number of
/// pairs watermarked".
#[derive(Debug, Clone)]
pub struct MultiAttrPlan {
    pairs: Vec<PairConfig>,
}

impl MultiAttrPlan {
    /// Build the plan for `rel`: `(K, A_i)` for every categorical
    /// attribute, then one directed pair per unordered categorical
    /// pair, targeting the attribute altered by fewer earlier passes.
    ///
    /// `base` supplies the master keys, `e`, `|wm|` and erasure
    /// policy; `domains` maps each categorical attribute name to its
    /// value domain. Per-pair specs derive independent subkeys from
    /// the pair label and size `wm_data` from the pseudo-key's
    /// *distinct value count* (for non-key pseudo-keys, all rows
    /// sharing a value carry the same position, so distinct values —
    /// not rows — bound the usable bandwidth).
    ///
    /// # Errors
    ///
    /// Unknown attributes or a categorical attribute missing from
    /// `domains`.
    pub fn build(
        rel: &Relation,
        base: &WatermarkSpec,
        domains: &HashMap<String, CategoricalDomain>,
    ) -> Result<Self, CoreError> {
        let schema = rel.schema();
        let key_name = schema.key_attr().name.clone();
        let cat_indices = schema.categorical_indices();
        if cat_indices.is_empty() {
            return Err(CoreError::InvalidSpec(
                "schema has no categorical attributes to watermark".into(),
            ));
        }
        let mut pairs = Vec::new();
        let mut alterations: HashMap<String, usize> = HashMap::new();
        let domain_for = |name: &str| -> Result<CategoricalDomain, CoreError> {
            domains
                .get(name)
                .cloned()
                .ok_or_else(|| CoreError::InvalidSpec(format!("no domain provided for {name:?}")))
        };
        // (K, A_i) passes: bandwidth is the row count.
        for &i in &cat_indices {
            let target = schema.attr(i).name.clone();
            let mut spec = base.derived(&format!("pair:{key_name}:{target}"));
            spec.domain = domain_for(&target)?;
            spec.wm_data_len = ((rel.len() as u64 / spec.e) as usize).max(spec.wm_len);
            pairs.push(PairConfig { pseudo_key: key_name.clone(), target: target.clone(), spec });
            *alterations.entry(target).or_insert(0) += 1;
        }
        // (A_i, A_j) passes: direction targets the less-altered side.
        for (pos, &i) in cat_indices.iter().enumerate() {
            for &j in &cat_indices[pos + 1..] {
                let a = schema.attr(i).name.clone();
                let b = schema.attr(j).name.clone();
                let (pseudo_key, target) = if alterations.get(&a).copied().unwrap_or(0)
                    <= alterations.get(&b).copied().unwrap_or(0)
                {
                    // A is the (weakly) less-altered side: mark(B, A).
                    (b, a)
                } else {
                    (a, b)
                };
                let mut spec = base.derived(&format!("pair:{pseudo_key}:{target}"));
                spec.domain = domain_for(&target)?;
                let pseudo_idx = schema.index_of(&pseudo_key)?;
                let distinct = distinct_count(rel, pseudo_idx);
                spec.wm_data_len = ((distinct as u64 / spec.e) as usize).max(spec.wm_len);
                pairs.push(PairConfig { pseudo_key, target: target.clone(), spec });
                *alterations.entry(target).or_insert(0) += 1;
            }
        }
        Ok(MultiAttrPlan { pairs })
    }

    /// Assemble a plan from explicitly oriented pairs — the escape
    /// hatch used by the [`closure`](crate::closure) optimizer, which
    /// balances interference across targets before deriving specs.
    #[must_use]
    pub fn from_pairs(pairs: Vec<PairConfig>) -> Self {
        MultiAttrPlan { pairs }
    }

    /// The directed pairs, in embedding order.
    #[must_use]
    pub fn pairs(&self) -> &[PairConfig] {
        &self.pairs
    }

    /// Labels of pairs whose bandwidth is thin: the pseudo-key's
    /// distinct-value count supports fewer than `min_redundancy`
    /// carriers per watermark bit.
    ///
    /// The paper leaves open "if a pair-closure can be constructed
    /// over the schema such that no categorical attributes are going
    /// to be used as primary key place-holders"; when it cannot, this
    /// diagnostic tells the rights holder which witnesses will be
    /// weak (e.g. a 40-city attribute pseudo-keying a pair) so they
    /// can lean on the frequency channel instead.
    #[must_use]
    pub fn weak_pairs(&self, min_redundancy: f64) -> Vec<String> {
        self.pairs
            .iter()
            .filter(|p| p.spec.redundancy() < min_redundancy)
            .map(PairConfig::label)
            .collect()
    }
}

fn distinct_count(rel: &Relation, attr_idx: usize) -> usize {
    rel.column_iter(attr_idx).collect::<HashSet<_>>().len()
}

/// Per-pair outcome of a multi-attribute embedding.
#[derive(Debug, Clone)]
pub struct PairEmbedOutcome {
    /// The pair's label.
    pub label: String,
    /// The underlying embed report.
    pub report: EmbedReport,
    /// Alterations skipped because the target row was touched by an
    /// earlier pass (interference avoidance).
    pub skipped_interference: usize,
}

/// Embed `wm` along every pair of `plan`, avoiding interference via a
/// shared touched-row ledger.
///
/// # Errors
///
/// Propagates embedding errors from any pass.
pub fn embed_multiattr(
    plan: &MultiAttrPlan,
    rel: &mut Relation,
    wm: &Watermark,
) -> Result<Vec<PairEmbedOutcome>, CoreError> {
    embed_multiattr_with_cache(plan, rel, wm, &crate::plan::PlanCache::new())
}

/// [`embed_multiattr`] over a shared [`crate::plan::PlanCache`].
///
/// Each pair plans its pseudo-key column once; sharing the cache with
/// a later [`decode_multiattr_with_cache`] over the same relation
/// skips re-planning every pair whose pseudo-key column the embedding
/// left untouched (always true for the `(K, ·)` pairs and for the
/// pair-closure's final pass).
///
/// # Errors
///
/// Propagates embedding errors from any pass.
pub fn embed_multiattr_with_cache(
    plan: &MultiAttrPlan,
    rel: &mut Relation,
    wm: &Watermark,
    cache: &crate::plan::PlanCache,
) -> Result<Vec<PairEmbedOutcome>, CoreError> {
    let mut touched: HashMap<String, HashSet<usize>> = HashMap::new();
    let mut outcomes = Vec::with_capacity(plan.pairs.len());
    for pair in &plan.pairs {
        let key_idx = rel.schema().index_of(&pair.pseudo_key)?;
        let attr_idx = rel.schema().index_of(&pair.target)?;
        let already = touched.entry(pair.target.clone()).or_default().clone();
        let mut guard = QualityGuard::new(vec![Box::new(ImmutableRows::new(already))]);
        let mark_plan = cache.plan_for(&pair.spec, rel, key_idx)?;
        let report = Embedder::engine(&pair.spec).embed_with_plan(
            rel,
            attr_idx,
            wm,
            &crate::ecc::MajorityVotingEcc,
            Some(&mut guard),
            &mark_plan,
        )?;
        let ledger = touched.get_mut(&pair.target).expect("entry created above");
        for &row in &report.touched_rows {
            ledger.insert(row);
        }
        let skipped = guard.vetoes();
        outcomes.push(PairEmbedOutcome {
            label: pair.label(),
            report,
            skipped_interference: skipped,
        });
    }
    Ok(outcomes)
}

/// One pair's detection testimony.
#[derive(Debug, Clone)]
pub struct PairWitness {
    /// The pair's label.
    pub label: String,
    /// Raw decode report.
    pub decode: DecodeReport,
    /// Comparison against the claimed watermark.
    pub detection: Detection,
}

impl std::fmt::Display for PairWitness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "witness {}: {}", self.label, self.detection)
    }
}

impl crate::session::Outcome for PairWitness {
    fn fit_count(&self) -> usize {
        self.decode.fit_tuples
    }

    fn coverage(&self) -> f64 {
        self.decode.coverage()
    }

    fn confidence(&self) -> f64 {
        1.0 - self.detection.false_positive_probability
    }
}

/// Decode every pair of `plan` that survives in `rel`'s schema and
/// compare against `claimed`. Pairs whose attributes were partitioned
/// away are skipped — the surviving ones are the rights witnesses.
///
/// # Errors
///
/// Never fails on suspect data; errors indicate misuse (e.g. a plan
/// built for a different schema family).
pub fn decode_multiattr(
    plan: &MultiAttrPlan,
    rel: &Relation,
    claimed: &Watermark,
) -> Result<Vec<PairWitness>, CoreError> {
    decode_multiattr_with_cache(plan, rel, claimed, &crate::plan::PlanCache::new())
}

/// [`decode_multiattr`] over a shared [`crate::plan::PlanCache`]; see
/// [`embed_multiattr_with_cache`] for when sharing pays.
///
/// # Errors
///
/// As [`decode_multiattr`].
pub fn decode_multiattr_with_cache(
    plan: &MultiAttrPlan,
    rel: &Relation,
    claimed: &Watermark,
    cache: &crate::plan::PlanCache,
) -> Result<Vec<PairWitness>, CoreError> {
    let mut witnesses = Vec::new();
    for pair in &plan.pairs {
        let (Ok(key_idx), Ok(attr_idx)) =
            (rel.schema().index_of(&pair.pseudo_key), rel.schema().index_of(&pair.target))
        else {
            continue; // partitioned away
        };
        let mark_plan = cache.plan_for(&pair.spec, rel, key_idx)?;
        let decode = Decoder::engine(&pair.spec).decode_with_plan(
            rel,
            attr_idx,
            &crate::ecc::MajorityVotingEcc,
            &mark_plan,
        )?;
        let detection = detect(&decode.watermark, claimed);
        witnesses.push(PairWitness { label: pair.label(), decode, detection });
    }
    Ok(witnesses)
}

/// Aggregate verdict over pair witnesses: the best (lowest)
/// false-positive probability among them, and how many individually
/// clear `alpha`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateVerdict {
    /// Number of pairs decoded.
    pub witnesses: usize,
    /// Witnesses whose individual detection clears the significance
    /// level.
    pub significant_witnesses: usize,
    /// The strongest single-witness false-positive probability.
    pub best_false_positive: f64,
}

impl std::fmt::Display for AggregateVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} witnesses significant, best chance odds {:.2e}",
            self.significant_witnesses, self.witnesses, self.best_false_positive
        )
    }
}

impl crate::session::Outcome for AggregateVerdict {
    /// Number of surviving pair witnesses.
    fn fit_count(&self) -> usize {
        self.witnesses
    }

    /// Fraction of surviving witnesses that individually testify.
    fn coverage(&self) -> f64 {
        if self.witnesses == 0 {
            0.0
        } else {
            self.significant_witnesses as f64 / self.witnesses as f64
        }
    }

    fn confidence(&self) -> f64 {
        1.0 - self.best_false_positive
    }
}

/// Summarize pair witnesses at significance level `alpha`.
#[must_use]
pub fn aggregate_verdict(witnesses: &[PairWitness], alpha: f64) -> AggregateVerdict {
    AggregateVerdict {
        witnesses: witnesses.len(),
        significant_witnesses: witnesses
            .iter()
            .filter(|w| w.detection.is_significant(alpha))
            .count(),
        best_false_positive: witnesses
            .iter()
            .map(|w| w.detection.false_positive_probability)
            .fold(1.0, f64::min),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catmark_datagen::{ItemScanConfig, SalesGenerator};
    use catmark_relation::ops;

    use catmark_datagen::domains::product_codes;
    use catmark_relation::{AttrType, Schema, Value};

    /// Three-attribute fixture: (k, item, supplier) with two
    /// high-cardinality categorical attributes, so even the pair
    /// embeddings (bandwidth = distinct pseudo-key values / e) have
    /// comfortable redundancy.
    fn fixture() -> (Relation, MultiAttrPlan, Watermark) {
        let schema = Schema::builder()
            .key_attr("k", AttrType::Integer)
            .categorical_attr("item", AttrType::Integer)
            .categorical_attr("supplier", AttrType::Integer)
            .build()
            .unwrap();
        let mut rel = Relation::with_capacity(schema, 8_000);
        for i in 0..8_000i64 {
            let item = 10_000 + (i * 7_919) % 400;
            let supplier = 500 + (i * 104_729) % 300;
            rel.push(vec![Value::Int(i), Value::Int(item), Value::Int(supplier)]).unwrap();
        }
        let item_domain = product_codes(400, 10_000);
        let supplier_domain = product_codes(300, 500);
        let base = WatermarkSpec::builder(item_domain.clone())
            .master_key("multiattr-tests")
            .e(5)
            .wm_len(10)
            .expected_tuples(rel.len())
            .erasure(crate::decode::ErasurePolicy::Abstain)
            .build()
            .unwrap();
        let mut domains = HashMap::new();
        domains.insert("item".to_owned(), item_domain);
        domains.insert("supplier".to_owned(), supplier_domain);
        let plan = MultiAttrPlan::build(&rel, &base, &domains).unwrap();
        let wm = Watermark::from_u64(0b1100101011, 10);
        (rel, plan, wm)
    }

    #[test]
    fn plan_covers_all_pairs_with_direction_rule() {
        let (_, plan, _) = fixture();
        let labels: Vec<String> = plan.pairs().iter().map(PairConfig::label).collect();
        assert_eq!(labels.len(), 3);
        assert!(labels.contains(&"pair:k:item".to_owned()));
        assert!(labels.contains(&"pair:k:supplier".to_owned()));
        // Both categorical attrs carry one prior pass; the tie targets
        // the schema-earlier attribute (item), pseudo-keyed by the
        // other.
        assert!(labels.contains(&"pair:supplier:item".to_owned()));
    }

    #[test]
    fn per_pair_keys_are_independent() {
        let (_, plan, _) = fixture();
        let k1s: HashSet<_> = plan.pairs().iter().map(|p| p.spec.k1.as_bytes().to_vec()).collect();
        assert_eq!(k1s.len(), plan.pairs().len());
    }

    #[test]
    fn pair_bandwidth_uses_distinct_values_for_non_key_pseudo_keys() {
        let (_, plan, _) = fixture();
        let ab =
            plan.pairs().iter().find(|p| p.pseudo_key == "supplier").expect("A-B pair present");
        // 300 distinct suppliers / e = 5 → 60 positions, while the
        // (K, ·) pairs use row count: 8000 / 5 = 1600.
        assert_eq!(ab.spec.wm_data_len, 60);
        let ka = plan.pairs().iter().find(|p| p.pseudo_key == "k").unwrap();
        assert_eq!(ka.spec.wm_data_len, 1600);
    }

    #[test]
    fn embed_reports_every_pair_and_avoids_interference() {
        let (mut rel, plan, wm) = fixture();
        let outcomes = embed_multiattr(&plan, &mut rel, &wm).unwrap();
        assert_eq!(outcomes.len(), 3);
        for o in &outcomes {
            assert!(o.report.fit_tuples > 0, "{} embedded nothing", o.label);
        }
        // No row is altered twice for the same attribute: the third
        // pass also targets item, already touched by pass 1.
        let third = &outcomes[2];
        assert_eq!(third.label, "pair:supplier:item");
        assert!(third.skipped_interference > 0, "ledger was never consulted");
        let first_rows: HashSet<usize> = outcomes[0].report.touched_rows.iter().copied().collect();
        let third_rows: HashSet<usize> = third.report.touched_rows.iter().copied().collect();
        assert!(first_rows.is_disjoint(&third_rows));
    }

    #[test]
    fn all_pairs_witness_on_intact_data() {
        let (mut rel, plan, wm) = fixture();
        embed_multiattr(&plan, &mut rel, &wm).unwrap();
        let witnesses = decode_multiattr(&plan, &rel, &wm).unwrap();
        assert_eq!(witnesses.len(), 3);
        let verdict = aggregate_verdict(&witnesses, 1e-2);
        // The (K, ·) pairs must decode perfectly; the (A, B) pair can
        // lose bits to interference skips but at least 2 of 3 must be
        // individually significant.
        assert!(verdict.significant_witnesses >= 2, "verdict: {verdict:?}");
        assert!(verdict.best_false_positive <= 2f64.powi(-10) * 1.001);
    }

    #[test]
    fn survives_vertical_partition_dropping_the_key() {
        let (mut rel, plan, wm) = fixture();
        embed_multiattr(&plan, &mut rel, &wm).unwrap();
        // A5: Mallory keeps only (item, supplier) — no key.
        let item_idx = rel.schema().index_of("item").unwrap();
        let supplier_idx = rel.schema().index_of("supplier").unwrap();
        let partitioned = ops::project(&rel, &[item_idx, supplier_idx], 0, false).unwrap();
        let witnesses = decode_multiattr(&plan, &partitioned, &wm).unwrap();
        // Only the key-less pair survives…
        assert_eq!(witnesses.len(), 1);
        assert_eq!(witnesses[0].label, "pair:supplier:item");
        // …and still testifies.
        let verdict = aggregate_verdict(&witnesses, 1e-2);
        assert_eq!(verdict.significant_witnesses, 1, "witness: {:?}", witnesses[0].detection);
    }

    #[test]
    fn plan_requires_domains_for_categorical_attributes() {
        let gen = SalesGenerator::new(ItemScanConfig { tuples: 50, ..Default::default() });
        let rel = gen.generate();
        let base = WatermarkSpec::builder(gen.item_domain())
            .master_key("x")
            .expected_tuples(5000)
            .build()
            .unwrap();
        let err = MultiAttrPlan::build(&rel, &base, &HashMap::new());
        assert!(matches!(err, Err(CoreError::InvalidSpec(_))));
    }

    #[test]
    fn weak_pairs_flags_thin_bandwidth() {
        let (_, plan, _) = fixture();
        // (K,·) pairs have 160 copies/bit; the supplier pair has 6.
        let weak = plan.weak_pairs(10.0);
        assert_eq!(weak, vec!["pair:supplier:item".to_owned()]);
        assert!(plan.weak_pairs(1.0).is_empty());
        assert_eq!(plan.weak_pairs(1000.0).len(), 3);
    }

    #[test]
    fn aggregate_of_empty_witness_list_is_null_verdict() {
        let v = aggregate_verdict(&[], 0.05);
        assert_eq!(v.witnesses, 0);
        assert_eq!(v.significant_witnesses, 0);
        assert_eq!(v.best_false_positive, 1.0);
    }
}
