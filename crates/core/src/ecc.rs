//! Error-correcting expansion of the watermark (Section 3.2.1).
//!
//! "Because often the available embedding bandwidth N/e is greater
//! than the watermark bit-size |wm|, we can afford the deployment of
//! an error correcting code" — the paper deploys majority voting
//! codes; [`MajorityVotingEcc`] is that code with its copies
//! *interleaved* across `wm_data` (position `i` carries watermark bit
//! `i mod |wm|`). [`BlockRepetitionEcc`] is the contiguous-block
//! alternative, kept for the ablation benches: interleaving spreads
//! each bit's copies uniformly over positions, which matters when an
//! attack erases contiguous position ranges.

use crate::spec::Watermark;

/// A redundant encoding `wm → wm_data` with majority-style decoding.
pub trait ErrorCorrectingCode {
    /// Expand `wm` into `out_len` bits.
    ///
    /// # Panics
    ///
    /// Implementations panic when `out_len < wm.len()` (callers
    /// validate bandwidth when building the spec).
    fn encode(&self, wm: &Watermark, out_len: usize) -> Vec<bool>;

    /// Recover the most likely watermark from (possibly erased)
    /// `wm_data` position values. `None` marks an erased position
    /// (no votes observed and the erasure policy chose to abstain).
    ///
    /// `tie_break(j)` supplies the bit for watermark position `j`
    /// when the observed copies are balanced or entirely erased; the
    /// decoder passes a keyed-PRF coin so results stay deterministic.
    fn decode(
        &self,
        positions: &[Option<bool>],
        wm_len: usize,
        tie_break: &mut dyn FnMut(usize) -> bool,
    ) -> Watermark;

    /// Which watermark bit the `wm_data` position `i` carries.
    fn bit_for_position(&self, i: usize, wm_len: usize, out_len: usize) -> usize;
}

/// Interleaved repetition code with majority-vote decoding — the
/// paper's choice, as implemented here the default.
#[derive(Debug, Clone, Copy, Default)]
pub struct MajorityVotingEcc;

impl ErrorCorrectingCode for MajorityVotingEcc {
    fn encode(&self, wm: &Watermark, out_len: usize) -> Vec<bool> {
        assert!(out_len >= wm.len(), "wm_data must be at least |wm| bits");
        (0..out_len).map(|i| wm.bit(i % wm.len())).collect()
    }

    fn decode(
        &self,
        positions: &[Option<bool>],
        wm_len: usize,
        tie_break: &mut dyn FnMut(usize) -> bool,
    ) -> Watermark {
        let mut ones = vec![0u32; wm_len];
        let mut zeros = vec![0u32; wm_len];
        for (i, pos) in positions.iter().enumerate() {
            match pos {
                Some(true) => ones[i % wm_len] += 1,
                Some(false) => zeros[i % wm_len] += 1,
                None => {}
            }
        }
        let bits = (0..wm_len)
            .map(|j| match ones[j].cmp(&zeros[j]) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Less => false,
                std::cmp::Ordering::Equal => tie_break(j),
            })
            .collect();
        Watermark::from_bits(bits)
    }

    fn bit_for_position(&self, i: usize, wm_len: usize, _out_len: usize) -> usize {
        i % wm_len
    }
}

/// Contiguous-block repetition code (ablation alternative).
///
/// `wm_data` is split into `|wm|` nearly equal runs; run `j` carries
/// watermark bit `j`.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockRepetitionEcc;

impl ErrorCorrectingCode for BlockRepetitionEcc {
    fn encode(&self, wm: &Watermark, out_len: usize) -> Vec<bool> {
        assert!(out_len >= wm.len(), "wm_data must be at least |wm| bits");
        (0..out_len).map(|i| wm.bit(self.bit_for_position(i, wm.len(), out_len))).collect()
    }

    fn decode(
        &self,
        positions: &[Option<bool>],
        wm_len: usize,
        tie_break: &mut dyn FnMut(usize) -> bool,
    ) -> Watermark {
        let mut ones = vec![0u32; wm_len];
        let mut zeros = vec![0u32; wm_len];
        for (i, pos) in positions.iter().enumerate() {
            let j = self.bit_for_position(i, wm_len, positions.len());
            match pos {
                Some(true) => ones[j] += 1,
                Some(false) => zeros[j] += 1,
                None => {}
            }
        }
        let bits = (0..wm_len)
            .map(|j| match ones[j].cmp(&zeros[j]) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Less => false,
                std::cmp::Ordering::Equal => tie_break(j),
            })
            .collect();
        Watermark::from_bits(bits)
    }

    fn bit_for_position(&self, i: usize, wm_len: usize, out_len: usize) -> usize {
        // Position i falls in block j when i * wm_len / out_len == j;
        // blocks differ in size by at most one.
        (i * wm_len / out_len.max(1)).min(wm_len - 1)
    }
}

/// Interleaved repetition of a Hamming(7,4) codeword — a true
/// forward-error-correcting alternative to plain repetition.
///
/// The watermark is split into 4-bit nibbles (zero-padded), each
/// encoded as a 7-bit Hamming codeword; the concatenated codeword is
/// then repeated interleaved across `wm_data` exactly like
/// [`MajorityVotingEcc`] repeats the raw watermark. Decoding first
/// majority-votes each *codeword* bit, then runs syndrome correction
/// per block.
///
/// The difference matters when an adversary (or an unlucky erasure
/// pattern) destroys **every copy of one position**: repetition loses
/// that watermark bit outright, while Hamming recovers it from the
/// block's surviving parity structure — at the price of 7/4× lower
/// per-bit redundancy at a fixed `wm_data` size. Codeword-bit ties
/// resolve to `false` deterministically (the per-watermark-bit
/// `tie_break` oracle does not map onto parity bits); the subsequent
/// syndrome correction absorbs the occasional resulting error, which
/// is exactly the code's job.
#[derive(Debug, Clone, Copy, Default)]
pub struct HammingMajorityEcc;

impl HammingMajorityEcc {
    /// Codeword length for a `wm_len`-bit watermark.
    #[must_use]
    pub fn codeword_len(wm_len: usize) -> usize {
        wm_len.div_ceil(4) * 7
    }

    /// Encode one nibble into its 7-bit codeword
    /// `[p1, p2, d1, p3, d2, d3, d4]`.
    fn encode_block(d: [bool; 4]) -> [bool; 7] {
        let p1 = d[0] ^ d[1] ^ d[3];
        let p2 = d[0] ^ d[2] ^ d[3];
        let p3 = d[1] ^ d[2] ^ d[3];
        [p1, p2, d[0], p3, d[1], d[2], d[3]]
    }

    /// Syndrome-correct a 7-bit block in place, then extract the
    /// nibble.
    fn decode_block(c: &mut [bool; 7]) -> [bool; 4] {
        // Parity checks over 1-indexed positions with bit k set.
        let s1 = c[0] ^ c[2] ^ c[4] ^ c[6];
        let s2 = c[1] ^ c[2] ^ c[5] ^ c[6];
        let s3 = c[3] ^ c[4] ^ c[5] ^ c[6];
        let syndrome = usize::from(s1) | (usize::from(s2) << 1) | (usize::from(s3) << 2);
        if syndrome != 0 {
            c[syndrome - 1] = !c[syndrome - 1];
        }
        [c[2], c[4], c[5], c[6]]
    }
}

impl ErrorCorrectingCode for HammingMajorityEcc {
    fn encode(&self, wm: &Watermark, out_len: usize) -> Vec<bool> {
        let l = Self::codeword_len(wm.len());
        assert!(out_len >= l, "wm_data must be at least the {l}-bit Hamming codeword");
        let mut codeword = Vec::with_capacity(l);
        for chunk_start in (0..wm.len()).step_by(4) {
            let mut d = [false; 4];
            for (k, slot) in d.iter_mut().enumerate() {
                if chunk_start + k < wm.len() {
                    *slot = wm.bit(chunk_start + k);
                }
            }
            codeword.extend_from_slice(&Self::encode_block(d));
        }
        (0..out_len).map(|i| codeword[i % l]).collect()
    }

    fn decode(
        &self,
        positions: &[Option<bool>],
        wm_len: usize,
        _tie_break: &mut dyn FnMut(usize) -> bool,
    ) -> Watermark {
        let l = Self::codeword_len(wm_len);
        let mut ones = vec![0u32; l];
        let mut zeros = vec![0u32; l];
        for (i, pos) in positions.iter().enumerate() {
            match pos {
                Some(true) => ones[i % l] += 1,
                Some(false) => zeros[i % l] += 1,
                None => {}
            }
        }
        // Majority per codeword bit; ties and erasures resolve to
        // false and are left for the syndrome to repair.
        let codeword: Vec<bool> = (0..l).map(|j| ones[j] > zeros[j]).collect();
        let mut bits = Vec::with_capacity(wm_len);
        for block in codeword.chunks_exact(7) {
            let mut c: [bool; 7] = block.try_into().expect("chunks_exact(7)");
            let nibble = Self::decode_block(&mut c);
            bits.extend_from_slice(&nibble);
        }
        bits.truncate(wm_len);
        Watermark::from_bits(bits)
    }

    fn bit_for_position(&self, i: usize, wm_len: usize, _out_len: usize) -> usize {
        // Position i carries codeword bit i % L; the watermark bit it
        // *protects* is the block's first data bit (parity positions
        // report the block too — every position in a block serves the
        // same 4 watermark bits).
        let l = Self::codeword_len(wm_len);
        ((i % l) / 7 * 4).min(wm_len.saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_ties(_: usize) -> bool {
        panic!("tie break should not be consulted in this test");
    }

    #[test]
    fn majority_round_trips_clean_data() {
        let ecc = MajorityVotingEcc;
        let wm = Watermark::from_u64(0b1011001110, 10);
        let data = ecc.encode(&wm, 100);
        assert_eq!(data.len(), 100);
        let positions: Vec<Option<bool>> = data.into_iter().map(Some).collect();
        let decoded = ecc.decode(&positions, 10, &mut no_ties);
        assert_eq!(decoded, wm);
    }

    #[test]
    fn majority_interleaves() {
        let ecc = MajorityVotingEcc;
        let wm = Watermark::from_u64(0b10, 2);
        let data = ecc.encode(&wm, 6);
        assert_eq!(data, vec![true, false, true, false, true, false]);
    }

    #[test]
    fn majority_survives_minority_corruption() {
        let ecc = MajorityVotingEcc;
        let wm = Watermark::from_u64(0x2AB, 10);
        let mut data = ecc.encode(&wm, 100);
        // Flip 4 of the 10 copies of bit 3 — still a minority.
        for k in 0..4 {
            let idx = 3 + 10 * k;
            data[idx] = !data[idx];
        }
        let positions: Vec<Option<bool>> = data.into_iter().map(Some).collect();
        assert_eq!(ecc.decode(&positions, 10, &mut no_ties), wm);
    }

    #[test]
    fn majority_fails_beyond_half_as_expected() {
        let ecc = MajorityVotingEcc;
        let wm = Watermark::from_u64(0, 10);
        let mut data = ecc.encode(&wm, 100);
        // Flip 6 of 10 copies of bit 0 — majority now wrong.
        for k in 0..6 {
            data[10 * k] = !data[10 * k];
        }
        let positions: Vec<Option<bool>> = data.into_iter().map(Some).collect();
        let decoded = ecc.decode(&positions, 10, &mut no_ties);
        assert!(decoded.bit(0));
        assert_eq!(wm.hamming_distance(&decoded), 1);
    }

    #[test]
    fn erased_positions_abstain() {
        let ecc = MajorityVotingEcc;
        let wm = Watermark::from_u64(0b11, 2);
        let data = ecc.encode(&wm, 10);
        // Erase all but one copy of each bit: survivors decide alone.
        let positions: Vec<Option<bool>> =
            data.iter().enumerate().map(|(i, &b)| if i < 2 { Some(b) } else { None }).collect();
        assert_eq!(ecc.decode(&positions, 2, &mut no_ties), wm);
    }

    #[test]
    fn full_erasure_consults_tie_break() {
        let ecc = MajorityVotingEcc;
        let positions = vec![None; 20];
        let mut consulted = Vec::new();
        let decoded = ecc.decode(&positions, 4, &mut |j| {
            consulted.push(j);
            j % 2 == 0
        });
        assert_eq!(consulted, vec![0, 1, 2, 3]);
        assert_eq!(decoded.bits(), &[true, false, true, false]);
    }

    #[test]
    fn exact_tie_consults_tie_break() {
        let ecc = MajorityVotingEcc;
        // Two copies of one bit, one vote each way.
        let positions = vec![Some(true), Some(false)];
        let decoded = ecc.decode(&positions, 1, &mut |_| true);
        assert!(decoded.bit(0));
    }

    #[test]
    fn block_code_round_trips() {
        let ecc = BlockRepetitionEcc;
        let wm = Watermark::from_u64(0b1100110011, 10);
        let data = ecc.encode(&wm, 103); // non-divisible length
        let positions: Vec<Option<bool>> = data.into_iter().map(Some).collect();
        assert_eq!(ecc.decode(&positions, 10, &mut no_ties), wm);
    }

    #[test]
    fn block_code_positions_are_contiguous() {
        let ecc = BlockRepetitionEcc;
        let assignments: Vec<usize> = (0..20).map(|i| ecc.bit_for_position(i, 4, 20)).collect();
        // Non-decreasing runs, all bits covered.
        assert!(assignments.windows(2).all(|w| w[0] <= w[1]));
        for j in 0..4 {
            assert!(assignments.contains(&j));
        }
    }

    #[test]
    fn block_vs_interleaved_under_prefix_erasure() {
        // Erase the first half of wm_data. Interleaving keeps ~half of
        // every bit's copies; block coding loses entire bits.
        let wm = Watermark::from_u64(0b1111100000, 10);
        let out_len = 100;
        let inter = MajorityVotingEcc;
        let block = BlockRepetitionEcc;
        let make_positions = |data: Vec<bool>| -> Vec<Option<bool>> {
            data.into_iter()
                .enumerate()
                .map(|(i, b)| if i < out_len / 2 { None } else { Some(b) })
                .collect()
        };
        let inter_decoded =
            inter.decode(&make_positions(inter.encode(&wm, out_len)), 10, &mut |_| false);
        assert_eq!(inter_decoded, wm, "interleaving survives prefix erasure");
        let block_decoded =
            block.decode(&make_positions(block.encode(&wm, out_len)), 10, &mut |_| false);
        // Bits 0..5 lived entirely in the erased prefix → tie-broken
        // to false. Bits 0..5 of the watermark are 1 → all lost.
        assert_eq!(wm.hamming_distance(&block_decoded), 5);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn encode_rejects_short_output() {
        let _ = MajorityVotingEcc.encode(&Watermark::from_u64(0, 10), 5);
    }

    #[test]
    fn hamming_round_trips_clean_data() {
        let ecc = HammingMajorityEcc;
        for wm_len in [4usize, 7, 10, 16] {
            let wm = Watermark::from_u64(0xDEAD & ((1 << wm_len) - 1), wm_len);
            let data = ecc.encode(&wm, 200);
            let positions: Vec<Option<bool>> = data.into_iter().map(Some).collect();
            assert_eq!(ecc.decode(&positions, wm_len, &mut no_ties), wm, "wm_len={wm_len}");
        }
    }

    #[test]
    fn hamming_codeword_len_is_seven_per_nibble() {
        assert_eq!(HammingMajorityEcc::codeword_len(4), 7);
        assert_eq!(HammingMajorityEcc::codeword_len(10), 21);
        assert_eq!(HammingMajorityEcc::codeword_len(16), 28);
    }

    #[test]
    fn hamming_survives_total_position_wipeout_where_repetition_fails() {
        // Destroy EVERY copy of one codeword/watermark position.
        // Repetition has no parity to fall back on; Hamming corrects
        // the block.
        let wm = Watermark::from_u64(0b1111_1111, 8);
        let out_len = 140; // 10 copies of the 14-bit Hamming codeword
        let hamming = HammingMajorityEcc;
        let data = hamming.encode(&wm, out_len);
        let l = HammingMajorityEcc::codeword_len(8);
        // Flip all copies of codeword position 2 (a data bit: d1).
        let flipped: Vec<Option<bool>> =
            data.iter().enumerate().map(|(i, &b)| Some(if i % l == 2 { !b } else { b })).collect();
        assert_eq!(hamming.decode(&flipped, 8, &mut no_ties), wm);

        // The repetition code under the same adversary loses the bit.
        let majority = MajorityVotingEcc;
        let rep = majority.encode(&wm, out_len);
        let rep_flipped: Vec<Option<bool>> =
            rep.iter().enumerate().map(|(i, &b)| Some(if i % 8 == 2 { !b } else { b })).collect();
        let decoded = majority.decode(&rep_flipped, 8, &mut no_ties);
        assert_eq!(wm.hamming_distance(&decoded), 1, "repetition must lose exactly bit 2");
    }

    #[test]
    fn hamming_corrects_one_wipeout_per_block_not_two() {
        let wm = Watermark::from_u64(0b1010, 4); // single block
        let hamming = HammingMajorityEcc;
        let data = hamming.encode(&wm, 70);
        // Two positions of the same block wiped: miscorrection allowed,
        // but the decode must still be a valid 4-bit watermark.
        let flipped: Vec<Option<bool>> =
            data.iter().enumerate().map(|(i, &b)| Some(if i % 7 <= 1 { !b } else { b })).collect();
        let decoded = hamming.decode(&flipped, 4, &mut no_ties);
        assert_eq!(decoded.len(), 4);
        assert!(wm.hamming_distance(&decoded) >= 1, "double wipeout is beyond Hamming(7,4)");
    }

    #[test]
    fn hamming_tolerates_minority_random_corruption() {
        let ecc = HammingMajorityEcc;
        let wm = Watermark::from_u64(0x2AB, 10);
        let mut data = ecc.encode(&wm, 210); // 10 copies per codeword bit
                                             // Flip 3 of 10 copies of several scattered positions.
        for (pos, k) in [(0, 0), (5, 1), (13, 2)] {
            for copy in 0..3 {
                let idx = pos + 21 * (copy + k);
                data[idx] = !data[idx];
            }
        }
        let positions: Vec<Option<bool>> = data.into_iter().map(Some).collect();
        assert_eq!(ecc.decode(&positions, 10, &mut no_ties), wm);
    }

    #[test]
    fn hamming_handles_erasures() {
        let ecc = HammingMajorityEcc;
        let wm = Watermark::from_u64(0b1100, 4);
        let data = ecc.encode(&wm, 70);
        // Erase 80% of positions uniformly: survivors still decide.
        let positions: Vec<Option<bool>> = data
            .iter()
            .enumerate()
            .map(|(i, &b)| if i % 5 == 0 { Some(b) } else { None })
            .collect();
        assert_eq!(ecc.decode(&positions, 4, &mut no_ties), wm);
    }

    #[test]
    #[should_panic(expected = "Hamming codeword")]
    fn hamming_rejects_sub_codeword_output() {
        let _ = HammingMajorityEcc.encode(&Watermark::from_u64(0, 10), 15);
    }
}
