//! Blind mark decoding (Section 3.2.2, Figure 2(a)).
//!
//! ```text
//! wm_decode(K, A, k1, k2, e, ECC)
//!   for j ← 1 .. N
//!     if H(T_j(K), k1) mod e == 0 then
//!       determine t such that T_j(A) = a_t
//!       wm_data[H(T_j(K), k2)] ← t & 1
//!   wm ← ECC.decode(wm_data, |wm|)
//! ```
//!
//! Detection is blind: it consumes only the suspect relation and the
//! [`crate::WatermarkSpec`] (keys + parameters + domain). Each fit
//! tuple casts one vote for its `wm_data` position; positions are
//! resolved by per-position majority, unobserved positions by the
//! configured [`ErasurePolicy`], and the ECC majority-votes the
//! redundant copies back into a watermark.

use catmark_crypto::KeyedPrf;
use catmark_relation::{ColumnView, Relation, Value};

use crate::ecc::ErrorCorrectingCode;
use crate::error::CoreError;
use crate::plan::MarkPlan;
use crate::spec::{Watermark, WatermarkSpec};

/// How the decoder values `wm_data` positions that received no votes.
///
/// Under heavy data loss (attack A1) many positions go unobserved; the
/// policy controls the failure mode and is the knob behind the shape
/// of the paper's Figure 7 (swept by the `erasure_policy` ablation
/// bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErasurePolicy {
    /// Skip the position: only observed votes reach the ECC. The
    /// statistically cleanest choice (surviving votes are never
    /// corrupted by data loss), with coin-flip fallback only when a
    /// watermark bit loses *all* its copies.
    Abstain,
    /// Fill with an unbiased keyed-PRF coin. Models a decoder that
    /// always materializes the full `wm_data` array; degrades more
    /// steeply under loss (closest to the paper's measured Figure 7).
    #[default]
    RandomFill,
    /// Fill with zero, as a freshly allocated array would read.
    /// Biased: watermarks with many 1-bits degrade asymmetrically.
    ZeroFill,
}

/// Outcome of a decoding pass.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeReport {
    /// The recovered watermark.
    pub watermark: Watermark,
    /// Tuples satisfying the fitness criterion.
    pub fit_tuples: usize,
    /// Votes cast (fit tuples whose value was a domain member).
    pub votes_cast: usize,
    /// Fit tuples whose attribute value was outside the domain (e.g.
    /// after a remapping attack) — they abstain.
    pub foreign_values: usize,
    /// `wm_data` positions that received at least one vote.
    pub positions_observed: usize,
    /// Positions resolved by the erasure policy instead of votes.
    pub positions_erased: usize,
    /// Positions with conflicting votes (evidence of tampering: clean
    /// embedded data votes unanimously per position).
    pub position_conflicts: usize,
    /// The resolved `wm_data` estimate fed to the ECC (`None` =
    /// abstained position under [`ErasurePolicy::Abstain`]).
    pub wm_data: Vec<Option<bool>>,
}

impl DecodeReport {
    /// Fraction of `wm_data` positions that were observed.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.wm_data.is_empty() {
            0.0
        } else {
            self.positions_observed as f64 / self.wm_data.len() as f64
        }
    }
}

impl std::fmt::Display for DecodeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "decoded {} from {} votes over {} fit tuples ({} foreign): \
             {}/{} positions observed, {} erased, {} conflicting",
            self.watermark,
            self.votes_cast,
            self.fit_tuples,
            self.foreign_values,
            self.positions_observed,
            self.wm_data.len(),
            self.positions_erased,
            self.position_conflicts,
        )
    }
}

impl crate::session::Outcome for DecodeReport {
    fn fit_count(&self) -> usize {
        self.fit_tuples
    }

    fn coverage(&self) -> f64 {
        DecodeReport::coverage(self)
    }

    /// Vote unanimity of the observed positions — clean embedded data
    /// votes unanimously, so conflicts are direct evidence of
    /// tampering (0 when nothing was observed).
    fn confidence(&self) -> f64 {
        if self.positions_observed == 0 {
            0.0
        } else {
            (self.positions_observed - self.position_conflicts) as f64
                / self.positions_observed as f64
        }
    }
}

/// Blind watermark decoder for one `(key, categorical attribute)`
/// pair.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    spec: &'a WatermarkSpec,
}

impl<'a> Decoder<'a> {
    /// Engine constructor for the session layer and the other in-crate
    /// operators. External callers bind a
    /// [`crate::session::MarkSession`], which resolves columns once
    /// and shares one plan cache across every operator.
    pub(crate) fn engine(spec: &'a WatermarkSpec) -> Self {
        Decoder { spec }
    }

    /// Fully general decoding with explicit indices and ECC. Builds a
    /// fresh [`MarkPlan`] internally; callers that already hold one
    /// (or share a [`crate::plan::PlanCache`] with the embedding pass)
    /// should use [`Decoder::decode_with_plan`].
    ///
    /// # Errors
    ///
    /// None beyond index validity — decoding never fails on suspect
    /// data; it simply reports what it could recover.
    pub fn decode_by_idx(
        &self,
        rel: &Relation,
        key_idx: usize,
        attr_idx: usize,
        ecc: &dyn ErrorCorrectingCode,
    ) -> Result<DecodeReport, CoreError> {
        let plan = MarkPlan::build(self.spec, rel, key_idx);
        self.decode_with_plan(rel, attr_idx, ecc, &plan)
    }

    /// Decoding over a precomputed [`MarkPlan`]: only the fit rows are
    /// visited and no key is rehashed.
    ///
    /// Byte-identical to [`Decoder::decode_by_idx`] when the plan was
    /// built from the same spec and relation.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidSpec`] when the plan does not match this
    /// spec/relation.
    pub fn decode_with_plan(
        &self,
        rel: &Relation,
        attr_idx: usize,
        ecc: &dyn ErrorCorrectingCode,
        plan: &MarkPlan,
    ) -> Result<DecodeReport, CoreError> {
        if !plan.matches(self.spec, rel) {
            return Err(CoreError::InvalidSpec(
                "mark plan was built for a different spec or relation".into(),
            ));
        }
        self.decode_with_plan_trusted(rel, attr_idx, ecc, plan)
    }

    /// [`Decoder::decode_with_plan`] minus the plan-staleness
    /// fingerprint pass — for plans the caller *just* obtained from a
    /// [`crate::plan::PlanCache`] lookup over the same relation, where
    /// the cache key already proved content identity.
    pub(crate) fn decode_with_plan_trusted(
        &self,
        rel: &Relation,
        attr_idx: usize,
        ecc: &dyn ErrorCorrectingCode,
        plan: &MarkPlan,
    ) -> Result<DecodeReport, CoreError> {
        let mut votes = VoteAccumulator::new(self.spec.wm_data_len);
        votes.accumulate(self.spec, rel, attr_idx, plan);
        self.resolve(ecc, votes)
    }

    /// Turn accumulated per-position vote tallies into a
    /// [`DecodeReport`]: majority per position, the configured
    /// [`ErasurePolicy`] for unobserved positions, deterministic
    /// keyed-PRF coins for ties, then the ECC. Split from the vote
    /// pass so the out-of-core driver can accumulate votes one
    /// segment at a time and resolve once — byte-identical to a
    /// monolithic decode by construction.
    pub(crate) fn resolve(
        &self,
        ecc: &dyn ErrorCorrectingCode,
        votes: VoteAccumulator,
    ) -> Result<DecodeReport, CoreError> {
        let VoteAccumulator { ones, zeros, fit_tuples, votes_cast, foreign_values } = votes;
        let len = self.spec.wm_data_len;

        // Deterministic coins for erasure fill and tie-breaking,
        // independent of the data (derived from k2 so any party with
        // the detection keys resolves identically).
        let prf =
            KeyedPrf::new(self.spec.algo, self.spec.k2.derive(self.spec.algo, "decode-coins"));

        let mut positions_observed = 0usize;
        let mut positions_erased = 0usize;
        let mut position_conflicts = 0usize;
        let wm_data: Vec<Option<bool>> = (0..len)
            .map(|i| {
                let (o, z) = (ones[i], zeros[i]);
                if o + z == 0 {
                    positions_erased += 1;
                    match self.spec.erasure {
                        ErasurePolicy::Abstain => None,
                        ErasurePolicy::RandomFill => Some(prf.bit("erasure", i as u64)),
                        ErasurePolicy::ZeroFill => Some(false),
                    }
                } else {
                    positions_observed += 1;
                    if o > 0 && z > 0 {
                        position_conflicts += 1;
                    }
                    match o.cmp(&z) {
                        std::cmp::Ordering::Greater => Some(true),
                        std::cmp::Ordering::Less => Some(false),
                        std::cmp::Ordering::Equal => Some(prf.bit("pos-tie", i as u64)),
                    }
                }
            })
            .collect();

        let mut tie_break = |j: usize| prf.bit("wm-tie", j as u64);
        let watermark = ecc.decode(&wm_data, self.spec.wm_len, &mut tie_break);
        Ok(DecodeReport {
            watermark,
            fit_tuples,
            votes_cast,
            foreign_values,
            positions_observed,
            positions_erased,
            position_conflicts,
            wm_data,
        })
    }
}

/// Per-position vote tallies plus the counters a [`DecodeReport`]
/// needs — filled by one pass over a whole relation, or by one pass
/// per segment of a `SegmentedRelation` (votes are commutative
/// per-position increments, so accumulation order cannot change the
/// resolved mark).
#[derive(Debug, Clone)]
pub(crate) struct VoteAccumulator {
    ones: Vec<u32>,
    zeros: Vec<u32>,
    fit_tuples: usize,
    votes_cast: usize,
    foreign_values: usize,
}

impl VoteAccumulator {
    /// Empty tallies over `wm_data_len` positions.
    pub(crate) fn new(wm_data_len: usize) -> Self {
        VoteAccumulator {
            ones: vec![0; wm_data_len],
            zeros: vec![0; wm_data_len],
            fit_tuples: 0,
            votes_cast: 0,
            foreign_values: 0,
        }
    }

    /// Cast every fit tuple's vote straight off the target column's
    /// typed storage: integer rows resolve through the domain map,
    /// text rows through a per-dictionary-entry translation table
    /// computed once per (segment's) dictionary. `plan` must have
    /// been built over `rel` (its rows index `rel` locally).
    pub(crate) fn accumulate(
        &mut self,
        spec: &WatermarkSpec,
        rel: &Relation,
        attr_idx: usize,
        plan: &MarkPlan,
    ) {
        self.accumulate_rows(spec, rel, attr_idx, plan.fit());
    }

    /// [`VoteAccumulator::accumulate`] over an explicit slice of
    /// planned rows — the evidence layer partitions one monolithic
    /// plan at segment boundaries (a segment's plan is an exact slice
    /// of the monolithic one) and tallies each partition separately.
    pub(crate) fn accumulate_rows(
        &mut self,
        spec: &WatermarkSpec,
        rel: &Relation,
        attr_idx: usize,
        rows: &[crate::plan::PlannedRow],
    ) {
        self.fit_tuples += rows.len();
        match rel.column(attr_idx) {
            ColumnView::Int(xs) => {
                for planned in rows {
                    let Some(t) = spec.domain.code_of(&Value::Int(xs[planned.row as usize])) else {
                        self.foreign_values += 1;
                        continue;
                    };
                    self.tally(planned.position as usize, t);
                }
            }
            ColumnView::Text { codes, dict } => {
                let table = spec.domain.dict_codes(dict);
                for planned in rows {
                    let Some(t) = table[codes[planned.row as usize] as usize] else {
                        self.foreign_values += 1;
                        continue;
                    };
                    self.tally(planned.position as usize, t);
                }
            }
        }
    }

    /// Fold `other`'s tallies into these. Votes are commutative
    /// per-position increments, so merging per-segment accumulators
    /// (in any order) resolves identically to one sequential pass —
    /// the fact that lets the incremental decode driver reuse cached
    /// tallies for clean segments.
    pub(crate) fn merge(&mut self, other: &VoteAccumulator) {
        debug_assert_eq!(self.ones.len(), other.ones.len(), "mismatched wm_data lengths");
        for (a, b) in self.ones.iter_mut().zip(&other.ones) {
            *a += b;
        }
        for (a, b) in self.zeros.iter_mut().zip(&other.zeros) {
            *a += b;
        }
        self.fit_tuples += other.fit_tuples;
        self.votes_cast += other.votes_cast;
        self.foreign_values += other.foreign_values;
    }

    /// Per-position one-votes — what the evidence layer serializes.
    pub(crate) fn ones(&self) -> &[u32] {
        &self.ones
    }

    /// Per-position zero-votes.
    pub(crate) fn zeros(&self) -> &[u32] {
        &self.zeros
    }

    /// Fit tuples seen by this accumulator.
    pub(crate) fn fit_tuples(&self) -> usize {
        self.fit_tuples
    }

    /// Votes cast (fit tuples whose value was a domain member).
    pub(crate) fn votes_cast(&self) -> usize {
        self.votes_cast
    }

    /// Fit tuples whose value fell outside the domain.
    pub(crate) fn foreign_values(&self) -> usize {
        self.foreign_values
    }

    fn tally(&mut self, position: usize, domain_code: u32) {
        if domain_code & 1 == 1 {
            self.ones[position] += 1;
        } else {
            self.zeros[position] += 1;
        }
        self.votes_cast += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catmark_datagen::{ItemScanConfig, SalesGenerator};
    use catmark_relation::ops;

    fn setup(
        tuples: usize,
        e: u64,
        erasure: ErasurePolicy,
    ) -> (Relation, WatermarkSpec, Watermark) {
        let gen = SalesGenerator::new(ItemScanConfig { tuples, ..Default::default() });
        let mut rel = gen.generate();
        let spec = WatermarkSpec::builder(gen.item_domain())
            .master_key("decode-tests")
            .e(e)
            .wm_len(10)
            .expected_tuples(tuples)
            .erasure(erasure)
            .build()
            .unwrap();
        let wm = Watermark::from_u64(0b1011001110, 10);
        crate::testkit::embed(&spec, &mut rel, "visit_nbr", "item_nbr", &wm).unwrap();
        (rel, spec, wm)
    }

    #[test]
    fn round_trip_recovers_watermark_exactly() {
        // With |wm_data| = N/e (the paper's sizing) carrier density is
        // λ ≈ 1 per position, leaving ~1/e of positions unobserved
        // even on clean data; ZeroFill's bias could then flip 1-bits.
        // Use a denser embedding (fit count ≈ 4 × |wm_data|) so every
        // policy must decode exactly.
        for policy in [ErasurePolicy::Abstain, ErasurePolicy::RandomFill, ErasurePolicy::ZeroFill] {
            let gen = SalesGenerator::new(ItemScanConfig { tuples: 6_000, ..Default::default() });
            let mut rel = gen.generate();
            let spec = WatermarkSpec::builder(gen.item_domain())
                .master_key("decode-tests")
                .e(15)
                .wm_len(10)
                .wm_data_len(100)
                .erasure(policy)
                .build()
                .unwrap();
            let wm = Watermark::from_u64(0b1011001110, 10);
            crate::testkit::embed(&spec, &mut rel, "visit_nbr", "item_nbr", &wm).unwrap();
            let report = crate::testkit::decode(&spec, &rel, "visit_nbr", "item_nbr").unwrap();
            assert_eq!(report.watermark, wm, "policy {policy:?}");
            assert_eq!(report.foreign_values, 0);
            assert_eq!(report.position_conflicts, 0, "clean data votes unanimously");
        }
    }

    #[test]
    fn round_trip_various_watermarks() {
        let gen = SalesGenerator::new(ItemScanConfig { tuples: 4_000, ..Default::default() });
        for (bits, len) in [(0u64, 10), (0x3FF, 10), (0b1, 1), (0xDEAD, 16)] {
            let mut rel = gen.generate();
            let spec = WatermarkSpec::builder(gen.item_domain())
                .master_key("decode-tests-2")
                .e(10)
                .wm_len(len)
                .wm_data_len(100)
                .build()
                .unwrap();
            let wm = Watermark::from_u64(bits, len);
            crate::testkit::embed(&spec, &mut rel, "visit_nbr", "item_nbr", &wm).unwrap();
            let report = crate::testkit::decode(&spec, &rel, "visit_nbr", "item_nbr").unwrap();
            assert_eq!(report.watermark, wm, "wm={wm}");
        }
    }

    #[test]
    fn decoding_is_blind_to_row_order() {
        // Attack A4: re-sorting must not disturb detection.
        let (rel, spec, wm) = setup(6_000, 30, ErasurePolicy::Abstain);
        let shuffled = ops::shuffle(&rel, 999);
        let sorted = ops::sort_by_attr(&rel, 1, false);
        for suspect in [shuffled, sorted] {
            let report = crate::testkit::decode(&spec, &suspect, "visit_nbr", "item_nbr").unwrap();
            assert_eq!(report.watermark, wm);
        }
    }

    #[test]
    fn wrong_key_decodes_garbage() {
        let (rel, spec, wm) = setup(6_000, 30, ErasurePolicy::RandomFill);
        let mut wrong = spec.clone();
        wrong.k1 = spec.k1.derive(spec.algo, "not-the-real-key");
        wrong.k2 = spec.k2.derive(spec.algo, "not-the-real-key");
        let report = crate::testkit::decode(&wrong, &rel, "visit_nbr", "item_nbr").unwrap();
        // A 10-bit mark matches by chance with probability 2^-10; a
        // *perfect* match under the wrong key would be a red flag.
        assert_ne!(report.watermark, wm);
    }

    #[test]
    fn survives_moderate_data_loss() {
        // A1: drop 40% of tuples; surviving votes are untainted so the
        // mark should still decode exactly under Abstain.
        let (rel, spec, wm) = setup(12_000, 30, ErasurePolicy::Abstain);
        let kept = ops::sample_bernoulli(&rel, 0.6, 4242);
        let report = crate::testkit::decode(&spec, &kept, "visit_nbr", "item_nbr").unwrap();
        assert_eq!(report.watermark, wm);
        assert!(report.positions_erased > 0, "loss should erase some positions");
    }

    #[test]
    fn foreign_values_abstain_rather_than_vote() {
        let (mut rel, spec, wm) = setup(6_000, 30, ErasurePolicy::Abstain);
        // Remap every item number out of the domain (crude A6).
        for row in 0..rel.len() {
            let old = rel.tuple(row).unwrap().get(1).as_int().unwrap();
            rel.update_value(row, 1, catmark_relation::Value::Int(old + 1_000_000)).unwrap();
        }
        let report = crate::testkit::decode(&spec, &rel, "visit_nbr", "item_nbr").unwrap();
        assert_eq!(report.votes_cast, 0);
        assert_eq!(report.foreign_values, report.fit_tuples);
        assert_eq!(report.positions_observed, 0);
        let _ = wm; // decoded mark is pure noise here, nothing to assert
    }

    #[test]
    fn report_accounting_is_consistent() {
        let (rel, spec, _) = setup(6_000, 60, ErasurePolicy::RandomFill);
        let report = crate::testkit::decode(&spec, &rel, "visit_nbr", "item_nbr").unwrap();
        assert_eq!(report.votes_cast + report.foreign_values, report.fit_tuples);
        assert_eq!(report.positions_observed + report.positions_erased, spec.wm_data_len);
        assert_eq!(report.wm_data.len(), spec.wm_data_len);
        assert!(report.coverage() > 0.0 && report.coverage() <= 1.0);
    }

    #[test]
    fn abstain_leaves_none_randomfill_fills() {
        let (rel, spec, _) = setup(3_000, 60, ErasurePolicy::Abstain);
        let report = crate::testkit::decode(&spec, &rel, "visit_nbr", "item_nbr").unwrap();
        if report.positions_erased > 0 {
            assert!(report.wm_data.iter().any(Option::is_none));
        }
        let mut spec2 = spec.clone();
        spec2.erasure = ErasurePolicy::RandomFill;
        let report2 = crate::testkit::decode(&spec2, &rel, "visit_nbr", "item_nbr").unwrap();
        assert!(report2.wm_data.iter().all(Option::is_some));
    }

    #[test]
    fn decoding_is_deterministic() {
        let (rel, spec, _) = setup(3_000, 40, ErasurePolicy::RandomFill);
        let a = crate::testkit::decode(&spec, &rel, "visit_nbr", "item_nbr").unwrap();
        let b = crate::testkit::decode(&spec, &rel, "visit_nbr", "item_nbr").unwrap();
        assert_eq!(a, b);
    }
}
