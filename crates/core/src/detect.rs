//! Court-time detection verdicts (Section 4.4's false-positive
//! analysis applied to a concrete decode).
//!
//! "In order to fight false-positive claims in court we ask: what is
//! the probability of a given watermark of length |wm| to be detected
//! in a random data set?" — `(1/2)^|wm|` for an exact match. This
//! module generalizes to partial matches: given a decoded mark and the
//! claimed mark, it computes the probability that a *random* decode
//! would match at least as well, i.e. the p-value of the ownership
//! claim.

use crate::spec::Watermark;

/// Result of comparing a decoded watermark against a claimed one.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// Bits that agree.
    pub matched_bits: usize,
    /// Total bits compared (`|wm|`).
    pub total_bits: usize,
    /// `matched_bits / total_bits`.
    pub match_fraction: f64,
    /// Probability that ≥ `matched_bits` of `total_bits` match by
    /// pure chance (binomial tail at p = 1/2) — the court-time
    /// false-positive odds.
    pub false_positive_probability: f64,
}

impl Detection {
    /// Whether the claim clears significance level `alpha` (e.g.
    /// `1e-6`): the chance-match probability is below it.
    #[must_use]
    pub fn is_significant(&self, alpha: f64) -> bool {
        self.false_positive_probability < alpha
    }

    /// The paper's "mark alteration" metric for this comparison:
    /// fraction of differing bits.
    #[must_use]
    pub fn alteration_fraction(&self) -> f64 {
        1.0 - self.match_fraction
    }
}

impl std::fmt::Display for Detection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} bits match, chance odds {:.2e}",
            self.matched_bits, self.total_bits, self.false_positive_probability
        )
    }
}

/// Compare a decoded watermark against the claimed one.
///
/// # Panics
///
/// Panics when lengths differ (decode always produces `spec.wm_len`
/// bits; compare against a mark built with the same spec).
#[must_use]
pub fn detect(decoded: &Watermark, claimed: &Watermark) -> Detection {
    assert_eq!(decoded.len(), claimed.len(), "decoded and claimed watermark lengths differ");
    let total_bits = claimed.len();
    let matched_bits = total_bits - decoded.hamming_distance(claimed);
    Detection {
        matched_bits,
        total_bits,
        match_fraction: matched_bits as f64 / total_bits as f64,
        false_positive_probability: binomial_tail_half(total_bits, matched_bits),
    }
}

/// `P[Bin(n, 1/2) >= k]`, computed exactly in f64 via a running
/// binomial coefficient. Exact enough for the n ≤ 64 watermark lengths
/// this library supports.
#[must_use]
pub fn binomial_tail_half(n: usize, k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if k > n {
        return 0.0;
    }
    // Sum C(n, i) for i in k..=n, then scale by 2^-n. Use logarithms
    // to stay finite for larger n.
    let ln2 = std::f64::consts::LN_2;
    let mut total = 0.0f64;
    // ln C(n, i) built incrementally from ln C(n, k).
    let mut ln_c = ln_choose(n, k);
    for i in k..=n {
        total += (ln_c - (n as f64) * ln2).exp();
        if i < n {
            // C(n, i+1) = C(n, i) * (n - i) / (i + 1)
            ln_c += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
        }
    }
    total.min(1.0)
}

fn ln_choose(n: usize, k: usize) -> f64 {
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

fn ln_factorial(n: usize) -> f64 {
    (2..=n).map(|i| (i as f64).ln()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_match_probability_is_two_to_minus_wm() {
        // The paper: "it is easy to prove that this probability is
        // (1/2)^|wm|".
        let wm = Watermark::from_u64(0x2A5, 10);
        let d = detect(&wm, &wm);
        assert_eq!(d.matched_bits, 10);
        assert!((d.false_positive_probability - 2f64.powi(-10)).abs() < 1e-15);
        assert!(d.is_significant(1e-2));
    }

    #[test]
    fn paper_full_bandwidth_example() {
        // N = 6000, e = 60 ⇒ N/e = 100 positions all used:
        // (1/2)^100 ≈ 7.8·10⁻³¹.
        let p = binomial_tail_half(100, 100);
        assert!((p / 7.888e-31 - 1.0).abs() < 0.01, "p={p:e}");
    }

    #[test]
    fn half_match_is_not_significant() {
        let a = Watermark::from_u64(0b1111100000, 10);
        let b = Watermark::from_u64(0b1111111111, 10);
        let d = detect(&a, &b);
        assert_eq!(d.matched_bits, 5);
        // P[Bin(10, 1/2) >= 5] ≈ 0.623.
        assert!((d.false_positive_probability - 0.623).abs() < 0.01);
        assert!(!d.is_significant(0.05));
    }

    #[test]
    fn binomial_tail_basics() {
        assert_eq!(binomial_tail_half(10, 0), 1.0);
        assert_eq!(binomial_tail_half(10, 11), 0.0);
        // P[Bin(1,1/2) >= 1] = 1/2.
        assert!((binomial_tail_half(1, 1) - 0.5).abs() < 1e-12);
        // P[Bin(2,1/2) >= 1] = 3/4.
        assert!((binomial_tail_half(2, 1) - 0.75).abs() < 1e-12);
        // Symmetric midpoint: P[Bin(2k, 1/2) >= k] > 1/2.
        assert!(binomial_tail_half(20, 10) > 0.5);
    }

    #[test]
    fn tail_is_monotone_in_k() {
        for n in [5usize, 16, 33] {
            let mut prev = 1.0;
            for k in 0..=n {
                let p = binomial_tail_half(n, k);
                assert!(p <= prev + 1e-12, "n={n} k={k}");
                prev = p;
            }
        }
    }

    #[test]
    fn alteration_fraction_complements_match() {
        let a = Watermark::from_u64(0b1010, 4);
        let b = Watermark::from_u64(0b1001, 4);
        let d = detect(&a, &b);
        assert!((d.match_fraction - 0.5).abs() < 1e-12);
        assert!((d.alteration_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn mismatched_lengths_panic() {
        let _ = detect(&Watermark::from_u64(0, 4), &Watermark::from_u64(0, 5));
    }
}
