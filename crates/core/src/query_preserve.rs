//! Count-query preservation constraints.
//!
//! The paper cites Gross-Amblard's result "linking query preservation
//! to allowable data alteration bounds" as the theoretical companion
//! of its Section 4.1 quality framework: a watermark is harmless to a
//! consumer exactly when the queries that consumer runs still return
//! (approximately) the same answers. This module makes that contract
//! enforceable at embedding time: the rights holder declares the
//! selection/count queries the buyers depend on, each with a
//! tolerance, and the constraint vetoes any alteration that would move
//! an answer outside its tolerance.
//!
//! Counts are tracked incrementally: an `admits` check is O(queries),
//! not a rescan of the relation.

use std::collections::HashSet;

use catmark_relation::{CategoricalDomain, Value};

use crate::quality::{Alteration, CodedAlteration, QualityConstraint};

/// A value-level selection predicate over the constrained attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueSet {
    /// Exactly this value.
    Eq(Value),
    /// Any of these values.
    In(HashSet<Value>),
    /// Inclusive range under the total [`Value`] order.
    Range(Value, Value),
}

impl ValueSet {
    /// Whether `v` satisfies the predicate.
    #[must_use]
    pub fn contains(&self, v: &Value) -> bool {
        match self {
            ValueSet::Eq(x) => v == x,
            ValueSet::In(set) => set.contains(v),
            ValueSet::Range(lo, hi) => lo <= v && v <= hi,
        }
    }

    /// Compile into a per-domain-code membership table: position `t`
    /// answers [`ValueSet::contains`] for `domain.value_at(t)`. The
    /// string/hash work happens once per domain value; the guarded
    /// embedding loop then answers each membership test with one
    /// indexed load.
    #[must_use]
    pub fn compile(&self, domain: &CategoricalDomain) -> Box<[bool]> {
        (0..domain.len()).map(|t| self.contains(domain.value_at(t))).collect()
    }
}

/// How far a query answer may drift from its baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// At most this many rows, absolutely.
    Absolute(u64),
    /// At most this fraction of the baseline count (a zero baseline
    /// admits no drift).
    Relative(f64),
}

impl Tolerance {
    fn allowed(self, baseline: u64) -> u64 {
        match self {
            Tolerance::Absolute(n) => n,
            Tolerance::Relative(f) => (baseline as f64 * f).floor() as u64,
        }
    }
}

/// One declared count query: `SELECT COUNT(*) WHERE attr ∈ values`.
#[derive(Debug, Clone)]
pub struct CountQuery {
    /// Human-readable name for veto diagnostics.
    pub name: String,
    /// Attribute index the query selects on.
    pub attr: usize,
    /// The selection predicate.
    pub values: ValueSet,
    /// Allowed answer drift.
    pub tolerance: Tolerance,
}

impl CountQuery {
    /// Convenience constructor.
    #[must_use]
    pub fn new(name: &str, attr: usize, values: ValueSet, tolerance: Tolerance) -> Self {
        CountQuery { name: name.to_owned(), attr, values, tolerance }
    }
}

struct Tracked {
    query: CountQuery,
    baseline: u64,
    current: u64,
    /// Per-domain-code membership of `query.values`, compiled when
    /// the constraint binds to a guarded pass on `query.attr`.
    compiled: Option<Box<[bool]>>,
}

impl Tracked {
    fn delta(&self, change: &Alteration) -> i64 {
        if change.attr != self.query.attr {
            return 0;
        }
        i64::from(self.query.values.contains(&change.new))
            - i64::from(self.query.values.contains(&change.old))
    }

    /// Code-space twin of [`Tracked::delta`]: two indexed loads.
    fn delta_coded(&self, change: &CodedAlteration) -> i64 {
        if change.attr != self.query.attr {
            return 0;
        }
        let table = self.compiled.as_ref().expect("bound queries on the attr are compiled");
        i64::from(table[change.new as usize]) - i64::from(table[change.old as usize])
    }

    fn within_tolerance(&self, current: u64) -> bool {
        let allowed = self.query.tolerance.allowed(self.baseline);
        current.abs_diff(self.baseline) <= allowed
    }
}

/// Vetoes alterations that would push any declared count query's
/// answer outside its tolerance.
pub struct CountQueryPreservation {
    queries: Vec<Tracked>,
}

impl CountQueryPreservation {
    /// Track `queries` with baselines counted from `column_values`,
    /// given per-attribute column iterators of the relation being
    /// watermarked.
    ///
    /// The constructor takes the relation indirectly (as a closure
    /// yielding a column's values) so callers can count from a
    /// relation, a sample, or recorded statistics alike.
    #[must_use]
    pub fn new<F, I>(queries: Vec<CountQuery>, mut column_values: F) -> Self
    where
        F: FnMut(usize) -> I,
        I: Iterator<Item = Value>,
    {
        let tracked = queries
            .into_iter()
            .map(|q| {
                let baseline =
                    column_values(q.attr).filter(|v| q.values.contains(v)).count() as u64;
                Tracked { query: q, baseline, current: baseline, compiled: None }
            })
            .collect();
        CountQueryPreservation { queries: tracked }
    }

    /// Track `queries` against a relation directly.
    #[must_use]
    pub fn from_relation(rel: &catmark_relation::Relation, queries: Vec<CountQuery>) -> Self {
        Self::new(queries, |attr| rel.column_iter(attr))
    }

    /// Baseline answer of query `i`.
    #[must_use]
    pub fn baseline(&self, i: usize) -> u64 {
        self.queries[i].baseline
    }

    /// Current answer of query `i`.
    #[must_use]
    pub fn current(&self, i: usize) -> u64 {
        self.queries[i].current
    }

    /// Names of queries currently at the edge of their tolerance (the
    /// next adverse alteration would be vetoed).
    #[must_use]
    pub fn saturated(&self) -> Vec<&str> {
        self.queries
            .iter()
            .filter(|t| {
                let allowed = t.query.tolerance.allowed(t.baseline);
                t.current.abs_diff(t.baseline) == allowed
            })
            .map(|t| t.query.name.as_str())
            .collect()
    }
}

impl QualityConstraint for CountQueryPreservation {
    fn name(&self) -> &str {
        "count-queries"
    }

    fn admits(&self, change: &Alteration) -> bool {
        self.queries.iter().all(|t| {
            let d = t.delta(change);
            if d == 0 {
                return true;
            }
            t.within_tolerance(t.current.saturating_add_signed(d))
        })
    }

    fn commit(&mut self, change: &Alteration) {
        for t in &mut self.queries {
            let d = t.delta(change);
            t.current = t.current.saturating_add_signed(d);
        }
    }

    fn rollback(&mut self, change: &Alteration) {
        for t in &mut self.queries {
            let d = t.delta(change);
            t.current = t.current.saturating_add_signed(-d);
        }
    }

    /// Compile each query on the bound attribute into a per-domain-
    /// code membership table. Queries on other attributes never see a
    /// delta from coded alterations (which are always on the bound
    /// attribute), so they need no table.
    fn bind_codes(&mut self, attr: usize, domain: &CategoricalDomain) -> bool {
        for t in &mut self.queries {
            t.compiled =
                if t.query.attr == attr { Some(t.query.values.compile(domain)) } else { None };
        }
        true
    }

    fn admits_coded(&self, change: &CodedAlteration) -> bool {
        self.queries.iter().all(|t| {
            let d = t.delta_coded(change);
            if d == 0 {
                return true;
            }
            t.within_tolerance(t.current.saturating_add_signed(d))
        })
    }

    fn commit_coded(&mut self, change: &CodedAlteration) {
        for t in &mut self.queries {
            let d = t.delta_coded(change);
            t.current = t.current.saturating_add_signed(d);
        }
    }

    fn rollback_coded(&mut self, change: &CodedAlteration) {
        for t in &mut self.queries {
            let d = t.delta_coded(change);
            t.current = t.current.saturating_add_signed(-d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::QualityGuard;
    use catmark_relation::{AttrType, Relation, Schema};

    fn fixture() -> Relation {
        let schema = Schema::builder()
            .key_attr("k", AttrType::Integer)
            .categorical_attr("item", AttrType::Integer)
            .build()
            .unwrap();
        let mut rel = Relation::new(schema);
        for i in 0..100i64 {
            rel.push(vec![Value::Int(i), Value::Int(i % 10)]).unwrap();
        }
        rel
    }

    fn change(row: usize, old: i64, new: i64) -> Alteration {
        Alteration { row, attr: 1, old: Value::Int(old), new: Value::Int(new) }
    }

    #[test]
    fn absolute_tolerance_vetoes_at_the_boundary() {
        let rel = fixture();
        // item == 3 occurs 10 times; allow drift of 2.
        let q = CountQuery::new("item3", 1, ValueSet::Eq(Value::Int(3)), Tolerance::Absolute(2));
        let mut c = CountQueryPreservation::from_relation(&rel, vec![q]);
        assert_eq!(c.baseline(0), 10);
        let a1 = change(3, 3, 4);
        let a2 = change(13, 3, 4);
        assert!(c.admits(&a1));
        c.commit(&a1);
        assert!(c.admits(&a2));
        c.commit(&a2);
        assert_eq!(c.current(0), 8);
        assert_eq!(c.saturated(), vec!["item3"]);
        let a3 = change(23, 3, 4);
        assert!(!c.admits(&a3), "third removal exceeds tolerance 2");
        // Drift in the other direction also counts.
        let towards = change(4, 4, 3);
        assert!(c.admits(&towards), "moving back toward baseline is fine");
    }

    #[test]
    fn relative_tolerance_scales_with_baseline() {
        let rel = fixture();
        // 20 rows in {3, 7}; 10% relative tolerance → 2 rows.
        let q = CountQuery::new(
            "pair",
            1,
            ValueSet::In([Value::Int(3), Value::Int(7)].into_iter().collect()),
            Tolerance::Relative(0.10),
        );
        let mut c = CountQueryPreservation::from_relation(&rel, vec![q]);
        assert_eq!(c.baseline(0), 20);
        c.commit(&change(3, 3, 4));
        c.commit(&change(13, 3, 4));
        assert!(!c.admits(&change(23, 3, 4)));
    }

    #[test]
    fn range_queries_work() {
        let rel = fixture();
        let q = CountQuery::new(
            "low",
            1,
            ValueSet::Range(Value::Int(0), Value::Int(4)),
            Tolerance::Absolute(0),
        );
        let c = CountQueryPreservation::from_relation(&rel, vec![q]);
        assert_eq!(c.baseline(0), 50);
        // Moves within the range are invisible.
        assert!(c.admits(&change(0, 0, 4)));
        // Moves across the boundary are vetoed at zero tolerance.
        assert!(!c.admits(&change(0, 0, 5)));
        assert!(!c.admits(&change(5, 5, 0)));
    }

    #[test]
    fn unrelated_attributes_are_ignored() {
        let rel = fixture();
        let q = CountQuery::new("item3", 1, ValueSet::Eq(Value::Int(3)), Tolerance::Absolute(0));
        let c = CountQueryPreservation::from_relation(&rel, vec![q]);
        let a = Alteration { row: 0, attr: 0, old: Value::Int(0), new: Value::Int(-5) };
        assert!(c.admits(&a));
    }

    #[test]
    fn rollback_restores_budget() {
        let rel = fixture();
        let q = CountQuery::new("item3", 1, ValueSet::Eq(Value::Int(3)), Tolerance::Absolute(1));
        let mut c = CountQueryPreservation::from_relation(&rel, vec![q]);
        let a = change(3, 3, 4);
        c.commit(&a);
        assert!(!c.admits(&change(13, 3, 4)));
        c.rollback(&a);
        assert_eq!(c.current(0), c.baseline(0));
        assert!(c.admits(&change(13, 3, 4)));
    }

    #[test]
    fn zero_baseline_relative_admits_nothing_adverse() {
        let rel = fixture();
        let q =
            CountQuery::new("ghost", 1, ValueSet::Eq(Value::Int(999)), Tolerance::Relative(0.5));
        let c = CountQueryPreservation::from_relation(&rel, vec![q]);
        assert_eq!(c.baseline(0), 0);
        // Creating a row matching the ghost query drifts 0 → 1: veto.
        assert!(!c.admits(&change(0, 0, 999)));
    }

    #[test]
    fn composes_with_quality_guard() {
        let rel = fixture();
        let q = CountQuery::new("item3", 1, ValueSet::Eq(Value::Int(3)), Tolerance::Absolute(1));
        let mut guard =
            QualityGuard::new(vec![Box::new(CountQueryPreservation::from_relation(&rel, vec![q]))]);
        assert!(guard.propose(change(3, 3, 4)));
        assert!(!guard.propose(change(13, 3, 4)));
        assert_eq!(guard.vetoes(), 1);
    }

    #[test]
    fn multiple_queries_all_enforced() {
        let rel = fixture();
        let qs = vec![
            CountQuery::new("item3", 1, ValueSet::Eq(Value::Int(3)), Tolerance::Absolute(5)),
            CountQuery::new("item4", 1, ValueSet::Eq(Value::Int(4)), Tolerance::Absolute(0)),
        ];
        let c = CountQueryPreservation::from_relation(&rel, qs);
        // 3 → 5 is fine for both queries (item4 untouched)…
        assert!(c.admits(&change(3, 3, 5)));
        // …but 3 → 4 is vetoed by the strict item4 query even though
        // item3 has plenty of slack.
        assert!(!c.admits(&change(3, 3, 4)));
    }
}
