//! Court-time bounds (Section 4.4): false positives, residual
//! watermark alteration after error correction, and minimum-`e`
//! sizing.

use crate::prob::normal_quantile;

/// Probability that a random data set exhibits a given `|wm|`-bit
/// watermark exactly: `(1/2)^|wm|`.
///
/// With multiple embeddings using all `N/e` available bits this
/// becomes `(1/2)^{N/e}` — pass the full bandwidth as `bits` for the
/// paper's 7.8·10⁻³¹ example.
#[must_use]
pub fn false_positive_exact_match(bits: u32) -> f64 {
    0.5f64.powi(bits as i32)
}

/// Expected residual alteration of the *final* watermark after error
/// correction (the closed form the paper evaluates to 1.0%):
///
/// ```text
/// (r / (N/e) − t_ecc) · |wm| / |wm_data|
/// ```
///
/// where `r` is the number of altered `wm_data` bits, `t_ecc` the
/// fraction of `wm_data` alterations the ECC absorbs, and the
/// `|wm| / |wm_data|` factor models stable, uniform propagation of
/// surviving damage. Clamped to `[0, 1]`.
#[must_use]
pub fn residual_alteration(
    r: u64,
    bandwidth: u64,
    t_ecc: f64,
    wm_len: u64,
    wm_data_len: u64,
) -> f64 {
    if bandwidth == 0 || wm_data_len == 0 {
        return 0.0;
    }
    let damaged_fraction = (r as f64) / (bandwidth as f64) - t_ecc;
    (damaged_fraction * (wm_len as f64) / (wm_data_len as f64)).clamp(0.0, 1.0)
}

/// Minimum `e` (i.e. the *maximum* number of embedding alterations
/// `N/e` we can avoid) that still caps the random-alteration attack's
/// success probability at `delta`, per the paper's inversion of
/// equation (2):
///
/// ```text
/// (r − (a/e)·p) / sqrt((a/e)·p·(1−p)) ≥ z_delta
/// ```
///
/// Solved in closed form for `m = a/e` (quadratic in √m) and scanned
/// to the smallest integer `e` satisfying the bound.
///
/// For the paper's inputs (r = 15, a = 600, p = 0.7, δ = 10%) the
/// formula as printed yields e ≈ 34 (~2.9% of tuples altered); the
/// paper reports e ≈ 23 (~4.3%). Both support the identical
/// conclusion — a few percent of alterations guarantee the bound —
/// and EXPERIMENTS.md discusses the gap.
///
/// Returns `None` when no `e ≥ 1` satisfies the bound (e.g. `r = 0`).
#[must_use]
pub fn min_e_for_vulnerability(r: u64, a: u64, p: f64, delta: f64) -> Option<u64> {
    if r == 0 || a == 0 || !(0.0..1.0).contains(&delta) || delta <= 0.0 {
        return None;
    }
    if p <= 0.0 {
        // Attack never flips bits; any e works.
        return Some(1);
    }
    let z = normal_quantile(1.0 - delta);
    // Solve p·m + z·sqrt(p(1−p))·sqrt(m) − r = 0 for sqrt(m).
    let q = z * (p * (1.0 - p)).sqrt();
    let disc = q * q + 4.0 * p * (r as f64);
    let sqrt_m = (-q + disc.sqrt()) / (2.0 * p);
    let m_max = sqrt_m * sqrt_m;
    if m_max <= 0.0 {
        return None;
    }
    let e = ((a as f64) / m_max).ceil() as u64;
    Some(e.max(1))
}

/// The embedding alteration fraction implied by a modulus: `1 / e`.
#[must_use]
pub fn alteration_fraction_for_e(e: u64) -> f64 {
    if e == 0 {
        0.0
    } else {
        1.0 / (e as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vulnerability::attack_success_clt;

    #[test]
    fn exact_match_false_positive() {
        assert!((false_positive_exact_match(10) - 2f64.powi(-10)).abs() < 1e-18);
        // The paper's full-bandwidth example: N = 6000, e = 60 →
        // (1/2)^100 ≈ 7.9·10⁻³¹.
        let p = false_positive_exact_match(100);
        assert!((p / 7.888e-31 - 1.0).abs() < 0.01, "p={p:e}");
    }

    #[test]
    fn residual_alteration_paper_example() {
        // r = 15, N/e = 100, t_ecc = 5%, |wm| = 10, |wm_data| = 100:
        // (0.15 − 0.05) · 10/100 = 1.0%.
        let v = residual_alteration(15, 100, 0.05, 10, 100);
        assert!((v - 0.01).abs() < 1e-12, "v={v}");
    }

    #[test]
    fn residual_alteration_clamps() {
        // ECC absorbs everything.
        assert_eq!(residual_alteration(3, 100, 0.05, 10, 100), 0.0);
        // Degenerate inputs.
        assert_eq!(residual_alteration(10, 0, 0.05, 10, 100), 0.0);
        // Catastrophic damage cannot exceed 100%.
        assert!(residual_alteration(1_000_000, 100, 0.0, 1_000_000, 1) <= 1.0);
    }

    #[test]
    fn min_e_bound_is_actually_sufficient() {
        // Whatever e the bound returns, the CLT vulnerability at that
        // e must respect delta (and e−1 must violate it, minimality).
        let (r, a, p, delta) = (15u64, 600u64, 0.7, 0.10);
        let e = min_e_for_vulnerability(r, a, p, delta).unwrap();
        assert!(attack_success_clt(r, a, e, p) <= delta + 1e-9, "e={e} does not satisfy the bound");
        if e > 1 {
            assert!(attack_success_clt(r, a, e - 1, p) > delta - 1e-9, "e={e} is not minimal");
        }
        // The paper's scenario lands in the same "few percent" regime
        // it reports (1/e in low single digits).
        let frac = alteration_fraction_for_e(e);
        assert!((0.01..0.06).contains(&frac), "e={e}, fraction={frac}");
    }

    #[test]
    fn min_e_monotone_in_delta() {
        // Under eq. (2), vulnerability P(r, a) falls as e grows (the
        // attacker reaches fewer marked tuples). A tighter tolerance
        // therefore demands a larger minimum e.
        let tight = min_e_for_vulnerability(15, 600, 0.7, 0.01).unwrap();
        let loose = min_e_for_vulnerability(15, 600, 0.7, 0.20).unwrap();
        assert!(tight >= loose, "tight={tight} loose={loose}");
    }

    #[test]
    fn min_e_edge_cases() {
        assert_eq!(min_e_for_vulnerability(0, 600, 0.7, 0.1), None);
        assert_eq!(min_e_for_vulnerability(15, 0, 0.7, 0.1), None);
        assert_eq!(min_e_for_vulnerability(15, 600, 0.7, 0.0), None);
        assert_eq!(min_e_for_vulnerability(15, 600, 0.0, 0.1), Some(1));
    }

    #[test]
    fn alteration_fraction_inverts_e() {
        assert_eq!(alteration_fraction_for_e(0), 0.0);
        assert!((alteration_fraction_for_e(23) - 0.0435).abs() < 1e-3);
        assert!((alteration_fraction_for_e(60) - 1.0 / 60.0).abs() < 1e-12);
    }
}
