//! `catmark-analysis` — the theoretical vulnerability analysis of
//! Section 4.4.
//!
//! Pure math, no data: binomial and normal machinery ([`prob`]), the
//! random-alteration attack success probability `P(r, a)` with its
//! central-limit estimate ([`vulnerability`]), and the court-time
//! bounds — false-positive odds, residual watermark alteration,
//! minimum-`e` sizing ([`bounds`]). [`surface`] evaluates the
//! analytical counterpart of the paper's Figure 6 surface, and
//! [`collusion`] models coalition attacks on buyer fingerprints (the
//! analytic companion of the `collusion_curve` measurement).
//!
//! The in-text numbers this crate reproduces (all unit-tested):
//!
//! * false positive of a 10-bit mark: `(1/2)^10`; full-bandwidth
//!   variant for N = 6000, e = 60: `(1/2)^100 ≈ 7.9·10⁻³¹`;
//! * `P(15, 1200) ≈ 31.6%` for p = 0.7, e = 60 (CLT estimate);
//! * residual watermark alteration ≈ 1.0% for r = 15, N/e = 100,
//!   t_ecc = 5%, |wm| = 10;
//! * the minimum-`e` bound for δ = 10%, a = 600 (the paper reports
//!   e ≈ 23 / ~4.3% alterations; the formula as printed yields e ≈ 34
//!   / ~2.9% — same conclusion, "a few percent of alterations
//!   suffice"; see EXPERIMENTS.md for the discrepancy discussion).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod collusion;
pub mod prob;
pub mod surface;
pub mod vulnerability;

pub use bounds::{false_positive_exact_match, min_e_for_vulnerability, residual_alteration};
pub use vulnerability::{attack_success_clt, attack_success_exact};
