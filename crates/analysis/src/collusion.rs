//! Analytic model of collusion against buyer fingerprints.
//!
//! Companion theory for `catmark_attacks::collusion` (empirically
//! swept by the `collusion_curve` bench binary), in the style of the
//! paper's §4.4 analysis: closed-form estimates for how a coalition of
//! `c` buyers merging their fingerprinted copies degrades traitor
//! tracing.
//!
//! The model, per marked cell of one colluder (mark rate `q = 1/e` per
//! copy, marks under different buyer keys land on ≈ independent cells
//! and pick ≈ distinct values):
//!
//! * **Majority merge** — the colluder's value (1 vote) beats the
//!   other `c−1` copies only when at most one of them still holds the
//!   original value, and then only by winning a random tie among the
//!   tied distinct values.
//! * **Mix-and-match / row-share** — the colluder's cell survives iff
//!   their copy is the one sampled: probability `1/c`.
//!
//! A surviving mark votes its true bit; a lost mark's position decodes
//! the *original* value whose index-lsb is an unbiased coin. Majority
//! voting over `R` carriers per watermark bit then recovers the bit
//! with probability ≈ Φ(s·R / √(R − s·R)) for survival rate `s`, and
//! tracing succeeds when enough of the `|wm|` bits survive to clear
//! the significance threshold.

use crate::prob::{binom_pmf, binom_tail, normal_cdf};

/// The three collusion strategies of `catmark-attacks`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Per-cell majority vote with random tie-breaking.
    MajorityMerge,
    /// Per-row random colluder selection.
    MixAndMatch,
    /// Disjoint row blocks, one per colluder.
    RowShare,
}

/// Probability that one colluder's marked cell survives a `c`-way
/// merge, at per-copy mark rate `q = 1/e`.
///
/// # Panics
///
/// Panics when `c == 0` or `q` is outside `[0, 1]`.
#[must_use]
pub fn mark_survival(strategy: Strategy, c: u64, q: f64) -> f64 {
    assert!(c >= 1, "coalition needs at least one member");
    assert!((0.0..=1.0).contains(&q), "q is a probability");
    if c == 1 {
        return 1.0; // a lone "coalition" publishes its copy verbatim
    }
    match strategy {
        Strategy::MixAndMatch | Strategy::RowShare => 1.0 / c as f64,
        Strategy::MajorityMerge => {
            // k = number of the other c−1 copies still holding the
            // original value at this cell (each is marked with
            // probability q, and a marked copy holds a ≈ distinct
            // pseudorandom value).
            let others = c - 1;
            let mut p = 0.0;
            for k in 0..=others {
                let pk = binom_pmf(others, k, 1.0 - q);
                if k >= 2 {
                    continue; // original value outvotes the mark
                }
                // Tied distinct values: the colluder's mark, the
                // original (when k == 1), and the other marked copies
                // (assumed distinct).
                let tied = 1 + k + (others - k);
                p += pk / tied as f64;
            }
            p
        }
    }
}

/// Probability that one watermark bit decodes correctly for a
/// colluder, given `carriers` redundant copies per bit of which a
/// `survival` fraction still carry the mark (the rest vote an unbiased
/// coin).
///
/// Uses the normal approximation to the majority vote; exact at the
/// extremes (`survival` 0 → 0.5, 1 → 1.0).
#[must_use]
pub fn bit_recovery(carriers: u64, survival: f64) -> f64 {
    if carriers == 0 {
        return 0.5;
    }
    let r = carriers as f64;
    let m = survival * r; // surviving biased votes
    let noise = r - m; // coin-flip votes
    if noise <= 0.0 {
        return 1.0;
    }
    // Correct votes ≈ m + Binomial(noise, ½); the bit wins when they
    // exceed r/2, i.e. when the noise exceeds (r/2 − m) … centering:
    normal_cdf(m / noise.sqrt())
}

/// Probability that a colluder is traced: enough watermark bits decode
/// that the detection clears significance level `alpha`.
///
/// `wm_len` is the watermark length, `carriers` the per-bit redundancy
/// (≈ N/(e·|wm|)), `survival` the per-cell mark survival rate.
#[must_use]
pub fn traced_probability(wm_len: u32, carriers: u64, survival: f64, alpha: f64) -> f64 {
    let p_bit = bit_recovery(carriers, survival);
    // Smallest matched-bit count whose chance-match tail is ≤ alpha.
    let n = u64::from(wm_len);
    let threshold = (0..=n).find(|&k| binom_tail(n, k, 0.5) <= alpha);
    match threshold {
        Some(k) => binom_tail(n, k, p_bit),
        None => 0.0, // no achievable count is significant
    }
}

/// Full analytic curve point: traced probability for one colluder in a
/// `c`-way coalition.
#[must_use]
pub fn traced_in_coalition(
    strategy: Strategy,
    c: u64,
    e: u64,
    tuples: u64,
    wm_len: u32,
    alpha: f64,
) -> f64 {
    let q = 1.0 / e as f64;
    let survival = mark_survival(strategy, c, q);
    let carriers = tuples / (e * u64::from(wm_len).max(1));
    traced_probability(wm_len, carriers.max(1), survival, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lone_coalition_survives_fully() {
        for s in [Strategy::MajorityMerge, Strategy::MixAndMatch, Strategy::RowShare] {
            assert_eq!(mark_survival(s, 1, 0.1), 1.0);
        }
    }

    #[test]
    fn sampling_strategies_survive_at_one_over_c() {
        for c in 2..=6 {
            let s = mark_survival(Strategy::MixAndMatch, c, 0.1);
            assert!((s - 1.0 / c as f64).abs() < 1e-12);
            assert_eq!(s, mark_survival(Strategy::RowShare, c, 0.1));
        }
    }

    #[test]
    fn two_way_majority_is_every_cell_a_coin_toss() {
        // c = 2: the other copy holds the original w.p. 1−q (tie of 2)
        // or its own mark w.p. q (tie of 2): survival = 1/2 exactly.
        let s = mark_survival(Strategy::MajorityMerge, 2, 0.1);
        assert!((s - 0.5).abs() < 1e-12, "s = {s}");
    }

    #[test]
    fn majority_survival_collapses_with_coalition_size() {
        let q = 0.1;
        let s3 = mark_survival(Strategy::MajorityMerge, 3, q);
        // k=1: 2q(1−q) / 3 + k=0: q² / 3.
        let expected = 2.0 * q * (1.0 - q) / 3.0 + q * q / 3.0;
        assert!((s3 - expected).abs() < 1e-12, "s3 = {s3}");
        let s4 = mark_survival(Strategy::MajorityMerge, 4, q);
        assert!(s4 < s3 && s3 < 0.5);
    }

    #[test]
    fn bit_recovery_limits() {
        assert_eq!(bit_recovery(0, 1.0), 0.5);
        assert_eq!(bit_recovery(100, 1.0), 1.0);
        assert!((bit_recovery(100, 0.0) - 0.5).abs() < 1e-9);
        // Monotone in survival.
        let probs: Vec<f64> = (0..=10).map(|i| bit_recovery(90, i as f64 / 10.0)).collect();
        assert!(probs.windows(2).all(|w| w[0] <= w[1] + 1e-12));
    }

    #[test]
    fn traced_probability_matches_empirical_regimes() {
        // The collusion_curve measurement (N=9000, e=10, |wm|=10,
        // alpha=1e-2): carriers per bit = 90.
        // Majority, c=3: survival ≈ 6.3% → ~5.7 biased votes of 90 —
        // borderline; the model must predict under 80% tracing.
        let majority3 = traced_in_coalition(Strategy::MajorityMerge, 3, 10, 9_000, 10, 1e-2);
        assert!(majority3 < 0.8, "majority c=3: {majority3}");
        // Mix-and-match, c=3: survival 1/3 → 30 biased votes: certain.
        let mix3 = traced_in_coalition(Strategy::MixAndMatch, 3, 10, 9_000, 10, 1e-2);
        assert!(mix3 > 0.99, "mix c=3: {mix3}");
        // Mix-and-match degrades by c=8 at this redundancy but stays
        // well above majority merging.
        let mix8 = traced_in_coalition(Strategy::MixAndMatch, 8, 10, 9_000, 10, 1e-2);
        let majority8 = traced_in_coalition(Strategy::MajorityMerge, 8, 10, 9_000, 10, 1e-2);
        assert!(majority8 < mix8);
    }

    #[test]
    fn impossible_alpha_traces_nothing() {
        // alpha below 2^-|wm|: even a perfect match is not significant.
        let p = traced_probability(10, 90, 1.0, 1e-6);
        assert_eq!(p, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn zero_coalition_panics() {
        let _ = mark_survival(Strategy::MajorityMerge, 0, 0.1);
    }
}
