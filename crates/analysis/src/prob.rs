//! Probability primitives: log-factorials, binomial distribution,
//! normal CDF/quantile.
//!
//! Everything is plain `f64`; the regimes used by the paper (n up to a
//! few thousand, probabilities down to ~10⁻³¹ handled in log space)
//! are well within double precision.

/// `ln(n!)` computed exactly by summation (cached would be overkill
/// for the call volumes here).
#[must_use]
pub fn ln_factorial(n: u64) -> f64 {
    (2..=n).map(|i| (i as f64).ln()).sum()
}

/// `ln C(n, k)`.
///
/// # Panics
///
/// Panics when `k > n`.
#[must_use]
pub fn ln_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n, "k={k} > n={n}");
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Binomial probability mass `P[Bin(n, p) = k]`.
#[must_use]
pub fn binom_pmf(n: u64, k: u64, p: f64) -> f64 {
    if k > n {
        return 0.0;
    }
    if p <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    (ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
}

/// Upper tail `P[Bin(n, p) >= k]`.
#[must_use]
pub fn binom_tail(n: u64, k: u64, p: f64) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if k > n {
        return 0.0;
    }
    let mut total = 0.0;
    for i in k..=n {
        total += binom_pmf(n, i, p);
    }
    total.min(1.0)
}

/// Standard normal CDF Φ(x), via the Abramowitz–Stegun 7.1.26 erf
/// approximation (|ε| < 1.5·10⁻⁷ — ample for table-lookup fidelity).
#[must_use]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz–Stegun 7.1.26).
#[must_use]
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal quantile Φ⁻¹(q) by bisection on [`normal_cdf`]
/// (robust and plenty fast for the handful of calls per experiment).
///
/// # Panics
///
/// Panics when `q` is outside `(0, 1)`.
#[must_use]
pub fn normal_quantile(q: f64) -> f64 {
    assert!(q > 0.0 && q < 1.0, "quantile argument must be in (0,1)");
    let (mut lo, mut hi) = (-10.0f64, 10.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if normal_cdf(mid) < q {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Wilson score interval for a binomial proportion at confidence
/// `1 - alpha`: the interval for the true success probability given
/// `successes` out of `trials`.
///
/// Used by the experiment harness to report error bars on the
/// key-averaged mark-alteration estimates (the paper reports bare
/// means; error bars make shape comparisons honest).
///
/// Returns `(low, high)`; `(0, 1)` when `trials == 0`.
#[must_use]
pub fn wilson_interval(successes: u64, trials: u64, alpha: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let z = normal_quantile(1.0 - alpha / 2.0);
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorials_and_choose() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
        assert!((ln_choose(5, 2) - 10f64.ln()).abs() < 1e-12);
        assert!((ln_choose(52, 5) - 2_598_960f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[(10u64, 0.3), (50, 0.7), (100, 0.5)] {
            let total: f64 = (0..=n).map(|k| binom_pmf(n, k, p)).sum();
            assert!((total - 1.0).abs() < 1e-10, "n={n} p={p}: {total}");
        }
    }

    #[test]
    fn pmf_degenerate_probabilities() {
        assert_eq!(binom_pmf(10, 0, 0.0), 1.0);
        assert_eq!(binom_pmf(10, 3, 0.0), 0.0);
        assert_eq!(binom_pmf(10, 10, 1.0), 1.0);
        assert_eq!(binom_pmf(10, 9, 1.0), 0.0);
    }

    #[test]
    fn tail_matches_manual_sums() {
        // P[Bin(3, 1/2) >= 2] = (3 + 1)/8 = 1/2.
        assert!((binom_tail(3, 2, 0.5) - 0.5).abs() < 1e-12);
        assert_eq!(binom_tail(5, 0, 0.3), 1.0);
        assert_eq!(binom_tail(5, 6, 0.3), 0.0);
    }

    #[test]
    fn normal_cdf_reference_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.0) - 0.841_344_7).abs() < 1e-5);
        assert!((normal_cdf(-1.0) - 0.158_655_3).abs() < 1e-5);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-4);
        assert!((normal_cdf(3.0) - 0.998_65).abs() < 1e-4);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &q in &[0.01, 0.1, 0.25, 0.5, 0.9, 0.975, 0.999] {
            let x = normal_quantile(q);
            assert!((normal_cdf(x) - q).abs() < 1e-7, "q={q}");
        }
        // The paper's z for δ = 10%: 1.28.
        assert!((normal_quantile(0.9) - 1.2816).abs() < 1e-3);
    }

    #[test]
    fn erf_is_odd_and_bounded() {
        for &x in &[0.1, 0.5, 1.0, 2.0] {
            assert!((erf(x) + erf(-x)).abs() < 1e-12);
            assert!(erf(x) > 0.0 && erf(x) < 1.0);
        }
        // The A&S polynomial is an approximation: erf(0) is ~1e-9,
        // not exactly zero.
        assert!(erf(0.0).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "in (0,1)")]
    fn quantile_rejects_bad_input() {
        let _ = normal_quantile(1.0);
    }

    #[test]
    fn wilson_interval_contains_the_point_estimate() {
        for &(s, n) in &[(0u64, 10u64), (5, 10), (10, 10), (73, 150)] {
            let (lo, hi) = wilson_interval(s, n, 0.05);
            let p = s as f64 / n as f64;
            assert!(lo <= p + 1e-12 && p <= hi + 1e-12, "s={s} n={n}: [{lo},{hi}] vs {p}");
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        }
    }

    #[test]
    fn wilson_interval_shrinks_with_more_trials() {
        let (lo_s, hi_s) = wilson_interval(5, 10, 0.05);
        let (lo_l, hi_l) = wilson_interval(500, 1000, 0.05);
        assert!(hi_l - lo_l < hi_s - lo_s);
    }

    #[test]
    fn wilson_interval_handles_degenerate_inputs() {
        assert_eq!(wilson_interval(0, 0, 0.05), (0.0, 1.0));
        // At the boundaries the center and half-width cancel up to
        // floating-point round-off.
        let (lo, _) = wilson_interval(0, 100, 0.05);
        assert!(lo < 1e-12, "lo={lo}");
        let (_, hi) = wilson_interval(100, 100, 0.05);
        assert!(hi > 1.0 - 1e-12, "hi={hi}");
    }

    #[test]
    fn wilson_matches_reference_value() {
        // Classic reference: 8/10 at 95% → approximately (0.490, 0.943).
        let (lo, hi) = wilson_interval(8, 10, 0.05);
        assert!((lo - 0.490).abs() < 0.01, "lo={lo}");
        assert!((hi - 0.943).abs() < 0.01, "hi={hi}");
    }
}
