//! Minimal in-tree stand-in for the `criterion` crate.
//!
//! The build environment is offline, so this shim supplies the API
//! surface the workspace benches use — `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, `Throughput`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros — measured with
//! `std::time::Instant`. No statistics beyond mean-of-samples; output
//! is one line per benchmark: mean time per iteration and derived
//! element throughput when declared.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared per-iteration workload, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`] (ignored: every
/// iteration gets a fresh input).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// A benchmark identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark takes.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) {
        let sample_size = self.sample_size;
        run_benchmark(&id.to_string(), sample_size, None, f);
    }
}

/// A group of related benchmarks sharing a name prefix and throughput
/// declaration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    // Tie the group's lifetime to the Criterion it came from, as the
    // real API does.
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration workload for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Benchmark `f` under `id`.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, self.throughput, f);
    }

    /// Benchmark `f` with a shared input.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, self.throughput, |b| {
            f(b, input);
        });
    }

    /// Close the group (no-op; the real API flushes reports here).
    pub fn finish(self) {}
}

/// Times the measured routine.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed();
        // Aim for ~50ms of measurement per sample, at least one run.
        let reps = (Duration::from_millis(50).as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000);
        let start = Instant::now();
        for _ in 0..reps {
            black_box(routine());
        }
        self.elapsed += start.elapsed() + once;
        self.iterations += reps as u64 + 1;
    }

    /// Time `routine` over fresh inputs built by `setup` (setup time
    /// excluded).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..3 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iterations += 1;
        }
    }
}

fn run_benchmark(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher::default();
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let per_iter = if bencher.iterations == 0 {
        Duration::ZERO
    } else {
        bencher.elapsed / u32::try_from(bencher.iterations.min(u64::from(u32::MAX))).unwrap_or(1)
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
            format!("  {:.0} elem/s", n as f64 / per_iter.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
            format!("  {:.0} B/s", n as f64 / per_iter.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("bench {label:<40} {per_iter:>12.3?}/iter{rate}");
}

/// Declare a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declare the bench entry point, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
