//! Minimal in-tree stand-in for the `rand` crate.
//!
//! The build environment is offline (no crates.io / registry mirror),
//! so the workspace vendors the tiny slice of the `rand 0.8` API it
//! actually uses: [`Rng::gen`], [`Rng::gen_bool`], [`Rng::gen_range`],
//! [`rngs::StdRng`] and [`SeedableRng::seed_from_u64`]. The generator
//! behind it is SplitMix64 — statistically solid for workload
//! synthesis, deterministic per seed, and dependency-free. It makes no
//! attempt to be stream-compatible with upstream `rand`; all consumers
//! in this workspace derive expectations statistically, not from
//! pinned upstream streams.

#![forbid(unsafe_code)]

/// Uniform sampling support for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample_standard(rng: &mut impl RngCore) -> Self;
}

/// Types usable as [`Rng::gen_range`] bounds.
pub trait SampleRangeInt: Copy + PartialOrd {
    /// Widen to u64 distance arithmetic.
    fn range_len(low: Self, high: Self) -> u64;
    /// `low + offset`, with `offset < range_len`.
    fn offset(low: Self, offset: u64) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRangeInt for $t {
            fn range_len(low: Self, high: Self) -> u64 {
                (high as i128 - low as i128) as u64
            }
            fn offset(low: Self, offset: u64) -> Self {
                (low as i128 + offset as i128) as $t
            }
        }
        impl Standard for $t {
            fn sample_standard(rng: &mut impl RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Standard for f64 {
    fn sample_standard(rng: &mut impl RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// Uniform value of type `T` (full integer range; `[0, 1)` for
    /// floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen::<f64>() < p
    }

    /// Uniform value in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T: SampleRangeInt>(&mut self, range: std::ops::Range<T>) -> T {
        assert!(range.start < range.end, "gen_range called with empty range");
        let len = T::range_len(range.start, range.end);
        // Multiply-shift rejection-free reduction; bias < len / 2^64.
        let offset = ((u128::from(self.next_u64()) * u128::from(len)) >> 64) as u64;
        T::offset(range.start, offset)
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stands in for `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits={hits}");
    }
}
