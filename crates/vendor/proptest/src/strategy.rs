//! Value-generation strategies: integer/float ranges, `any::<T>()`,
//! and a regex-subset string strategy for `&str` patterns.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// Generates one value per call; the shim's equivalent of proptest's
/// `Strategy` (no value tree, no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Full-range strategy for `T`, mirroring `proptest::prelude::any`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let len = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(len) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let len = (hi as i128 - lo as i128) as u128 + 1;
                if len > u128::from(u64::MAX) {
                    return rng.next_u64() as $t; // full-width range
                }
                (lo as i128 + rng.below(len as u64) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Closed upper end: scale a 53-bit lattice that includes 1.
        let lattice = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        self.start() + lattice * (self.end() - self.start())
    }
}

/// Tuple strategies: draw each component in order, mirroring
/// proptest's tuple `Strategy` impls.
macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+)),+) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// String strategy from a regex **subset**: a single `[...]` or
/// `[^...]` character class followed by a `{min,max}` repetition, e.g.
/// `"[^\r\n]{0,30}"`. Anything else panics with a clear message — the
/// shim prefers loud failure over silently generating the wrong
/// language.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (class, min, max) = parse_class_repeat(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy pattern: {self:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len).map(|_| class.sample(rng)).collect()
    }
}

/// A parsed character class: printable-ASCII alphabet minus exclusions
/// (negated class), or an explicit member list.
struct CharClass {
    negated: bool,
    members: Vec<char>,
}

impl CharClass {
    fn sample(&self, rng: &mut TestRng) -> char {
        if self.negated {
            // Draw from printable ASCII plus a few common unicode
            // letters, skipping excluded members.
            const EXTRA: [char; 6] = ['é', 'ü', 'λ', '中', '✓', 'ß'];
            loop {
                let roll = rng.below(100);
                let c = if roll < 94 {
                    char::from(b' ' + rng.below(95) as u8)
                } else {
                    EXTRA[rng.below(EXTRA.len() as u64) as usize]
                };
                if !self.members.contains(&c) {
                    return c;
                }
            }
        } else {
            self.members[rng.below(self.members.len() as u64) as usize]
        }
    }
}

/// Parse `[...]{min,max}` / `[^...]{min,max}`; `None` when the pattern
/// falls outside the supported subset.
fn parse_class_repeat(pattern: &str) -> Option<(CharClass, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (negated, rest) = match rest.strip_prefix('^') {
        Some(r) => (true, r),
        None => (false, rest),
    };
    let close = rest.find(']')?;
    let (class_src, rest) = rest.split_at(close);
    let rest = rest.strip_prefix(']')?;
    let mut members = Vec::new();
    let mut chars = class_src.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                'r' => members.push('\r'),
                'n' => members.push('\n'),
                't' => members.push('\t'),
                other => members.push(other),
            }
        } else if chars.peek() == Some(&'-') && c != '-' {
            chars.next(); // consume '-'
            let hi = chars.next()?;
            for v in (c as u32)..=(hi as u32) {
                members.push(char::from_u32(v)?);
            }
        } else {
            members.push(c);
        }
    }
    let reps = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match reps.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = reps.trim().parse().ok()?;
            (n, n)
        }
    };
    if min > max || (!negated && members.is_empty()) {
        return None;
    }
    Some((CharClass { negated, members }, min, max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::{ProptestConfig, TestRunner};

    fn rng() -> TestRng {
        TestRunner::new(&ProptestConfig::default(), "strategy-tests").rng_for_case(0)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = rng();
        for _ in 0..5_000 {
            let v = (10u64..=20).generate(&mut rng);
            assert!((10..=20).contains(&v));
            let w = (0usize..7).generate(&mut rng);
            assert!(w < 7);
            let f = (0.25f64..=1.0).generate(&mut rng);
            assert!((0.25..=1.0).contains(&f));
        }
    }

    #[test]
    fn tuple_strategies_draw_componentwise() {
        let mut rng = rng();
        for _ in 0..1_000 {
            let (a, b) = (0i64..5, 10u32..=12).generate(&mut rng);
            assert!((0..5).contains(&a));
            assert!((10..=12).contains(&b));
            let (x, y, z) = (0usize..3, "[a-b]{1,2}", 0i8..2).generate(&mut rng);
            assert!(x < 3);
            assert!((1..=2).contains(&y.len()));
            assert!((0..2).contains(&z));
        }
    }

    #[test]
    fn full_width_inclusive_range_is_supported() {
        let mut rng = rng();
        let _ = (0u64..=u64::MAX).generate(&mut rng);
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = rng();
        for _ in 0..2_000 {
            let s = "[^\r\n]{0,30}".generate(&mut rng);
            assert!(s.chars().count() <= 30);
            assert!(!s.contains('\r') && !s.contains('\n'));
        }
        for _ in 0..500 {
            let s = "[a-c]{2,4}".generate(&mut rng);
            assert!((2..=4).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    #[should_panic(expected = "unsupported regex strategy")]
    fn unsupported_regex_panics() {
        let mut rng = rng();
        let _ = "(a|b)+".generate(&mut rng);
    }
}
