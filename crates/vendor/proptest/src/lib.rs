//! Minimal in-tree stand-in for the `proptest` crate.
//!
//! The build environment is offline, so the workspace vendors the
//! slice of proptest it uses: the [`proptest!`] macro (with
//! `#![proptest_config(...)]`), range and `any::<T>()` strategies,
//! `prop::collection::{vec, hash_set}`, a small regex-subset string
//! strategy, and `prop_assert!`/`prop_assert_eq!`. Cases are generated
//! from a deterministic per-test seed; there is **no shrinking** — a
//! failing case reports its number and message and panics.

#![forbid(unsafe_code)]

pub mod strategy;

pub mod collection;

pub mod test_runner;

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Module alias so `prop::collection::vec(...)` resolves, as with
    /// the real crate's prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Expands property-test functions: each `fn name(pat in strategy, ..)
/// { body }` becomes a `#[test]` that runs `body` over `cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal item muncher for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::new(&config, stringify!($name));
            for case in 0..config.cases {
                let mut rng = runner.rng_for_case(case);
                $(let $pat = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let a = $a;
        let b = $b;
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let a = $a;
        let b = $b;
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let a = $a;
        let b = $b;
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}
