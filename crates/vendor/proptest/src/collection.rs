//! Collection strategies: `vec` and `hash_set`, mirroring
//! `proptest::collection`.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Size bounds for collection strategies (inclusive).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl SizeRange {
    fn sample(self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min + 1) as u64) as usize
    }
}

/// `Vec<T>` strategy with element strategy `element` and size in
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `HashSet<T>` strategy; keeps drawing until the set reaches the
/// sampled size (bounded retries guard degenerate element domains).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy { element, size: size.into() }
}

/// Strategy returned by [`hash_set`].
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut out = HashSet::with_capacity(target);
        let mut attempts = 0usize;
        while out.len() < target && attempts < target.saturating_mul(100) + 100 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;
    use crate::test_runner::{ProptestConfig, TestRunner};

    #[test]
    fn vec_and_hash_set_respect_sizes() {
        let mut rng =
            TestRunner::new(&ProptestConfig::default(), "collection-tests").rng_for_case(0);
        for _ in 0..500 {
            let v = vec(any::<u8>(), 3..6).generate(&mut rng);
            assert!((3..6).contains(&v.len()));
            let s = hash_set(any::<i64>(), 2..50).generate(&mut rng);
            assert!((2..50).contains(&s.len()));
        }
    }
}
