//! Deterministic case runner: per-test seeding, case RNGs, and the
//! error type `prop_assert!` returns.

/// How many cases each property runs (the only config knob consumers
/// use).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (no shrinking; the message carries the
/// assertion context).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Failure with `message`.
    #[must_use]
    pub fn fail(message: String) -> Self {
        TestCaseError(message)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Drives one property: derives a stable seed from the test name so
/// runs are reproducible without a persistence file.
#[derive(Debug)]
pub struct TestRunner {
    seed: u64,
}

impl TestRunner {
    /// Runner for the property named `name`.
    #[must_use]
    pub fn new(_config: &ProptestConfig, name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut seed = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x1000_0000_01B3);
        }
        TestRunner { seed }
    }

    /// Independent RNG for case `case`.
    #[must_use]
    pub fn rng_for_case(&mut self, case: u32) -> TestRng {
        TestRng { state: self.seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1 }
    }
}

/// SplitMix64 stream feeding the strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; bias < bound / 2^64.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
