//! A2 — subset addition.
//!
//! "Mallory adds a set of tuples to the original data. This addition
//! is not to significantly alter the useful properties of the initial
//! set." The paper suspects this is the categorical adversary's main
//! avenue (alteration being value-destructive), and argues the scheme
//! survives because added tuples are overwhelmingly *unfit* — and even
//! fit ones vote randomly, diluted by the genuine majority.

use catmark_relation::ops::SplitMix64;
use catmark_relation::{Relation, RelationError, Value};

/// Append `fraction · N` synthetic tuples whose non-key attributes are
/// drawn independently from the observed per-attribute marginals
/// (Mallory mimics the distribution for stealth) and whose keys are
/// fresh integers outside the observed key range where possible.
///
/// # Errors
///
/// Relation-level failures only (the synthetic tuples are
/// schema-conformant by construction).
///
/// # Panics
///
/// Panics when `fraction` is negative.
pub fn add_mimicking_tuples(
    rel: &Relation,
    fraction: f64,
    seed: u64,
) -> Result<Relation, RelationError> {
    assert!(fraction >= 0.0, "fraction must be non-negative");
    let count = ((rel.len() as f64) * fraction).round() as usize;
    let mut out = rel.clone();
    if rel.is_empty() || count == 0 {
        return Ok(out);
    }
    let mut rng = SplitMix64::new(seed);
    let key_idx = rel.schema().key_index();
    // Fresh keys above the observed maximum integer key (or large
    // random integers when the key is non-integer).
    let max_key = rel.column_iter(key_idx).filter_map(|v| v.as_int()).max().unwrap_or(0);
    for i in 0..count {
        let mut values = Vec::with_capacity(rel.schema().arity());
        for attr_idx in 0..rel.schema().arity() {
            if attr_idx == key_idx {
                let key = match rel.schema().key_attr().ty {
                    catmark_relation::AttrType::Integer => Value::Int(max_key + 1 + i as i64),
                    catmark_relation::AttrType::Text => Value::Text(format!("added-{seed}-{i}")),
                };
                values.push(key);
            } else {
                // Independent draw from the column's empirical
                // distribution: pick a random existing row's value.
                let row = rng.below(rel.len() as u64) as usize;
                values.push(rel.tuple(row).expect("row in range").get(attr_idx).clone());
            }
        }
        out.push_unchecked_key(values)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use catmark_datagen::{ItemScanConfig, SalesGenerator};
    use catmark_relation::{CategoricalDomain, FrequencyHistogram};

    fn rel() -> Relation {
        SalesGenerator::new(ItemScanConfig { tuples: 5_000, ..Default::default() }).generate()
    }

    #[test]
    fn adds_requested_fraction() {
        let r = rel();
        let attacked = add_mimicking_tuples(&r, 0.25, 3).unwrap();
        assert_eq!(attacked.len(), r.len() + 1_250);
    }

    #[test]
    fn original_tuples_survive_verbatim() {
        let r = rel();
        let attacked = add_mimicking_tuples(&r, 0.5, 4).unwrap();
        for (a, b) in r.iter().zip(attacked.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn added_keys_are_fresh() {
        let r = rel();
        let attacked = add_mimicking_tuples(&r, 0.1, 5).unwrap();
        // All-new keys: distinct count grows by exactly the addition.
        assert_eq!(attacked.distinct_keys(), r.distinct_keys() + 500);
    }

    #[test]
    fn marginals_are_approximately_preserved() {
        let r = rel();
        let attacked = add_mimicking_tuples(&r, 1.0, 6).unwrap();
        let domain = CategoricalDomain::from_column(&r, 1).unwrap();
        let before = FrequencyHistogram::from_relation(&r, 1, &domain).unwrap();
        let after = FrequencyHistogram::from_relation(&attacked, 1, &domain).unwrap();
        // Doubling a 5000-tuple relation by resampling 1000-value
        // marginals carries ~0.15 of unavoidable sampling-noise L1;
        // anything near the degenerate 2.0 would mean the mimicry is
        // broken.
        assert!(before.l1_distance(&after) < 0.3, "drift {}", before.l1_distance(&after));
    }

    #[test]
    fn zero_fraction_is_identity() {
        let r = rel();
        let same = add_mimicking_tuples(&r, 0.0, 1).unwrap();
        assert_eq!(same.len(), r.len());
    }

    #[test]
    fn empty_relation_stays_empty() {
        let gen = SalesGenerator::new(ItemScanConfig { tuples: 10, ..Default::default() });
        let empty = Relation::new(gen.schema());
        let out = add_mimicking_tuples(&empty, 0.5, 1).unwrap();
        assert!(out.is_empty());
    }
}
