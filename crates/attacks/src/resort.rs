//! A4 — subset re-sorting.
//!
//! "If a certain order can be imposed on the data then watermark
//! retrieval/detection should be resilient to re-sorting attacks and
//! should not depend on this predefined ordering." Trivially true for
//! this scheme (positions derive from tuple *content*), and the tests
//! in `catmark-core` assert it; these wrappers make the attack
//! available to the declarative harness.

use catmark_relation::{ops, Relation, RelationError};

/// Uniformly permute tuple order.
#[must_use]
pub fn shuffle(rel: &Relation, seed: u64) -> Relation {
    ops::shuffle(rel, seed)
}

/// Sort by attribute `attr`.
///
/// # Errors
///
/// Unknown attribute.
pub fn sort_by(rel: &Relation, attr: &str, ascending: bool) -> Result<Relation, RelationError> {
    let idx = rel.schema().index_of(attr)?;
    Ok(ops::sort_by_attr(rel, idx, ascending))
}

#[cfg(test)]
mod tests {
    use super::*;
    use catmark_datagen::{ItemScanConfig, SalesGenerator};

    #[test]
    fn resorting_preserves_content() {
        let rel =
            SalesGenerator::new(ItemScanConfig { tuples: 500, ..Default::default() }).generate();
        let shuffled = shuffle(&rel, 42);
        let sorted = sort_by(&shuffled, "item_nbr", true).unwrap();
        assert_eq!(sorted.len(), rel.len());
        let mut a: Vec<_> = rel.iter().collect();
        let mut b: Vec<_> = sorted.iter().collect();
        a.sort_by(|x, y| x.get(0).cmp(y.get(0)));
        b.sort_by(|x, y| x.get(0).cmp(y.get(0)));
        assert_eq!(a, b);
    }

    #[test]
    fn sort_by_unknown_attr_errors() {
        let rel =
            SalesGenerator::new(ItemScanConfig { tuples: 10, ..Default::default() }).generate();
        assert!(sort_by(&rel, "ghost", true).is_err());
    }
}
