//! A6 — attribute remapping (the bijective case of Section 4.5).
//!
//! Mallory re-labels the categorical values through a secret bijection
//! and "could sell a secret secure black-box reverse mapper together
//! with the re-mapped data to third parties, still producing revenue".
//! The attack function also returns the ground-truth mapping so tests
//! and benches can score the frequency-based recovery of
//! `catmark_core::remap`.

use std::collections::HashMap;

use catmark_relation::ops::SplitMix64;
use catmark_relation::{CategoricalDomain, Column, ColumnView, Relation, RelationError, Value};

/// Remap every value of `attr` through a random bijection into a fresh
/// integer domain. Returns the attacked relation and the ground-truth
/// forward mapping (original → remapped).
///
/// # Errors
///
/// Unknown attribute or a column with fewer than two distinct values.
pub fn bijective_remap(
    rel: &Relation,
    attr: &str,
    seed: u64,
) -> Result<(Relation, HashMap<Value, Value>), RelationError> {
    let attr_idx = rel.schema().index_of(attr)?;
    let observed = CategoricalDomain::from_column(rel, attr_idx)?;
    // Random permutation of fresh labels 900_000_000 + π(i).
    let mut labels: Vec<i64> = (0..observed.len() as i64).collect();
    let mut rng = SplitMix64::new(seed);
    for i in (1..labels.len()).rev() {
        let j = rng.below((i + 1) as u64) as usize;
        labels.swap(i, j);
    }
    let mapping: HashMap<Value, Value> = (0..observed.len())
        .map(|t| (observed.value_at(t).clone(), Value::Int(900_000_000 + labels[t])))
        .collect();

    // Remapping may change the attribute's type (text → int); suspect
    // relations therefore get a rewritten schema when needed.
    let needs_retype = rel.schema().attr(attr_idx).ty != catmark_relation::AttrType::Integer;
    let schema = if needs_retype {
        let mut b = catmark_relation::Schema::builder();
        for (i, a) in rel.schema().attrs().iter().enumerate() {
            let ty = if i == attr_idx { catmark_relation::AttrType::Integer } else { a.ty };
            b = if i == rel.schema().key_index() {
                b.key_attr(&a.name, ty)
            } else if a.categorical {
                b.categorical_attr(&a.name, ty)
            } else {
                b.attr(&a.name, ty)
            };
        }
        b.build()?
    } else {
        rel.schema().clone()
    };

    // Build the remapped column directly: for an integer column a
    // per-distinct `i64 → i64` table, for a text column the dictionary
    // code *is* the table index — either way the row loop is a flat
    // integer write, no per-row Value traffic.
    let remapped = match rel.column(attr_idx) {
        ColumnView::Int(xs) => {
            let table: HashMap<i64, i64> = mapping
                .iter()
                .map(|(from, to)| {
                    (
                        from.as_int().expect("observed integer domain"),
                        to.as_int().expect("fresh labels are integers"),
                    )
                })
                .collect();
            Column::Int(xs.iter().map(|x| table[x]).collect())
        }
        ColumnView::Text { codes, dict } => {
            let by_code: Vec<i64> = dict
                .entries()
                .iter()
                .map(|s| match mapping.get(&Value::Text(s.to_string())) {
                    Some(v) => v.as_int().expect("fresh labels are integers"),
                    // Stale dictionary entry no row references; the
                    // code never occurs below.
                    None => i64::MIN,
                })
                .collect();
            Column::Int(codes.iter().map(|&c| by_code[c as usize]).collect())
        }
    };
    let mut remapped = Some(remapped);
    let columns: Vec<Column> = (0..rel.schema().arity())
        .map(|i| {
            if i == attr_idx {
                remapped.take().expect("each attribute index visited once")
            } else {
                rel.column(i).to_column()
            }
        })
        .collect();
    let out = Relation::from_columns(schema, columns)?;
    Ok((out, mapping))
}

#[cfg(test)]
mod tests {
    use super::*;
    use catmark_datagen::{ItemScanConfig, SalesGenerator};

    fn rel() -> Relation {
        SalesGenerator::new(ItemScanConfig { tuples: 3_000, items: 80, ..Default::default() })
            .generate()
    }

    #[test]
    fn remap_is_bijective_and_consistent() {
        let r = rel();
        let (attacked, mapping) = bijective_remap(&r, "item_nbr", 11).unwrap();
        // Bijection: distinct images equal distinct preimages.
        let images: std::collections::HashSet<_> = mapping.values().collect();
        assert_eq!(images.len(), mapping.len());
        // Consistency: every tuple's value went through the mapping.
        for (orig, new) in r.iter().zip(attacked.iter()) {
            assert_eq!(mapping.get(orig.get(1)), Some(new.get(1)));
        }
    }

    #[test]
    fn frequencies_are_preserved_up_to_relabeling() {
        let r = rel();
        let (attacked, mapping) = bijective_remap(&r, "item_nbr", 12).unwrap();
        let count =
            |relation: &Relation, v: &Value| relation.column_iter(1).filter(|x| x == v).count();
        for (orig_value, new_value) in mapping.iter().take(20) {
            assert_eq!(count(&r, orig_value), count(&attacked, new_value));
        }
    }

    #[test]
    fn remapping_text_attribute_retypes_schema() {
        let r = SalesGenerator::new(ItemScanConfig {
            tuples: 500,
            with_city: true,
            ..Default::default()
        })
        .generate();
        let (attacked, _) = bijective_remap(&r, "store_city", 13).unwrap();
        let idx = attacked.schema().index_of("store_city").unwrap();
        assert_eq!(attacked.schema().attr(idx).ty, catmark_relation::AttrType::Integer);
        assert!(attacked.schema().attr(idx).categorical);
    }

    #[test]
    fn keys_untouched() {
        let r = rel();
        let (attacked, _) = bijective_remap(&r, "item_nbr", 14).unwrap();
        assert_eq!(r.column(0), attacked.column(0));
    }

    #[test]
    fn different_seeds_give_different_mappings() {
        let r = rel();
        let (_, m1) = bijective_remap(&r, "item_nbr", 1).unwrap();
        let (_, m2) = bijective_remap(&r, "item_nbr", 2).unwrap();
        assert_ne!(m1, m2);
    }
}
