//! `catmark-attacks` — the adversary model of Section 2.3.
//!
//! "There is a set of attacks that can be performed by evil Mallory
//! with the purpose of defeating the watermark while preserving the
//! value in the data. Moreover these perceived attacks may be the
//! result of normal use of the data by the intended user."
//!
//! | Paper attack | Module |
//! |---|---|
//! | A1 horizontal data partitioning | [`horizontal`] |
//! | A2 subset addition | [`addition`] |
//! | A3 subset alteration | [`alteration`] |
//! | A4 subset re-sorting | [`resort`] |
//! | A5 vertical data partitioning | [`vertical`] |
//! | A6 attribute remapping (bijective case, §4.5) | [`remap`] |
//! | collusion of fingerprinted buyers (§6 additive-attack family) | [`collusion`] |
//!
//! Every attack is a pure function `&Relation → Relation` with an
//! explicit seed, and [`Attack`] packages them as data so experiment
//! harnesses can sweep attack kinds and intensities declaratively
//! ([`composite::pipeline`] chains several):
//!
//! ```
//! use catmark_attacks::Attack;
//! use catmark_datagen::{ItemScanConfig, SalesGenerator};
//!
//! let rel = SalesGenerator::new(ItemScanConfig { tuples: 500, ..Default::default() })
//!     .generate();
//! // Mallory keeps 60% of the rows, then re-shuffles them (A1 + A4).
//! let suspect = Attack::Shuffle { seed: 7 }
//!     .apply(&Attack::HorizontalLoss { keep: 0.6, seed: 7 }.apply(&rel).unwrap())
//!     .unwrap();
//! assert!(suspect.len() < rel.len());
//! // Same seed ⇒ same attack: every experiment is reproducible.
//! let again = Attack::HorizontalLoss { keep: 0.6, seed: 7 }.apply(&rel).unwrap();
//! assert_eq!(suspect.len(), again.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addition;
pub mod alteration;
pub mod collusion;
pub mod composite;
pub mod horizontal;
pub mod remap;
pub mod resort;
pub mod vertical;

use catmark_relation::{Relation, RelationError};

/// A declarative attack description, applicable to any relation.
#[derive(Debug, Clone, PartialEq)]
pub enum Attack {
    /// A1: keep each tuple independently with probability `keep`.
    HorizontalLoss {
        /// Fraction of tuples retained (0..=1).
        keep: f64,
        /// RNG seed.
        seed: u64,
    },
    /// A2: append `fraction · N` synthetic tuples mimicking the data's
    /// per-attribute marginals.
    SubsetAddition {
        /// Added tuples as a fraction of the current size.
        fraction: f64,
        /// RNG seed.
        seed: u64,
    },
    /// A3: replace the attribute value of `fraction · N` random tuples
    /// with a random *different* observed value.
    RandomAlteration {
        /// Attribute under attack.
        attr: String,
        /// Fraction of tuples altered (0..=1).
        fraction: f64,
        /// RNG seed.
        seed: u64,
    },
    /// A4: uniformly permute tuple order.
    Shuffle {
        /// RNG seed.
        seed: u64,
    },
    /// A4 variant: sort by an attribute.
    SortBy {
        /// Sort attribute.
        attr: String,
        /// Ascending when true.
        ascending: bool,
    },
    /// A5: project onto `keep`, with `keep[0]` as the new key.
    VerticalPartition {
        /// Attribute names retained, in order; the first becomes the
        /// projected primary key.
        keep: Vec<String>,
    },
    /// A6 (bijective): remap every value of `attr` through a random
    /// value-preserving bijection into a fresh integer domain.
    BijectiveRemap {
        /// Attribute under attack.
        attr: String,
        /// RNG seed.
        seed: u64,
    },
}

impl Attack {
    /// Apply the attack, producing the suspect relation.
    ///
    /// # Errors
    ///
    /// Attribute-resolution failures and invalid projections.
    pub fn apply(&self, rel: &Relation) -> Result<Relation, RelationError> {
        match self {
            Attack::HorizontalLoss { keep, seed } => {
                Ok(horizontal::subset_selection(rel, *keep, *seed))
            }
            Attack::SubsetAddition { fraction, seed } => {
                addition::add_mimicking_tuples(rel, *fraction, *seed)
            }
            Attack::RandomAlteration { attr, fraction, seed } => {
                alteration::random_alteration(rel, attr, *fraction, *seed)
            }
            Attack::Shuffle { seed } => Ok(resort::shuffle(rel, *seed)),
            Attack::SortBy { attr, ascending } => resort::sort_by(rel, attr, *ascending),
            Attack::VerticalPartition { keep } => {
                let names: Vec<&str> = keep.iter().map(String::as_str).collect();
                vertical::keep_attributes(rel, &names)
            }
            Attack::BijectiveRemap { attr, seed } => {
                Ok(remap::bijective_remap(rel, attr, *seed)?.0)
            }
        }
    }

    /// Short human-readable label for reports.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Attack::HorizontalLoss { keep, .. } => {
                format!("A1 loss {:.0}%", (1.0 - keep) * 100.0)
            }
            Attack::SubsetAddition { fraction, .. } => {
                format!("A2 add {:.0}%", fraction * 100.0)
            }
            Attack::RandomAlteration { attr, fraction, .. } => {
                format!("A3 alter {attr} {:.0}%", fraction * 100.0)
            }
            Attack::Shuffle { .. } => "A4 shuffle".to_owned(),
            Attack::SortBy { attr, .. } => format!("A4 sort {attr}"),
            Attack::VerticalPartition { keep } => format!("A5 keep {}", keep.join("+")),
            Attack::BijectiveRemap { attr, .. } => format!("A6 remap {attr}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catmark_datagen::{ItemScanConfig, SalesGenerator};

    fn rel() -> Relation {
        SalesGenerator::new(ItemScanConfig { tuples: 2_000, ..Default::default() }).generate()
    }

    #[test]
    fn every_attack_kind_applies() {
        let rel = rel();
        let attacks = [
            Attack::HorizontalLoss { keep: 0.5, seed: 1 },
            Attack::SubsetAddition { fraction: 0.2, seed: 2 },
            Attack::RandomAlteration { attr: "item_nbr".into(), fraction: 0.3, seed: 3 },
            Attack::Shuffle { seed: 4 },
            Attack::SortBy { attr: "item_nbr".into(), ascending: true },
            Attack::VerticalPartition { keep: vec!["item_nbr".into()] },
            Attack::BijectiveRemap { attr: "item_nbr".into(), seed: 5 },
        ];
        for attack in attacks {
            let suspect = attack.apply(&rel).unwrap_or_else(|e| panic!("{}: {e}", attack.label()));
            assert!(!suspect.is_empty(), "{}", attack.label());
        }
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(Attack::HorizontalLoss { keep: 0.2, seed: 0 }.label(), "A1 loss 80%");
        assert_eq!(Attack::Shuffle { seed: 0 }.label(), "A4 shuffle");
        assert!(Attack::VerticalPartition { keep: vec!["a".into(), "b".into()] }
            .label()
            .contains("a+b"));
    }

    #[test]
    fn unknown_attribute_propagates() {
        let rel = rel();
        let err =
            Attack::RandomAlteration { attr: "ghost".into(), fraction: 0.1, seed: 0 }.apply(&rel);
        assert!(err.is_err());
    }
}
