//! Collusion attacks against buyer fingerprints.
//!
//! The paper's conclusions flag "additive watermark attacks" as open;
//! the fingerprinting deployment (one derived mark per buyer, see
//! `catmark_core::fingerprint`) raises the stronger variant: several
//! buyers *pool their copies* and publish a merge, hoping each
//! individual fingerprint is diluted below detectability. This module
//! implements the three classic categorical-data collusion strategies:
//!
//! * [`majority_merge`] — per cell, colluders publish the value the
//!   majority of their copies agree on. Marked cells differ across
//!   copies (each buyer's fit set is nearly disjoint), so a cell
//!   marked for one buyer is outvoted by the other copies' original
//!   value: the strongest strategy, erasing most of every fingerprint.
//! * [`mix_and_match`] — per row, publish a uniformly random
//!   colluder's tuple. Each buyer keeps ≈ 1/c of their marked cells.
//! * [`row_share`] — colluders contribute disjoint row blocks. Each
//!   buyer keeps their marks inside their own block, so every
//!   fingerprint survives at 1/c strength.
//!
//! Copies are aligned by primary key (colluders can always do this —
//! the key is the join handle that makes the data valuable), and rows
//! missing from any copy are dropped, mirroring a real intersection
//! merge.

use std::collections::HashMap;

use catmark_relation::ops::SplitMix64;
use catmark_relation::{Relation, RelationError, Value};

/// Validate copies and produce, for each key of the first copy held by
/// *all* copies, the per-copy row indices.
fn aligned_rows(copies: &[&Relation]) -> Result<Vec<Vec<usize>>, RelationError> {
    let [first, rest @ ..] = copies else {
        return Err(RelationError::InvalidSchema("collusion needs at least one copy".into()));
    };
    for other in rest {
        if other.schema() != first.schema() {
            return Err(RelationError::InvalidSchema(
                "colluding copies must share a schema".into(),
            ));
        }
    }
    let key_idx = first.schema().key_index();
    let mut rows = Vec::with_capacity(first.len());
    'keys: for (row0, tuple) in first.iter().enumerate() {
        let key = tuple.get(key_idx);
        let mut per_copy = Vec::with_capacity(copies.len());
        per_copy.push(row0);
        for other in rest {
            match other.find_by_key(key) {
                Some(r) => per_copy.push(r),
                None => continue 'keys,
            }
        }
        rows.push(per_copy);
    }
    Ok(rows)
}

/// Per-cell majority vote across aligned copies; ties break uniformly
/// at random among the tied values (a smart collusion would never
/// deterministically favor one member — that member's fingerprint
/// would survive intact).
///
/// # Errors
///
/// [`RelationError::InvalidSchema`] for zero copies or mismatched
/// schemas.
pub fn majority_merge(copies: &[&Relation], seed: u64) -> Result<Relation, RelationError> {
    let rows = aligned_rows(copies)?;
    let first = copies[0];
    let arity = first.schema().arity();
    let mut rng = SplitMix64::new(seed);
    let mut out = Relation::with_capacity(first.schema().clone(), rows.len());
    for per_copy in rows {
        let mut values = Vec::with_capacity(arity);
        for attr in 0..arity {
            let mut counts: HashMap<Value, usize> = HashMap::new();
            for (&row, copy) in per_copy.iter().zip(copies) {
                *counts.entry(copy.value(row, attr)?).or_insert(0) += 1;
            }
            let top = counts.values().copied().max().expect("at least one copy");
            let mut winners: Vec<Value> =
                counts.into_iter().filter(|&(_, c)| c == top).map(|(v, _)| v).collect();
            // Sort so the random pick is independent of hash order.
            winners.sort();
            let winner = winners[rng.below(winners.len() as u64) as usize].clone();
            values.push(winner);
        }
        out.push_unchecked_key(values)?;
    }
    Ok(out)
}

/// Per-row random colluder selection.
///
/// # Errors
///
/// [`RelationError::InvalidSchema`] for zero copies or mismatched
/// schemas.
pub fn mix_and_match(copies: &[&Relation], seed: u64) -> Result<Relation, RelationError> {
    let rows = aligned_rows(copies)?;
    let first = copies[0];
    let mut rng = SplitMix64::new(seed);
    let mut out = Relation::with_capacity(first.schema().clone(), rows.len());
    for per_copy in rows {
        let c = rng.below(copies.len() as u64) as usize;
        let row = per_copy[c];
        out.push_unchecked_key(copies[c].tuple(row)?.values().to_vec())?;
    }
    Ok(out)
}

/// Disjoint row blocks: colluder `c` contributes the `c`-th of
/// `copies.len()` nearly equal slices (by the first copy's row order).
///
/// # Errors
///
/// [`RelationError::InvalidSchema`] for zero copies or mismatched
/// schemas.
pub fn row_share(copies: &[&Relation]) -> Result<Relation, RelationError> {
    let rows = aligned_rows(copies)?;
    let first = copies[0];
    let n = rows.len();
    let c = copies.len();
    let mut out = Relation::with_capacity(first.schema().clone(), n);
    for (i, per_copy) in rows.into_iter().enumerate() {
        // Block index of row i among c nearly equal blocks.
        let owner = (i * c / n.max(1)).min(c - 1);
        let row = per_copy[owner];
        out.push_unchecked_key(copies[owner].tuple(row)?.values().to_vec())?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use catmark_core::decode::ErasurePolicy;
    use catmark_core::fingerprint::FingerprintRegistry;
    use catmark_core::WatermarkSpec;
    use catmark_datagen::{ItemScanConfig, SalesGenerator};

    fn setup(buyers: &[&str]) -> (FingerprintRegistry, Relation, Vec<Relation>) {
        let gen = SalesGenerator::new(ItemScanConfig { tuples: 9_000, ..Default::default() });
        let rel = gen.generate();
        let base = WatermarkSpec::builder(gen.item_domain())
            .master_key("collusion-tests")
            .e(10)
            .wm_len(10)
            .expected_tuples(rel.len())
            .erasure(ErasurePolicy::Abstain)
            .build()
            .unwrap();
        let mut reg = FingerprintRegistry::new(base);
        let copies = buyers
            .iter()
            .map(|b| reg.mark_copy(&rel, b, "visit_nbr", "item_nbr").unwrap().0)
            .collect();
        (reg, rel, copies)
    }

    #[test]
    fn majority_merge_restores_unmarked_cells() {
        let (_, rel, copies) = setup(&["a", "b", "c"]);
        let refs: Vec<&Relation> = copies.iter().collect();
        let merged = majority_merge(&refs, 1).unwrap();
        assert_eq!(merged.len(), rel.len());
        // Fit sets under different keys are ≈ disjoint at e=10, so for
        // almost every cell at most one copy is marked and the other
        // two outvote it: the merge is ≈ the original. Residual marks
        // survive only where ≥ 2 copies altered the same cell and the
        // random tie-break picked a mark: well under the ~10% each
        // colluder's own copy carries.
        let item_idx = rel.schema().index_of("item_nbr").unwrap();
        let differing = merged
            .iter()
            .zip(rel.iter())
            .filter(|(m, o)| m.get(item_idx) != o.get(item_idx))
            .count();
        let frac = differing as f64 / rel.len() as f64;
        assert!(frac < 0.05, "residual marked fraction {frac}");
    }

    #[test]
    fn majority_merge_weakens_every_fingerprint() {
        // The headline collusion finding: a 3-way majority merge
        // removes ≈ 90% of each buyer's marked cells. The majority-
        // voting ECC is redundant enough (≈ 90 carriers per watermark
        // bit at e=10) that colluders may *still* rank above an
        // innocent buyer — collusion dilutes evidence rather than
        // deleting it. Both effects are asserted.
        let (mut reg, _, copies) = setup(&["a", "b", "c"]);
        reg.register("innocent");
        let refs: Vec<&Relation> = copies.iter().collect();
        let merged = majority_merge(&refs, 2).unwrap();
        let intact = reg.trace(&copies[0], "visit_nbr", "item_nbr").unwrap();
        let after = reg.trace(&merged, "visit_nbr", "item_nbr").unwrap();
        let fp = |results: &[catmark_core::fingerprint::TraceResult], buyer: &str| {
            results.iter().find(|r| r.buyer == buyer).unwrap().detection.false_positive_probability
        };
        // Evidence against the leaker of the intact copy is maximal;
        // the merge must not manufacture stronger evidence than that.
        assert!(fp(&after, "a") >= fp(&intact, "a"));
        // The innocent buyer never looks guiltier than a colluder
        // whose marks partially survive.
        let innocent_fp = fp(&after, "innocent");
        assert!(innocent_fp > 0.3, "innocent at chance level, got {innocent_fp}");
    }

    #[test]
    fn two_way_collusion_traces_both() {
        // With two colluders every marked cell is a 1-vs-1 tie, so the
        // random tie-break keeps ≈ half of each buyer's marks — both
        // remain overwhelmingly traceable.
        let (reg, _, copies) = setup(&["a", "b"]);
        let refs: Vec<&Relation> = copies.iter().collect();
        let merged = majority_merge(&refs, 3).unwrap();
        let results = reg.trace(&merged, "visit_nbr", "item_nbr").unwrap();
        for r in &results {
            assert!(
                r.detection.is_significant(1e-2),
                "{} not traced through 2-way merge: {:?}",
                r.buyer,
                r.detection
            );
        }
    }

    #[test]
    fn mix_and_match_dilutes_but_all_colluders_trace() {
        let (reg, _, copies) = setup(&["a", "b", "c"]);
        let refs: Vec<&Relation> = copies.iter().collect();
        let mixed = mix_and_match(&refs, 7).unwrap();
        let results = reg.trace(&mixed, "visit_nbr", "item_nbr").unwrap();
        // Each buyer keeps ≈ 1/3 of their marked cells — with ~90
        // copies per watermark bit that is still overwhelming
        // evidence against every colluder.
        for r in &results {
            assert!(
                r.detection.is_significant(1e-2),
                "{} not traced through mix-and-match: {:?}",
                r.buyer,
                r.detection
            );
        }
    }

    #[test]
    fn row_share_keeps_every_colluder_traceable() {
        let (reg, _, copies) = setup(&["a", "b", "c"]);
        let refs: Vec<&Relation> = copies.iter().collect();
        let shared = row_share(&refs).unwrap();
        let results = reg.trace(&shared, "visit_nbr", "item_nbr").unwrap();
        // Each buyer keeps their marks in their own third of the rows;
        // the other two thirds decode as noise, so a colluder may lose
        // a watermark bit to an unlucky vote — test at α = 5%.
        for r in &results {
            assert!(
                r.detection.is_significant(5e-2),
                "{} not traced through row sharing: {:?}",
                r.buyer,
                r.detection
            );
        }
    }

    #[test]
    fn alignment_drops_rows_missing_from_any_copy() {
        let (_, _, mut copies) = setup(&["a", "b"]);
        // Buyer b truncates their copy before colluding.
        let n = copies[1].len();
        copies[1].retain({
            let mut i = 0;
            move |_| {
                i += 1;
                i <= n - 100
            }
        });
        let refs: Vec<&Relation> = copies.iter().collect();
        let merged = majority_merge(&refs, 9).unwrap();
        assert_eq!(merged.len(), n - 100);
    }

    #[test]
    fn degenerate_inputs_error() {
        assert!(majority_merge(&[], 0).is_err());
        let (_, rel, copies) = setup(&["a"]);
        // Single "collusion" is identity.
        let refs: Vec<&Relation> = copies.iter().collect();
        let merged = majority_merge(&refs, 9).unwrap();
        assert_eq!(merged.len(), rel.len());
        // Mismatched schema errors.
        let other = catmark_relation::Schema::builder()
            .key_attr("x", catmark_relation::AttrType::Integer)
            .categorical_attr("y", catmark_relation::AttrType::Integer)
            .build()
            .unwrap();
        let foreign = Relation::new(other);
        assert!(majority_merge(&[&copies[0], &foreign], 0).is_err());
    }

    #[test]
    fn mix_and_match_is_seed_deterministic() {
        let (_, _, copies) = setup(&["a", "b"]);
        let refs: Vec<&Relation> = copies.iter().collect();
        let m1 = mix_and_match(&refs, 42).unwrap();
        let m2 = mix_and_match(&refs, 42).unwrap();
        assert!(m1.iter().zip(m2.iter()).all(|(x, y)| x == y));
    }
}
