//! Attack pipelines: realistic adversaries combine attacks (shuffle,
//! then cut, then alter a little). [`pipeline`] chains declarative
//! [`crate::Attack`] steps.

use catmark_relation::{Relation, RelationError};

use crate::Attack;

/// Apply `steps` in order, feeding each attack the previous output.
///
/// # Errors
///
/// The first failing step's error.
pub fn pipeline(rel: &Relation, steps: &[Attack]) -> Result<Relation, RelationError> {
    let mut current = rel.clone();
    for step in steps {
        current = step.apply(&current)?;
    }
    Ok(current)
}

/// A ready-made "determined adversary" pipeline: shuffle, keep 70%,
/// alter 10% of the target attribute, and add 15% mimicking tuples —
/// a plausible maximal attack that still leaves the data sellable.
#[must_use]
pub fn determined_adversary(attr: &str, seed: u64) -> Vec<Attack> {
    vec![
        Attack::Shuffle { seed },
        Attack::HorizontalLoss { keep: 0.7, seed: seed.wrapping_add(1) },
        Attack::RandomAlteration {
            attr: attr.to_owned(),
            fraction: 0.1,
            seed: seed.wrapping_add(2),
        },
        Attack::SubsetAddition { fraction: 0.15, seed: seed.wrapping_add(3) },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use catmark_datagen::{ItemScanConfig, SalesGenerator};

    #[test]
    fn pipeline_applies_in_order() {
        let rel =
            SalesGenerator::new(ItemScanConfig { tuples: 2_000, ..Default::default() }).generate();
        let steps = [
            Attack::HorizontalLoss { keep: 0.5, seed: 1 },
            Attack::SubsetAddition { fraction: 0.2, seed: 2 },
        ];
        let out = pipeline(&rel, &steps).unwrap();
        // ~1000 kept, then +20% → ~1200.
        assert!((1050..1350).contains(&out.len()), "len={}", out.len());
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let rel =
            SalesGenerator::new(ItemScanConfig { tuples: 100, ..Default::default() }).generate();
        let out = pipeline(&rel, &[]).unwrap();
        assert_eq!(out.len(), rel.len());
    }

    #[test]
    fn determined_adversary_composes() {
        let rel =
            SalesGenerator::new(ItemScanConfig { tuples: 3_000, ..Default::default() }).generate();
        let steps = determined_adversary("item_nbr", 9);
        let out = pipeline(&rel, &steps).unwrap();
        assert!(!out.is_empty());
        assert!(out.len() < rel.len(), "net effect of 30% loss + 15% addition shrinks");
    }

    #[test]
    fn pipeline_propagates_errors() {
        let rel =
            SalesGenerator::new(ItemScanConfig { tuples: 100, ..Default::default() }).generate();
        let steps = [Attack::RandomAlteration { attr: "ghost".into(), fraction: 0.1, seed: 1 }];
        assert!(pipeline(&rel, &steps).is_err());
    }
}
