//! A1 — horizontal data partitioning.
//!
//! "Mallory can randomly select and use a subset of the original data
//! set that might still provide value for its intended purpose." This
//! is also the benign case: a buyer who licensed a slice of the data.
//! Figure 7 of the paper sweeps exactly this attack.

use catmark_relation::{ops, Relation};

/// Keep each tuple independently with probability `keep` (Bernoulli
/// subset selection).
///
/// # Panics
///
/// Panics when `keep` is outside `[0, 1]`.
#[must_use]
pub fn subset_selection(rel: &Relation, keep: f64, seed: u64) -> Relation {
    ops::sample_bernoulli(rel, keep, seed)
}

/// Keep exactly `count` uniformly chosen tuples.
#[must_use]
pub fn subset_selection_exact(rel: &Relation, count: usize, seed: u64) -> Relation {
    ops::sample_exact(rel, count, seed)
}

/// Keep only tuples whose attribute value ranks among the `top_k` most
/// frequent values — the "keep the bestsellers" partition. Unlike
/// uniform sampling this is *value-biased*: it erases entire domain
/// values, stressing both the association channel (whole carrier
/// groups vanish) and the frequency channel (the histogram's tail is
/// amputated).
///
/// # Errors
///
/// Unknown attribute, or a column with fewer than two distinct values.
pub fn value_biased_selection(
    rel: &Relation,
    attr: &str,
    top_k: usize,
) -> Result<Relation, catmark_relation::RelationError> {
    let attr_idx = rel.schema().index_of(attr)?;
    let domain = catmark_relation::CategoricalDomain::from_column(rel, attr_idx)?;
    let hist = catmark_relation::FrequencyHistogram::from_relation(rel, attr_idx, &domain)?;
    let keep: std::collections::HashSet<usize> =
        hist.rank_by_frequency().into_iter().take(top_k).collect();
    let mut out = Relation::new(rel.schema().clone());
    for tuple in rel.iter() {
        let t = domain.index_of(tuple.get(attr_idx)).expect("domain from column");
        if keep.contains(&t) {
            out.push_unchecked_key(tuple.values().to_vec())
                .expect("tuple from a valid relation stays valid");
        }
    }
    Ok(out)
}

/// Keep a contiguous row range `[start, start + len)` — the "sell one
/// region/month of the data" partition, which stresses any scheme
/// whose mark positions correlate with row order.
#[must_use]
pub fn contiguous_cut(rel: &Relation, start: usize, len: usize) -> Relation {
    let mut out = Relation::with_capacity(rel.schema().clone(), len);
    for row in start..(start + len).min(rel.len()) {
        out.push_unchecked_key(rel.tuple(row).expect("row in range").values().to_vec())
            .expect("tuple from a valid relation stays valid");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use catmark_datagen::{ItemScanConfig, SalesGenerator};

    fn rel() -> Relation {
        SalesGenerator::new(ItemScanConfig { tuples: 5_000, ..Default::default() }).generate()
    }

    #[test]
    fn bernoulli_keeps_expected_fraction() {
        let r = rel();
        let kept = subset_selection(&r, 0.2, 9);
        let frac = kept.len() as f64 / r.len() as f64;
        assert!((0.17..0.23).contains(&frac), "frac={frac}");
    }

    #[test]
    fn exact_selection_is_exact() {
        let r = rel();
        assert_eq!(subset_selection_exact(&r, 123, 1).len(), 123);
    }

    #[test]
    fn contiguous_cut_respects_bounds() {
        let r = rel();
        let cut = contiguous_cut(&r, 100, 50);
        assert_eq!(cut.len(), 50);
        assert_eq!(cut.tuple(0).unwrap(), r.tuple(100).unwrap());
        // Cut beyond the end truncates.
        let tail = contiguous_cut(&r, r.len() - 10, 100);
        assert_eq!(tail.len(), 10);
    }

    #[test]
    fn value_biased_selection_keeps_only_top_values() {
        let r = rel();
        let kept = value_biased_selection(&r, "item_nbr", 10).unwrap();
        assert!(!kept.is_empty());
        assert!(kept.len() < r.len());
        let distinct: std::collections::HashSet<_> = kept.column_iter(1).collect();
        assert_eq!(distinct.len(), 10);
        // Zipf skew: the top-10 of 1000 items still covers a sizable
        // fraction of the rows.
        assert!(kept.len() as f64 > 0.05 * r.len() as f64, "kept {}", kept.len());
    }

    #[test]
    fn value_biased_selection_rejects_unknown_attr() {
        assert!(value_biased_selection(&rel(), "ghost", 5).is_err());
    }

    #[test]
    fn survivors_are_unmodified() {
        let r = rel();
        let kept = subset_selection(&r, 0.5, 3);
        for tuple in kept.iter() {
            let key = tuple.get(0);
            let row = r.find_by_key(key).expect("survivor came from the original");
            assert_eq!(r.tuple(row).unwrap(), tuple);
        }
    }
}
