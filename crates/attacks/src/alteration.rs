//! A3 — subset alteration.
//!
//! "Altering a subset of the items in the original data set such that
//! there is still value associated with the resulting set." The paper
//! stresses that in the categorical world alteration is *expensive* —
//! every change is significant — and that without the keys Mallory's
//! only option is a *random* attack (Section 4.4); Figures 4–6 sweep
//! exactly the attack implemented here.

use catmark_relation::ops::SplitMix64;
use catmark_relation::{CategoricalDomain, ColumnMut, Relation, RelationError};

/// Replace the `attr` value of `fraction · N` uniformly chosen tuples
/// with a uniformly chosen *different* value observed in the column
/// (Mallory knows the data, not the domain's secret indexing).
///
/// Runs directly on the column's typed storage: integer columns swap
/// `i64`s, text columns swap dictionary codes — no per-row `Value`
/// materialization. Replacement draws index the observed values in
/// sorted order, so per-seed outputs match the historical row-store
/// implementation exactly.
///
/// # Errors
///
/// Unknown or primary-key attribute, or a column with fewer than two
/// distinct values (nothing to alter to).
///
/// # Panics
///
/// Panics when `fraction` is outside `[0, 1]`.
pub fn random_alteration(
    rel: &Relation,
    attr: &str,
    fraction: f64,
    seed: u64,
) -> Result<Relation, RelationError> {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    let attr_idx = rel.schema().index_of(attr)?;
    let observed = CategoricalDomain::from_column(rel, attr_idx)?;
    let mut out = rel.clone();
    let mut rng = SplitMix64::new(seed);
    let targets = pick_rows(rel.len(), fraction, &mut rng);
    match out.column_mut(attr_idx)? {
        ColumnMut::Int(xs) => {
            let sorted: Vec<i64> = observed
                .values()
                .iter()
                .map(|v| v.as_int().expect("observed domain of an integer column"))
                .collect();
            for row in targets {
                xs[row] = random_other(&sorted, &xs[row], &mut rng);
            }
        }
        ColumnMut::Text(mut tc) => {
            // Observed values in the domain's sorted order, as codes
            // (every observed string is already interned).
            let sorted: Vec<u32> = observed
                .values()
                .iter()
                .map(|v| {
                    let s = v.as_text().expect("observed domain of a text column");
                    tc.dict().code_of(s).expect("observed value is interned")
                })
                .collect();
            for row in targets {
                let code = random_other(&sorted, &tc.code(row), &mut rng);
                tc.set(row, code);
            }
        }
    }
    Ok(out)
}

/// Replace values of chosen tuples with uniform draws from an
/// *attacker-supplied* domain (e.g. a domain Mallory thinks is
/// plausible) — lets experiments model better-informed adversaries.
///
/// # Errors
///
/// Unknown or primary-key attribute, or a supplied domain whose value
/// type differs from the column's.
///
/// # Panics
///
/// Panics when `fraction` is outside `[0, 1]`.
pub fn domain_alteration(
    rel: &Relation,
    attr: &str,
    domain: &CategoricalDomain,
    fraction: f64,
    seed: u64,
) -> Result<Relation, RelationError> {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    let attr_idx = rel.schema().index_of(attr)?;
    let mut out = rel.clone();
    let mut rng = SplitMix64::new(seed);
    let targets = pick_rows(rel.len(), fraction, &mut rng);
    let mistyped = |v: &catmark_relation::Value| RelationError::TypeMismatch {
        attr: attr.to_owned(),
        expected: rel.schema().attr(attr_idx).ty.name(),
        value: v.clone(),
    };
    match out.column_mut(attr_idx)? {
        ColumnMut::Int(xs) => {
            let values: Vec<i64> = domain
                .values()
                .iter()
                .map(|v| v.as_int().ok_or_else(|| mistyped(v)))
                .collect::<Result<_, _>>()?;
            for row in targets {
                xs[row] = values[rng.below(values.len() as u64) as usize];
            }
        }
        ColumnMut::Text(mut tc) => {
            let codes: Vec<u32> = domain
                .values()
                .iter()
                .map(|v| v.as_text().map(|s| tc.intern(s)).ok_or_else(|| mistyped(v)))
                .collect::<Result<_, _>>()?;
            for row in targets {
                let code = codes[rng.below(codes.len() as u64) as usize];
                tc.set(row, code);
            }
        }
    }
    Ok(out)
}

/// Uniformly choose ⌈fraction · n⌉ distinct rows.
fn pick_rows(n: usize, fraction: f64, rng: &mut SplitMix64) -> Vec<usize> {
    let count = ((n as f64) * fraction).round() as usize;
    let count = count.min(n);
    let mut rows: Vec<usize> = (0..n).collect();
    for i in 0..count {
        let j = i + rng.below((n - i) as u64) as usize;
        rows.swap(i, j);
    }
    rows.truncate(count);
    rows
}

/// Uniform draw from `sorted` (the observed values in canonical
/// order), retrying until it differs from `current` — the same draw
/// sequence the historical Value-typed implementation consumed.
fn random_other<T: Copy + PartialEq>(sorted: &[T], current: &T, rng: &mut SplitMix64) -> T {
    debug_assert!(sorted.len() >= 2);
    loop {
        let candidate = sorted[rng.below(sorted.len() as u64) as usize];
        if candidate != *current {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catmark_datagen::{domains, ItemScanConfig, SalesGenerator};

    fn rel() -> Relation {
        SalesGenerator::new(ItemScanConfig { tuples: 4_000, ..Default::default() }).generate()
    }

    #[test]
    fn alters_requested_fraction() {
        let r = rel();
        let attacked = random_alteration(&r, "item_nbr", 0.3, 7).unwrap();
        let changed = r.iter().zip(attacked.iter()).filter(|(a, b)| a.get(1) != b.get(1)).count();
        let frac = changed as f64 / r.len() as f64;
        // Every targeted tuple is guaranteed to change (different
        // value enforced), so the fraction is exact.
        assert!((frac - 0.3).abs() < 1e-9, "frac={frac}");
    }

    #[test]
    fn keys_and_other_attributes_untouched() {
        let r = rel();
        let attacked = random_alteration(&r, "item_nbr", 0.5, 8).unwrap();
        assert_eq!(r.column(0), attacked.column(0));
    }

    #[test]
    fn fraction_zero_and_one_edge_cases() {
        let r = rel();
        let same = random_alteration(&r, "item_nbr", 0.0, 1).unwrap();
        assert!(r.iter().zip(same.iter()).all(|(a, b)| a == b));
        let all = random_alteration(&r, "item_nbr", 1.0, 1).unwrap();
        let changed = r.iter().zip(all.iter()).filter(|(a, b)| a != b).count();
        assert_eq!(changed, r.len());
    }

    #[test]
    fn replacements_come_from_observed_values() {
        let r = rel();
        let observed = CategoricalDomain::from_column(&r, 1).unwrap();
        let attacked = random_alteration(&r, "item_nbr", 0.4, 9).unwrap();
        for v in attacked.column_iter(1) {
            assert!(observed.index_of(&v).is_ok());
        }
    }

    #[test]
    fn domain_alteration_uses_supplied_domain() {
        let r = rel();
        let foreign = domains::product_codes(10, 777_000);
        let attacked = domain_alteration(&r, "item_nbr", &foreign, 0.2, 5).unwrap();
        let foreign_count = attacked.column_iter(1).filter(|v| foreign.index_of(v).is_ok()).count();
        let frac = foreign_count as f64 / r.len() as f64;
        assert!((frac - 0.2).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn is_deterministic_per_seed() {
        let r = rel();
        let a = random_alteration(&r, "item_nbr", 0.25, 42).unwrap();
        let b = random_alteration(&r, "item_nbr", 0.25, 42).unwrap();
        assert!(a.iter().zip(b.iter()).all(|(x, y)| x == y));
        let c = random_alteration(&r, "item_nbr", 0.25, 43).unwrap();
        assert!(a.iter().zip(c.iter()).any(|(x, y)| x != y));
    }

    #[test]
    fn unknown_attribute_errors() {
        assert!(random_alteration(&rel(), "ghost", 0.1, 1).is_err());
    }
}
