//! A5 — vertical data partitioning.
//!
//! "A valuable subset of the attributes are selected (by vertical
//! partitioning) by Mallory. The mark has to be able to survive this
//! partitioning." The projected relation is re-keyed on its first
//! retained attribute; duplicate projected keys are retained
//! (first-occurrence indexed), matching the paper's observation about
//! partitions whose remaining attribute "can act as a primary key".

use catmark_relation::{ops, Relation, RelationError};

/// Keep only the named attributes, in order; the first becomes the
/// projected relation's primary key. Rows are never dropped (duplicate
/// projected keys are tolerated).
///
/// # Errors
///
/// Unknown attributes or an empty keep-list.
pub fn keep_attributes(rel: &Relation, keep: &[&str]) -> Result<Relation, RelationError> {
    let indices: Vec<usize> =
        keep.iter().map(|name| rel.schema().index_of(name)).collect::<Result<_, _>>()?;
    ops::project(rel, &indices, 0, false)
}

/// As [`keep_attributes`], but also deduplicate rows whose projected
/// key repeats — the lossy variant of the attack.
///
/// # Errors
///
/// Unknown attributes or an empty keep-list.
pub fn keep_attributes_dedup(rel: &Relation, keep: &[&str]) -> Result<Relation, RelationError> {
    let indices: Vec<usize> =
        keep.iter().map(|name| rel.schema().index_of(name)).collect::<Result<_, _>>()?;
    ops::project(rel, &indices, 0, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use catmark_datagen::{ItemScanConfig, SalesGenerator};

    fn rel() -> Relation {
        SalesGenerator::new(ItemScanConfig { tuples: 3_000, with_city: true, ..Default::default() })
            .generate()
    }

    #[test]
    fn keeps_only_named_attributes() {
        let r = rel();
        let cut = keep_attributes(&r, &["item_nbr", "store_city"]).unwrap();
        assert_eq!(cut.schema().arity(), 2);
        assert_eq!(cut.schema().key_attr().name, "item_nbr");
        assert_eq!(cut.len(), r.len());
    }

    #[test]
    fn single_attribute_partition() {
        // The extreme scenario of Section 4.2.
        let r = rel();
        let alone = keep_attributes(&r, &["item_nbr"]).unwrap();
        assert_eq!(alone.schema().arity(), 1);
        assert_eq!(alone.len(), r.len());
    }

    #[test]
    fn dedup_variant_loses_duplicate_keys() {
        let r = rel();
        let deduped = keep_attributes_dedup(&r, &["item_nbr"]).unwrap();
        assert!(deduped.len() < r.len());
        assert_eq!(deduped.len(), deduped.distinct_keys());
    }

    #[test]
    fn empty_keep_list_errors() {
        assert!(keep_attributes(&rel(), &[]).is_err());
    }

    #[test]
    fn unknown_attribute_errors() {
        assert!(keep_attributes(&rel(), &["ghost"]).is_err());
    }
}
