//! The SHA-NI backend is an accelerator, never an authority: for every
//! entry point with a hardware variant, this suite pins the hardware
//! output to the software golden reference bit for bit — one-shot
//! digests across message lengths (zero blocks through several,
//! including every padding boundary), the fixed-length keyed hasher,
//! and the four-lane multibuffer across lane counts.
//!
//! On CPUs without the SHA extensions the `ShaNi` requests fall back
//! to software inside the dispatch layer, so the assertions hold
//! trivially — the suite is meaningful exactly where the hardware
//! path exists, and never fails where it doesn't.

use catmark_crypto::sha256::{sha256, sha256_with_backend};
use catmark_crypto::{FixedLenKeyedHasher, HashAlgorithm, KeyedHash, SecretKey, Sha256Backend};
use proptest::prelude::*;

#[test]
fn backends_agree_on_padding_boundaries() {
    // 55/56/63/64 bytes exercise every "does the length field fit"
    // case of the padding rule; the longer sizes cover multi-block
    // streaming through the block buffer.
    for len in [0usize, 1, 8, 55, 56, 57, 63, 64, 65, 119, 120, 128, 129, 1000] {
        let data: Vec<u8> = (0..len).map(|i| (i * 131 + 7) as u8).collect();
        let soft = sha256_with_backend(Sha256Backend::Soft, &data);
        assert_eq!(soft, sha256(&data), "soft backend must be the default path, len={len}");
        assert_eq!(
            sha256_with_backend(Sha256Backend::ShaNi, &data),
            soft,
            "backends disagree at len={len}"
        );
    }
}

proptest! {
    /// One-shot SHA-256 over arbitrary messages: identical digests.
    #[test]
    fn sha256_backends_are_bit_identical(data in proptest::collection::vec(any::<u8>(), 0..600)) {
        prop_assert_eq!(
            sha256_with_backend(Sha256Backend::ShaNi, &data),
            sha256_with_backend(Sha256Backend::Soft, &data)
        );
    }

    /// The fixed-length keyed hasher (single stream and all four
    /// multibuffer lanes) across key widths, value widths, and value
    /// content: identical truncated digests, and both agree with the
    /// generic streaming construct.
    #[test]
    fn fixed_len_keyed_backends_are_bit_identical(
        key in proptest::collection::vec(any::<u8>(), 1..48),
        vlen in 1usize..48,
        seed in any::<u64>(),
    ) {
        let h = KeyedHash::new(HashAlgorithm::Sha256, SecretKey::from_bytes(key));
        let Some(fast) = h.fixed_len_hasher(vlen) else {
            // Layout doesn't qualify for the two-block fast path —
            // nothing to compare.
            return Ok(());
        };
        let vs: Vec<Vec<u8>> = (0..4u64)
            .map(|lane| {
                (0..vlen)
                    .map(|i| (seed ^ (lane << 56)).wrapping_mul(i as u64 + 1) as u8)
                    .collect()
            })
            .collect();
        for v in &vs {
            let soft = fast.hash_u64_with(Sha256Backend::Soft, v);
            prop_assert_eq!(fast.hash_u64_with(Sha256Backend::ShaNi, v), soft);
            prop_assert_eq!(h.hash_canonical_u64(v.as_slice()), soft);
        }
        let quad = [vs[0].as_slice(), vs[1].as_slice(), vs[2].as_slice(), vs[3].as_slice()];
        let soft4 = fast.hash4_u64_with(Sha256Backend::Soft, quad);
        prop_assert_eq!(fast.hash4_u64_with(Sha256Backend::ShaNi, quad), soft4);
        // The multibuffer lanes themselves must match the single
        // stream on both backends.
        for (lane, v) in soft4.iter().zip(&vs) {
            prop_assert_eq!(*lane, fast.hash_u64(v));
        }
    }

    /// The multi-key quad (one value under four different keys) across
    /// key content and value content: identical truncated digests on
    /// both backends, and every lane agrees with its own single-stream
    /// hasher.
    #[test]
    fn multi_key_quad_backends_are_bit_identical(
        key_len in 1usize..48,
        vlen in 1usize..48,
        seed in any::<u64>(),
    ) {
        let hashes: Vec<KeyedHash> = (0..4u64)
            .map(|lane| {
                let key: Vec<u8> = (0..key_len)
                    .map(|i| (seed ^ (lane << 48)).wrapping_mul(i as u64 + 3) as u8)
                    .collect();
                KeyedHash::new(HashAlgorithm::Sha256, SecretKey::from_bytes(key))
            })
            .collect();
        let fasts: Vec<_> = hashes.iter().filter_map(|h| h.fixed_len_hasher(vlen)).collect();
        if fasts.len() < 4 {
            // Layout doesn't qualify for the two-block fast path.
            return Ok(());
        }
        let quad = FixedLenKeyedHasher::quad([&fasts[0], &fasts[1], &fasts[2], &fasts[3]])
            .expect("same key length and value width");
        let v: Vec<u8> = (0..vlen).map(|i| seed.wrapping_mul(i as u64 + 7) as u8).collect();
        let soft = quad.hash4_u64_with(Sha256Backend::Soft, &v);
        prop_assert_eq!(quad.hash4_u64_with(Sha256Backend::ShaNi, &v), soft);
        for (lane, fast) in soft.iter().zip(&fasts) {
            prop_assert_eq!(*lane, fast.hash_u64(&v));
        }
    }
}
