//! The paper's keyed one-way construct `H(V, k) = crypto_hash(k ; V ; k)`
//! (Section 2.2) and a small keyed PRF built on top of it.
//!
//! The construct sandwiches the value between two copies of the secret
//! key before hashing. Its one-wayness is what defeats the court-time
//! attack in which Mallory claims the watermark is an artifact of a key
//! searched for *after* the fact: finding a key that makes an arbitrary
//! data set decode to a chosen mark requires inverting the hash.

use crate::HashAlgorithm;

/// A hash input with a canonical, injective byte encoding that can be
/// **streamed** into a writer instead of materialized.
///
/// This is the zero-allocation path under the watermarking hot loops:
/// `KeyedHash::hash_canonical_u64` streams `write_canonical` output
/// straight into the digest state, so hashing a tuple key costs no
/// heap traffic (the historical path built a `Vec<u8>` per call).
///
/// Implementations must uphold two contracts:
///
/// * `write_canonical` emits exactly [`CanonicalInput::canonical_len`]
///   bytes — the keyed construct length-prefixes the encoding, and a
///   mismatch would silently change every hash;
/// * the encoding is injective across all values that may share a hash
///   domain (distinct values ⇒ distinct byte strings).
pub trait CanonicalInput {
    /// Exact length in bytes of the canonical encoding.
    fn canonical_len(&self) -> usize;

    /// Stream the canonical encoding into `out`.
    ///
    /// # Errors
    ///
    /// Propagates writer errors; digest writers are infallible.
    fn write_canonical<W: std::io::Write + ?Sized>(&self, out: &mut W) -> std::io::Result<()>;
}

impl CanonicalInput for [u8] {
    fn canonical_len(&self) -> usize {
        self.len()
    }

    fn write_canonical<W: std::io::Write + ?Sized>(&self, out: &mut W) -> std::io::Result<()> {
        out.write_all(self)
    }
}

impl CanonicalInput for str {
    fn canonical_len(&self) -> usize {
        self.len()
    }

    fn write_canonical<W: std::io::Write + ?Sized>(&self, out: &mut W) -> std::io::Result<()> {
        out.write_all(self.as_bytes())
    }
}

/// A secret watermarking key.
///
/// The paper works with `max(b(N), b(A))`-bit keys; we generalize to an
/// arbitrary byte string. Two independent keys (`k1` for tuple fitness
/// and value selection, `k2` for watermark-bit position selection) are
/// used by the encoder; [`SecretKey::derive`] provides a convenient way
/// to obtain domain-separated subkeys from one master secret.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SecretKey {
    bytes: Vec<u8>,
}

impl SecretKey {
    /// Key from raw bytes. Empty keys are permitted but pointless.
    #[must_use]
    pub fn from_bytes(bytes: impl Into<Vec<u8>>) -> Self {
        SecretKey { bytes: bytes.into() }
    }

    /// Key from a 64-bit integer (big-endian encoding).
    #[must_use]
    pub fn from_u64(v: u64) -> Self {
        SecretKey { bytes: v.to_be_bytes().to_vec() }
    }

    /// Derive a domain-separated subkey: `hash(label ; 0x00 ; key)`.
    ///
    /// Used to obtain the independent `k1`/`k2` pair from a single
    /// master secret, and fresh per-pass keys for the experiment
    /// harness's averaged runs.
    #[must_use]
    pub fn derive(&self, algo: HashAlgorithm, label: &str) -> SecretKey {
        let mut h = algo.hasher();
        h.update(label.as_bytes());
        h.update(&[0u8]);
        h.update(&self.bytes);
        SecretKey { bytes: h.finalize_vec() }
    }

    /// Raw key material.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never leak key material through Debug output.
        write!(f, "SecretKey({} bytes, redacted)", self.bytes.len())
    }
}

impl From<u64> for SecretKey {
    fn from(v: u64) -> Self {
        SecretKey::from_u64(v)
    }
}

impl From<&str> for SecretKey {
    fn from(s: &str) -> Self {
        SecretKey::from_bytes(s.as_bytes().to_vec())
    }
}

impl From<&[u8]> for SecretKey {
    fn from(bytes: &[u8]) -> Self {
        SecretKey::from_bytes(bytes.to_vec())
    }
}

impl<const N: usize> From<&[u8; N]> for SecretKey {
    fn from(bytes: &[u8; N]) -> Self {
        SecretKey::from_bytes(bytes.to_vec())
    }
}

/// The keyed hash `H(V, k) = crypto_hash(k ; V ; k)`.
///
/// Cloning is cheap relative to hashing; instances are immutable and
/// thread-safe.
#[derive(Debug, Clone)]
pub struct KeyedHash {
    algo: HashAlgorithm,
    key: SecretKey,
}

impl KeyedHash {
    /// Keyed hash over `algo` with secret `key`.
    pub fn new(algo: HashAlgorithm, key: impl Into<SecretKey>) -> Self {
        KeyedHash { algo, key: key.into() }
    }

    /// The underlying algorithm.
    #[must_use]
    pub fn algorithm(&self) -> HashAlgorithm {
        self.algo
    }

    /// Full digest of `H(parts..., k)`; `parts` are concatenated with a
    /// length prefix each, preventing ambiguity between e.g.
    /// `("ab", "c")` and `("a", "bc")`.
    #[must_use]
    pub fn hash_parts(&self, parts: &[&[u8]]) -> Vec<u8> {
        let mut h = self.algo.hasher();
        h.update(self.key.as_bytes());
        for part in parts {
            h.update(&(part.len() as u64).to_be_bytes());
            h.update(part);
        }
        h.update(self.key.as_bytes());
        h.finalize_vec()
    }

    /// `H(parts..., k)` truncated to the first 8 digest bytes,
    /// interpreted big-endian.
    ///
    /// This is the integer the algorithms reduce (`mod e` for fitness,
    /// `mod nA` for value selection, `mod |wm_data|` for position
    /// selection).
    #[must_use]
    pub fn hash_u64(&self, parts: &[&[u8]]) -> u64 {
        let digest = self.hash_parts(parts);
        let mut first = [0u8; 8];
        first.copy_from_slice(&digest[..8]);
        u64::from_be_bytes(first)
    }

    /// Convenience for the common single-value case.
    #[must_use]
    pub fn hash_value_u64(&self, value: &[u8]) -> u64 {
        self.hash_u64(&[value])
    }

    /// One-shot `H(value, k)` over a borrowed canonical encoding,
    /// truncated to the first 8 digest bytes (big-endian).
    ///
    /// Byte-identical to `hash_u64(&[&value.canonical_bytes()])` but
    /// allocation-free: the encoding streams straight into the digest
    /// state and the truncated integer is read from the fixed output
    /// array. This is the hot path under fit-tuple selection, where it
    /// runs once (or twice, for the position hash) per tuple of the
    /// relation.
    #[must_use]
    pub fn hash_canonical_u64<V: CanonicalInput + ?Sized>(&self, value: &V) -> u64 {
        let key = self.key.as_bytes();
        let vlen = value.canonical_len();
        let total = 2 * key.len() + 8 + vlen;
        // Small inputs (every integer tuple key, most text keys)
        // assemble on the stack so the digest absorbs one contiguous
        // slice — same bytes, fewer block-buffer round trips.
        if total <= 128 {
            let mut buf = [0u8; 128];
            buf[..key.len()].copy_from_slice(key);
            buf[key.len()..key.len() + 8].copy_from_slice(&(vlen as u64).to_be_bytes());
            let mut tail = &mut buf[key.len() + 8..];
            value.write_canonical(&mut tail).expect("slice writers hold canonical_len bytes");
            buf[key.len() + 8 + vlen..total].copy_from_slice(key);
            let mut h = self.algo.hasher();
            h.update(&buf[..total]);
            return h.finalize_u64();
        }
        let mut h = self.algo.hasher();
        h.update(key);
        h.update(&(vlen as u64).to_be_bytes());
        value.write_canonical(&mut h).expect("digest writers are infallible");
        h.update(key);
        h.finalize_u64()
    }

    /// A precompiled hasher for messages whose canonical encoding is
    /// **exactly** `vlen` bytes — the columnar scan path, where every
    /// key of an integer column encodes to the same width.
    ///
    /// The keyed message `key ‖ len ‖ V ‖ key` then has a fixed layout:
    /// everything except the `vlen` value bytes is constant across
    /// calls. When the algorithm is SHA-256, the value fits entirely in
    /// the first block, and the whole message (with padding) spans
    /// exactly two blocks, the returned hasher pre-renders the first
    /// block's template and pre-expands the *constant* second block's
    /// message schedule, cutting per-hash work by roughly a third.
    /// Returns `None` when the layout doesn't qualify; callers fall
    /// back to [`KeyedHash::hash_canonical_u64`].
    ///
    /// Output is bit-identical to `hash_canonical_u64` over a value
    /// with the same canonical bytes (pinned by test).
    #[must_use]
    pub fn fixed_len_hasher(&self, vlen: usize) -> Option<FixedLenKeyedHasher> {
        if self.algo != HashAlgorithm::Sha256 {
            return None;
        }
        let key = self.key.as_bytes();
        let v_offset = key.len() + 8;
        let total = 2 * key.len() + 8 + vlen;
        // The value must sit entirely in block 1 and the padded message
        // must close in block 2 (0x80 marker + 8-byte bit length).
        if v_offset + vlen > 64 || !(65..=119).contains(&total) {
            return None;
        }
        let mut msg = [0u8; 128];
        msg[..key.len()].copy_from_slice(key);
        msg[key.len()..v_offset].copy_from_slice(&(vlen as u64).to_be_bytes());
        // Value region msg[v_offset..v_offset + vlen] left as a hole.
        msg[v_offset + vlen..total].copy_from_slice(key);
        let mut block1 = [0u8; 64];
        block1.copy_from_slice(&msg[..64]);
        let mut block2 = [0u8; 64];
        block2[..total - 64].copy_from_slice(&msg[64..total]);
        block2[total - 64] = 0x80;
        block2[56..64].copy_from_slice(&((total as u64) * 8).to_be_bytes());
        Some(FixedLenKeyedHasher {
            block1,
            v_offset,
            vlen,
            block2_schedule: crate::sha256::expand_schedule(&block2),
        })
    }
}

/// See [`KeyedHash::fixed_len_hasher`]. Immutable and `Send + Sync`;
/// one instance serves a whole (possibly chunked) column scan.
#[derive(Debug, Clone)]
pub struct FixedLenKeyedHasher {
    /// First message block with the value region zeroed.
    block1: [u8; 64],
    v_offset: usize,
    vlen: usize,
    /// Pre-expanded schedule of the constant second block (key tail +
    /// padding + length).
    block2_schedule: [u32; 64],
}

impl FixedLenKeyedHasher {
    /// `H(V, k)` truncated to the leading 8 digest bytes (big-endian),
    /// where `v` is the value's canonical encoding.
    ///
    /// # Panics
    ///
    /// Panics when `v.len()` differs from the length the hasher was
    /// compiled for.
    #[must_use]
    pub fn hash_u64(&self, v: &[u8]) -> u64 {
        self.hash_u64_with(crate::Sha256Backend::active(), v)
    }

    /// [`Self::hash_u64`] on an explicit backend — used by the
    /// equivalence proptests and the bench harness; production callers
    /// go through [`Self::hash_u64`], which uses the process-wide
    /// selection. Falls back to software when `backend` is unavailable
    /// on this CPU.
    ///
    /// # Panics
    ///
    /// Panics when `v.len()` differs from the length the hasher was
    /// compiled for.
    #[must_use]
    pub fn hash_u64_with(&self, backend: crate::Sha256Backend, v: &[u8]) -> u64 {
        assert_eq!(v.len(), self.vlen, "fixed-length hasher fed a different value width");
        let mut block1 = self.block1;
        block1[self.v_offset..self.v_offset + self.vlen].copy_from_slice(v);
        #[cfg(target_arch = "x86_64")]
        if backend == crate::Sha256Backend::ShaNi && crate::Sha256Backend::ShaNi.is_available() {
            // SAFETY: `is_available` verified the `sha`/`ssse3`/
            // `sse4.1` CPU features at runtime.
            #[allow(unsafe_code)]
            unsafe {
                return crate::sha256_shani::digest_two_blocks_u64(&block1, &self.block2_schedule);
            }
        }
        let _ = backend;
        let mut state = crate::sha256::INITIAL_STATE;
        let w1 = crate::sha256::expand_schedule(&block1);
        crate::sha256::compress_schedule(&mut state, &w1);
        crate::sha256::compress_schedule(&mut state, &self.block2_schedule);
        (u64::from(state[0]) << 32) | u64::from(state[1])
    }

    /// Four independent hashes in one interleaved (multibuffer) pass —
    /// roughly 2–3× the single-stream throughput, because a lone
    /// SHA-256 stream is latency-bound on its round dependency chain.
    /// Bit-identical, lane for lane, to four [`Self::hash_u64`] calls
    /// (pinned by test).
    ///
    /// # Panics
    ///
    /// Panics when any value's width differs from the compiled one.
    #[must_use]
    pub fn hash4_u64(&self, vs: [&[u8]; 4]) -> [u64; 4] {
        self.hash4_u64_with(crate::Sha256Backend::active(), vs)
    }

    /// [`Self::hash4_u64`] on an explicit backend — see
    /// [`Self::hash_u64_with`] for the contract.
    ///
    /// # Panics
    ///
    /// Panics when any value's width differs from the compiled one.
    #[must_use]
    pub fn hash4_u64_with(&self, backend: crate::Sha256Backend, vs: [&[u8]; 4]) -> [u64; 4] {
        let mut block1s = [self.block1; 4];
        for (block, v) in block1s.iter_mut().zip(vs) {
            assert_eq!(v.len(), self.vlen, "fixed-length hasher fed a different value width");
            block[self.v_offset..self.v_offset + self.vlen].copy_from_slice(v);
        }
        crate::sha256::digest4_two_blocks_u64_with(backend, &block1s, &self.block2_schedule)
    }

    /// Bundle four fixed-length hashers — four *different* keys sharing
    /// one message layout — into a [`FixedLenKeyedHasher4`] that hashes
    /// a single value under all four keys in one multibuffer pass.
    ///
    /// This is the transpose of [`Self::hash4_u64`]: instead of four
    /// values under one key (lanes across *tuples*), it runs one value
    /// under four keys (lanes across *recipients*), which is what lets
    /// a single scan of a key column serve a whole recipient batch.
    /// Returns `None` unless all four hashers were compiled for the
    /// same value width and key length (the derived-key deployments
    /// always qualify: every derived key is one digest wide).
    #[must_use]
    pub fn quad(hashers: [&FixedLenKeyedHasher; 4]) -> Option<FixedLenKeyedHasher4> {
        let (v_offset, vlen) = (hashers[0].v_offset, hashers[0].vlen);
        if hashers.iter().any(|h| h.v_offset != v_offset || h.vlen != vlen) {
            return None;
        }
        let block1s = [hashers[0].block1, hashers[1].block1, hashers[2].block1, hashers[3].block1];
        let w2s = [
            hashers[0].block2_schedule,
            hashers[1].block2_schedule,
            hashers[2].block2_schedule,
            hashers[3].block2_schedule,
        ];
        let mut w2_lanes = [[0u32; 4]; 64];
        for (i, word) in w2_lanes.iter_mut().enumerate() {
            for lane in 0..4 {
                word[lane] = w2s[lane][i];
            }
        }
        Some(FixedLenKeyedHasher4 { block1s, v_offset, vlen, w2s, w2_lanes })
    }
}

/// Four fixed-length keyed hashers under four *different* keys, fused
/// for the multi-key multibuffer: one value in, four truncated digests
/// out — bit-identical, lane for lane, to four independent
/// [`FixedLenKeyedHasher::hash_u64`] calls (pinned by test). Built via
/// [`FixedLenKeyedHasher::quad`]; immutable and `Send + Sync`, one
/// instance serves a whole column scan for a recipient quad.
#[derive(Debug, Clone)]
pub struct FixedLenKeyedHasher4 {
    /// Per-lane first message blocks with the value regions zeroed.
    block1s: [[u8; 64]; 4],
    v_offset: usize,
    vlen: usize,
    /// Per-lane pre-expanded constant second-block schedules (the
    /// layout the SHA-NI stream pairs consume).
    w2s: [[u32; 64]; 4],
    /// The same schedules transposed word-major (the layout the soft
    /// multibuffer consumes).
    w2_lanes: [[u32; 4]; 64],
}

impl FixedLenKeyedHasher4 {
    /// `[H(V, k_0), H(V, k_1), H(V, k_2), H(V, k_3)]`, each truncated
    /// to the leading 8 digest bytes (big-endian), where `v` is the
    /// value's canonical encoding.
    ///
    /// # Panics
    ///
    /// Panics when `v.len()` differs from the length the hashers were
    /// compiled for.
    #[must_use]
    pub fn hash4_u64(&self, v: &[u8]) -> [u64; 4] {
        self.hash4_u64_with(crate::Sha256Backend::active(), v)
    }

    /// [`Self::hash4_u64`] on an explicit backend — used by the
    /// equivalence proptests and the bench harness; production callers
    /// go through [`Self::hash4_u64`], which uses the process-wide
    /// selection. Falls back to software when `backend` is unavailable
    /// on this CPU.
    ///
    /// # Panics
    ///
    /// Panics when `v.len()` differs from the length the hashers were
    /// compiled for.
    #[must_use]
    pub fn hash4_u64_with(&self, backend: crate::Sha256Backend, v: &[u8]) -> [u64; 4] {
        assert_eq!(v.len(), self.vlen, "fixed-length hasher fed a different value width");
        let mut block1s = self.block1s;
        for block in &mut block1s {
            block[self.v_offset..self.v_offset + self.vlen].copy_from_slice(v);
        }
        crate::sha256::digest4_two_blocks_u64_multikey_with(
            backend,
            &block1s,
            &self.w2s,
            &self.w2_lanes,
        )
    }
}

/// Deterministic keyed PRF coins.
///
/// Provides an unlimited stream of pseudorandom bits/integers derived
/// from a key and a consumer-chosen index. Used for the decoder's
/// `RandomFill` erasure policy and for synthetic fit-tuple generation,
/// where reproducibility across runs matters.
#[derive(Debug, Clone)]
pub struct KeyedPrf {
    inner: KeyedHash,
}

impl KeyedPrf {
    /// PRF over `algo` keyed with `key`.
    pub fn new(algo: HashAlgorithm, key: impl Into<SecretKey>) -> Self {
        KeyedPrf { inner: KeyedHash::new(algo, key) }
    }

    /// Pseudorandom 64-bit integer for position `index` in domain `label`.
    #[must_use]
    pub fn value(&self, label: &str, index: u64) -> u64 {
        self.inner.hash_u64(&[label.as_bytes(), &index.to_be_bytes()])
    }

    /// Unbiased pseudorandom bit for position `index` in domain `label`.
    #[must_use]
    pub fn bit(&self, label: &str, index: u64) -> bool {
        self.value(label, index) & 1 == 1
    }

    /// Pseudorandom integer uniform in `[0, bound)`.
    ///
    /// Uses 64-bit modulo reduction; the bias is ≤ bound/2^64, far
    /// below anything observable here.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[must_use]
    pub fn below(&self, label: &str, index: u64, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.value(label, index) % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kh() -> KeyedHash {
        KeyedHash::new(HashAlgorithm::Sha256, SecretKey::from_u64(0xDEAD_BEEF))
    }

    #[test]
    fn deterministic() {
        assert_eq!(kh().hash_u64(&[b"tuple-1"]), kh().hash_u64(&[b"tuple-1"]));
    }

    #[test]
    fn key_separates() {
        let a = KeyedHash::new(HashAlgorithm::Sha256, SecretKey::from_u64(1));
        let b = KeyedHash::new(HashAlgorithm::Sha256, SecretKey::from_u64(2));
        assert_ne!(a.hash_u64(&[b"v"]), b.hash_u64(&[b"v"]));
    }

    #[test]
    fn hash_canonical_matches_hash_u64() {
        // The zero-allocation one-shot path must produce the same
        // stream (and therefore the same digest) as the part-based
        // path with a single materialized part.
        for algo in HashAlgorithm::ALL {
            let h = KeyedHash::new(algo, SecretKey::from_u64(42));
            for payload in [&b""[..], b"x", b"some-longer-tuple-key-payload"] {
                assert_eq!(
                    h.hash_canonical_u64(payload),
                    h.hash_u64(&[payload]),
                    "{algo}: {payload:?}"
                );
            }
            assert_eq!(h.hash_canonical_u64("text"), h.hash_u64(&[b"text"]));
        }
    }

    #[test]
    fn fixed_len_hasher_matches_generic_path() {
        // Every qualifying (key length, value length) combination must
        // reproduce the streaming path bit for bit; non-qualifying
        // combinations must decline rather than mis-hash.
        for key_len in [1usize, 8, 16, 32, 48, 56] {
            let key = SecretKey::from_bytes((0..key_len).map(|i| i as u8).collect::<Vec<u8>>());
            let h = KeyedHash::new(HashAlgorithm::Sha256, key);
            for vlen in [1usize, 5, 9, 24, 40, 64] {
                let v: Vec<u8> = (0..vlen).map(|i| (i * 37 + 11) as u8).collect();
                let generic = h.hash_canonical_u64(v.as_slice());
                match h.fixed_len_hasher(vlen) {
                    Some(fast) => {
                        assert_eq!(fast.hash_u64(&v), generic, "key={key_len} vlen={vlen}");
                    }
                    None => {
                        let v_offset = key_len + 8;
                        let total = 2 * key_len + 8 + vlen;
                        assert!(
                            v_offset + vlen > 64 || !(65..=119).contains(&total),
                            "declined a qualifying layout: key={key_len} vlen={vlen}"
                        );
                    }
                }
            }
        }
        // Non-SHA-256 algorithms always decline.
        for algo in [HashAlgorithm::Md5, HashAlgorithm::Sha1] {
            assert!(KeyedHash::new(algo, SecretKey::from_u64(1)).fixed_len_hasher(9).is_none());
        }
    }

    #[test]
    fn four_lane_hashing_matches_single_stream() {
        let master = SecretKey::from_bytes(b"lanes".to_vec());
        let h = KeyedHash::new(HashAlgorithm::Sha256, master.derive(HashAlgorithm::Sha256, "k1"));
        let fast = h.fixed_len_hasher(9).expect("derived key qualifies");
        let keys: Vec<[u8; 9]> = (0..64i64)
            .map(|i| {
                let mut b = [0u8; 9];
                b[0] = 0x01;
                b[1..].copy_from_slice(&(i * 7_919 - 3).to_be_bytes());
                b
            })
            .collect();
        for quad in keys.chunks_exact(4) {
            let lanes = fast.hash4_u64([&quad[0], &quad[1], &quad[2], &quad[3]]);
            for (lane, key) in lanes.iter().zip(quad) {
                assert_eq!(*lane, fast.hash_u64(key));
                assert_eq!(*lane, h.hash_canonical_u64(key.as_slice()));
            }
        }
    }

    #[test]
    fn fixed_len_hasher_covers_derived_int_keys() {
        // The deployment-critical layout: 32-byte derived keys hashing
        // 9-byte canonical integers (tag + big-endian i64).
        let master = SecretKey::from_bytes(b"master".to_vec());
        let k1 = master.derive(HashAlgorithm::Sha256, "k1");
        let h = KeyedHash::new(HashAlgorithm::Sha256, k1);
        let fast = h.fixed_len_hasher(9).expect("32-byte key + 9-byte value qualifies");
        for i in [0i64, 1, -1, 42, i64::MAX, i64::MIN, 1_000_003] {
            let mut buf = [0u8; 9];
            buf[0] = 0x01;
            buf[1..].copy_from_slice(&i.to_be_bytes());
            assert_eq!(fast.hash_u64(&buf), h.hash_canonical_u64(buf.as_slice()), "i={i}");
        }
    }

    #[test]
    fn multi_key_quad_matches_four_single_streams() {
        // The recipient-batched layout: four different derived keys
        // hashing the same 9-byte canonical integer must reproduce the
        // four independent single-stream hashes lane for lane, on
        // every backend the CPU offers.
        let master = SecretKey::from_bytes(b"recipients".to_vec());
        let hashes: Vec<KeyedHash> = (0..4)
            .map(|i| {
                KeyedHash::new(
                    HashAlgorithm::Sha256,
                    master.derive(HashAlgorithm::Sha256, &format!("buyer:{i}")),
                )
            })
            .collect();
        let fasts: Vec<FixedLenKeyedHasher> =
            hashes.iter().map(|h| h.fixed_len_hasher(9).expect("derived key qualifies")).collect();
        let quad = FixedLenKeyedHasher::quad([&fasts[0], &fasts[1], &fasts[2], &fasts[3]])
            .expect("uniform layout");
        for i in [0i64, 1, -1, 42, i64::MAX, i64::MIN, 7_919] {
            let mut buf = [0u8; 9];
            buf[0] = 0x01;
            buf[1..].copy_from_slice(&i.to_be_bytes());
            for backend in crate::Sha256Backend::ALL {
                let lanes = quad.hash4_u64_with(backend, &buf);
                for (lane, fast) in lanes.iter().zip(&fasts) {
                    assert_eq!(*lane, fast.hash_u64(&buf), "i={i} backend={backend}");
                }
            }
            assert_eq!(
                quad.hash4_u64(&buf),
                quad.hash4_u64_with(crate::Sha256Backend::active(), &buf)
            );
        }
    }

    #[test]
    fn multi_key_quad_declines_mismatched_layouts() {
        let h = KeyedHash::new(HashAlgorithm::Sha256, SecretKey::from_bytes([7u8; 32].to_vec()));
        let h9 = h.fixed_len_hasher(9).unwrap();
        let h5 = h.fixed_len_hasher(5).unwrap();
        assert!(FixedLenKeyedHasher::quad([&h9, &h9, &h5, &h9]).is_none());
        // Different key lengths shift v_offset, so they must decline
        // even at equal value widths.
        let short =
            KeyedHash::new(HashAlgorithm::Sha256, SecretKey::from_bytes([3u8; 24].to_vec()))
                .fixed_len_hasher(9)
                .unwrap();
        assert!(FixedLenKeyedHasher::quad([&short, &h9, &short, &h9]).is_none());
        assert!(FixedLenKeyedHasher::quad([&h9, &h9, &h9, &h9]).is_some());
    }

    #[test]
    fn part_boundaries_are_unambiguous() {
        // Without length prefixes these two calls would collide.
        assert_ne!(kh().hash_u64(&[b"ab", b"c"]), kh().hash_u64(&[b"a", b"bc"]));
    }

    #[test]
    fn works_for_all_algorithms() {
        for algo in HashAlgorithm::ALL {
            let h = KeyedHash::new(algo, SecretKey::from_u64(7));
            assert_eq!(h.hash_parts(&[b"x"]).len(), algo.output_len());
        }
    }

    #[test]
    fn derive_is_label_separated() {
        let master = SecretKey::from_bytes(b"master".to_vec());
        let k1 = master.derive(HashAlgorithm::Sha256, "k1");
        let k2 = master.derive(HashAlgorithm::Sha256, "k2");
        assert_ne!(k1.as_bytes(), k2.as_bytes());
        // Deterministic.
        assert_eq!(k1.as_bytes(), master.derive(HashAlgorithm::Sha256, "k1").as_bytes());
    }

    #[test]
    fn debug_redacts_key_material() {
        let key = SecretKey::from_bytes(b"super-secret".to_vec());
        let dbg = format!("{key:?}");
        assert!(!dbg.contains("super-secret"));
        assert!(dbg.contains("redacted"));
    }

    #[test]
    fn prf_bits_are_roughly_balanced() {
        let prf = KeyedPrf::new(HashAlgorithm::Sha256, SecretKey::from_u64(99));
        let ones = (0..2000).filter(|&i| prf.bit("test", i)).count();
        assert!((800..1200).contains(&ones), "ones={ones}");
    }

    #[test]
    fn prf_below_respects_bound() {
        let prf = KeyedPrf::new(HashAlgorithm::Sha256, SecretKey::from_u64(3));
        for i in 0..500 {
            assert!(prf.below("b", i, 17) < 17);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn prf_below_zero_bound_panics() {
        let prf = KeyedPrf::new(HashAlgorithm::Sha256, SecretKey::from_u64(3));
        let _ = prf.below("b", 0, 0);
    }

    #[test]
    fn hash_u64_spreads_over_residues() {
        // The fitness test is `H mod e == 0`; check the residues of a
        // keyed hash look uniform enough that ~1/e of tuples qualify.
        let h = kh();
        let e = 10u64;
        let hits =
            (0..5000u64).filter(|i| h.hash_u64(&[&i.to_be_bytes()]).is_multiple_of(e)).count();
        // Expect ~500; allow generous slack.
        assert!((380..630).contains(&hits), "hits={hits}");
    }
}
