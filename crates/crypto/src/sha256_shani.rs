//! SHA-256 compression via the x86 SHA Extensions (SHA-NI).
//!
//! `_mm_sha256rnds2_epu32` performs two SHA-256 rounds per
//! instruction and `_mm_sha256msg1/2_epu32` compute the message
//! schedule in hardware, so one block compresses in ~2× fewer cycles
//! than the best scalar code — and, unlike the scalar rounds, the
//! unit is pipelined, so interleaving two independent streams hides
//! most of the round latency (used by [`digest2_two_blocks_u64`] under
//! the four-lane multibuffer entry point).
//!
//! This module is an *accelerator*, never an authority: every function
//! is bit-identical to its software counterpart in [`crate::sha256`]
//! (enforced by proptest in `tests/backend_equivalence.rs`), and
//! callers reach it only through [`crate::backend::Sha256Backend`]
//! dispatch after runtime feature detection.
//!
//! # Safety
//!
//! Every function here is `unsafe` with the contract that the CPU
//! supports `sha`, `ssse3`, and `sse4.1` — exactly what
//! [`crate::backend::Sha256Backend::is_available`] verifies via
//! `is_x86_feature_detected!`. No pointers escape, no aliasing beyond
//! plain slice reads/writes, no alignment assumptions (`loadu`/`storeu`
//! only).
//!
//! The register naming follows the canonical Intel sequence: SHA-NI
//! keeps the eight working variables in two XMM registers laid out as
//! `ABEF` and `CDGH` (high lane to low), and `rnds2` ping-pongs the
//! roles of the two registers every two rounds.

use core::arch::x86_64::{
    __m128i, _mm_add_epi32, _mm_alignr_epi8, _mm_blend_epi16, _mm_extract_epi64, _mm_loadu_si128,
    _mm_set_epi64x, _mm_sha256msg1_epu32, _mm_sha256msg2_epu32, _mm_sha256rnds2_epu32,
    _mm_shuffle_epi32, _mm_shuffle_epi8, _mm_storeu_si128,
};

use crate::sha256::{INITIAL_STATE, K};

/// Load `state[0..8]` (FIPS word order) into the `(ABEF, CDGH)`
/// register pair SHA-NI operates on.
#[inline]
#[target_feature(enable = "sha,ssse3,sse4.1")]
unsafe fn load_state(state: &[u32; 8]) -> (__m128i, __m128i) {
    // SAFETY: `state` holds 8 u32s, so both 16-byte unaligned loads
    // (offset 0 and offset 4 words) stay in bounds; the shuffles and
    // blend are pure register ops.
    unsafe {
        let lo = _mm_loadu_si128(state.as_ptr().cast()); // A B C D
        let hi = _mm_loadu_si128(state.as_ptr().add(4).cast()); // E F G H
        let tmp = _mm_shuffle_epi32::<0xB1>(lo); // CDAB
        let hi = _mm_shuffle_epi32::<0x1B>(hi); // EFGH
        let abef = _mm_alignr_epi8::<8>(tmp, hi);
        let cdgh = _mm_blend_epi16::<0xF0>(hi, tmp);
        (abef, cdgh)
    }
}

/// Inverse of [`load_state`]: write `(ABEF, CDGH)` back as the FIPS
/// word-ordered `[u32; 8]` state.
#[inline]
#[target_feature(enable = "sha,ssse3,sse4.1")]
unsafe fn store_state(state: &mut [u32; 8], abef: __m128i, cdgh: __m128i) {
    // SAFETY: both 16-byte unaligned stores target `state`'s 8 u32s
    // (offset 0 and offset 4 words), in bounds and non-overlapping.
    unsafe {
        let tmp = _mm_shuffle_epi32::<0x1B>(abef); // FEBA
        let hi = _mm_shuffle_epi32::<0xB1>(cdgh); // DCHG
        let lo = _mm_blend_epi16::<0xF0>(tmp, hi); // memory order A B C D
        let hi = _mm_alignr_epi8::<8>(hi, tmp); // memory order E F G H
        _mm_storeu_si128(state.as_mut_ptr().cast(), lo);
        _mm_storeu_si128(state.as_mut_ptr().add(4).cast(), hi);
    }
}

/// The four 32-bit round constants `K[4i..4i+4]` as one vector.
#[inline]
#[target_feature(enable = "sha,ssse3,sse4.1")]
unsafe fn k_quad(i: usize) -> __m128i {
    debug_assert!(i < 16);
    // SAFETY: `i < 16` at every call site, so the 16-byte load reads
    // K[4i..4i+4] inside the 64-entry table.
    unsafe { _mm_loadu_si128(K.as_ptr().add(4 * i).cast()) }
}

/// The four schedule words `w[4i..4i+4]` as one vector.
#[inline]
#[target_feature(enable = "sha,ssse3,sse4.1")]
unsafe fn w_quad(w: &[u32; 64], i: usize) -> __m128i {
    debug_assert!(i < 16);
    // SAFETY: `i < 16` at every call site, so the 16-byte load reads
    // w[4i..4i+4] inside the 64-entry schedule.
    unsafe { _mm_loadu_si128(w.as_ptr().add(4 * i).cast()) }
}

/// Load a 64-byte message block as four big-endian word quads
/// (`m[i]` = words `W[4i..4i+4]`).
#[inline]
#[target_feature(enable = "sha,ssse3,sse4.1")]
unsafe fn load_block(block: &[u8; 64]) -> [__m128i; 4] {
    // Byte shuffle turning each group of 4 message bytes into a
    // big-endian u32 lane.
    // SAFETY: the four 16-byte unaligned loads cover exactly
    // block[0..64]; the shuffles are pure register ops.
    unsafe {
        let flip = _mm_set_epi64x(0x0c0d_0e0f_0809_0a0b, 0x0405_0607_0001_0203);
        [
            _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().cast()), flip),
            _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(16).cast()), flip),
            _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(32).cast()), flip),
            _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(48).cast()), flip),
        ]
    }
}

/// Next message-schedule quad: with `m` holding quads
/// `q_i..q_{i+3}` (circularly), computes
/// `q_{i+4} = msg2(msg1(q_i, q_{i+1}) + (W[4i+9..4i+13]), q_{i+3})`
/// — the FIPS recurrence, four words at a time.
#[inline]
#[target_feature(enable = "sha,ssse3,sse4.1")]
unsafe fn next_quad(m: &[__m128i; 4], i: usize) -> __m128i {
    // Pure register ops — safe in a matching `#[target_feature]`
    // context; indices are masked into the 4-entry circular buffer.
    let w9 = _mm_alignr_epi8::<4>(m[(i + 3) & 3], m[(i + 2) & 3]);
    _mm_sha256msg2_epu32(
        _mm_add_epi32(_mm_sha256msg1_epu32(m[i & 3], m[(i + 1) & 3]), w9),
        m[(i + 3) & 3],
    )
}

/// Four rounds for one stream given the already K-summed quad `wk`.
#[inline]
#[target_feature(enable = "sha,ssse3,sse4.1")]
unsafe fn rounds4(abef: &mut __m128i, cdgh: &mut __m128i, wk: __m128i) {
    // Pure register ops — safe in a matching `#[target_feature]`
    // context. `rnds2` consumes wk lanes 0..2, then lanes 2..4 after
    // the shuffle; the two calls ping-pong the ABEF/CDGH roles.
    *cdgh = _mm_sha256rnds2_epu32(*cdgh, *abef, wk);
    *abef = _mm_sha256rnds2_epu32(*abef, *cdgh, _mm_shuffle_epi32::<0x0E>(wk));
}

/// All 64 rounds over a raw message block, schedule computed in
/// hardware, including the feed-forward addition.
#[inline]
#[target_feature(enable = "sha,ssse3,sse4.1")]
unsafe fn rounds_block(abef: &mut __m128i, cdgh: &mut __m128i, block: &[u8; 64]) {
    // SAFETY: delegates to feature-gated helpers under the same
    // feature set; all memory access is through `load_block`.
    unsafe {
        let mut m = load_block(block);
        let (save_abef, save_cdgh) = (*abef, *cdgh);
        for i in 0..16 {
            rounds4(abef, cdgh, _mm_add_epi32(m[i & 3], k_quad(i)));
            if i < 12 {
                m[i & 3] = next_quad(&m, i);
            }
        }
        *abef = _mm_add_epi32(*abef, save_abef);
        *cdgh = _mm_add_epi32(*cdgh, save_cdgh);
    }
}

/// All 64 rounds over a pre-expanded schedule (the constant second
/// block of the fixed-length keyed construct), including the
/// feed-forward addition.
#[inline]
#[target_feature(enable = "sha,ssse3,sse4.1")]
unsafe fn rounds_schedule(abef: &mut __m128i, cdgh: &mut __m128i, w: &[u32; 64]) {
    // SAFETY: delegates to feature-gated helpers under the same
    // feature set; all memory access is through `w_quad`.
    unsafe {
        let (save_abef, save_cdgh) = (*abef, *cdgh);
        for i in 0..16 {
            rounds4(abef, cdgh, _mm_add_epi32(w_quad(w, i), k_quad(i)));
        }
        *abef = _mm_add_epi32(*abef, save_abef);
        *cdgh = _mm_add_epi32(*cdgh, save_cdgh);
    }
}

/// Leading 8 digest bytes as a big-endian u64: `(A << 32) | B`, i.e.
/// the upper 64 bits of the `ABEF` register.
#[inline]
#[target_feature(enable = "sha,ssse3,sse4.1")]
unsafe fn digest_u64(abef: __m128i) -> u64 {
    // Pure register extract — safe in a matching `#[target_feature]`
    // context.
    _mm_extract_epi64::<1>(abef) as u64
}

/// Hardware counterpart of the software compression function: fold one
/// raw 64-byte block into `state`.
///
/// # Safety
///
/// The CPU must support `sha`, `ssse3` and `sse4.1` (see module docs).
#[target_feature(enable = "sha,ssse3,sse4.1")]
pub(crate) unsafe fn compress_block(state: &mut [u32; 8], block: &[u8; 64]) {
    // SAFETY: caller guarantees the feature set; helpers share it.
    unsafe {
        let (mut abef, mut cdgh) = load_state(state);
        rounds_block(&mut abef, &mut cdgh, block);
        store_state(state, abef, cdgh);
    }
}

/// One fixed-layout keyed hash: compress `block1` (raw) then the
/// constant pre-expanded `w2`, both from the initial state, returning
/// the leading 8 digest bytes big-endian.
///
/// # Safety
///
/// The CPU must support `sha`, `ssse3` and `sse4.1` (see module docs).
#[target_feature(enable = "sha,ssse3,sse4.1")]
pub(crate) unsafe fn digest_two_blocks_u64(block1: &[u8; 64], w2: &[u32; 64]) -> u64 {
    // SAFETY: caller guarantees the feature set; helpers share it.
    unsafe {
        let (mut abef, mut cdgh) = load_state(&INITIAL_STATE);
        rounds_block(&mut abef, &mut cdgh, block1);
        rounds_schedule(&mut abef, &mut cdgh, w2);
        digest_u64(abef)
    }
}

/// Two independent fixed-layout keyed hashes with their rounds
/// interleaved.
///
/// A single SHA-NI stream is bound by the `rnds2` dependency chain;
/// the unit is pipelined, so running two streams through alternating
/// instructions roughly doubles throughput. Two is the sweet spot:
/// four interleaved streams would need ~24 live XMM registers and
/// spill.
///
/// # Safety
///
/// The CPU must support `sha`, `ssse3` and `sse4.1` (see module docs).
#[target_feature(enable = "sha,ssse3,sse4.1")]
pub(crate) unsafe fn digest2_two_blocks_u64(
    block1_x: &[u8; 64],
    block1_y: &[u8; 64],
    w2: &[u32; 64],
) -> (u64, u64) {
    // SAFETY: caller guarantees the feature set; helpers share it, and
    // all memory access goes through the bounds-checked helpers.
    unsafe {
        let (init_abef, init_cdgh) = load_state(&INITIAL_STATE);
        let (mut abef_x, mut cdgh_x) = (init_abef, init_cdgh);
        let (mut abef_y, mut cdgh_y) = (init_abef, init_cdgh);

        // Block 1: separate schedules, interleaved rounds.
        let mut mx = load_block(block1_x);
        let mut my = load_block(block1_y);
        for i in 0..16 {
            let k = k_quad(i);
            rounds4(&mut abef_x, &mut cdgh_x, _mm_add_epi32(mx[i & 3], k));
            rounds4(&mut abef_y, &mut cdgh_y, _mm_add_epi32(my[i & 3], k));
            if i < 12 {
                mx[i & 3] = next_quad(&mx, i);
                my[i & 3] = next_quad(&my, i);
            }
        }
        abef_x = _mm_add_epi32(abef_x, init_abef);
        cdgh_x = _mm_add_epi32(cdgh_x, init_cdgh);
        abef_y = _mm_add_epi32(abef_y, init_abef);
        cdgh_y = _mm_add_epi32(cdgh_y, init_cdgh);

        // Block 2: one shared constant schedule feeds both streams.
        // Only the feed-forward of ABEF matters from here — the
        // truncated digest is (A << 32) | B.
        let (save_abef_x, save_abef_y) = (abef_x, abef_y);
        for i in 0..16 {
            let wk = _mm_add_epi32(w_quad(w2, i), k_quad(i));
            rounds4(&mut abef_x, &mut cdgh_x, wk);
            rounds4(&mut abef_y, &mut cdgh_y, wk);
        }
        (
            digest_u64(_mm_add_epi32(abef_x, save_abef_x)),
            digest_u64(_mm_add_epi32(abef_y, save_abef_y)),
        )
    }
}

/// SHA-NI counterpart of the software four-lane multibuffer
/// `digest4_two_blocks_u64`: four fixed-layout keyed hashes as two
/// interleaved pairs.
///
/// # Safety
///
/// The CPU must support `sha`, `ssse3` and `sse4.1` (see module docs).
#[target_feature(enable = "sha,ssse3,sse4.1")]
pub(crate) unsafe fn digest4_two_blocks_u64(block1s: &[[u8; 64]; 4], w2: &[u32; 64]) -> [u64; 4] {
    // SAFETY: caller guarantees the feature set; helpers share it.
    unsafe {
        let (a, b) = digest2_two_blocks_u64(&block1s[0], &block1s[1], w2);
        let (c, d) = digest2_two_blocks_u64(&block1s[2], &block1s[3], w2);
        [a, b, c, d]
    }
}

/// Multi-key variant of [`digest2_two_blocks_u64`]: each stream carries
/// its *own* constant second-block schedule (two different keys hashing
/// one value each). Identical interleaving; the only change is that the
/// block-2 loop computes a per-stream `wk` instead of sharing one.
///
/// # Safety
///
/// The CPU must support `sha`, `ssse3` and `sse4.1` (see module docs).
#[target_feature(enable = "sha,ssse3,sse4.1")]
pub(crate) unsafe fn digest2_two_blocks_u64_multikey(
    block1_x: &[u8; 64],
    block1_y: &[u8; 64],
    w2_x: &[u32; 64],
    w2_y: &[u32; 64],
) -> (u64, u64) {
    // SAFETY: caller guarantees the feature set; helpers share it, and
    // all memory access goes through the bounds-checked helpers.
    unsafe {
        let (init_abef, init_cdgh) = load_state(&INITIAL_STATE);
        let (mut abef_x, mut cdgh_x) = (init_abef, init_cdgh);
        let (mut abef_y, mut cdgh_y) = (init_abef, init_cdgh);

        // Block 1: separate schedules, interleaved rounds.
        let mut mx = load_block(block1_x);
        let mut my = load_block(block1_y);
        for i in 0..16 {
            let k = k_quad(i);
            rounds4(&mut abef_x, &mut cdgh_x, _mm_add_epi32(mx[i & 3], k));
            rounds4(&mut abef_y, &mut cdgh_y, _mm_add_epi32(my[i & 3], k));
            if i < 12 {
                mx[i & 3] = next_quad(&mx, i);
                my[i & 3] = next_quad(&my, i);
            }
        }
        abef_x = _mm_add_epi32(abef_x, init_abef);
        cdgh_x = _mm_add_epi32(cdgh_x, init_cdgh);
        abef_y = _mm_add_epi32(abef_y, init_abef);
        cdgh_y = _mm_add_epi32(cdgh_y, init_cdgh);

        // Block 2: per-stream constant schedules. Only the feed-forward
        // of ABEF matters from here — the truncated digest is
        // (A << 32) | B.
        let (save_abef_x, save_abef_y) = (abef_x, abef_y);
        for i in 0..16 {
            let k = k_quad(i);
            rounds4(&mut abef_x, &mut cdgh_x, _mm_add_epi32(w_quad(w2_x, i), k));
            rounds4(&mut abef_y, &mut cdgh_y, _mm_add_epi32(w_quad(w2_y, i), k));
        }
        (
            digest_u64(_mm_add_epi32(abef_x, save_abef_x)),
            digest_u64(_mm_add_epi32(abef_y, save_abef_y)),
        )
    }
}

/// SHA-NI counterpart of the software multi-key multibuffer: four
/// fixed-layout keyed hashes under four *different* keys, as two
/// interleaved pairs.
///
/// # Safety
///
/// The CPU must support `sha`, `ssse3` and `sse4.1` (see module docs).
#[target_feature(enable = "sha,ssse3,sse4.1")]
pub(crate) unsafe fn digest4_two_blocks_u64_multikey(
    block1s: &[[u8; 64]; 4],
    w2s: &[[u32; 64]; 4],
) -> [u64; 4] {
    // SAFETY: caller guarantees the feature set; helpers share it.
    unsafe {
        let (a, b) = digest2_two_blocks_u64_multikey(&block1s[0], &block1s[1], &w2s[0], &w2s[1]);
        let (c, d) = digest2_two_blocks_u64_multikey(&block1s[2], &block1s[3], &w2s[2], &w2s[3]);
        [a, b, c, d]
    }
}
