//! HMAC (RFC 2104) — a hardened alternative to the paper's keyed
//! construct.
//!
//! The paper keys its hash as `H(V, k) = hash(k ; V ; k)`. With
//! Merkle–Damgård hashes the *prefix-key* variant `hash(k ; V)` is
//! length-extension-vulnerable; the sandwich form largely mitigates
//! that, but HMAC is the standard construction with a security proof,
//! so `catmark` offers it as a drop-in (`KeyedHash` remains the
//! default for paper fidelity — both are pure functions of
//! `(key, message)` and interchangeable at the API level).

use crate::digest::DynDigest;
use crate::keyed::SecretKey;
use crate::HashAlgorithm;

const BLOCK_LEN: usize = 64; // all three supported hashes use 64-byte blocks

/// HMAC keyed hash.
#[derive(Debug, Clone)]
pub struct Hmac {
    algo: HashAlgorithm,
    /// Key padded/hashed to exactly one block.
    block_key: [u8; BLOCK_LEN],
}

impl Hmac {
    /// HMAC over `algo` with `key` (RFC 2104 key normalization: keys
    /// longer than the block are hashed first, shorter ones are
    /// zero-padded).
    pub fn new(algo: HashAlgorithm, key: impl Into<SecretKey>) -> Self {
        let key = key.into();
        let mut block_key = [0u8; BLOCK_LEN];
        let material = key.as_bytes();
        if material.len() > BLOCK_LEN {
            let digest = algo.digest(material);
            block_key[..digest.len()].copy_from_slice(&digest);
        } else {
            block_key[..material.len()].copy_from_slice(material);
        }
        Hmac { algo, block_key }
    }

    /// `HMAC(key, message)`.
    #[must_use]
    pub fn mac(&self, message: &[u8]) -> Vec<u8> {
        let mut ipad = [0x36u8; BLOCK_LEN];
        let mut opad = [0x5cu8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] ^= self.block_key[i];
            opad[i] ^= self.block_key[i];
        }
        let mut inner: DynDigest = self.algo.hasher();
        inner.update(&ipad);
        inner.update(message);
        let inner_digest = inner.finalize_vec();
        let mut outer = self.algo.hasher();
        outer.update(&opad);
        outer.update(&inner_digest);
        outer.finalize_vec()
    }

    /// First 8 MAC bytes as a big-endian integer — the same interface
    /// shape as `KeyedHash::hash_u64`.
    #[must_use]
    pub fn mac_u64(&self, message: &[u8]) -> u64 {
        let mac = self.mac(message);
        let mut first = [0u8; 8];
        first.copy_from_slice(&mac[..8]);
        u64::from_be_bytes(first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex::to_hex;

    /// RFC 2202 (MD5/SHA-1) and RFC 4231 (SHA-256) test vectors.
    #[test]
    fn rfc_test_vectors() {
        // RFC 2202 case 2: key "Jefe", data "what do ya want for nothing?".
        let h = Hmac::new(HashAlgorithm::Md5, "Jefe");
        assert_eq!(
            to_hex(&h.mac(b"what do ya want for nothing?")),
            "750c783e6ab0b503eaa86e310a5db738"
        );
        let h = Hmac::new(HashAlgorithm::Sha1, "Jefe");
        assert_eq!(
            to_hex(&h.mac(b"what do ya want for nothing?")),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        );
        // RFC 4231 case 2.
        let h = Hmac::new(HashAlgorithm::Sha256, "Jefe");
        assert_eq!(
            to_hex(&h.mac(b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_1_binary_key() {
        let key = vec![0x0bu8; 20];
        let h = Hmac::new(HashAlgorithm::Sha256, SecretKey::from_bytes(key));
        assert_eq!(
            to_hex(&h.mac(b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn long_keys_are_hashed_first() {
        // RFC 4231 case 6: 131-byte key of 0xaa.
        let key = vec![0xaau8; 131];
        let h = Hmac::new(HashAlgorithm::Sha256, SecretKey::from_bytes(key));
        assert_eq!(
            to_hex(&h.mac(b"Test Using Larger Than Block-Size Key - Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn key_and_message_both_matter() {
        let a = Hmac::new(HashAlgorithm::Sha256, "k1");
        let b = Hmac::new(HashAlgorithm::Sha256, "k2");
        assert_ne!(a.mac(b"m"), b.mac(b"m"));
        assert_ne!(a.mac(b"m1"), a.mac(b"m2"));
    }

    #[test]
    fn mac_u64_is_a_prefix_view() {
        let h = Hmac::new(HashAlgorithm::Sha256, "key");
        let full = h.mac(b"message");
        let mut first = [0u8; 8];
        first.copy_from_slice(&full[..8]);
        assert_eq!(h.mac_u64(b"message"), u64::from_be_bytes(first));
    }
}
