//! SHA-1 (FIPS 180-4).
//!
//! The second hash family the paper names ("the MD5 or SHA hash").
//! Like MD5 it is no longer collision-resistant; `catmark` keeps it as
//! an option for fidelity and uses SHA-256 by default.

use crate::digest::{BlockBuffer, Digest};

const INIT: [u32; 5] = [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476, 0xc3d2_e1f0];

/// Streaming SHA-1 hasher.
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: BlockBuffer,
}

impl Sha1 {
    /// Fresh hasher with the FIPS 180-4 initial state.
    #[must_use]
    pub fn new() -> Self {
        Sha1 { state: INIT, buffer: BlockBuffer::new() }
    }

    fn compress(state: &mut [u32; 5], block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = *state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i / 20 {
                0 => ((b & c) | (!b & d), 0x5a82_7999),
                1 => (b ^ c ^ d, 0x6ed9_eba1),
                2 => ((b & c) | (b & d) | (c & d), 0x8f1b_bcdc),
                _ => (b ^ c ^ d, 0xca62_c1d6),
            };
            let tmp =
                a.rotate_left(5).wrapping_add(f).wrapping_add(e).wrapping_add(k).wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
    }
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest for Sha1 {
    type Output = [u8; 20];

    fn update(&mut self, data: &[u8]) {
        let state = &mut self.state;
        self.buffer.update(data, |block| Self::compress(state, block));
    }

    fn finalize(mut self) -> [u8; 20] {
        let state = &mut self.state;
        self.buffer.finalize(false, |block| Self::compress(state, block));
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn reset(&mut self) {
        self.state = INIT;
        self.buffer.reset();
    }
}

/// One-shot SHA-1 digest.
#[must_use]
pub fn sha1(data: &[u8]) -> [u8; 20] {
    Sha1::digest(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex::to_hex;

    #[test]
    fn fips_test_vectors() {
        let cases: [(&[u8], &str); 4] = [
            (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
            (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
            ),
            (
                b"The quick brown fox jumps over the lazy dog",
                "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(to_hex(&sha1(input)), expected);
        }
    }

    #[test]
    fn million_a_vector() {
        // FIPS 180-4 long test vector: one million repetitions of "a".
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(to_hex(&h.finalize()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0u16..300).map(|i| (i % 251) as u8).collect();
        let mut h = Sha1::new();
        for chunk in data.chunks(13) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), sha1(&data));
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut h = Sha1::new();
        h.update(b"noise");
        h.reset();
        h.update(b"abc");
        assert_eq!(to_hex(&h.finalize()), "a9993e364706816aba3e25717850c26c9cd0d89d");
    }
}
