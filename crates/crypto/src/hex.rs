//! Hexadecimal encoding/decoding for digests and keys.

/// Encode `bytes` as lowercase hexadecimal.
#[must_use]
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit((b >> 4) as u32, 16).expect("nibble < 16"));
        out.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble < 16"));
    }
    out
}

/// Decode a hexadecimal string (case-insensitive) into bytes.
///
/// # Errors
///
/// Returns [`HexError`] when the input has odd length or contains a
/// non-hexadecimal character.
pub fn from_hex(s: &str) -> Result<Vec<u8>, HexError> {
    if !s.len().is_multiple_of(2) {
        return Err(HexError::OddLength(s.len()));
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in bytes.chunks_exact(2) {
        let hi = nibble(pair[0])?;
        let lo = nibble(pair[1])?;
        out.push((hi << 4) | lo);
    }
    Ok(out)
}

fn nibble(c: u8) -> Result<u8, HexError> {
    match c {
        b'0'..=b'9' => Ok(c - b'0'),
        b'a'..=b'f' => Ok(c - b'a' + 10),
        b'A'..=b'F' => Ok(c - b'A' + 10),
        _ => Err(HexError::InvalidChar(c as char)),
    }
}

/// Error decoding hexadecimal input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HexError {
    /// Input length was not a multiple of two.
    OddLength(usize),
    /// Input contained a character outside `[0-9a-fA-F]`.
    InvalidChar(char),
}

impl std::fmt::Display for HexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HexError::OddLength(n) => write!(f, "hex string has odd length {n}"),
            HexError::InvalidChar(c) => write!(f, "invalid hex character {c:?}"),
        }
    }
}

impl std::error::Error for HexError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let data = [0x00, 0x01, 0x7f, 0x80, 0xff];
        assert_eq!(from_hex(&to_hex(&data)).unwrap(), data);
    }

    #[test]
    fn encodes_lowercase() {
        assert_eq!(to_hex(&[0xAB, 0xCD]), "abcd");
    }

    #[test]
    fn decodes_uppercase() {
        assert_eq!(from_hex("ABCD").unwrap(), vec![0xab, 0xcd]);
    }

    #[test]
    fn rejects_odd_length() {
        assert_eq!(from_hex("abc"), Err(HexError::OddLength(3)));
    }

    #[test]
    fn rejects_invalid_char() {
        assert_eq!(from_hex("zz"), Err(HexError::InvalidChar('z')));
    }

    #[test]
    fn empty_round_trip() {
        assert_eq!(to_hex(&[]), "");
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
    }
}
