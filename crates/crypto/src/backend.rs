//! Process-wide SHA-256 backend selection.
//!
//! Two interchangeable implementations of the SHA-256 compression
//! function exist in this crate:
//!
//! * [`Sha256Backend::Soft`] — the portable software path in
//!   [`crate::sha256`] (scalar rounds plus the four-lane multibuffer).
//!   This is the **golden reference**: test vectors and the repo's
//!   byte-identity goldens pin it, and every other backend is checked
//!   against it.
//! * [`Sha256Backend::ShaNi`] — the x86 SHA Extensions path in
//!   `sha256_shani` (`_mm_sha256rnds2_epu32` and friends), selected
//!   only when the CPU actually reports the `sha` feature at runtime.
//!
//! Both produce bit-identical digests (enforced by proptest); the
//! selection is therefore purely a throughput decision and is made
//! **once per process**, cached in a [`OnceLock`].
//!
//! Selection order:
//!
//! 1. `CATMARK_SHA_BACKEND=soft` forces the software path everywhere.
//! 2. `CATMARK_SHA_BACKEND=shani` requests the hardware path; if the
//!    CPU lacks the extension the request degrades to `soft` (same
//!    digests, so this is safe) with a one-time stderr note.
//! 3. No (or unrecognized) override: auto-detect — `shani` when the
//!    CPU supports it, `soft` otherwise.

use std::sync::OnceLock;

/// One of the interchangeable SHA-256 compression implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sha256Backend {
    /// Portable software rounds — the golden reference.
    Soft,
    /// x86 SHA Extensions (`sha` + `ssse3` + `sse4.1`).
    ShaNi,
}

impl Sha256Backend {
    /// Both backends, for exhaustive equivalence tests and benches.
    pub const ALL: [Sha256Backend; 2] = [Sha256Backend::Soft, Sha256Backend::ShaNi];

    /// Whether this backend can run on the current CPU. `Soft` is
    /// always available; `ShaNi` requires runtime feature detection to
    /// succeed.
    #[must_use]
    pub fn is_available(self) -> bool {
        match self {
            Sha256Backend::Soft => true,
            Sha256Backend::ShaNi => shani_supported(),
        }
    }

    /// Stable lowercase name (`soft` / `shani`), used by the bench
    /// harness's `sha_backend` field and the env override.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Sha256Backend::Soft => "soft",
            Sha256Backend::ShaNi => "shani",
        }
    }

    /// The process-wide active backend: selected on first call (env
    /// override, then runtime detection), then cached for the life of
    /// the process. Every digest produced through [`crate::sha256`] or
    /// [`crate::keyed`] without an explicit backend goes through this.
    #[must_use]
    pub fn active() -> Sha256Backend {
        static ACTIVE: OnceLock<Sha256Backend> = OnceLock::new();
        *ACTIVE.get_or_init(select)
    }
}

impl std::fmt::Display for Sha256Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Sha256Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "soft" | "software" => Ok(Sha256Backend::Soft),
            "shani" | "sha-ni" | "sha_ni" | "sha" => Ok(Sha256Backend::ShaNi),
            other => Err(format!("unknown SHA-256 backend {other:?} (expected soft|shani)")),
        }
    }
}

/// Runtime check for the x86 SHA Extensions path. The intrinsics
/// module also uses `ssse3` (byte shuffles) and `sse4.1` (blends and
/// 64-bit extracts), so all three must be present.
fn shani_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("sha")
            && is_x86_feature_detected!("ssse3")
            && is_x86_feature_detected!("sse4.1")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn select() -> Sha256Backend {
    match std::env::var("CATMARK_SHA_BACKEND") {
        Ok(raw) => match raw.parse::<Sha256Backend>() {
            Ok(requested) if requested.is_available() => requested,
            Ok(requested) => {
                eprintln!(
                    "catmark: CATMARK_SHA_BACKEND={requested} requested but unsupported \
                     on this CPU; falling back to soft"
                );
                Sha256Backend::Soft
            }
            Err(err) => {
                eprintln!("catmark: ignoring CATMARK_SHA_BACKEND: {err}");
                auto_detect()
            }
        },
        Err(_) => auto_detect(),
    }
}

fn auto_detect() -> Sha256Backend {
    if shani_supported() {
        Sha256Backend::ShaNi
    } else {
        Sha256Backend::Soft
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    #[test]
    fn soft_is_always_available() {
        assert!(Sha256Backend::Soft.is_available());
    }

    #[test]
    fn names_round_trip_through_from_str() {
        for backend in Sha256Backend::ALL {
            assert_eq!(Sha256Backend::from_str(backend.name()).unwrap(), backend);
        }
    }

    #[test]
    fn from_str_accepts_aliases_and_rejects_unknown() {
        assert_eq!(Sha256Backend::from_str("SHA-NI").unwrap(), Sha256Backend::ShaNi);
        assert_eq!(Sha256Backend::from_str("software").unwrap(), Sha256Backend::Soft);
        assert!(Sha256Backend::from_str("avx512").is_err());
    }

    #[test]
    fn active_backend_is_stable_and_available() {
        let first = Sha256Backend::active();
        assert!(first.is_available());
        assert_eq!(Sha256Backend::active(), first, "selection must be cached");
    }
}
